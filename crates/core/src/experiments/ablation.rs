//! Ablations of the MPC's design knobs: horizon length and the
//! battery-lifetime weight `w2` (the paper's Eq. 21 centerpiece).
//!
//! The paper motivates both: "the larger the control window, the more
//! variables there are to optimize and much more flexibility", and the
//! `w2(SoC − SoC_avg)²` term is what makes the controller *battery
//! lifetime-aware* at all. These ablations quantify each claim on the
//! ECE_EUDC hot-day scenario.

use ev_control::{MpcController, MpcWeights};
use ev_drive::DriveCycle;
use ev_units::Seconds;

use crate::Simulation;

use super::{experiment_params, format_table, profile_at, COMPARISON_AMBIENT_C};

/// One ablation configuration and its outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// Human-readable configuration label.
    pub config: String,
    /// ΔSoH of the cycle (milli-percent).
    pub delta_soh_milli_percent: f64,
    /// Average HVAC power (kW).
    pub avg_hvac_kw: f64,
    /// Mean absolute temperature error after pull-in (K).
    pub mean_temp_error: f64,
    /// SoC deviation of the cycle (percent).
    pub soc_dev: f64,
}

/// Runs one MPC configuration on the standard ablation scenario.
fn run(config: &str, horizon: usize, weights: MpcWeights) -> AblationRow {
    let mut params = experiment_params();
    params.initial_cabin = Some(params.target);
    let profile = profile_at(&DriveCycle::ece_eudc(), COMPARISON_AMBIENT_C);
    let sim = Simulation::new(params.clone(), profile).expect("profile non-empty");
    let mut mpc = MpcController::builder(params.hvac_model(), params.limits())
        .target(params.target)
        .horizon(horizon)
        .prediction_dt(Seconds::new(4.0))
        .recompute_every(4)
        .weights(weights)
        .battery(params.mpc_battery_model())
        .accessory_power(params.accessory_power)
        .build()
        .expect("valid config");
    let r = sim.run(&mut mpc).expect("runs");
    let m = r.metrics();
    AblationRow {
        config: config.to_owned(),
        delta_soh_milli_percent: m.delta_soh_milli_percent,
        avg_hvac_kw: m.avg_hvac_power.value(),
        mean_temp_error: m.mean_temp_error,
        soc_dev: m.soc_stats.dev,
    }
}

/// Horizon-length ablation: N ∈ {2, 4, 8, 12} prediction steps (8–48 s of
/// look-ahead at the 4 s prediction period).
#[must_use]
pub fn ablation_horizon() -> Vec<AblationRow> {
    [2usize, 4, 8, 12]
        .into_iter()
        .map(|n| run(&format!("horizon N={n}"), n, MpcWeights::default()))
        .collect()
}

/// Lifetime-weight ablation: w2 ∈ {0, default, 5× default}. With w2 = 0
/// the controller degenerates into a comfort/power MPC.
#[must_use]
pub fn ablation_w2() -> Vec<AblationRow> {
    let base = MpcWeights::default();
    [
        ("w2 = 0 (lifetime-blind)", 0.0),
        ("w2 = default", base.w2),
        ("w2 = 5x default", 5.0 * base.w2),
    ]
    .into_iter()
    .map(|(label, w2)| run(label, 8, MpcWeights { w2, ..base }))
    .collect()
}

/// Formats ablation rows as a text table.
#[must_use]
pub fn render_ablation(title: &str, rows: &[AblationRow]) -> String {
    let header: Vec<String> = [
        "configuration",
        "ΔSoH (m%)",
        "HVAC kW",
        "mean |ΔT| (K)",
        "SoC dev (%)",
    ]
    .iter()
    .map(|s| (*s).to_owned())
    .collect();
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.config.clone(),
                format!("{:.3}", r.delta_soh_milli_percent),
                format!("{:.3}", r.avg_hvac_kw),
                format!("{:.2}", r.mean_temp_error),
                format!("{:.3}", r.soc_dev),
            ]
        })
        .collect();
    format!("{title}\n{}", format_table(&header, &body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn longer_horizon_does_not_hurt_soh() {
        // A 2-step window barely sees the next motor peak; 8 steps span
        // ~32 s. The ΔSoH with the longer window must be at least as good
        // (small tolerance for solver noise).
        let short = run("short", 2, MpcWeights::default());
        let long = run("long", 8, MpcWeights::default());
        assert!(
            long.delta_soh_milli_percent <= short.delta_soh_milli_percent * 1.02,
            "long {} vs short {}",
            long.delta_soh_milli_percent,
            short.delta_soh_milli_percent
        );
    }

    #[test]
    fn w2_reduces_soc_deviation() {
        // The paper's central knob: turning the lifetime term up must not
        // worsen the SoC deviation it penalizes.
        let blind = run(
            "blind",
            8,
            MpcWeights {
                w2: 0.0,
                ..MpcWeights::default()
            },
        );
        let heavy = run(
            "heavy",
            8,
            MpcWeights {
                w2: 5.0 * MpcWeights::default().w2,
                ..MpcWeights::default()
            },
        );
        assert!(
            heavy.soc_dev <= blind.soc_dev + 0.02,
            "heavy w2 dev {} vs blind {}",
            heavy.soc_dev,
            blind.soc_dev
        );
    }

    #[test]
    fn render_contains_configs() {
        let rows = vec![AblationRow {
            config: "horizon N=8".into(),
            delta_soh_milli_percent: 15.0,
            avg_hvac_kw: 1.0,
            mean_temp_error: 0.4,
            soc_dev: 0.8,
        }];
        let text = render_ablation("Ablation — horizon", &rows);
        assert!(text.contains("horizon N=8"));
        assert!(text.contains("15.000"));
    }
}
