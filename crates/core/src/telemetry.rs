//! Bridges the simulation's [`StepObserver`] stream into an
//! [`ev_telemetry::Registry`].
//!
//! [`TelemetryObserver`] is the experiment-level half of the telemetry
//! story: the controller records solver metrics (`mpc_*`, `sqp_*`) on its
//! own, and this observer adds the plant-side view — step counts, mode
//! occupancy and power distributions — so a single registry snapshot
//! describes a whole run. Against a disabled registry every handle is
//! inert and `on_step` is a handful of branches.

use ev_telemetry::{Counter, Histogram, HistogramSpec, Registry};

use crate::observe::{ControllerMode, StepObserver, StepRecord};

/// A [`StepObserver`] that folds each simulated step into telemetry
/// metrics.
///
/// Metrics recorded (all prefixed `sim_`):
///
/// * `sim_steps_total` — plant steps simulated;
/// * `sim_mode_{heating,cooling,vent,idle}_steps_total` — controller-mode
///   occupancy;
/// * `sim_hvac_power_watts` — total HVAC power distribution;
/// * `sim_battery_power_watts` — battery power distribution (regeneration
///   is negative and lands in the first bucket; `min`/`max` stay exact).
///
/// # Examples
///
/// ```
/// use ev_core::{Simulation, TelemetryObserver};
/// use ev_telemetry::Registry;
/// # use ev_core::{ControllerKind, EvParams};
/// # use ev_drive::{AmbientConditions, DriveCycle, DriveProfile};
/// # use ev_units::{Celsius, Seconds};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let registry = Registry::enabled();
/// let params = EvParams::nissan_leaf_like();
/// let profile = DriveProfile::from_cycle(
///     &DriveCycle::ece15(),
///     AmbientConditions::constant(Celsius::new(35.0)),
///     Seconds::new(1.0),
/// );
/// let sim = Simulation::new(params.clone(), profile)?;
/// let mut controller = ControllerKind::OnOff.instantiate(&params)?;
/// let mut observer = TelemetryObserver::new(&registry);
/// sim.run_observed(controller.as_mut(), &mut observer)?;
/// let snapshot = registry.snapshot();
/// assert!(snapshot.counter("sim_steps_total").unwrap() > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TelemetryObserver {
    steps: Counter,
    heating: Counter,
    cooling: Counter,
    vent: Counter,
    idle: Counter,
    hvac_power: Histogram,
    battery_power: Histogram,
}

impl TelemetryObserver {
    /// Binds the observer's metrics in `registry` (no-op handles when the
    /// registry is disabled).
    #[must_use]
    pub fn new(registry: &Registry) -> Self {
        Self {
            steps: registry.counter("sim_steps_total"),
            heating: registry.counter("sim_mode_heating_steps_total"),
            cooling: registry.counter("sim_mode_cooling_steps_total"),
            vent: registry.counter("sim_mode_vent_steps_total"),
            idle: registry.counter("sim_mode_idle_steps_total"),
            hvac_power: registry.histogram("sim_hvac_power_watts", HistogramSpec::power_watts()),
            battery_power: registry
                .histogram("sim_battery_power_watts", HistogramSpec::power_watts()),
        }
    }
}

impl StepObserver for TelemetryObserver {
    fn on_step(&mut self, record: &StepRecord) {
        self.steps.inc();
        match record.mode {
            ControllerMode::Heating => self.heating.inc(),
            ControllerMode::Cooling => self.cooling.inc(),
            ControllerMode::Vent => self.vent.inc(),
            ControllerMode::Idle => self.idle.inc(),
        }
        self.hvac_power.record(record.hvac_power());
        self.battery_power.record(record.battery_power);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(mode: ControllerMode, hvac_w: f64, battery_w: f64) -> StepRecord {
        StepRecord {
            step: 0,
            t: 0.0,
            dt: 1.0,
            motor_power: 0.0,
            heating_power: 0.0,
            cooling_power: hvac_w,
            fan_power: 0.0,
            accessory_power: 0.0,
            battery_power: battery_w,
            soc: 90.0,
            cabin_temp: 24.0,
            pack_temp: 30.0,
            ambient: 35.0,
            solar: 400.0,
            supply_temp: 12.0,
            coil_temp: 12.0,
            recirculation: 0.9,
            flow: 0.1,
            mode,
        }
    }

    #[test]
    fn steps_and_modes_are_counted() {
        let registry = Registry::enabled();
        let mut obs = TelemetryObserver::new(&registry);
        obs.on_step(&record(ControllerMode::Cooling, 2_000.0, 5_000.0));
        obs.on_step(&record(ControllerMode::Cooling, 1_500.0, 4_000.0));
        obs.on_step(&record(ControllerMode::Idle, 0.0, -1_200.0));
        let snap = registry.snapshot();
        assert_eq!(snap.counter("sim_steps_total").unwrap(), 3);
        assert_eq!(snap.counter("sim_mode_cooling_steps_total").unwrap(), 2);
        assert_eq!(snap.counter("sim_mode_idle_steps_total").unwrap(), 1);
        let hvac = snap.histogram("sim_hvac_power_watts").unwrap();
        assert_eq!(hvac.count, 3);
        assert_eq!(hvac.max, 2_000.0);
        // Regenerated battery power is negative: kept exactly in min.
        let batt = snap.histogram("sim_battery_power_watts").unwrap();
        assert_eq!(batt.min, -1_200.0);
        assert_eq!(batt.max, 5_000.0);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let registry = Registry::disabled();
        let mut obs = TelemetryObserver::new(&registry);
        obs.on_step(&record(ControllerMode::Vent, 100.0, 200.0));
        assert!(registry.snapshot().is_empty());
    }
}
