* Fixed-column-format QP with a QUADOBJ section:
* min (x-1)^2 + (y+1)^2 s.t. x <= 0.5, y >= -5 (and the default
* x >= 0). The x bound is active: optimum (0.5, -1), f* = 0.25.
NAME          QPFIXED
ROWS
 N  OBJ
COLUMNS
    X         OBJ       -2.0
    Y         OBJ       2.0
RHS
    RHS       OBJ       -2.0
BOUNDS
 UP BND       X         0.5
 LO BND       Y         -5.0
QUADOBJ
    X         X         2.0
    Y         Y         2.0
ENDATA
