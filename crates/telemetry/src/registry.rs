//! The metric registry and point-in-time snapshots of its contents.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::metrics::{Counter, Histogram, HistogramCore, HistogramSpec};

#[derive(Debug, Default)]
struct RegistryInner {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramCore>>>,
}

/// A named collection of counters and histograms.
///
/// `Registry` is a cheap cloneable handle; all clones share the same
/// metric store, so a registry can be minted once and handed to a
/// controller, an observer and an exporter. A registry created with
/// [`Registry::disabled`] (also the `Default`) owns no store at all:
/// every handle it mints is inert and records nothing.
///
/// Registration takes a lock; recording on the returned handles is
/// lock-free. Registering the same name twice returns a handle to the
/// same underlying metric (for histograms, the first spec wins).
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Option<Arc<RegistryInner>>,
}

impl Registry {
    /// A live registry that stores every metric registered on it.
    pub fn enabled() -> Self {
        Registry {
            inner: Some(Arc::new(RegistryInner::default())),
        }
    }

    /// A no-op registry: all handles minted from it discard updates.
    pub fn disabled() -> Self {
        Registry { inner: None }
    }

    /// Construct enabled or disabled from a flag.
    pub fn with_enabled(enabled: bool) -> Self {
        if enabled {
            Registry::enabled()
        } else {
            Registry::disabled()
        }
    }

    /// Whether metrics minted from this registry are recorded anywhere.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Get or create the counter named `name`.
    pub fn counter(&self, name: &str) -> Counter {
        match &self.inner {
            Some(inner) => {
                let mut map = inner.counters.lock().expect("counter registry poisoned");
                let cell = map
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(AtomicU64::new(0)));
                Counter(Some(cell.clone()))
            }
            None => Counter::disabled(),
        }
    }

    /// Get or create the histogram named `name` with bucket layout `spec`.
    pub fn histogram(&self, name: &str, spec: HistogramSpec) -> Histogram {
        match &self.inner {
            Some(inner) => {
                let mut map = inner
                    .histograms
                    .lock()
                    .expect("histogram registry poisoned");
                let core = map
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(HistogramCore::new(spec)));
                Histogram(Some(core.clone()))
            }
            None => Histogram::disabled(),
        }
    }

    /// A consistent point-in-time copy of every registered metric,
    /// sorted by name. Empty for a disabled registry.
    pub fn snapshot(&self) -> Snapshot {
        let Some(inner) = &self.inner else {
            return Snapshot::default();
        };
        let counters = inner
            .counters
            .lock()
            .expect("counter registry poisoned")
            .iter()
            .map(|(name, cell)| CounterSnapshot {
                name: name.clone(),
                value: cell.load(Ordering::Relaxed),
            })
            .collect();
        let histograms = inner
            .histograms
            .lock()
            .expect("histogram registry poisoned")
            .iter()
            .map(|(name, core)| HistogramSnapshot {
                name: name.clone(),
                bounds: core.bounds.clone(),
                counts: core
                    .counts
                    .iter()
                    .map(|c| c.load(Ordering::Relaxed))
                    .collect(),
                count: core.count.load(Ordering::Relaxed),
                sum: f64::from_bits(core.sum_bits.load(Ordering::Relaxed)),
                min: f64::from_bits(core.min_bits.load(Ordering::Relaxed)),
                max: f64::from_bits(core.max_bits.load(Ordering::Relaxed)),
            })
            .collect();
        Snapshot {
            counters,
            histograms,
        }
    }
}

/// Frozen value of one counter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Metric name.
    pub name: String,
    /// Counter value at snapshot time.
    pub value: u64,
}

/// Frozen state of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Finite bucket upper bounds, increasing.
    pub bounds: Vec<f64>,
    /// Per-bucket sample counts; `bounds.len() + 1` entries, the last
    /// being the overflow bucket.
    pub counts: Vec<u64>,
    /// Total number of samples.
    pub count: u64,
    /// Exact sum of all samples.
    pub sum: f64,
    /// Exact minimum sample (`+inf` if empty).
    pub min: f64,
    /// Exact maximum sample (`-inf` if empty).
    pub max: f64,
}

impl HistogramSnapshot {
    /// Arithmetic mean of the samples (NaN if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimate the `q`-quantile (`0.0..=1.0`) from the bucket counts.
    ///
    /// The estimate is the upper bound of the bucket containing the
    /// target rank, clamped to the exact observed `[min, max]` range —
    /// so `quantile(0.0) == min` and `quantile(1.0) == max` are exact
    /// and everything in between carries one bucket-width of error.
    /// Returns NaN if the histogram is empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        let q = q.clamp(0.0, 1.0);
        if q == 0.0 {
            return self.min;
        }
        if q == 1.0 {
            return self.max;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= rank {
                let estimate = if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    self.max
                };
                return estimate.clamp(self.min, self.max);
            }
        }
        self.max
    }
}

/// A point-in-time copy of a whole [`Registry`], ready for export.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// All counters, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// All histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

impl Snapshot {
    /// Value of the counter named `name`, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// The histogram named `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Whether the snapshot holds no metrics at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_snapshot_is_empty() {
        let reg = Registry::disabled();
        reg.counter("a").inc();
        reg.histogram("b", HistogramSpec::counts()).record(1.0);
        assert!(reg.snapshot().is_empty());
        assert!(!reg.is_enabled());
    }

    #[test]
    fn same_name_shares_storage() {
        let reg = Registry::enabled();
        let a = reg.counter("hits");
        let b = reg.counter("hits");
        a.inc();
        b.inc();
        assert_eq!(reg.snapshot().counter("hits"), Some(2));
    }

    #[test]
    fn clones_share_the_store() {
        let reg = Registry::enabled();
        let other = reg.clone();
        other.counter("x").add(5);
        assert_eq!(reg.snapshot().counter("x"), Some(5));
    }

    #[test]
    fn quantile_estimates_are_bracketed_by_extrema() {
        let reg = Registry::enabled();
        let h = reg.histogram("v", HistogramSpec::new(1.0, 2.0, 10));
        for v in [0.5, 1.0, 3.0, 7.0, 20.0, 900.0, 2500.0] {
            h.record(v);
        }
        let snap = reg.snapshot();
        let hist = snap.histogram("v").unwrap();
        assert_eq!(hist.quantile(0.0), 0.5);
        assert_eq!(hist.quantile(1.0), 2500.0);
        let p50 = hist.quantile(0.5);
        assert!((0.5..=2500.0).contains(&p50));
        // rank 4 of 7 -> sample 7.0 lives in bucket (4, 8]; bound is 8
        // but the estimate must stay inside the observed range.
        assert!((4.0..=8.0).contains(&p50), "p50 = {p50}");
        assert!((hist.mean() - (0.5 + 1.0 + 3.0 + 7.0 + 20.0 + 900.0 + 2500.0) / 7.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_quantile_is_nan() {
        let reg = Registry::enabled();
        let h = reg.histogram("v", HistogramSpec::counts());
        let _ = h;
        let snap = reg.snapshot();
        assert!(snap.histogram("v").unwrap().quantile(0.5).is_nan());
        assert!(snap.histogram("v").unwrap().mean().is_nan());
    }
}
