* Hock-Schittkowski 35 variant with x2 fixed at 0.5 (exercises FX bounds).
* The inequality is exactly active at the optimum x = (1.5, 0.5, 0.5);
* f* = 0.25.
NAME HS35MOD
ROWS
 N OBJ
 L C1
COLUMNS
 X1 OBJ -8.0 C1 1.0
 X2 OBJ -6.0 C1 1.0
 X3 OBJ -4.0 C1 2.0
RHS
 RHS C1 3.0 OBJ -9.0
BOUNDS
 FX BND X2 0.5
QUADOBJ
 X1 X1 4.0
 X1 X2 2.0
 X1 X3 2.0
 X2 X2 4.0
 X3 X3 2.0
ENDATA
