//! Property-based tests for the HVAC model: energy-balance signs,
//! equilibrium, constraint-clamp feasibility and power monotonicity.

use ev_hvac::{CabinParams, Hvac, HvacInput, HvacLimits, HvacParams, HvacState};
use ev_units::{Celsius, KgPerSecond, Seconds, Watts};
use proptest::prelude::*;

fn hvac() -> Hvac {
    Hvac::new(CabinParams::default(), HvacParams::default())
}

/// Strategy for an arbitrary (possibly wild) input vector.
fn any_input() -> impl Strategy<Value = HvacInput> {
    (-20.0f64..80.0, -20.0f64..80.0, -0.5f64..1.5, 0.0f64..0.6).prop_map(|(ts, tc, dr, mz)| {
        HvacInput {
            ts: Celsius::new(ts),
            tc: Celsius::new(tc),
            dr,
            mz: KgPerSecond::new(mz),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn powers_are_never_negative(
        input in any_input(),
        tz in -10.0f64..50.0,
        to in -20.0f64..50.0,
    ) {
        let p = hvac().power(&input, HvacState::new(Celsius::new(tz)), Celsius::new(to));
        prop_assert!(p.heating.value() >= 0.0);
        prop_assert!(p.cooling.value() >= 0.0);
        prop_assert!(p.fan.value() >= 0.0);
        prop_assert!((p.total().value()
            - p.heating.value() - p.cooling.value() - p.fan.value()).abs() < 1e-9);
    }

    #[test]
    fn mixer_output_between_sources(
        dr in 0.0f64..1.0,
        tz in 0.0f64..40.0,
        to in -20.0f64..50.0,
    ) {
        let input = HvacInput {
            ts: Celsius::new(20.0),
            tc: Celsius::new(20.0),
            dr,
            mz: KgPerSecond::new(0.1),
        };
        let tm = hvac().mixed_air(&input, Celsius::new(tz), Celsius::new(to)).value();
        let lo = tz.min(to);
        let hi = tz.max(to);
        prop_assert!(tm >= lo - 1e-9 && tm <= hi + 1e-9, "tm {tm} outside [{lo}, {hi}]");
    }

    #[test]
    fn warm_supply_warms_cold_cabin(
        tz in 0.0f64..20.0,
        supply_delta in 1.0f64..30.0,
        mz in 0.05f64..0.25,
    ) {
        // Ambient equal to cabin, no solar: only the supply term acts.
        let input = HvacInput {
            ts: Celsius::new(tz + supply_delta),
            tc: Celsius::new(tz),
            dr: 0.5,
            mz: KgPerSecond::new(mz),
        };
        let rate = hvac().cabin_rate(
            &input,
            HvacState::new(Celsius::new(tz)),
            Celsius::new(tz),
            Watts::ZERO,
        );
        prop_assert!(rate > 0.0);
    }

    #[test]
    fn step_moves_toward_equilibrium(
        tz in 0.0f64..45.0,
        to in -10.0f64..45.0,
        solar in 0.0f64..800.0,
        ts in 5.0f64..50.0,
        mz in 0.02f64..0.25,
    ) {
        // The affine dynamics have equilibrium
        // T* = (solar + cx·To + ṁ·cp·Ts)/(cx + ṁ·cp); each trapezoidal
        // step must move Tz strictly toward it (or stay if there).
        let h = hvac();
        let input = HvacInput {
            ts: Celsius::new(ts),
            tc: Celsius::new(ts),
            dr: 0.5,
            mz: KgPerSecond::new(mz),
        };
        let cx = h.cabin().shell_conductance.value();
        let cp = h.cabin().air_heat_capacity.value();
        let tstar = (solar + cx * to + mz * cp * ts) / (cx + mz * cp);
        let (next, _) = h.step(
            HvacState::new(Celsius::new(tz)),
            &input,
            Celsius::new(to),
            Watts::new(solar),
            Seconds::new(1.0),
        );
        let before = (tz - tstar).abs();
        let after = (next.tz.value() - tstar).abs();
        prop_assert!(after <= before + 1e-12, "{before} → {after}");
    }

    #[test]
    fn clamped_inputs_pass_static_constraints(
        input in any_input(),
        tz in 21.0f64..27.0, // inside the comfort band
        to in -20.0f64..50.0,
    ) {
        let h = hvac();
        let limits = HvacLimits::default();
        let state = HvacState::new(Celsius::new(tz));
        let clamped = limits.clamp_input(&h, input, state, Celsius::new(to));
        // The clamp covers the static box constraints; power caps can
        // still fail (controller responsibility), so only check C1, C3,
        // C4, C5 (passive form), C6, C7 via validate's ordering: any
        // error must be a power cap.
        match limits.validate(&h, &clamped, state, Celsius::new(to)) {
            Ok(()) => {}
            Err(v) => {
                let s = v.to_string();
                prop_assert!(
                    s.starts_with("c8") || s.starts_with("c9") || s.starts_with("c10"),
                    "unexpected static violation: {s} for {clamped:?}"
                );
            }
        }
    }

    #[test]
    fn fan_power_is_quadratic(
        mz1 in 0.02f64..0.12,
        factor in 1.1f64..2.0,
    ) {
        let h = hvac();
        let mk = |mz: f64| HvacInput {
            ts: Celsius::new(24.0),
            tc: Celsius::new(24.0),
            dr: 0.5,
            mz: KgPerSecond::new(mz),
        };
        let state = HvacState::new(Celsius::new(24.0));
        let p1 = h.power(&mk(mz1), state, Celsius::new(24.0)).fan.value();
        let p2 = h.power(&mk(mz1 * factor), state, Celsius::new(24.0)).fan.value();
        prop_assert!((p2 / p1 - factor * factor).abs() < 1e-9);
    }

    #[test]
    fn more_recirculation_reduces_cooling_power_on_hot_days(
        dr1 in 0.0f64..0.3,
        dr2 in 0.4f64..0.7,
        to in 35.0f64..45.0,
    ) {
        // Cabin cooler than outside: recirculating more lowers Tm and
        // thus the cooling power for the same coil temperature.
        let h = hvac();
        let state = HvacState::new(Celsius::new(24.0));
        let mk = |dr: f64| HvacInput {
            ts: Celsius::new(12.0),
            tc: Celsius::new(12.0),
            dr,
            mz: KgPerSecond::new(0.15),
        };
        let p1 = h.power(&mk(dr1), state, Celsius::new(to)).cooling.value();
        let p2 = h.power(&mk(dr2), state, Celsius::new(to)).cooling.value();
        prop_assert!(p2 < p1, "dr {dr2} should be cheaper than {dr1}");
    }

    #[test]
    fn comfort_band_contains_target(
        target in 18.0f64..28.0,
        half in 0.5f64..4.0,
    ) {
        let l = HvacLimits::comfort_band(Celsius::new(target), half);
        prop_assert!(l.comfort_min.value() <= target);
        prop_assert!(l.comfort_max.value() >= target);
        prop_assert!((l.comfort_max.value() - l.comfort_min.value() - 2.0 * half).abs() < 1e-12);
    }
}
