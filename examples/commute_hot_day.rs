//! A realistic commute on a hot afternoon: synthetic urban + highway
//! route with hills, generated the way the paper builds drive profiles
//! from navigation and climate databases (its Section II-A), then driven
//! with all three controllers.
//!
//! ```text
//! cargo run --release --example commute_hot_day
//! ```

use evclimate::core::ControllerKind;
use evclimate::drive::synthetic::{DiurnalClimate, RouteConfig};
use evclimate::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A July afternoon: 22 °C overnight low, 39 °C peak; leaving at 17:00.
    let climate = DiurnalClimate::new(Celsius::new(22.0), Celsius::new(39.0));
    let departure_ambient = climate.temperature_at_hour(17.0);

    // The route: 8 urban minutes, 12 highway minutes, rolling hills.
    let profile = RouteConfig::new(2024)
        .urban_minutes(8.0)
        .highway_minutes(12.0)
        .hilliness(4.0)
        .ambient(departure_ambient)
        .solar(Watts::new(600.0)) // low western sun through the glass
        .generate();

    let mut params = EvParams::nissan_leaf_like();
    params.initial_cabin = Some(params.target); // pre-cooled while plugged in
    let sim = Simulation::new(params.clone(), profile)?;

    println!(
        "commute: {:.1} km in {:.0} min at {:.1} ambient",
        sim.profile().distance().value(),
        sim.profile().duration().value() / 60.0,
        departure_ambient,
    );
    println!();
    println!(
        "{:<28} {:>9} {:>12} {:>11} {:>10}",
        "controller", "HVAC kW", "ΔSoH (m%)", "mean |ΔT|", "final SoC"
    );
    let mut onoff_soh = None;
    for kind in ControllerKind::paper_lineup() {
        let mut controller = kind.instantiate(&params)?;
        let result = sim.run(controller.as_mut())?;
        let m = result.metrics();
        if kind == ControllerKind::OnOff {
            onoff_soh = Some(m.delta_soh_milli_percent);
        }
        println!(
            "{:<28} {:>9.3} {:>12.3} {:>10.2}K {:>9.2}%",
            kind.label(),
            m.avg_hvac_power.value(),
            m.delta_soh_milli_percent,
            m.mean_temp_error,
            m.final_soc,
        );
        if kind == ControllerKind::Mpc {
            if let Some(base) = onoff_soh {
                println!(
                    "\nbattery-lifetime gain vs On/Off: {:.1} % less degradation per commute",
                    100.0 * (base - m.delta_soh_milli_percent) / base
                );
            }
        }
    }
    Ok(())
}
