//! CC-CV charging: closing the discharge/charge cycle.
//!
//! The paper treats "the charging part of the cycle … as constants"
//! (Section II-D). This extension implements the standard
//! constant-current / constant-voltage charge protocol so full cycles can
//! be simulated end-to-end: the per-cycle SoC statistics then cover both
//! halves instead of only the drive.

use ev_units::{Amperes, Percent, Seconds, Volts, Watts};
use serde::{Deserialize, Serialize};

use crate::Battery;

/// A CC-CV charger: constant current until the terminal voltage reaches
/// the CV setpoint, then exponentially tapering current until the cutoff.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Charger {
    /// Constant-current phase current.
    pub cc_current: Amperes,
    /// Constant-voltage setpoint.
    pub cv_voltage: Volts,
    /// Taper cutoff: charging stops when the current falls below this.
    pub cutoff_current: Amperes,
    /// Charger AC→DC efficiency.
    pub efficiency: f64,
}

impl Charger {
    /// A 6.6 kW Level-2 home charger for the Leaf pack (≈18 A at 370 V).
    #[must_use]
    pub fn level2_6kw() -> Self {
        Self {
            cc_current: Amperes::new(18.0),
            cv_voltage: Volts::new(403.0),
            cutoff_current: Amperes::new(2.0),
            efficiency: 0.92,
        }
    }

    /// A 46 kW DC fast charger (≈125 A).
    #[must_use]
    pub fn dc_fast_46kw() -> Self {
        Self {
            cc_current: Amperes::new(125.0),
            cv_voltage: Volts::new(403.0),
            cutoff_current: Amperes::new(10.0),
            efficiency: 0.94,
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if currents/voltage are non-positive, the cutoff exceeds the
    /// CC current, or the efficiency is outside `(0, 1]`.
    #[must_use]
    pub fn validated(self) -> Self {
        assert!(self.cc_current.value() > 0.0, "cc current must be positive");
        assert!(self.cv_voltage.value() > 0.0, "cv voltage must be positive");
        assert!(
            self.cutoff_current.value() > 0.0
                && self.cutoff_current.value() < self.cc_current.value(),
            "cutoff must lie in (0, cc)"
        );
        assert!(
            self.efficiency > 0.0 && self.efficiency <= 1.0,
            "efficiency must lie in (0, 1]"
        );
        self
    }
}

/// Record of one charging session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChargeSession {
    /// Wall-clock charging time.
    pub duration: Seconds,
    /// Energy drawn from the grid (AC side, kWh).
    pub grid_energy_kwh: f64,
    /// SoC reached.
    pub final_soc: Percent,
    /// Samples of the battery SoC during the session (1 per minute).
    pub soc_trace: Vec<f64>,
}

/// Charges the battery to `target_soc` with the given charger, stepping
/// at `dt`. Returns the session record; the battery is left at the final
/// SoC.
///
/// The CC→CV transition uses the pack's OCV plus the IR rise at the
/// charge current; during CV the current tapers toward the cutoff as the
/// OCV approaches the setpoint.
///
/// # Panics
///
/// Panics if `target_soc` is not above the current SoC, outside
/// `[0, 100]`, or `dt <= 0`.
#[must_use]
pub fn charge_to(
    battery: &mut Battery,
    charger: &Charger,
    target_soc: Percent,
    dt: Seconds,
) -> ChargeSession {
    let charger = charger.validated();
    assert!(dt.value() > 0.0, "charge step must be positive");
    assert!(
        (0.0..=100.0).contains(&target_soc.value()),
        "target soc must lie in [0, 100]"
    );
    assert!(
        target_soc.value() > battery.soc().value(),
        "target soc must exceed current soc"
    );

    let mut t = 0.0;
    let mut grid_j = 0.0;
    let mut soc_trace = vec![battery.soc().value()];
    let mut minute_acc = 0.0;
    // Hard cap: a pathological configuration cannot loop forever.
    let max_t = 48.0 * 3600.0;

    while battery.soc().value() < target_soc.value() && t < max_t {
        let voc = battery.open_circuit_voltage().value();
        let r = battery.params().internal_resistance.value();
        // CC phase: terminal voltage at full current.
        let v_cc = voc + charger.cc_current.value() * r;
        let current = if v_cc <= charger.cv_voltage.value() {
            charger.cc_current.value()
        } else {
            // CV phase: current set by the voltage gap.
            let i = if r > 0.0 {
                (charger.cv_voltage.value() - voc) / r
            } else {
                charger.cutoff_current.value()
            };
            if i <= charger.cutoff_current.value() {
                break; // taper complete
            }
            i.min(charger.cc_current.value())
        };
        // Negative power = charging, at the battery terminals.
        let terminal_v = voc + current * r;
        let p_batt = terminal_v * current;
        battery.step(Watts::new(-p_batt), dt);
        grid_j += p_batt / charger.efficiency * dt.value();
        t += dt.value();
        minute_acc += dt.value();
        if minute_acc >= 60.0 {
            soc_trace.push(battery.soc().value());
            minute_acc = 0.0;
        }
    }
    soc_trace.push(battery.soc().value());
    ChargeSession {
        duration: Seconds::new(t),
        grid_energy_kwh: grid_j / 3.6e6,
        final_soc: battery.soc(),
        soc_trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BatteryParams;

    fn depleted_battery() -> Battery {
        let mut b = Battery::new(BatteryParams::leaf_24kwh());
        b.reset_soc(Percent::new(20.0));
        b
    }

    #[test]
    fn level2_overnight_charge_is_plausible() {
        let mut b = depleted_battery();
        let session = charge_to(
            &mut b,
            &Charger::level2_6kw(),
            Percent::new(95.0),
            Seconds::new(10.0),
        );
        // 75 % of 66.7 Ah at 18 A ≈ 2.8 h of CC, plus taper.
        let hours = session.duration.value() / 3600.0;
        assert!(hours > 2.0 && hours < 6.0, "charge took {hours} h");
        assert!(session.final_soc.value() >= 94.9);
        // Grid energy exceeds the stored energy (efficiency + IR).
        assert!(
            session.grid_energy_kwh > 13.0,
            "{}",
            session.grid_energy_kwh
        );
    }

    #[test]
    fn dc_fast_charges_much_faster() {
        let mut slow_b = depleted_battery();
        let slow = charge_to(
            &mut slow_b,
            &Charger::level2_6kw(),
            Percent::new(80.0),
            Seconds::new(10.0),
        );
        let mut fast_b = depleted_battery();
        let fast = charge_to(
            &mut fast_b,
            &Charger::dc_fast_46kw(),
            Percent::new(80.0),
            Seconds::new(10.0),
        );
        assert!(
            fast.duration.value() < slow.duration.value() / 3.0,
            "fast {} vs slow {}",
            fast.duration.value(),
            slow.duration.value()
        );
    }

    #[test]
    fn soc_trace_is_monotone() {
        let mut b = depleted_battery();
        let session = charge_to(
            &mut b,
            &Charger::level2_6kw(),
            Percent::new(60.0),
            Seconds::new(10.0),
        );
        for w in session.soc_trace.windows(2) {
            assert!(w[1] >= w[0] - 1e-12);
        }
    }

    #[test]
    fn cv_taper_engages_near_the_top() {
        // Charging 90 → 99 %: OCV is high, so the session must spend time
        // in CV (average current below the CC setting).
        let mut b = Battery::new(BatteryParams::leaf_24kwh());
        b.reset_soc(Percent::new(90.0));
        let session = charge_to(
            &mut b,
            &Charger::level2_6kw(),
            Percent::new(99.0),
            Seconds::new(5.0),
        );
        // Coulombic efficiency alone caps the SoC-based average at
        // 0.95 · 18 = 17.1 A; the CV taper must push it clearly below.
        let ah_moved = 0.09 * 66.667;
        let avg_current = ah_moved / (session.duration.value() / 3600.0);
        assert!(
            avg_current < 16.8,
            "avg current {avg_current} A should show CV taper"
        );
    }

    #[test]
    #[should_panic(expected = "exceed current soc")]
    fn rejects_backward_target() {
        let mut b = depleted_battery();
        let _ = charge_to(
            &mut b,
            &Charger::level2_6kw(),
            Percent::new(10.0),
            Seconds::new(10.0),
        );
    }

    #[test]
    #[should_panic(expected = "cutoff must lie in (0, cc)")]
    fn rejects_bad_cutoff() {
        let c = Charger {
            cutoff_current: Amperes::new(99.0),
            ..Charger::level2_6kw()
        };
        let _ = c.validated();
    }
}
