//! Fig. 6 — the pre-cool behavior of the battery lifetime-aware MPC.

use ev_drive::DriveCycle;

use crate::{ControllerKind, Simulation};

use super::{experiment_params, profile_at, COMPARISON_AMBIENT_C};

/// The Fig. 6 traces: motor power against cabin temperature and HVAC
/// power under the MPC, plus the correlation statistic that captures the
/// complementing behavior.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6Data {
    /// Sample times (s).
    pub t: Vec<f64>,
    /// Electric-motor power (kW).
    pub motor_kw: Vec<f64>,
    /// Cabin temperature under the MPC (°C).
    pub cabin: Vec<f64>,
    /// Total HVAC power under the MPC (kW).
    pub hvac_kw: Vec<f64>,
    /// Average HVAC power over samples where motor power is in its top
    /// quartile (kW).
    pub hvac_during_peaks_kw: f64,
    /// Average HVAC power over samples where motor power is in its bottom
    /// quartile (kW).
    pub hvac_during_lulls_kw: f64,
}

/// Runs the Fig. 6 trace: the MPC on the first 1000 s of the NEDC at the
/// comparison (hot) ambient — the pre-*cool* scenario of the paper.
///
/// # Panics
///
/// Panics only if built-in simulations fail to construct (they do not).
#[must_use]
pub fn fig6() -> Fig6Data {
    let mut params = experiment_params();
    params.initial_cabin = Some(params.target);
    let profile = profile_at(&DriveCycle::nedc(), COMPARISON_AMBIENT_C);
    let sim = Simulation::new(params.clone(), profile).expect("profile non-empty");
    let mut mpc = ControllerKind::Mpc
        .instantiate(&params)
        .expect("instantiates");
    let result = sim.run(mpc.as_mut()).expect("runs");

    let n = 1000.min(result.series.t.len());
    let t = result.series.t[..n].to_vec();
    let motor_kw: Vec<f64> = result.series.motor_power[..n]
        .iter()
        .map(|p| p / 1000.0)
        .collect();
    let cabin = result.series.cabin[..n].to_vec();
    let hvac_kw: Vec<f64> = result.series.hvac_power[..n]
        .iter()
        .map(|p| p / 1000.0)
        .collect();

    // Quartile thresholds of motor power.
    let mut sorted = motor_kw.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let q1 = sorted[n / 4];
    let q3 = sorted[3 * n / 4];
    let mut peak_acc = (0.0, 0usize);
    let mut lull_acc = (0.0, 0usize);
    for k in 0..n {
        if motor_kw[k] >= q3 {
            peak_acc.0 += hvac_kw[k];
            peak_acc.1 += 1;
        } else if motor_kw[k] <= q1 {
            lull_acc.0 += hvac_kw[k];
            lull_acc.1 += 1;
        }
    }
    Fig6Data {
        t,
        motor_kw,
        cabin,
        hvac_kw,
        hvac_during_peaks_kw: peak_acc.0 / peak_acc.1.max(1) as f64,
        hvac_during_lulls_kw: lull_acc.0 / lull_acc.1.max(1) as f64,
    }
}

/// Formats the Fig. 6 summary and a coarse trace.
#[must_use]
pub fn render_fig6(data: &Fig6Data) -> String {
    let mut out = String::from("Fig. 6 — MPC pre-cooling against the motor-power profile\n");
    out.push_str(&format!(
        "avg HVAC power during motor-power peaks (top quartile):   {:.3} kW\n",
        data.hvac_during_peaks_kw
    ));
    out.push_str(&format!(
        "avg HVAC power during motor-power lulls (bottom quartile): {:.3} kW\n",
        data.hvac_during_lulls_kw
    ));
    out.push_str(&format!(
        "complement ratio (lulls / peaks): {:.2}\n\n",
        data.hvac_during_lulls_kw / data.hvac_during_peaks_kw.max(1e-9)
    ));
    out.push_str("power (kW) vs time (x spans 0–1000 s):\n");
    out.push_str(&super::ascii_chart(
        &[
            ("motor kW", data.motor_kw.as_slice()),
            ("HVAC kW", data.hvac_kw.as_slice()),
        ],
        72,
        14,
    ));
    out.push_str("\ncabin temperature (°C):\n");
    out.push_str(&super::ascii_chart(
        &[("cabin °C", data.cabin.as_slice())],
        72,
        8,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mpc_complements_motor_power() {
        let data = fig6();
        // The defining behavior of the paper's Fig. 6: the HVAC spends
        // *more* during motor lulls (pre-cooling) than during peaks.
        assert!(
            data.hvac_during_lulls_kw > data.hvac_during_peaks_kw,
            "lulls {:.3} kW vs peaks {:.3} kW",
            data.hvac_during_lulls_kw,
            data.hvac_during_peaks_kw
        );
        // Cabin stays inside the comfort zone throughout.
        for &tz in &data.cabin {
            assert!((21.0..=27.0).contains(&tz), "cabin {tz}");
        }
    }

    #[test]
    fn render_mentions_complement_ratio() {
        let data = fig6();
        assert!(render_fig6(&data).contains("complement ratio"));
    }
}
