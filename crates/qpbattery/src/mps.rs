//! MPS/QPS reader and writer for convex QP/LP problems.
//!
//! The reader understands the classic fixed-column layout and the
//! whitespace-delimited free format, including the `RANGES` and `BOUNDS`
//! sections, `QUADOBJ`/`QMATRIX` quadratic terms (the `QUADOBJ`
//! convention: entries are the lower triangle of `Q` in the objective
//! `½ xᵀQx + cᵀx`), an optional `OBJSENSE` section, and an objective-row
//! RHS entry interpreted as the *negated* objective constant (the CPLEX
//! convention). Everything is lowered to the `ev-optim` canonical shape
//!
//! ```text
//! minimize   ½ zᵀHz + gᵀz        (MAXIMIZE inputs are negated)
//! subject to A_eq z = b_eq,  A_in z ≤ b_in
//! ```
//!
//! with ranged rows split into inequality pairs and column bounds lowered
//! to inequality (or, for `FX`, equality) rows.
//!
//! Deliberate non-goals, rejected with [`MpsError::Unsupported`]: integer
//! markers (`INTORG`) and integer bound kinds (`BV`/`UI`/`LI`). One
//! archaic quirk is ignored: a negative `UP` bound does not implicitly
//! drop the default zero lower bound.
//!
//! The writer emits free format and is used by the differential harness
//! to dump self-contained reproducers for solver disagreements.

use std::collections::HashMap;
use std::fmt;

use ev_linalg::{vecops, Matrix, SparseMatrix};
use ev_optim::{OptimError, QpProblem};

/// Which physical layout the parser should assume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MpsFormat {
    /// Whitespace-delimited tokens (modern QPS collections).
    Free,
    /// Classic 1960s fixed columns: fields at character positions
    /// 2–3, 5–12, 15–22, 25–36, 40–47 and 50–61 (1-based, inclusive).
    Fixed,
}

/// Errors produced while parsing or lowering an MPS file.
#[derive(Debug, Clone, PartialEq)]
pub enum MpsError {
    /// A required section (`ROWS`, `COLUMNS`) never appeared.
    MissingSection(&'static str),
    /// A data card referenced a row not declared in `ROWS`.
    UnknownRow {
        /// 1-based source line.
        line: usize,
        /// The undeclared row name.
        name: String,
    },
    /// A data card referenced a column not introduced in `COLUMNS`.
    UnknownColumn {
        /// 1-based source line.
        line: usize,
        /// The unintroduced column name.
        name: String,
    },
    /// An unrecognized section header.
    UnknownSection {
        /// 1-based source line.
        line: usize,
        /// The header token.
        name: String,
    },
    /// A data card that does not fit its section's grammar.
    Malformed {
        /// 1-based source line.
        line: usize,
        /// What was wrong.
        reason: String,
    },
    /// A legal MPS feature this loader deliberately rejects.
    Unsupported {
        /// 1-based source line.
        line: usize,
        /// The rejected feature.
        what: String,
    },
    /// Lowering to [`QpProblem`] failed (e.g. asymmetric `QMATRIX`).
    Build(OptimError),
}

impl fmt::Display for MpsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::MissingSection(s) => write!(f, "mps file is missing the {s} section"),
            Self::UnknownRow { line, name } => {
                write!(f, "line {line}: row '{name}' was not declared in ROWS")
            }
            Self::UnknownColumn { line, name } => {
                write!(
                    f,
                    "line {line}: column '{name}' was not introduced in COLUMNS"
                )
            }
            Self::UnknownSection { line, name } => {
                write!(f, "line {line}: unknown section header '{name}'")
            }
            Self::Malformed { line, reason } => write!(f, "line {line}: {reason}"),
            Self::Unsupported { line, what } => {
                write!(f, "line {line}: unsupported mps feature: {what}")
            }
            Self::Build(e) => write!(f, "lowering mps data to a qp failed: {e}"),
        }
    }
}

impl std::error::Error for MpsError {}

impl From<OptimError> for MpsError {
    fn from(e: OptimError) -> Self {
        Self::Build(e)
    }
}

/// A parsed MPS problem, lowered to the `ev-optim` canonical
/// minimization shape but retaining the raw matrices so callers can
/// round-trip, re-serialize, or inspect without going through
/// [`QpProblem`]'s private fields.
#[derive(Debug, Clone)]
pub struct LoadedQp {
    /// Problem name from the `NAME` card (empty if absent).
    pub name: String,
    /// True when the source file declared `OBJSENSE MAXIMIZE`; the
    /// stored `h`/`g` are already negated so the problem always
    /// *minimizes*.
    pub maximize: bool,
    /// Constant `k` of the original-sense objective `F(x) = ½xᵀQx +
    /// cᵀx + k` (from the objective-row RHS entry, negated).
    pub objective_constant: f64,
    /// Minimization Hessian (`Q`, negated when `maximize`).
    pub h: Matrix,
    /// Minimization gradient (`c`, negated when `maximize`).
    pub g: Vec<f64>,
    /// Equality rows (`0 × n` when none), including lowered `FX` bounds.
    pub a_eq: Matrix,
    /// Equality right-hand sides.
    pub b_eq: Vec<f64>,
    /// Inequality rows `A_in z ≤ b_in` (`0 × n` when none), including
    /// split ranged rows and lowered column bounds.
    pub a_in: Matrix,
    /// Inequality right-hand sides.
    pub b_in: Vec<f64>,
    /// Column names in introduction order.
    pub column_names: Vec<String>,
    /// How many of the constraint rows were synthesized from `BOUNDS`
    /// cards and default bounds (rather than `ROWS` entries).
    pub bound_rows: usize,
}

impl LoadedQp {
    /// Number of decision variables.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.g.len()
    }

    /// Builds the owned [`QpProblem`] for the solver.
    ///
    /// # Errors
    ///
    /// Propagates [`QpProblem`] construction errors (asymmetric
    /// Hessian, non-finite data).
    pub fn problem(&self) -> Result<QpProblem, OptimError> {
        let mut p = QpProblem::new(self.h.clone(), self.g.clone())?;
        if !self.b_eq.is_empty() {
            p = p.with_equalities(self.a_eq.clone(), self.b_eq.clone())?;
        }
        if !self.b_in.is_empty() {
            p = p.with_inequalities(self.a_in.clone(), self.b_in.clone())?;
        }
        Ok(p)
    }

    /// Objective value at `z` in the *original* sense of the file,
    /// including the constant: a `MAXIMIZE` problem reports the value
    /// being maximized, not the negated internal objective.
    #[must_use]
    pub fn objective_value(&self, z: &[f64]) -> f64 {
        let hz = self.h.matvec(z).expect("dimension fixed at load");
        let internal = 0.5 * vecops::dot(z, &hz) + vecops::dot(&self.g, z);
        let sigma = if self.maximize { -1.0 } else { 1.0 };
        sigma * internal + self.objective_constant
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    None,
    ObjSense,
    Rows,
    Columns,
    Rhs,
    Ranges,
    Bounds,
    QuadObj,
    QMatrix,
    Done,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RowKind {
    Objective,
    Less,
    Greater,
    Equal,
}

/// Splits a data card into logical fields.
///
/// Free format tokenizes on whitespace. Fixed format slices the six
/// classic field positions and drops blank fields, which yields the same
/// token shapes the free-format grammar expects (a blank RHS/RANGES set
/// name simply disappears, leaving an even token count).
fn fields(line: &str, format: MpsFormat) -> Vec<String> {
    match format {
        MpsFormat::Free => line.split_whitespace().map(str::to_owned).collect(),
        MpsFormat::Fixed => {
            const SPANS: [(usize, usize); 6] =
                [(1, 3), (4, 12), (14, 22), (24, 36), (39, 47), (49, 61)];
            let chars: Vec<char> = line.chars().collect();
            SPANS
                .iter()
                .filter_map(|&(a, b)| {
                    let a = a.min(chars.len());
                    let b = b.min(chars.len());
                    let field: String = chars[a..b].iter().collect();
                    let t = field.trim();
                    (!t.is_empty()).then(|| t.to_owned())
                })
                .collect()
        }
    }
}

fn parse_num(tok: &str, line: usize) -> Result<f64, MpsError> {
    tok.parse::<f64>()
        .or_else(|_| tok.replace(['D', 'd'], "E").parse::<f64>())
        .map_err(|_| MpsError::Malformed {
            line,
            reason: format!("expected a number, found '{tok}'"),
        })
}

#[derive(Debug, Clone, Copy)]
struct ColBound {
    lo: f64,
    up: f64,
}

/// Parses MPS text in the given physical layout and lowers it to a
/// [`LoadedQp`].
///
/// # Errors
///
/// Returns an [`MpsError`] describing the first offending line, or a
/// [`MpsError::Build`] when the collected data cannot form a valid
/// [`QpProblem`].
pub fn parse_mps(text: &str, format: MpsFormat) -> Result<LoadedQp, MpsError> {
    let mut name = String::new();
    let mut maximize = false;
    let mut section = Section::None;
    let mut saw_rows = false;
    let mut saw_columns = false;

    let mut row_names: Vec<String> = Vec::new();
    let mut row_kinds: Vec<RowKind> = Vec::new();
    let mut row_index: HashMap<String, usize> = HashMap::new();
    let mut objective_row: Option<usize> = None;

    let mut col_names: Vec<String> = Vec::new();
    let mut col_index: HashMap<String, usize> = HashMap::new();

    // Sparse (row, col) -> coefficient triplets, summed on duplicates.
    let mut entries: Vec<(usize, usize, f64)> = Vec::new();
    let mut obj_coeffs: Vec<(usize, f64)> = Vec::new();
    let mut rhs: HashMap<usize, f64> = HashMap::new();
    let mut obj_rhs = 0.0;
    let mut ranges: HashMap<usize, f64> = HashMap::new();
    let mut bounds: HashMap<usize, ColBound> = HashMap::new();
    // (i, j, value, mirror): QUADOBJ entries mirror, QMATRIX entries do not.
    let mut quad: Vec<(usize, usize, f64, bool)> = Vec::new();

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim_end();
        if line.is_empty() || line.starts_with('*') {
            continue;
        }
        if section == Section::Done {
            break;
        }
        let is_header = !line.starts_with(' ') && !line.starts_with('\t');
        if is_header {
            let mut toks = line.split_whitespace();
            let head = toks.next().unwrap_or("");
            section = match head {
                "NAME" => {
                    name = toks.next().unwrap_or("").to_owned();
                    Section::None
                }
                "OBJSENSE" => {
                    // The sense may sit on the header line or on the
                    // following indented card.
                    match toks.next() {
                        Some(s) => {
                            maximize = parse_objsense(s, lineno)?;
                            Section::None
                        }
                        None => Section::ObjSense,
                    }
                }
                "ROWS" => {
                    saw_rows = true;
                    Section::Rows
                }
                "COLUMNS" => {
                    saw_columns = true;
                    Section::Columns
                }
                "RHS" => Section::Rhs,
                "RANGES" => Section::Ranges,
                "BOUNDS" => Section::Bounds,
                "QUADOBJ" => Section::QuadObj,
                "QMATRIX" => Section::QMatrix,
                "ENDATA" => Section::Done,
                other => {
                    return Err(MpsError::UnknownSection {
                        line: lineno,
                        name: other.to_owned(),
                    })
                }
            };
            continue;
        }

        let toks = fields(line, format);
        if toks.is_empty() {
            continue;
        }
        match section {
            Section::None | Section::Done => {
                return Err(MpsError::Malformed {
                    line: lineno,
                    reason: "data card outside any section".to_owned(),
                })
            }
            Section::ObjSense => {
                maximize = parse_objsense(&toks[0], lineno)?;
                section = Section::None;
            }
            Section::Rows => {
                if toks.len() != 2 {
                    return Err(MpsError::Malformed {
                        line: lineno,
                        reason: format!("ROWS card needs 'kind name', found {} fields", toks.len()),
                    });
                }
                let kind = match toks[0].to_ascii_uppercase().as_str() {
                    "N" => RowKind::Objective,
                    "L" => RowKind::Less,
                    "G" => RowKind::Greater,
                    "E" => RowKind::Equal,
                    other => {
                        return Err(MpsError::Malformed {
                            line: lineno,
                            reason: format!("unknown row kind '{other}'"),
                        })
                    }
                };
                let rname = toks[1].clone();
                if row_index.contains_key(&rname) {
                    return Err(MpsError::Malformed {
                        line: lineno,
                        reason: format!("duplicate row '{rname}'"),
                    });
                }
                let ridx = row_names.len();
                row_index.insert(rname.clone(), ridx);
                row_names.push(rname);
                row_kinds.push(kind);
                // The first N row is the objective; later N rows are
                // legal free rows whose coefficients are ignored.
                if kind == RowKind::Objective && objective_row.is_none() {
                    objective_row = Some(ridx);
                }
            }
            Section::Columns => {
                if toks.iter().any(|t| t == "'MARKER'") {
                    if toks.iter().any(|t| t == "'INTORG'") {
                        return Err(MpsError::Unsupported {
                            line: lineno,
                            what: "integer variables (INTORG marker)".to_owned(),
                        });
                    }
                    continue; // stray INTEND is harmless
                }
                if toks.len() < 3 || toks.len().is_multiple_of(2) {
                    return Err(MpsError::Malformed {
                        line: lineno,
                        reason: "COLUMNS card needs 'col row value [row value]'".to_owned(),
                    });
                }
                let cidx = *col_index.entry(toks[0].clone()).or_insert_with(|| {
                    col_names.push(toks[0].clone());
                    col_names.len() - 1
                });
                for pair in toks[1..].chunks(2) {
                    let ridx = *row_index
                        .get(&pair[0])
                        .ok_or_else(|| MpsError::UnknownRow {
                            line: lineno,
                            name: pair[0].clone(),
                        })?;
                    let val = parse_num(&pair[1], lineno)?;
                    if Some(ridx) == objective_row {
                        obj_coeffs.push((cidx, val));
                    } else if row_kinds[ridx] != RowKind::Objective {
                        entries.push((ridx, cidx, val));
                    }
                }
            }
            Section::Rhs | Section::Ranges => {
                // An odd token count means the first token is the
                // (arbitrary) RHS/RANGES set name; drop it.
                let pairs = if toks.len() % 2 == 1 {
                    &toks[1..]
                } else {
                    &toks[..]
                };
                if pairs.is_empty() {
                    return Err(MpsError::Malformed {
                        line: lineno,
                        reason: "RHS/RANGES card carries no (row, value) pairs".to_owned(),
                    });
                }
                for pair in pairs.chunks(2) {
                    let ridx = *row_index
                        .get(&pair[0])
                        .ok_or_else(|| MpsError::UnknownRow {
                            line: lineno,
                            name: pair[0].clone(),
                        })?;
                    let val = parse_num(&pair[1], lineno)?;
                    if section == Section::Rhs {
                        if Some(ridx) == objective_row {
                            obj_rhs = val;
                        } else {
                            *rhs.entry(ridx).or_insert(0.0) = val;
                        }
                    } else {
                        if row_kinds[ridx] == RowKind::Objective {
                            return Err(MpsError::Malformed {
                                line: lineno,
                                reason: "RANGES entry on an objective row".to_owned(),
                            });
                        }
                        ranges.insert(ridx, val);
                    }
                }
            }
            Section::Bounds => {
                parse_bound_card(&toks, lineno, &col_index, &mut bounds)?;
            }
            Section::QuadObj | Section::QMatrix => {
                if toks.len() != 3 {
                    return Err(MpsError::Malformed {
                        line: lineno,
                        reason: "QUADOBJ/QMATRIX card needs 'col col value'".to_owned(),
                    });
                }
                let i = *col_index
                    .get(&toks[0])
                    .ok_or_else(|| MpsError::UnknownColumn {
                        line: lineno,
                        name: toks[0].clone(),
                    })?;
                let j = *col_index
                    .get(&toks[1])
                    .ok_or_else(|| MpsError::UnknownColumn {
                        line: lineno,
                        name: toks[1].clone(),
                    })?;
                let val = parse_num(&toks[2], lineno)?;
                quad.push((i, j, val, section == Section::QuadObj));
            }
        }
    }

    if !saw_rows {
        return Err(MpsError::MissingSection("ROWS"));
    }
    if !saw_columns {
        return Err(MpsError::MissingSection("COLUMNS"));
    }

    let n = col_names.len();
    let sigma = if maximize { -1.0 } else { 1.0 };

    let mut g = vec![0.0; n];
    for (c, v) in obj_coeffs {
        g[c] += sigma * v;
    }
    let mut h = Matrix::zeros(n, n);
    for (i, j, v, mirror) in quad {
        h.set(i, j, sigma * v);
        if mirror && i != j {
            h.set(j, i, sigma * v);
        }
    }

    // Constraint rows, in ROWS declaration order.
    let mut row_coeffs: Vec<Vec<f64>> = vec![Vec::new(); row_names.len()];
    for &(r, c, v) in &entries {
        if row_coeffs[r].is_empty() {
            row_coeffs[r] = vec![0.0; n];
        }
        row_coeffs[r][c] += v;
    }

    let mut eq_rows: Vec<Vec<f64>> = Vec::new();
    let mut b_eq: Vec<f64> = Vec::new();
    let mut in_rows: Vec<Vec<f64>> = Vec::new();
    let mut b_in: Vec<f64> = Vec::new();
    for (r, &kind) in row_kinds.iter().enumerate() {
        if kind == RowKind::Objective {
            continue;
        }
        let coeffs = if row_coeffs[r].is_empty() {
            vec![0.0; n]
        } else {
            std::mem::take(&mut row_coeffs[r])
        };
        let b = rhs.get(&r).copied().unwrap_or(0.0);
        let rng = ranges.get(&r).copied();
        // RANGES turns a one-sided row into the interval [lo, hi].
        let (lo, hi) = match (kind, rng) {
            (RowKind::Less, None) => (f64::NEG_INFINITY, b),
            (RowKind::Less, Some(rv)) => (b - rv.abs(), b),
            (RowKind::Greater, None) => (b, f64::INFINITY),
            (RowKind::Greater, Some(rv)) => (b, b + rv.abs()),
            (RowKind::Equal, None) => (b, b),
            (RowKind::Equal, Some(0.0)) => (b, b),
            (RowKind::Equal, Some(rv)) if rv > 0.0 => (b, b + rv),
            (RowKind::Equal, Some(rv)) => (b + rv, b),
            (RowKind::Objective, _) => unreachable!(),
        };
        if lo == hi {
            eq_rows.push(coeffs);
            b_eq.push(lo);
        } else {
            if hi.is_finite() {
                in_rows.push(coeffs.clone());
                b_in.push(hi);
            }
            if lo.is_finite() {
                in_rows.push(coeffs.iter().map(|v| -v).collect());
                b_in.push(-lo);
            }
        }
    }

    // Column bounds (default 0 ≤ x < ∞) lower to rows of ±eⱼ.
    let structural_rows = eq_rows.len() + in_rows.len();
    for j in 0..n {
        let ColBound { lo, up } = bounds.get(&j).copied().unwrap_or(ColBound {
            lo: 0.0,
            up: f64::INFINITY,
        });
        let mut unit = vec![0.0; n];
        if lo == up {
            unit[j] = 1.0;
            eq_rows.push(unit);
            b_eq.push(lo);
            continue;
        }
        if up.is_finite() {
            let mut row = unit.clone();
            row[j] = 1.0;
            in_rows.push(row);
            b_in.push(up);
        }
        if lo.is_finite() {
            unit[j] = -1.0;
            in_rows.push(unit);
            b_in.push(-lo);
        }
    }
    let bound_rows = eq_rows.len() + in_rows.len() - structural_rows;

    let a_eq = rows_to_matrix(&eq_rows, n);
    let a_in = rows_to_matrix(&in_rows, n);

    let loaded = LoadedQp {
        name,
        maximize,
        objective_constant: -obj_rhs,
        h,
        g,
        a_eq,
        b_eq,
        a_in,
        b_in,
        column_names: col_names,
        bound_rows,
    };
    // Validate eagerly so a malformed file fails at load, not at solve.
    loaded.problem()?;
    Ok(loaded)
}

fn parse_objsense(tok: &str, line: usize) -> Result<bool, MpsError> {
    match tok.to_ascii_uppercase().as_str() {
        "MAX" | "MAXIMIZE" => Ok(true),
        "MIN" | "MINIMIZE" => Ok(false),
        other => Err(MpsError::Malformed {
            line,
            reason: format!("unknown OBJSENSE '{other}'"),
        }),
    }
}

fn parse_bound_card(
    toks: &[String],
    line: usize,
    col_index: &HashMap<String, usize>,
    bounds: &mut HashMap<usize, ColBound>,
) -> Result<(), MpsError> {
    let kind = toks[0].to_ascii_uppercase();
    let takes_value = matches!(kind.as_str(), "UP" | "LO" | "FX");
    if matches!(kind.as_str(), "BV" | "UI" | "LI") {
        return Err(MpsError::Unsupported {
            line,
            what: format!("integer bound kind '{kind}'"),
        });
    }
    if !takes_value && !matches!(kind.as_str(), "FR" | "MI" | "PL") {
        return Err(MpsError::Malformed {
            line,
            reason: format!("unknown bound kind '{kind}'"),
        });
    }
    // Card shapes: value kinds are [kind, set, col, val] or (set name
    // omitted) [kind, col, val]; flag kinds are [kind, set, col] or
    // [kind, col]. A trailing value on a flag kind is ignored.
    let (col_tok, val_tok) = if takes_value {
        match toks.len() {
            4 => (&toks[2], Some(&toks[3])),
            3 => (&toks[1], Some(&toks[2])),
            _ => {
                return Err(MpsError::Malformed {
                    line,
                    reason: format!("bound kind '{kind}' needs a column and a value"),
                })
            }
        }
    } else {
        match toks.len() {
            4 | 3 => (&toks[2], None),
            2 => (&toks[1], None),
            _ => {
                return Err(MpsError::Malformed {
                    line,
                    reason: format!("bound kind '{kind}' needs a column"),
                })
            }
        }
    };
    let j = *col_index
        .get(col_tok.as_str())
        .ok_or_else(|| MpsError::UnknownColumn {
            line,
            name: col_tok.clone(),
        })?;
    let entry = bounds.entry(j).or_insert(ColBound {
        lo: 0.0,
        up: f64::INFINITY,
    });
    match kind.as_str() {
        "UP" => entry.up = parse_num(val_tok.expect("shape checked"), line)?,
        "LO" => entry.lo = parse_num(val_tok.expect("shape checked"), line)?,
        "FX" => {
            let v = parse_num(val_tok.expect("shape checked"), line)?;
            entry.lo = v;
            entry.up = v;
        }
        "FR" => {
            entry.lo = f64::NEG_INFINITY;
            entry.up = f64::INFINITY;
        }
        "MI" => entry.lo = f64::NEG_INFINITY,
        "PL" => entry.up = f64::INFINITY,
        _ => unreachable!(),
    }
    Ok(())
}

fn rows_to_matrix(rows: &[Vec<f64>], n: usize) -> Matrix {
    let mut m = Matrix::zeros(rows.len(), n);
    for (i, row) in rows.iter().enumerate() {
        m.row_mut(i).copy_from_slice(row);
    }
    m
}

/// Serializes a canonical-form QP as free-format MPS text.
///
/// Every variable is emitted with a `FR` bound so the parse→write→parse
/// round trip is exact (no implicit `x ≥ 0` rows appear); equality rows
/// become `E` rows and inequalities `L` rows, in order. The output is
/// self-contained and deterministic — the differential harness uses it
/// to dump reproducers for backend disagreements.
#[must_use]
pub fn write_mps(
    name: &str,
    h: &Matrix,
    g: &[f64],
    a_eq: &SparseMatrix,
    b_eq: &[f64],
    a_in: &SparseMatrix,
    b_in: &[f64],
) -> String {
    let n = g.len();
    let mut out = String::new();
    out.push_str(&format!("NAME {name}\n"));
    out.push_str("ROWS\n N OBJ\n");
    for i in 0..b_eq.len() {
        out.push_str(&format!(" E EQ{i}\n"));
    }
    for i in 0..b_in.len() {
        out.push_str(&format!(" L IN{i}\n"));
    }

    // Group constraint coefficients by column for the COLUMNS section.
    let mut per_col: Vec<Vec<(String, f64)>> = vec![Vec::new(); n];
    for r in 0..a_eq.rows() {
        let (cols, vals) = a_eq.row(r);
        for (&c, &v) in cols.iter().zip(vals) {
            per_col[c].push((format!("EQ{r}"), v));
        }
    }
    for r in 0..a_in.rows() {
        let (cols, vals) = a_in.row(r);
        for (&c, &v) in cols.iter().zip(vals) {
            per_col[c].push((format!("IN{r}"), v));
        }
    }
    out.push_str("COLUMNS\n");
    for j in 0..n {
        // Always emit the objective coefficient (even when zero) so
        // every column is introduced and ordering survives round trips.
        out.push_str(&format!(" X{j} OBJ {:.17e}\n", g[j]));
        for (row, v) in &per_col[j] {
            out.push_str(&format!(" X{j} {row} {v:.17e}\n"));
        }
    }
    out.push_str("RHS\n");
    for (i, b) in b_eq.iter().enumerate() {
        out.push_str(&format!(" RHS EQ{i} {b:.17e}\n"));
    }
    for (i, b) in b_in.iter().enumerate() {
        out.push_str(&format!(" RHS IN{i} {b:.17e}\n"));
    }
    out.push_str("BOUNDS\n");
    for j in 0..n {
        out.push_str(&format!(" FR BND X{j}\n"));
    }
    let mut quad = String::new();
    for i in 0..n {
        for j in 0..=i {
            let v = h.get(i, j);
            if v != 0.0 {
                quad.push_str(&format!(" X{i} X{j} {v:.17e}\n"));
            }
        }
    }
    if !quad.is_empty() {
        out.push_str("QUADOBJ\n");
        out.push_str(&quad);
    }
    out.push_str("ENDATA\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const TINY_FREE: &str = "\
* comment line
NAME TINY
ROWS
 N COST
 L CAP
 G FLOOR
 E PIN
COLUMNS
 X COST 1.0 CAP 1.0
 Y COST 2.0 CAP 1.0
 Y FLOOR 1.0
 X PIN 1.0
RHS
 RHS CAP 4.0 FLOOR 0.5
 RHS PIN 1.5
 RHS COST 3.0
ENDATA
";

    #[test]
    fn parses_free_format_lp() {
        let qp = parse_mps(TINY_FREE, MpsFormat::Free).expect("parse");
        assert_eq!(qp.name, "TINY");
        assert_eq!(qp.num_vars(), 2);
        assert_eq!(qp.column_names, vec!["X".to_owned(), "Y".to_owned()]);
        // PIN is the only equality; CAP (≤), FLOOR (≥, negated) and the
        // two default x ≥ 0 bounds make four inequality rows.
        assert_eq!(qp.b_eq, vec![1.5]);
        assert_eq!(qp.b_in.len(), 4);
        assert_eq!(qp.bound_rows, 2);
        assert!((qp.objective_constant - (-3.0)).abs() < 1e-15);
        // FLOOR: y ≥ 0.5 became −y ≤ −0.5.
        assert_eq!(qp.a_in.row(1), &[0.0, -1.0]);
        assert_eq!(qp.b_in[1], -0.5);
        assert!((qp.objective_value(&[1.5, 0.5]) - (1.5 + 1.0 - 3.0)).abs() < 1e-12);
    }

    #[test]
    fn parses_ranges_and_bounds() {
        let text = "\
NAME RNG
ROWS
 N OBJ
 L BAND
 E SLAB
COLUMNS
 X OBJ 1.0 BAND 1.0
 Y OBJ 1.0 BAND 1.0
 X SLAB 1.0
RHS
 RHS BAND 5.0 SLAB 1.0
RANGES
 RNG BAND 3.0 SLAB 2.0
BOUNDS
 UP BND X 10.0
 MI BND Y
ENDATA
";
        let qp = parse_mps(text, MpsFormat::Free).expect("parse");
        // BAND: 2 ≤ x+y ≤ 5 (two rows); SLAB: 1 ≤ x ≤ 3 (two rows);
        // bounds: x ≤ 10, x ≥ 0 (MI freed y's lower bound, PL-default
        // upper keeps y unbounded above).
        assert!(qp.b_eq.is_empty());
        assert_eq!(qp.b_in, vec![5.0, -2.0, 3.0, -1.0, 10.0, -0.0]);
        assert_eq!(qp.bound_rows, 2);
    }

    #[test]
    fn parses_fixed_format() {
        // Strict fixed columns: field1 at 2-3, field2 at 5-12,
        // field3 at 15-22, field4 at 25-36, field5 at 40-47, field6 at 50-61.
        let text = "\
NAME          FIXEDLP
ROWS
 N  COST
 L  CAP
COLUMNS
    X         COST      1.0            CAP       1.0
    Y         COST      2.0            CAP       1.0
RHS
    RHS       CAP       4.0
BOUNDS
 UP BND       X         3.0
ENDATA
";
        let qp = parse_mps(text, MpsFormat::Fixed).expect("parse");
        assert_eq!(qp.name, "FIXEDLP");
        assert_eq!(qp.num_vars(), 2);
        // CAP, x ≤ 3, x ≥ 0, y ≥ 0.
        assert_eq!(qp.b_in, vec![4.0, 3.0, -0.0, -0.0]);
        assert_eq!(qp.g, vec![1.0, 2.0]);
    }

    #[test]
    fn objsense_maximize_negates() {
        let text = "\
NAME MAXI
OBJSENSE
 MAXIMIZE
ROWS
 N OBJ
 L CAP
COLUMNS
 X OBJ 3.0 CAP 1.0
RHS
 RHS CAP 2.0 OBJ -1.0
QUADOBJ
 X X -2.0
ENDATA
";
        let qp = parse_mps(text, MpsFormat::Free).expect("parse");
        assert!(qp.maximize);
        // Internally minimized: h = 2, g = −3.
        assert_eq!(qp.h.get(0, 0), 2.0);
        assert_eq!(qp.g, vec![-3.0]);
        assert!((qp.objective_constant - 1.0).abs() < 1e-15);
        // Original-sense value at x=1: −1 + 3 + 1 = 3.
        assert!((qp.objective_value(&[1.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_integer_markers_and_unknown_rows() {
        let int_text = "\
NAME INT
ROWS
 N OBJ
COLUMNS
 M1 'MARKER' 'INTORG'
 X OBJ 1.0
ENDATA
";
        assert!(matches!(
            parse_mps(int_text, MpsFormat::Free),
            Err(MpsError::Unsupported { .. })
        ));
        let bad_row = "\
NAME BAD
ROWS
 N OBJ
COLUMNS
 X NOPE 1.0
ENDATA
";
        assert!(matches!(
            parse_mps(bad_row, MpsFormat::Free),
            Err(MpsError::UnknownRow { .. })
        ));
        assert!(matches!(
            parse_mps("NAME EMPTY\nENDATA\n", MpsFormat::Free),
            Err(MpsError::MissingSection("ROWS"))
        ));
    }

    #[test]
    fn write_then_parse_round_trips() {
        let h = Matrix::from_rows(&[&[2.0, -1.0], &[-1.0, 2.0]]).expect("h");
        let g = vec![-1.0, 0.5];
        let a_eq_d = Matrix::from_rows(&[&[1.0, 1.0]]).expect("aeq");
        let a_in_d = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, -1.0]]).expect("ain");
        let a_eq = SparseMatrix::from_dense(&a_eq_d, 0.0);
        let a_in = SparseMatrix::from_dense(&a_in_d, 0.0);
        let text = write_mps("RT", &h, &g, &a_eq, &[1.0], &a_in, &[2.0, 0.25]);
        let qp = parse_mps(&text, MpsFormat::Free).expect("reparse");
        assert_eq!(qp.name, "RT");
        assert_eq!(qp.g, g);
        assert_eq!(qp.b_eq, vec![1.0]);
        assert_eq!(qp.b_in, vec![2.0, 0.25]);
        assert_eq!(qp.bound_rows, 0, "FR bounds must not synthesize rows");
        for i in 0..2 {
            for j in 0..2 {
                assert!((qp.h.get(i, j) - h.get(i, j)).abs() < 1e-15);
                assert!((qp.a_in.get(i, j) - a_in_d.get(i, j)).abs() < 1e-15);
            }
        }
        assert!((qp.a_eq.get(0, 0) - 1.0).abs() < 1e-15);
    }
}
