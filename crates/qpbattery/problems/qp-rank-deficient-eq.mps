* Rank-deficient but consistent equalities (the row is stated twice):
* min (x-1)^2 + (y-2)^2 + (z-3)^2 s.t. x + y + z = 6 (x2), free vars.
* The target point already satisfies the constraint, so f* = 0 and the
* equality multipliers are non-unique.
NAME QPRANKDEF
ROWS
 N OBJ
 E SUM1
 E SUM2
COLUMNS
 X OBJ -2.0 SUM1 1.0
 X SUM2 1.0
 Y OBJ -4.0 SUM1 1.0
 Y SUM2 1.0
 Z OBJ -6.0 SUM1 1.0
 Z SUM2 1.0
RHS
 RHS SUM1 6.0 SUM2 6.0
 RHS OBJ -14.0
BOUNDS
 FR BND X
 FR BND Y
 FR BND Z
QUADOBJ
 X X 2.0
 Y Y 2.0
 Z Z 2.0
ENDATA
