//! `evsim` — command-line driver for the evclimate simulator.
//!
//! ```text
//! evsim cycles
//!     List the built-in drive cycles and their statistics.
//!
//! evsim simulate --cycle <name> --controller <onoff|fuzzy|pid|mpc>
//!                [--ambient <°C>] [--target <°C>] [--precondition]
//!                [--json <path>]
//!     Run one closed-loop simulation and print the metrics; optionally
//!     dump the full result (time series included) as JSON.
//!
//! evsim compare --cycle <name> [--ambient <°C>] [--precondition]
//!     Run the paper's three-controller comparison on one cycle.
//! ```

use std::process::ExitCode;

use evclimate::core::{ControllerKind, EvParams, Simulation, SimulationResult};
use evclimate::drive::{AmbientConditions, DriveCycle, DriveProfile};
use evclimate::units::{Celsius, Seconds};

fn usage() -> &'static str {
    "usage:\n  evsim cycles\n  evsim simulate --cycle <name> --controller <onoff|fuzzy|pid|mpc> \
     [--ambient <°C>] [--target <°C>] [--precondition] [--json <path>]\n  \
     evsim compare --cycle <name> [--ambient <°C>] [--precondition]"
}

/// Looks up a built-in cycle by (case-insensitive) name.
fn cycle_by_name(name: &str) -> Option<DriveCycle> {
    match name.to_ascii_lowercase().as_str() {
        "nedc" => Some(DriveCycle::nedc()),
        "ece15" | "ece-15" => Some(DriveCycle::ece15()),
        "eudc" => Some(DriveCycle::eudc()),
        "ece_eudc" | "ece-eudc" => Some(DriveCycle::ece_eudc()),
        "us06" => Some(DriveCycle::us06()),
        "sc03" => Some(DriveCycle::sc03()),
        "udds" => Some(DriveCycle::udds()),
        "wltc" | "wltc3" | "wltc-3" => Some(DriveCycle::wltc_class3()),
        _ => None,
    }
}

fn controller_by_name(name: &str) -> Option<ControllerKind> {
    match name.to_ascii_lowercase().as_str() {
        "onoff" | "on-off" => Some(ControllerKind::OnOff),
        "fuzzy" => Some(ControllerKind::Fuzzy),
        "pid" => Some(ControllerKind::Pid),
        "mpc" | "lifetime" => Some(ControllerKind::Mpc),
        _ => None,
    }
}

/// Minimal flag parser: `--key value` pairs plus boolean `--flags`.
struct Args {
    pairs: Vec<(String, String)>,
    flags: Vec<String>,
}

impl Args {
    fn parse(argv: &[String]) -> Result<Self, String> {
        let mut pairs = Vec::new();
        let mut flags = Vec::new();
        let mut it = argv.iter().peekable();
        while let Some(a) = it.next() {
            let Some(key) = a.strip_prefix("--") else {
                return Err(format!("unexpected argument '{a}'"));
            };
            match it.peek() {
                Some(v) if !v.starts_with("--") => {
                    pairs.push((key.to_owned(), (*v).clone()));
                    it.next();
                }
                _ => flags.push(key.to_owned()),
            }
        }
        Ok(Self { pairs, flags })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    fn get_f64(&self, key: &str, default: f64) -> Result<f64, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} expects a number, got '{v}'")),
        }
    }
}

fn build_sim(args: &Args) -> Result<(EvParams, Simulation), String> {
    let cycle_name = args.get("cycle").ok_or("missing --cycle")?;
    let cycle = cycle_by_name(cycle_name)
        .ok_or_else(|| format!("unknown cycle '{cycle_name}' (try: evsim cycles)"))?;
    let ambient = args.get_f64("ambient", 35.0)?;
    let target = args.get_f64("target", 24.0)?;
    let mut params = EvParams::nissan_leaf_like();
    params.target = Celsius::new(target);
    if args.flag("precondition") {
        params.initial_cabin = Some(params.target);
    }
    let profile = DriveProfile::from_cycle(
        &cycle,
        AmbientConditions::constant(Celsius::new(ambient)),
        Seconds::new(1.0),
    );
    let sim = Simulation::new(params.clone(), profile).map_err(|e| e.to_string())?;
    Ok((params, sim))
}

fn print_metrics(result: &SimulationResult) {
    let m = result.metrics();
    println!("profile:        {}", result.profile);
    println!("controller:     {}", result.controller);
    println!("distance:       {:.2} km", m.distance.value());
    println!(
        "energy:         {:.3} kWh ({:.2} kWh/100km)",
        m.energy.value(),
        m.kwh_per_100km
    );
    println!("avg HVAC power: {:.3} kW", m.avg_hvac_power.value());
    println!("final SoC:      {:.2} %", m.final_soc);
    println!(
        "SoC avg/dev:    {:.2} / {:.3} %",
        m.soc_stats.avg, m.soc_stats.dev
    );
    println!(
        "ΔSoH:           {:.3} m% per cycle ({:.0} cycles to 80 %)",
        m.delta_soh_milli_percent, m.cycles_to_eol
    );
    println!(
        "comfort:        {} violations, worst {:.2} K, mean |ΔT| {:.2} K",
        m.comfort_violations, m.max_comfort_excursion, m.mean_temp_error
    );
}

fn cmd_cycles() {
    println!(
        "{:<10} {:>9} {:>10} {:>10} {:>10}",
        "cycle", "time s", "dist km", "avg km/h", "max km/h"
    );
    let mut cycles = DriveCycle::paper_evaluation_set();
    cycles.push(DriveCycle::wltc_class3());
    for c in cycles {
        let s = c.stats();
        println!(
            "{:<10} {:>9.0} {:>10.2} {:>10.1} {:>10.1}",
            c.name(),
            s.duration.value(),
            s.distance.value(),
            s.avg_speed.to_kilometers_per_hour().value(),
            s.max_speed.to_kilometers_per_hour().value(),
        );
    }
}

fn cmd_simulate(args: &Args) -> Result<(), String> {
    let controller_name = args.get("controller").ok_or("missing --controller")?;
    let kind = controller_by_name(controller_name)
        .ok_or_else(|| format!("unknown controller '{controller_name}'"))?;
    let (params, sim) = build_sim(args)?;
    let mut controller = kind.instantiate(&params).map_err(|e| e.to_string())?;
    let result = sim.run(controller.as_mut()).map_err(|e| e.to_string())?;
    print_metrics(&result);
    if let Some(path) = args.get("json") {
        let json = serde_json::to_string_pretty(&result).map_err(|e| e.to_string())?;
        std::fs::write(path, json).map_err(|e| e.to_string())?;
        println!("full result written to {path}");
    }
    Ok(())
}

fn cmd_compare(args: &Args) -> Result<(), String> {
    let (params, sim) = build_sim(args)?;
    println!(
        "{:<28} {:>9} {:>12} {:>10} {:>11}",
        "controller", "HVAC kW", "ΔSoH (m%)", "SoC dev", "kWh/100km"
    );
    for kind in ControllerKind::paper_lineup() {
        let mut controller = kind.instantiate(&params).map_err(|e| e.to_string())?;
        let result = sim.run(controller.as_mut()).map_err(|e| e.to_string())?;
        let m = result.metrics();
        println!(
            "{:<28} {:>9.3} {:>12.3} {:>10.3} {:>11.2}",
            kind.label(),
            m.avg_hvac_power.value(),
            m.delta_soh_milli_percent,
            m.soc_stats.dev,
            m.kwh_per_100km,
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = argv.first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let rest = Args::parse(&argv[1..]);
    let outcome = match (command.as_str(), rest) {
        ("cycles", _) => {
            cmd_cycles();
            Ok(())
        }
        ("simulate", Ok(args)) => cmd_simulate(&args),
        ("compare", Ok(args)) => cmd_compare(&args),
        (_, Err(e)) => Err(e),
        (other, _) => Err(format!("unknown command '{other}'\n{}", usage())),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(argv: &[&str]) -> Args {
        let owned: Vec<String> = argv.iter().map(|s| (*s).to_owned()).collect();
        Args::parse(&owned).expect("parses")
    }

    #[test]
    fn parses_pairs_and_flags() {
        let args = parse(&["--cycle", "nedc", "--precondition", "--ambient", "0"]);
        assert_eq!(args.get("cycle"), Some("nedc"));
        assert!(args.flag("precondition"));
        assert_eq!(args.get_f64("ambient", 35.0).unwrap(), 0.0);
        assert_eq!(args.get_f64("target", 24.0).unwrap(), 24.0); // default
    }

    #[test]
    fn rejects_positional_arguments() {
        let owned = vec!["nedc".to_owned()];
        assert!(Args::parse(&owned).is_err());
    }

    #[test]
    fn rejects_non_numeric_values() {
        let args = parse(&["--ambient", "hot"]);
        assert!(args.get_f64("ambient", 35.0).is_err());
    }

    #[test]
    fn cycle_lookup_accepts_aliases() {
        assert!(cycle_by_name("NEDC").is_some());
        assert!(cycle_by_name("ece-eudc").is_some());
        assert!(cycle_by_name("wltc3").is_some());
        assert!(cycle_by_name("imaginary").is_none());
    }

    #[test]
    fn controller_lookup_accepts_aliases() {
        assert!(matches!(
            controller_by_name("MPC"),
            Some(ControllerKind::Mpc)
        ));
        assert!(matches!(
            controller_by_name("on-off"),
            Some(ControllerKind::OnOff)
        ));
        assert!(controller_by_name("thermostat").is_none());
    }
}
