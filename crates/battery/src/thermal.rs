//! Battery pack thermal model: closing the temperature loop the paper
//! scopes out.
//!
//! The paper folds battery temperature into a constant in Eq. 15
//! ("consideration of the battery temperature … is out of the scope").
//! This extension provides the missing piece: a lumped pack thermal model
//! driven by I²R losses and cooled toward ambient, whose temperature can
//! feed [`crate::SohModel::with_battery_temperature`].

use ev_units::{Amperes, Celsius, Seconds};
use serde::{Deserialize, Serialize};

/// Parameters of the lumped pack thermal model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PackThermalParams {
    /// Lumped heat capacity of the pack (J/K). A 294 kg Leaf pack at
    /// ≈1000 J/(kg·K) averaged over cells + housing.
    pub heat_capacity: f64,
    /// Conductance from pack to ambient/coolant (W/K).
    pub cooling_conductance: f64,
    /// Total pack internal resistance (Ω) generating I²R heat.
    pub internal_resistance: f64,
}

impl Default for PackThermalParams {
    fn default() -> Self {
        Self {
            heat_capacity: 2.9e5,
            cooling_conductance: 35.0,
            internal_resistance: 0.10,
        }
    }
}

/// The lumped pack thermal state.
///
/// # Examples
///
/// ```
/// use ev_battery::{PackThermal, PackThermalParams};
/// use ev_units::{Amperes, Celsius, Seconds};
///
/// let mut pack = PackThermal::new(PackThermalParams::default(), Celsius::new(25.0));
/// for _ in 0..600 {
///     pack.step(Amperes::new(150.0), Celsius::new(25.0), Seconds::new(1.0));
/// }
/// assert!(pack.temperature().value() > 25.0); // I²R heating
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PackThermal {
    params: PackThermalParams,
    temp: f64,
}

impl PackThermal {
    /// Creates the model at an initial temperature.
    #[must_use]
    pub fn new(params: PackThermalParams, initial: Celsius) -> Self {
        Self {
            params,
            temp: initial.value(),
        }
    }

    /// Borrows the model parameters.
    #[must_use]
    pub fn params(&self) -> &PackThermalParams {
        &self.params
    }

    /// Present pack temperature.
    #[must_use]
    pub fn temperature(&self) -> Celsius {
        Celsius::new(self.temp)
    }

    /// Instantaneous I²R heat generation at a pack current (W).
    #[must_use]
    pub fn heat_generation(&self, current: Amperes) -> f64 {
        current.value() * current.value() * self.params.internal_resistance
    }

    /// Advances the pack temperature one step under a pack current and
    /// ambient temperature:
    /// `C·dT/dt = I²R − G·(T − T_amb)` (explicit Euler; the pack time
    /// constant is hours, so any control-rate step is far below it).
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0`.
    pub fn step(&mut self, current: Amperes, ambient: Celsius, dt: Seconds) -> Celsius {
        assert!(dt.value() > 0.0, "thermal step must be positive");
        let q = self.heat_generation(current);
        let loss = self.params.cooling_conductance * (self.temp - ambient.value());
        self.temp += (q - loss) / self.params.heat_capacity * dt.value();
        self.temperature()
    }

    /// Steady-state temperature rise above ambient at a constant current.
    #[must_use]
    pub fn steady_rise(&self, current: Amperes) -> f64 {
        self.heat_generation(current) / self.params.cooling_conductance
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pack() -> PackThermal {
        PackThermal::new(PackThermalParams::default(), Celsius::new(25.0))
    }

    #[test]
    fn idle_pack_tracks_ambient() {
        let mut p = PackThermal::new(PackThermalParams::default(), Celsius::new(40.0));
        for _ in 0..100_000 {
            p.step(Amperes::ZERO, Celsius::new(20.0), Seconds::new(1.0));
        }
        assert!((p.temperature().value() - 20.0).abs() < 0.1);
    }

    #[test]
    fn heat_generation_is_quadratic() {
        let p = pack();
        let q1 = p.heat_generation(Amperes::new(50.0));
        let q2 = p.heat_generation(Amperes::new(100.0));
        assert!((q2 / q1 - 4.0).abs() < 1e-12);
        // Sign-independent: charging heats too.
        assert_eq!(p.heat_generation(Amperes::new(-100.0)), q2);
    }

    #[test]
    fn converges_to_steady_rise() {
        let mut p = pack();
        let i = Amperes::new(80.0);
        let expected = 25.0 + p.steady_rise(i);
        for _ in 0..200_000 {
            p.step(i, Celsius::new(25.0), Seconds::new(1.0));
        }
        assert!(
            (p.temperature().value() - expected).abs() < 0.05,
            "T {} vs {expected}",
            p.temperature()
        );
    }

    #[test]
    fn highway_currents_warm_the_pack_noticeably() {
        // 80 A sustained (≈29 kW at 360 V): the rise should be material
        // for aging (several kelvins) but not absurd.
        let p = pack();
        let rise = p.steady_rise(Amperes::new(80.0));
        assert!(rise > 5.0 && rise < 40.0, "rise {rise}");
    }

    #[test]
    fn feeds_the_soh_temperature_extension() {
        use crate::{SocStats, SohModel};
        let mut p = pack();
        for _ in 0..3600 {
            p.step(Amperes::new(100.0), Celsius::new(30.0), Seconds::new(1.0));
        }
        let hot_model =
            SohModel::default().with_battery_temperature(p.temperature().value(), 25.0, 10.0);
        let stats = SocStats {
            avg: 85.0,
            dev: 3.0,
        };
        assert!(hot_model.degradation(stats) > SohModel::default().degradation(stats));
    }
}
