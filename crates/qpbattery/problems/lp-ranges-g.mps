* LP with a ranged G row: min x + 2y s.t. 2 <= x + y <= 5,
* 0 <= x, y <= 4. Optimum (2, 0), f* = 2.
NAME LPRANGESG
ROWS
 N OBJ
 G SUM
COLUMNS
 X OBJ 1.0 SUM 1.0
 Y OBJ 2.0 SUM 1.0
RHS
 RHS SUM 2.0
RANGES
 RNG SUM 3.0
BOUNDS
 UP BND X 4.0
 UP BND Y 4.0
ENDATA
