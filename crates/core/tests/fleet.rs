//! Fleet-engine integration tests: warm-start isolation across
//! sessions, reset semantics, and scheduling-independent determinism.
//!
//! These cover the property the unit tests can't: a vehicle's
//! trajectory through the *fleet engine* — shard threads, interleaved
//! command queues, slot reuse — must be **bitwise identical** to the
//! same vehicle simulated alone. Any warm-start or plant state leaking
//! between sessions would break that equality in the low mantissa bits
//! long before it showed up in a tolerance check.

use std::sync::Arc;

use ev_core::fleet::{run_loadgen, FleetConfig, FleetEngine, LoadgenConfig, VehicleSession};
use ev_core::{ControllerKind, EvParams, Simulation};
use ev_drive::{AmbientConditions, DriveCycle, DriveProfile};
use ev_units::{Celsius, Seconds};

fn sim(cycle: DriveCycle, ambient_c: f64) -> Arc<Simulation> {
    let params = EvParams::nissan_leaf_like();
    let profile = DriveProfile::from_cycle(
        &cycle,
        AmbientConditions::constant(Celsius::new(ambient_c)),
        Seconds::new(1.0),
    );
    Arc::new(Simulation::new(params, profile).expect("valid profile"))
}

/// Runs one MPC vehicle alone for `steps` steps and returns its final
/// (soc, cabin) state as raw bits.
fn solo_trajectory(sim: &Arc<Simulation>, steps: usize) -> (u64, u64) {
    let params = EvParams::nissan_leaf_like();
    let controller = ControllerKind::Mpc
        .instantiate(&params)
        .expect("mpc instantiates");
    let mut session = VehicleSession::new(1, Arc::clone(sim), controller);
    assert_eq!(session.step_many(steps), steps);
    let summary = session.summary();
    (
        summary.soc_percent.to_bits(),
        summary.cabin_temp_c.to_bits(),
    )
}

#[test]
fn warm_starts_never_leak_between_interleaved_sessions() {
    let steps = 40;
    let hot = sim(DriveCycle::nedc(), 35.0);
    let cold = sim(DriveCycle::us06(), -10.0);
    let baseline = solo_trajectory(&hot, steps);

    // Same vehicle, but now a second MPC session with a *wildly
    // different* trajectory (cold US06 vs hot NEDC) is interleaved on
    // the same single shard, chunk by chunk. If the engine shared any
    // warm-start plan, QP multiplier cache or plant state between the
    // slots, vehicle 1's floats would diverge from the solo run.
    let mut config = FleetConfig::new(EvParams::nissan_leaf_like());
    config.shards = 1;
    let fleet = FleetEngine::new(config);
    fleet
        .open(1, Arc::clone(&hot), ControllerKind::Mpc)
        .unwrap();
    fleet
        .open(2, Arc::clone(&cold), ControllerKind::Mpc)
        .unwrap();
    for _ in 0..(steps / 5) {
        fleet.step(1, 5).unwrap();
        fleet.step(2, 5).unwrap();
    }
    let s1 = fleet.close(1).unwrap();
    let s2 = fleet.close(2).unwrap();
    let _ = fleet.shutdown();

    assert_eq!(s1.steps, steps as u64);
    assert_eq!(s2.steps, steps as u64);
    assert_eq!(
        (s1.soc_percent.to_bits(), s1.cabin_temp_c.to_bits()),
        baseline,
        "interleaving another session changed vehicle 1's trajectory"
    );
    // Sanity: the two trajectories genuinely differ, so the equality
    // above is not vacuous.
    assert_ne!(s2.soc_percent.to_bits(), s1.soc_percent.to_bits());
}

#[test]
fn session_reset_reproduces_a_fresh_controller_bitwise() {
    let steps = 30;
    let profile = sim(DriveCycle::ece_eudc(), 0.0);
    let baseline = solo_trajectory(&profile, steps);

    // Drive the slot hard first (warming the MPC on a different
    // trajectory), then reset it onto the baseline profile. The reset
    // must invalidate every piece of warmed state: the re-run has to
    // match a from-scratch session exactly.
    let other = sim(DriveCycle::udds(), 35.0);
    let mut config = FleetConfig::new(EvParams::nissan_leaf_like());
    config.shards = 1;
    let fleet = FleetEngine::new(config);
    fleet
        .open(7, Arc::clone(&other), ControllerKind::Mpc)
        .unwrap();
    fleet.step(7, 25).unwrap();
    fleet.reset(7, Arc::clone(&profile)).unwrap();
    fleet.step(7, steps).unwrap();
    let summary = fleet.close(7).unwrap();
    let _ = fleet.shutdown();

    assert_eq!(summary.drives, 2);
    assert_eq!(summary.steps, 25 + steps as u64);
    assert_eq!(
        (
            summary.soc_percent.to_bits(),
            summary.cabin_temp_c.to_bits()
        ),
        baseline,
        "reset_session left warmed controller state behind"
    );
}

#[test]
fn loadgen_digest_is_invariant_under_shard_count() {
    // The fleet digest folds per-session digests with an
    // order-independent sum, and every session's trajectory is
    // scheduling-independent — so the deterministic report fields must
    // not change when the same fleet is served by 1 shard or 3.
    let base = LoadgenConfig {
        sessions: 12,
        steps_per_session: 25,
        seed: 1234,
        shards: 1,
        ..LoadgenConfig::default()
    };
    let one = run_loadgen(&base);
    let three = run_loadgen(&LoadgenConfig { shards: 3, ..base });

    assert_eq!(one.total_steps, three.total_steps);
    assert_eq!(one.finished_drives, three.finished_drives);
    assert_eq!(one.warm_start_hits, three.warm_start_hits);
    assert_eq!(one.warm_start_misses, three.warm_start_misses);
    assert_eq!(
        one.fleet_digest, three.fleet_digest,
        "fleet digest depends on shard scheduling"
    );
    assert_eq!(three.shards, 3);
}
