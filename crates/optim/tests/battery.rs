//! The solver proving ground: runs the vendored MPS battery through the
//! interior-point QP solver and checks every answer against committed
//! reference objectives and the exported KKT verifier, then pins the
//! error-routing and warm-start-invalidation contracts with
//! generator-driven property tests.
//!
//! These problems come from the literature (Hock–Schittkowski, CUTE,
//! Maros–Mészáros-style cases) and from hand-written degenerate
//! constructions — none of them were designed around this solver, which
//! is the point.

use ev_optim::{
    verify_kkt, NoopSqpObserver, OptimError, QpSolver, QpSolverOptions, QpWarmStart, SqpSolver,
};
use ev_qpbattery::battery::{self, Expected};
use ev_testkit::qpgen::{generate_family, QpAsNlp, QpFamily};
use proptest::prelude::*;

/// Tight solve so the 1e-6 acceptance bounds have headroom; the battery
/// checks optimality via [`verify_kkt`], not via solver-internal status.
fn battery_solver() -> QpSolver {
    QpSolver::new(QpSolverOptions {
        tolerance: 1e-10,
        max_iterations: 200,
        ..QpSolverOptions::default()
    })
}

/// Tentpole acceptance: every vendored problem loads through the MPS
/// reader, solvable cases reach KKT residual ≤ 1e-6 with objectives
/// matching the committed references to ≤ 1e-6 relative, and
/// infeasible/unbounded cases come back as routable errors.
#[test]
fn vendored_battery_matches_references() {
    let solver = battery_solver();
    assert!(battery::CASES.len() >= 20);
    for case in battery::CASES {
        let qp = case
            .load()
            .unwrap_or_else(|e| panic!("{}: load failed: {e}", case.name));
        let problem = qp
            .problem()
            .unwrap_or_else(|e| panic!("{}: build failed: {e}", case.name));
        match case.expected {
            Expected::Objective(reference) => {
                let sol = solver
                    .solve(&problem)
                    .unwrap_or_else(|e| panic!("{}: solve failed: {e}", case.name));
                // Optimality certified independently of solver internals:
                // for a convex problem a KKT point is a global optimum.
                verify_kkt(&problem.as_view(), &sol.z, &sol.y_eq, &sol.lambda_in, 1e-6)
                    .unwrap_or_else(|e| panic!("{}: KKT certification failed: {e}", case.name));
                let objective = qp.objective_value(&sol.z);
                let rel = (objective - reference).abs() / reference.abs().max(1.0);
                assert!(
                    rel <= 1e-6,
                    "{}: objective {objective:.12e} vs reference {reference:.12e} (rel {rel:.3e})",
                    case.name
                );
            }
            Expected::Infeasible => match solver.solve(&problem) {
                Err(
                    OptimError::QpInfeasible { .. }
                    | OptimError::QpMaxIterations { .. }
                    | OptimError::Linalg(_),
                ) => {}
                Err(e) => panic!("{}: unexpected error kind: {e}", case.name),
                Ok(sol) => panic!(
                    "{}: accepted an infeasible problem (objective {:.6e})",
                    case.name, sol.objective
                ),
            },
            Expected::Unbounded => match solver.solve(&problem) {
                Err(OptimError::QpUnbounded { .. } | OptimError::QpMaxIterations { .. }) => {}
                Err(e) => panic!("{}: unexpected error kind: {e}", case.name),
                Ok(sol) => panic!(
                    "{}: accepted an unbounded problem (objective {:.6e})",
                    case.name, sol.objective
                ),
            },
        }
    }
}

/// The verifier is a real check, not a rubber stamp: feasible but
/// suboptimal points (and fabricated multipliers) must be rejected.
#[test]
fn verifier_rejects_suboptimal_battery_points() {
    let case = battery::find("hs35").expect("hs35 is vendored");
    let qp = case.load().expect("load");
    let problem = qp.problem().expect("build");
    // x = 0 is feasible for HS35 (0 + 0 + 0 <= 3, x >= 0) but not
    // optimal; with zero multipliers stationarity fails by ‖g‖.
    let z = vec![0.0; qp.num_vars()];
    let lambda = vec![0.0; qp.b_in.len()];
    let err = verify_kkt(&problem.as_view(), &z, &[], &lambda, 1e-6)
        .expect_err("suboptimal point must not certify");
    assert!(matches!(err, OptimError::KktViolation { .. }), "got {err}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Satellite: pathological instances — infeasible, unbounded, and
    /// zero-variable — always produce routable `Err` values. No panic,
    /// no hang: the solve returns, and when it reports iterations it
    /// respected `max_iterations`.
    #[test]
    fn pathological_instances_error_routably(seed in 0u64..10_000) {
        let options = QpSolverOptions { max_iterations: 80, ..QpSolverOptions::default() };
        let solver = QpSolver::new(options);
        for family in [QpFamily::Infeasible, QpFamily::Unbounded, QpFamily::ZeroVariable] {
            let qp = generate_family(seed, family);
            let problem = qp.to_problem().expect("construction is always well-formed");
            match solver.solve(&problem) {
                Err(e) => {
                    // Routable: a value the SQP recovery arms can match on,
                    // with a human-readable rendering.
                    prop_assert!(!e.to_string().is_empty());
                }
                Ok(sol) => {
                    prop_assert!(
                        false,
                        "{:?} instance (seed {seed}) accepted as solved: objective {:.6e} in {} iterations",
                        family, sol.objective, sol.iterations
                    );
                }
            }
        }
    }

    /// Satellite: a dimension-mismatched IPM warm-start cache must be
    /// ignored, not partially applied. Solving problem B with a cache
    /// warmed on differently-sized problem A must reproduce the cold
    /// solve bit for bit.
    #[test]
    fn stale_warm_start_is_invalidated_across_dimension_change(seed in 0u64..2_000) {
        let small = generate_family(seed, QpFamily::Banded);
        let big = generate_family(seed.wrapping_add(1), QpFamily::Banded);
        prop_assume!(small.num_vars() != big.num_vars()
            || small.b_in.len() != big.b_in.len());

        let solver = QpSolver::default();
        let small_view = small.view().expect("view");
        let big_view = big.view().expect("view");

        let mut warm = QpWarmStart::new();
        let z0_small = vec![0.0; small.num_vars()];
        solver
            .solve_view_warm(&small_view, &z0_small, &mut warm)
            .expect("small instance solves");

        // `warm` now holds multipliers sized for `small`; reusing it on
        // `big` must be identical to a cold solve.
        let z0_big = vec![0.0; big.num_vars()];
        let stale = solver
            .solve_view_warm(&big_view, &z0_big, &mut warm)
            .expect("big instance solves with stale cache");
        let cold = solver.solve_view(&big_view).expect("big instance solves cold");
        prop_assert_eq!(&stale.z, &cold.z, "stale cache leaked into the solve");
        prop_assert_eq!(stale.iterations, cold.iterations);
    }
}

/// Satellite (deterministic end-to-end variant): `SqpSolver::solve_cached`
/// across two different-dimension NLP instances with one shared cache
/// matches the cold result exactly.
#[test]
fn sqp_solve_cached_survives_dimension_change() {
    let small = generate_family(3, QpFamily::Banded);
    let big = generate_family(5, QpFamily::Banded);
    assert_ne!(
        (small.num_vars(), small.b_in.len()),
        (big.num_vars(), big.b_in.len()),
        "pick seeds that generate different shapes"
    );
    let sqp = SqpSolver::default();
    let z0_small = vec![0.0; small.num_vars()];
    let z0_big = vec![0.0; big.num_vars()];
    let nlp_small = QpAsNlp::new(small);
    let nlp_big = QpAsNlp::new(big);

    let mut warm = QpWarmStart::new();
    sqp.solve_cached(&nlp_small, &z0_small, &mut warm, NoopSqpObserver)
        .expect("small NLP solves");
    let stale = sqp
        .solve_cached(&nlp_big, &z0_big, &mut warm, NoopSqpObserver)
        .expect("big NLP solves with a cache warmed on the small one");

    let mut fresh = QpWarmStart::new();
    let cold = sqp
        .solve_cached(&nlp_big, &z0_big, &mut fresh, NoopSqpObserver)
        .expect("big NLP solves cold");
    assert_eq!(
        stale.z, cold.z,
        "stale multipliers leaked across dimensions"
    );
    assert_eq!(stale.iterations, cold.iterations);
    assert!(stale.is_converged());
}
