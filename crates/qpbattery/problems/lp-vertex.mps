* Pure LP in classic fixed-column format (fields at columns 2-3, 5-12,
* 15-22, 25-36, 40-47, 50-61): min -x - 2y s.t. x + y <= 4,
* 0 <= x <= 3, 0 <= y <= 2. Optimum at the vertex (2, 2), f* = -6.
NAME          LPVERTEX
ROWS
 N  COST
 L  CAP
COLUMNS
    X         COST      -1.0           CAP       1.0
    Y         COST      -2.0           CAP       1.0
RHS
    RHS       CAP       4.0
BOUNDS
 UP BND       X         3.0
 UP BND       Y         2.0
ENDATA
