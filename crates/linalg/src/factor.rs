//! A pluggable factorization backend for square symmetric systems.
//!
//! The interior-point QP solver refactors the same-shaped KKT matrix every
//! iteration and only ever needs `factor` + `solve`. [`Factorization`]
//! captures that contract so LU (indefinite-safe oracle), dense Cholesky
//! (SPD fast path) and banded LDLᵀ (horizon-structured fast path) are
//! interchangeable behind one interface, each reusing its workspace across
//! refactors.

use crate::{BandedCholesky, BandedMatrix, Cholesky, LinalgError, Lu, Matrix};

/// A reusable factor-then-solve backend over a square matrix.
///
/// Implementations keep their factor storage between calls so repeated
/// [`Factorization::refactor`] / [`Factorization::solve_in_place`] cycles
/// on same-shaped matrices stay cheap. After a `refactor` error the
/// backend is empty again and solving returns an error until the next
/// successful refactor.
///
/// # Examples
///
/// ```
/// use ev_linalg::{CholeskyFactor, Factorization, Matrix};
///
/// let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]).unwrap();
/// let mut backend = CholeskyFactor::new();
/// backend.refactor(&a).unwrap();
/// let mut x = [1.0, 2.0];
/// backend.solve_in_place(&mut x).unwrap();
/// assert!((4.0 * x[0] + x[1] - 1.0).abs() < 1e-12);
/// ```
pub trait Factorization {
    /// Factors `a`, replacing any previous factorization.
    ///
    /// # Errors
    ///
    /// Backend-specific: singularity, indefiniteness, or shape errors.
    fn refactor(&mut self, a: &Matrix) -> Result<(), LinalgError>;

    /// Solves `A·x = b` in place using the latest factorization.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] before the first successful
    /// [`Factorization::refactor`], or a dimension error on a
    /// wrong-length right-hand side.
    fn solve_in_place(&mut self, b: &mut [f64]) -> Result<(), LinalgError>;

    /// Dimension of the factored matrix (zero when empty).
    fn dim(&self) -> usize;
}

/// [`Lu`]-backed [`Factorization`]: partial pivoting, handles any
/// nonsingular symmetric system. The slowest backend but the correctness
/// oracle for the others.
#[derive(Debug, Clone, Default)]
pub struct LuFactor {
    inner: Option<Lu>,
}

impl LuFactor {
    /// Creates an empty backend.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Factorization for LuFactor {
    fn refactor(&mut self, a: &Matrix) -> Result<(), LinalgError> {
        self.inner = None;
        self.inner = Some(Lu::factor(a)?);
        Ok(())
    }

    fn solve_in_place(&mut self, b: &mut [f64]) -> Result<(), LinalgError> {
        let lu = self.inner.as_ref().ok_or(LinalgError::Empty)?;
        let x = lu.solve(b)?;
        b.copy_from_slice(&x);
        Ok(())
    }

    fn dim(&self) -> usize {
        self.inner.as_ref().map_or(0, Lu::dim)
    }
}

/// Dense [`Cholesky`]-backed [`Factorization`] for symmetric
/// positive-definite systems; roughly twice as fast as LU and reuses its
/// factor storage across refactors.
#[derive(Debug, Clone, Default)]
pub struct CholeskyFactor {
    inner: Option<Cholesky>,
}

impl CholeskyFactor {
    /// Creates an empty backend.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Factorization for CholeskyFactor {
    fn refactor(&mut self, a: &Matrix) -> Result<(), LinalgError> {
        match self.inner.as_mut() {
            Some(c) if c.dim() == a.rows() && a.is_square() => {
                if let Err(e) = c.refactor(a) {
                    self.inner = None;
                    return Err(e);
                }
                Ok(())
            }
            _ => {
                self.inner = None;
                self.inner = Some(Cholesky::factor(a)?);
                Ok(())
            }
        }
    }

    fn solve_in_place(&mut self, b: &mut [f64]) -> Result<(), LinalgError> {
        self.inner
            .as_ref()
            .ok_or(LinalgError::Empty)?
            .solve_in_place(b)
    }

    fn dim(&self) -> usize {
        self.inner.as_ref().map_or(0, Cholesky::dim)
    }
}

/// [`BandedCholesky`]-backed [`Factorization`] for symmetric banded
/// (possibly quasidefinite) systems.
///
/// Through this dense-matrix interface the bandwidth is detected by
/// scanning for the farthest off-diagonal nonzero, which costs `O(n²)` —
/// fine for tests and oracles. Hot paths should assemble a
/// [`BandedMatrix`] directly and call [`BandedCholesky::factor`].
#[derive(Debug, Clone, Default)]
pub struct BandedFactor {
    band: BandedMatrix,
    factor: BandedCholesky,
    factored: bool,
}

impl BandedFactor {
    /// Creates an empty backend.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Factorization for BandedFactor {
    fn refactor(&mut self, a: &Matrix) -> Result<(), LinalgError> {
        self.factored = false;
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut w = 0usize;
        for i in 0..n {
            for j in 0..i {
                if a.get(i, j) != 0.0 || a.get(j, i) != 0.0 {
                    w = w.max(i - j);
                    break; // Row-leading nonzero bounds this row's reach.
                }
            }
        }
        self.band.reset(n, w);
        for j in 0..n {
            for i in j..(j + w + 1).min(n) {
                self.band.set(i, j, a.get(i, j));
            }
        }
        self.factor.factor(&self.band)?;
        self.factored = true;
        Ok(())
    }

    fn solve_in_place(&mut self, b: &mut [f64]) -> Result<(), LinalgError> {
        if !self.factored {
            return Err(LinalgError::Empty);
        }
        self.factor.solve_in_place(b)
    }

    fn dim(&self) -> usize {
        if self.factored {
            self.factor.dim()
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd_banded(n: usize) -> Matrix {
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            a.set(i, i, 4.0 + (i % 2) as f64);
            if i + 1 < n {
                a.set(i + 1, i, -1.0);
                a.set(i, i + 1, -1.0);
            }
        }
        a
    }

    fn backends() -> Vec<Box<dyn Factorization>> {
        vec![
            Box::new(LuFactor::new()),
            Box::new(CholeskyFactor::new()),
            Box::new(BandedFactor::new()),
        ]
    }

    #[test]
    fn all_backends_agree() {
        let a = spd_banded(9);
        let b: Vec<f64> = (0..9).map(|i| (i as f64 - 4.0) * 0.3).collect();
        let reference = Lu::factor(&a).unwrap().solve(&b).unwrap();
        for mut backend in backends() {
            backend.refactor(&a).unwrap();
            assert_eq!(backend.dim(), 9);
            let mut x = b.clone();
            backend.solve_in_place(&mut x).unwrap();
            for (xi, ri) in x.iter().zip(&reference) {
                assert!((xi - ri).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn solve_before_refactor_errors() {
        for mut backend in backends() {
            let mut b = [1.0];
            assert_eq!(backend.dim(), 0);
            assert_eq!(
                backend.solve_in_place(&mut b).unwrap_err(),
                LinalgError::Empty
            );
        }
    }

    #[test]
    fn failed_refactor_empties_backend() {
        let a = spd_banded(4);
        let singular = Matrix::zeros(4, 4);
        for mut backend in backends() {
            backend.refactor(&a).unwrap();
            assert!(backend.refactor(&singular).is_err());
            let mut b = [0.0; 4];
            assert_eq!(
                backend.solve_in_place(&mut b).unwrap_err(),
                LinalgError::Empty
            );
        }
    }

    #[test]
    fn refactor_same_shape_reuses_state() {
        let mut backend = CholeskyFactor::new();
        backend.refactor(&spd_banded(6)).unwrap();
        let mut a2 = spd_banded(6);
        a2.set(0, 0, 9.0);
        backend.refactor(&a2).unwrap();
        let mut x = vec![1.0; 6];
        backend.solve_in_place(&mut x).unwrap();
        let r = a2.matvec(&x).unwrap();
        for ri in &r {
            assert!((ri - 1.0).abs() < 1e-12);
        }
    }
}
