#![allow(clippy::all, clippy::pedantic, clippy::nursery)]
//! Offline stand-in for the `rand` crate.
//!
//! The build container has no crates.io access, so this workspace vendors
//! the tiny slice of the `rand 0.8` API it actually uses: a seedable
//! deterministic generator ([`rngs::StdRng`]) and uniform range sampling
//! through [`Rng::gen_range`]. The generator is splitmix64 — statistically
//! solid for simulation/synthesis workloads, not cryptographic.

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// Core random-number source: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be constructed from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from the given seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from the given range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Samples a value of a [`Standard`]-distributed type (`f64` in
    /// `[0, 1)`, full-width integers).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types with a default "standard" distribution for [`Rng::gen`].
pub trait Standard: Sized {
    /// Samples one value from the standard distribution.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Maps 64 random bits to `[0, 1)` with 53-bit precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that knows how to sample itself uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seeded generator (splitmix64 core).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // Avoid the all-zero fixed point by pre-mixing the seed.
            Self {
                state: state.wrapping_add(0x9E37_79B9_7F4A_7C15),
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Convenience: a generator seeded from the system clock.
pub fn thread_rng() -> rngs::StdRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0x5EED);
    rngs::StdRng::seed_from_u64(nanos)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::StdRng;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn float_range_sampling_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(5.0..20.0);
            assert!((5.0..20.0).contains(&v));
        }
    }

    #[test]
    fn int_range_sampling_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.gen_range(-3i64..17);
            assert!((-3..17).contains(&v));
            let u = rng.gen_range(0usize..=4);
            assert!(u <= 4);
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(lo < 0.05 && hi > 0.95);
    }
}
