//! Ablation benches for the design choices DESIGN.md calls out: MPC
//! horizon length, the battery-lifetime weight `w2`, and the re-solve
//! interval. Each bench also exposes the *quality* impact through the
//! returned metrics (printed once per bench at start-up), so a run shows
//! both the cost and the benefit of each knob.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ev_control::{MpcController, MpcWeights};
use ev_core::{EvParams, Simulation};
use ev_drive::{AmbientConditions, DriveCycle, DriveProfile};
use ev_units::{Celsius, Seconds};

/// Builds the ECE_EUDC hot-day simulation used by every ablation.
fn sim() -> (EvParams, Simulation) {
    let mut params = EvParams::nissan_leaf_like();
    params.initial_cabin = Some(params.target);
    let profile = DriveProfile::from_cycle(
        &DriveCycle::ece_eudc(),
        AmbientConditions::constant(Celsius::new(35.0)),
        Seconds::new(1.0),
    );
    let s = Simulation::new(params.clone(), profile).expect("profile non-empty");
    (params, s)
}

/// Runs the MPC with the given knobs; returns (ΔSoH m%, avg HVAC kW).
fn run_mpc(
    params: &EvParams,
    sim: &Simulation,
    horizon: usize,
    weights: MpcWeights,
    recompute: usize,
) -> (f64, f64) {
    let mut mpc = MpcController::builder(params.hvac_model(), params.limits())
        .target(params.target)
        .horizon(horizon)
        .recompute_every(recompute)
        .weights(weights)
        .battery(params.mpc_battery_model())
        .accessory_power(params.accessory_power)
        .build()
        .expect("valid config");
    let r = sim.run(&mut mpc).expect("runs");
    (
        r.metrics().delta_soh_milli_percent,
        r.metrics().avg_hvac_power.value(),
    )
}

/// Horizon sweep: the paper notes "the larger the control window, the
/// more variables there are to optimize and much more flexibility".
fn bench_horizon(c: &mut Criterion) {
    let (params, s) = sim();
    let mut group = c.benchmark_group("ablation_horizon");
    group.sample_size(10);
    for horizon in [4usize, 8, 12] {
        let (dsoh, kw) = run_mpc(&params, &s, horizon, MpcWeights::default(), 4);
        println!("ablation horizon={horizon}: ΔSoH {dsoh:.3} m%, HVAC {kw:.3} kW");
        group.bench_function(format!("h{horizon}"), |b| {
            b.iter(|| black_box(run_mpc(&params, &s, horizon, MpcWeights::default(), 4)))
        });
    }
    group.finish();
}

/// Lifetime-weight ablation: w2 = 0 turns the controller into a plain
/// comfort/power MPC — the paper's central claim is that the SoC term is
/// what buys battery lifetime.
fn bench_weights(c: &mut Criterion) {
    let (params, s) = sim();
    let mut group = c.benchmark_group("ablation_w2");
    group.sample_size(10);
    for (label, w2) in [("w2_off", 0.0), ("w2_default", MpcWeights::default().w2)] {
        let weights = MpcWeights {
            w2,
            ..MpcWeights::default()
        };
        let (dsoh, kw) = run_mpc(&params, &s, 8, weights, 4);
        println!("ablation {label}: ΔSoH {dsoh:.3} m%, HVAC {kw:.3} kW");
        group.bench_function(label, |b| {
            b.iter(|| black_box(run_mpc(&params, &s, 8, weights, 4)))
        });
    }
    group.finish();
}

/// Re-solve interval: how much compute the move-blocking saves.
fn bench_recompute(c: &mut Criterion) {
    let (params, s) = sim();
    let mut group = c.benchmark_group("ablation_recompute");
    group.sample_size(10);
    for interval in [1usize, 4, 8] {
        group.bench_function(format!("every_{interval}s"), |b| {
            b.iter(|| black_box(run_mpc(&params, &s, 8, MpcWeights::default(), interval)))
        });
    }
    group.finish();
}

criterion_group!(ablation, bench_horizon, bench_weights, bench_recompute);
criterion_main!(ablation);
