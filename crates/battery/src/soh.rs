//! State-of-health degradation model (the paper's Eq. 15–17).

use serde::{Deserialize, Serialize};

use crate::SocStats;

/// Parameters of the SoH capacity-fade model
/// `ΔSoH = (a1·e^(α·SoC_dev) + a2)·(a3·e^(β·SoC_avg))`.
///
/// The paper inherits the functional form from Millner's Li-ion
/// degradation model (its ref \[6\]) without publishing values; the defaults
/// here are calibrated so that a typical EV duty cycle (SoC_avg ≈ 85 %,
/// SoC_dev ≈ 3 %) fades the pack to 80 % capacity after 1000–2000 cycles —
/// the service life reported for the Leaf-class packs the paper targets.
/// The controller comparison is *relative*, so it is insensitive to the
/// absolute scale (see `DESIGN.md`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SohParams {
    /// Weight of the SoC-deviation exponential, `a1` (% per cycle).
    pub a1: f64,
    /// Additive floor of the deviation term, `a2` (% per cycle).
    pub a2: f64,
    /// Scale of the SoC-average exponential, `a3` (dimensionless).
    pub a3: f64,
    /// Exponent on SoC deviation (per % SoC), `α`.
    pub alpha: f64,
    /// Exponent on SoC average (per % SoC), `β`.
    pub beta: f64,
    /// Battery-temperature multiplier (the paper holds temperature
    /// constant; kept as an explicit factor, default 1).
    pub temperature_factor: f64,
}

impl Default for SohParams {
    fn default() -> Self {
        Self {
            a1: 2.0e-3,
            a2: 1.0e-3,
            a3: 0.028,
            alpha: 0.5,
            beta: 0.05,
            temperature_factor: 1.0,
        }
    }
}

/// Why a [`SohParams`] value was rejected.
///
/// Marked non-exhaustive (matching [`ev_core::SimError`]'s precedent):
/// future validation rules must not break downstream matches.
///
/// [`ev_core::SimError`]: https://docs.rs/ev-core
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum SohParamsError {
    /// One of the scale weights `a1`, `a2`, `a3` is negative or NaN.
    NegativeScale {
        /// Which field failed.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// One of the exponents `alpha`, `beta` is negative or NaN.
    NegativeExponent {
        /// Which field failed.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The battery-temperature multiplier is negative or NaN.
    NegativeTemperatureFactor {
        /// The offending value.
        value: f64,
    },
}

impl core::fmt::Display for SohParamsError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::NegativeScale { field, value } => {
                write!(f, "soh scale {field} must be non-negative, got {value}")
            }
            Self::NegativeExponent { field, value } => {
                write!(f, "soh exponent {field} must be non-negative, got {value}")
            }
            Self::NegativeTemperatureFactor { value } => {
                write!(f, "temperature factor must be non-negative, got {value}")
            }
        }
    }
}

impl std::error::Error for SohParamsError {}

impl SohParams {
    /// Validates positivity of the parameters, reporting which field is
    /// out of range instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns a [`SohParamsError`] naming the first field that is
    /// negative or NaN.
    pub fn try_validated(self) -> Result<Self, SohParamsError> {
        for (field, value) in [("a1", self.a1), ("a2", self.a2), ("a3", self.a3)] {
            if value.is_nan() || value < 0.0 {
                return Err(SohParamsError::NegativeScale { field, value });
            }
        }
        for (field, value) in [("alpha", self.alpha), ("beta", self.beta)] {
            if value.is_nan() || value < 0.0 {
                return Err(SohParamsError::NegativeExponent { field, value });
            }
        }
        if self.temperature_factor.is_nan() || self.temperature_factor < 0.0 {
            return Err(SohParamsError::NegativeTemperatureFactor {
                value: self.temperature_factor,
            });
        }
        Ok(self)
    }

    /// Validates positivity of the parameters.
    ///
    /// # Panics
    ///
    /// Panics if any of `a1, a2, a3, temperature_factor` is negative or
    /// the exponents are negative; prefer
    /// [`try_validated`](Self::try_validated) where the error can be
    /// routed.
    #[must_use]
    pub fn validated(self) -> Self {
        match self.try_validated() {
            Ok(p) => p,
            Err(e) => panic!("{e}"),
        }
    }
}

/// The SoH degradation model: per-cycle capacity fade from the SoC
/// pattern of a discharge cycle.
///
/// # Examples
///
/// ```
/// use ev_battery::{SocStats, SohModel};
///
/// let model = SohModel::default();
/// // A flat, low-average SoC cycle ages the pack less than a swingy,
/// // high-average one.
/// let gentle = SocStats { avg: 70.0, dev: 2.0 };
/// let harsh = SocStats { avg: 90.0, dev: 10.0 };
/// assert!(model.degradation(gentle) < model.degradation(harsh));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SohModel {
    params: SohParams,
}

impl SohModel {
    /// End-of-life threshold: the pack is "useless" at 80 % of nominal
    /// capacity, i.e. after 20 % total degradation (paper's Section I).
    pub const EOL_FADE_PERCENT: f64 = 20.0;

    /// Creates the model from parameters, panicking on invalid ones.
    ///
    /// # Panics
    ///
    /// Panics if the parameters fail [`SohParams::try_validated`]; prefer
    /// [`try_new`](Self::try_new) where the error can be routed.
    #[must_use]
    pub fn new(params: SohParams) -> Self {
        Self {
            params: params.validated(),
        }
    }

    /// Creates the model from parameters.
    ///
    /// # Errors
    ///
    /// Returns a [`SohParamsError`] naming the first out-of-range field.
    pub fn try_new(params: SohParams) -> Result<Self, SohParamsError> {
        Ok(Self {
            params: params.try_validated()?,
        })
    }

    /// Borrows the parameters.
    #[must_use]
    pub fn params(&self) -> &SohParams {
        &self.params
    }

    /// Per-cycle SoH degradation `ΔSoH` in percent of nominal capacity
    /// (Eq. 15), from the cycle's SoC statistics.
    #[must_use]
    pub fn degradation(&self, stats: SocStats) -> f64 {
        let p = &self.params;
        (p.a1 * (p.alpha * stats.dev).exp() + p.a2)
            * (p.a3 * (p.beta * stats.avg).exp())
            * p.temperature_factor
    }

    /// Number of identical discharge/charge cycles until the pack reaches
    /// end of life (80 % capacity), i.e. the battery lifetime in cycles.
    ///
    /// Returns `f64::INFINITY` for zero degradation.
    #[must_use]
    pub fn cycles_to_eol(&self, stats: SocStats) -> f64 {
        let d = self.degradation(stats);
        if d <= 0.0 {
            f64::INFINITY
        } else {
            Self::EOL_FADE_PERCENT / d
        }
    }

    /// Returns a copy with an Arrhenius-style battery-temperature
    /// multiplier applied: fade doubles every `doubling_kelvin` above the
    /// reference temperature. This is the extension the paper explicitly
    /// scopes out ("consideration of the battery temperature … is out of
    /// the scope") but reserves a constant for in Eq. 15.
    #[must_use]
    pub fn with_battery_temperature(
        &self,
        cell_temp_c: f64,
        reference_c: f64,
        doubling_kelvin: f64,
    ) -> Self {
        let factor = 2.0f64.powf((cell_temp_c - reference_c) / doubling_kelvin);
        Self {
            params: SohParams {
                temperature_factor: self.params.temperature_factor * factor,
                ..self.params
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> SohModel {
        SohModel::default()
    }

    #[test]
    fn typical_cycle_life_is_plausible() {
        // SoC_avg 85 %, SoC_dev 3 %: the Leaf-class pack should survive
        // roughly 1000–2500 cycles.
        let stats = SocStats {
            avg: 85.0,
            dev: 3.0,
        };
        let cycles = model().cycles_to_eol(stats);
        assert!(cycles > 800.0 && cycles < 3000.0, "cycles {cycles}");
    }

    #[test]
    fn degradation_increases_with_deviation() {
        let lo = model().degradation(SocStats {
            avg: 80.0,
            dev: 1.0,
        });
        let hi = model().degradation(SocStats {
            avg: 80.0,
            dev: 8.0,
        });
        assert!(hi > lo);
        // Exponential: ratio matches e^(α·Δdev) on the a1 term.
        let p = SohParams::default();
        let expected =
            (p.a1 * (p.alpha * 8.0f64).exp() + p.a2) / (p.a1 * (p.alpha * 1.0f64).exp() + p.a2);
        assert!((hi / lo - expected).abs() < 1e-12);
    }

    #[test]
    fn degradation_increases_with_average() {
        let lo = model().degradation(SocStats {
            avg: 60.0,
            dev: 3.0,
        });
        let hi = model().degradation(SocStats {
            avg: 95.0,
            dev: 3.0,
        });
        assert!(hi > lo);
        let ratio = hi / lo;
        let expected = (SohParams::default().beta * 35.0).exp();
        assert!((ratio - expected).abs() < 1e-9);
    }

    #[test]
    fn zero_params_mean_immortal_battery() {
        let m = SohModel::new(SohParams {
            a1: 0.0,
            a2: 0.0,
            a3: 0.0,
            alpha: 0.0,
            beta: 0.0,
            temperature_factor: 1.0,
        });
        assert_eq!(
            m.degradation(SocStats {
                avg: 90.0,
                dev: 5.0
            }),
            0.0
        );
        assert_eq!(
            m.cycles_to_eol(SocStats {
                avg: 90.0,
                dev: 5.0
            }),
            f64::INFINITY
        );
    }

    #[test]
    fn temperature_extension_doubles_per_step() {
        let base = model();
        let hot = base.with_battery_temperature(35.0, 25.0, 10.0);
        let stats = SocStats {
            avg: 85.0,
            dev: 3.0,
        };
        assert!((hot.degradation(stats) / base.degradation(stats) - 2.0).abs() < 1e-12);
        let cold = base.with_battery_temperature(15.0, 25.0, 10.0);
        assert!((cold.degradation(stats) / base.degradation(stats) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_params() {
        let _ = SohModel::new(SohParams {
            a1: -1.0,
            ..SohParams::default()
        });
    }

    #[test]
    fn try_validated_names_the_offending_field() {
        assert_eq!(
            SohParams {
                a3: -0.5,
                ..SohParams::default()
            }
            .try_validated()
            .unwrap_err(),
            SohParamsError::NegativeScale {
                field: "a3",
                value: -0.5
            }
        );
        assert_eq!(
            SohParams {
                beta: -1.0,
                ..SohParams::default()
            }
            .try_validated()
            .unwrap_err(),
            SohParamsError::NegativeExponent {
                field: "beta",
                value: -1.0
            }
        );
        assert!(matches!(
            SohParams {
                temperature_factor: f64::NAN,
                ..SohParams::default()
            }
            .try_validated(),
            Err(SohParamsError::NegativeTemperatureFactor { .. })
        ));
        let err = SohModel::try_new(SohParams {
            alpha: -2.0,
            ..SohParams::default()
        })
        .unwrap_err();
        assert!(err.to_string().contains("alpha"), "{err}");
        assert!(SohModel::try_new(SohParams::default()).is_ok());
    }
}
