#![allow(clippy::all, clippy::pedantic, clippy::nursery)]
//! Offline stand-in for `criterion`.
//!
//! The build container has no crates.io access, so this workspace
//! vendors a minimal wall-clock benchmark harness with criterion's
//! macro/entry-point surface: `criterion_group!`/`criterion_main!`,
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! `sample_size`, and [`Bencher::iter`].
//!
//! Statistics are intentionally simple: each benchmark takes
//! `sample_size` timed samples (batching very fast bodies so a sample
//! is long enough to time reliably) and reports min / median / max
//! per-iteration wall time to stdout.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall time for one timed sample of a fast benchmark body.
const SAMPLE_TARGET: Duration = Duration::from_millis(5);

/// The harness entry point, one per `criterion_group!`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Runs one benchmark and prints its timing line.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), self.sample_size, f);
        self
    }

    /// Starts a named group of benchmarks (shared sample size).
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size,
        }
    }
}

/// A named group of benchmarks with its own sample size.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; times the body via [`Bencher::iter`].
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Times `body`, batching fast bodies so each sample is long enough
    /// to measure reliably.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        // Warm up and estimate the cost of one iteration.
        let start = Instant::now();
        black_box(body());
        let estimate = start.elapsed();
        let batch = if estimate.is_zero() {
            1024
        } else {
            (SAMPLE_TARGET.as_nanos() / estimate.as_nanos().max(1)).clamp(1, 1 << 20) as usize
        };

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(body());
            }
            let elapsed = start.elapsed().as_secs_f64();
            self.samples.push(elapsed / batch as f64);
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{id:<40} (no samples)");
        return;
    }
    let mut sorted = bencher.samples.clone();
    sorted.sort_by(f64::total_cmp);
    let median = sorted[sorted.len() / 2];
    let (lo, hi) = (sorted[0], sorted[sorted.len() - 1]);
    println!(
        "{id:<40} time: [{} {} {}]",
        format_time(lo),
        format_time(median),
        format_time(hi),
    );
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

/// Declares a benchmark group function running each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut runs = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        assert!(runs > 0);
    }

    #[test]
    fn groups_apply_sample_size() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_function("inner", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }

    #[test]
    fn time_formatting_covers_scales() {
        assert!(format_time(5e-9).ends_with("ns"));
        assert!(format_time(5e-6).ends_with("µs"));
        assert!(format_time(5e-3).ends_with("ms"));
        assert!(format_time(5.0).ends_with("s"));
    }
}
