//! The multi-variable drive profile consumed by the simulator and the MPC.

use ev_units::{Celsius, Kilometers, MetersPerSecond, Seconds, Watts};
use serde::{Deserialize, Serialize};

use crate::DriveCycle;

/// One sample of the environment at a simulation instant: the paper's
/// multi-variable drive-profile input (its Section II-A).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriveSample {
    /// Time since the start of the profile.
    pub t: Seconds,
    /// Vehicle speed.
    pub v: MetersPerSecond,
    /// Vehicle acceleration (m/s²).
    pub a: f64,
    /// Road slope as a percentage grade (100 % = 45°).
    pub slope_percent: f64,
    /// Outside (ambient) air temperature.
    pub ambient: Celsius,
    /// Solar thermal load into the cabin.
    pub solar: Watts,
}

/// Ambient conditions along the route: outside temperature and solar load.
///
/// The paper treats the solar load as a constant offset during a drive and
/// takes the outside temperature from climate databases; both constant and
/// sampled forms are supported.
///
/// # Examples
///
/// ```
/// use ev_drive::AmbientConditions;
/// use ev_units::{Celsius, Seconds, Watts};
///
/// let hot = AmbientConditions::constant(Celsius::new(43.0));
/// assert_eq!(hot.temperature_at(Seconds::new(100.0)).value(), 43.0);
/// let with_sun = hot.with_solar(Watts::new(700.0));
/// assert_eq!(with_sun.solar_at(Seconds::new(0.0)).value(), 700.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AmbientConditions {
    /// `(seconds, °C)` breakpoints; a single entry means constant.
    temperature: Vec<(f64, f64)>,
    /// Constant solar load (W), the paper's "thermal load offset".
    solar: f64,
}

impl AmbientConditions {
    /// Default solar load used when none is specified: a partly sunny day.
    pub const DEFAULT_SOLAR_W: f64 = 350.0;

    /// Constant outside temperature with the default solar load.
    #[must_use]
    pub fn constant(temperature: Celsius) -> Self {
        Self {
            temperature: vec![(0.0, temperature.value())],
            solar: Self::DEFAULT_SOLAR_W,
        }
    }

    /// Piecewise-linear outside temperature from `(seconds, °C)`
    /// breakpoints.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty or times are not strictly increasing.
    #[must_use]
    pub fn varying(points: &[(f64, f64)]) -> Self {
        assert!(!points.is_empty(), "ambient needs at least one breakpoint");
        let mut prev = f64::NEG_INFINITY;
        for &(t, _) in points {
            assert!(t > prev, "ambient breakpoint times must strictly increase");
            prev = t;
        }
        Self {
            temperature: points.to_vec(),
            solar: Self::DEFAULT_SOLAR_W,
        }
    }

    /// Sets the constant solar load.
    #[must_use]
    pub fn with_solar(mut self, solar: Watts) -> Self {
        self.solar = solar.value();
        self
    }

    /// Outside temperature at time `t` (linearly interpolated, clamped).
    #[must_use]
    pub fn temperature_at(&self, t: Seconds) -> Celsius {
        let t = t.value();
        let pts = &self.temperature;
        if t <= pts[0].0 || pts.len() == 1 {
            return Celsius::new(pts[0].1);
        }
        let last = pts[pts.len() - 1];
        if t >= last.0 {
            return Celsius::new(last.1);
        }
        let idx = pts.partition_point(|&(pt, _)| pt <= t);
        let (t0, v0) = pts[idx - 1];
        let (t1, v1) = pts[idx];
        Celsius::new(v0 + (t - t0) / (t1 - t0) * (v1 - v0))
    }

    /// Solar load at time `t` (constant in this model).
    #[must_use]
    pub fn solar_at(&self, _t: Seconds) -> Watts {
        Watts::new(self.solar)
    }
}

/// Road slope along the route as a function of *distance* travelled.
///
/// The paper derives slopes from elevation databases along the route; here
/// a slope profile maps distance to percentage grade.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlopeProfile {
    /// `(meters from start, % grade)` breakpoints.
    points: Vec<(f64, f64)>,
}

impl SlopeProfile {
    /// A perfectly flat route.
    #[must_use]
    pub fn flat() -> Self {
        Self {
            points: vec![(0.0, 0.0)],
        }
    }

    /// Piecewise-linear grade from `(meters, %)` breakpoints.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty or distances are not strictly
    /// increasing.
    #[must_use]
    pub fn from_breakpoints(points: &[(f64, f64)]) -> Self {
        assert!(!points.is_empty(), "slope needs at least one breakpoint");
        let mut prev = f64::NEG_INFINITY;
        for &(d, _) in points {
            assert!(
                d > prev,
                "slope breakpoint distances must strictly increase"
            );
            prev = d;
        }
        Self {
            points: points.to_vec(),
        }
    }

    /// Grade (percent) at the given distance from the start.
    #[must_use]
    pub fn grade_at(&self, distance_m: f64) -> f64 {
        let pts = &self.points;
        if distance_m <= pts[0].0 || pts.len() == 1 {
            return pts[0].1;
        }
        let last = pts[pts.len() - 1];
        if distance_m >= last.0 {
            return last.1;
        }
        let idx = pts.partition_point(|&(d, _)| d <= distance_m);
        let (d0, g0) = pts[idx - 1];
        let (d1, g1) = pts[idx];
        g0 + (distance_m - d0) / (d1 - d0) * (g1 - g0)
    }
}

impl Default for SlopeProfile {
    fn default() -> Self {
        Self::flat()
    }
}

/// A sampled multi-variable drive profile: the discrete-time input to the
/// power-train model, the HVAC thermal loads and the MPC preview.
///
/// # Examples
///
/// ```
/// use ev_drive::{AmbientConditions, DriveCycle, DriveProfile};
/// use ev_units::{Celsius, Seconds};
///
/// let profile = DriveProfile::from_cycle(
///     &DriveCycle::ece15(),
///     AmbientConditions::constant(Celsius::new(21.0)),
///     Seconds::new(1.0),
/// );
/// assert_eq!(profile.len(), 196); // 195 s at 1 Hz, inclusive endpoints
/// assert_eq!(profile.sample(0).v.value(), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriveProfile {
    name: String,
    dt: Seconds,
    samples: Vec<DriveSample>,
}

impl DriveProfile {
    /// Samples a drive cycle on a flat route at period `dt`.
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0`.
    #[must_use]
    pub fn from_cycle(cycle: &DriveCycle, ambient: AmbientConditions, dt: Seconds) -> Self {
        Self::from_cycle_with_slope(cycle, ambient, &SlopeProfile::flat(), dt)
    }

    /// Samples a drive cycle with a distance-indexed slope profile.
    ///
    /// Acceleration is the forward difference of the sampled speeds; slope
    /// is looked up at the distance accumulated so far.
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0`.
    #[must_use]
    pub fn from_cycle_with_slope(
        cycle: &DriveCycle,
        ambient: AmbientConditions,
        slope: &SlopeProfile,
        dt: Seconds,
    ) -> Self {
        assert!(dt.value() > 0.0, "profile sample period must be positive");
        let duration = cycle.duration().value();
        let n = (duration / dt.value()).round() as usize;
        let mut samples = Vec::with_capacity(n + 1);
        let mut distance = 0.0;
        let mut prev_v = cycle.speed_at(Seconds::new(0.0)).value();
        for k in 0..=n {
            let t = (k as f64) * dt.value();
            let v = cycle.speed_at(Seconds::new(t)).value();
            let v_next = cycle.speed_at(Seconds::new(t + dt.value())).value();
            let a = if k < n {
                (v_next - v) / dt.value()
            } else {
                0.0
            };
            distance += 0.5 * (prev_v + v) * if k == 0 { 0.0 } else { dt.value() };
            prev_v = v;
            samples.push(DriveSample {
                t: Seconds::new(t),
                v: MetersPerSecond::new(v),
                a,
                slope_percent: slope.grade_at(distance),
                ambient: ambient.temperature_at(Seconds::new(t)),
                solar: ambient.solar_at(Seconds::new(t)),
            });
        }
        Self {
            name: cycle.name().to_owned(),
            dt,
            samples,
        }
    }

    /// Builds a profile directly from samples (used by the synthetic route
    /// generator).
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or `dt <= 0`.
    #[must_use]
    pub fn from_samples(name: &str, dt: Seconds, samples: Vec<DriveSample>) -> Self {
        assert!(!samples.is_empty(), "profile needs at least one sample");
        assert!(dt.value() > 0.0, "profile sample period must be positive");
        Self {
            name: name.to_owned(),
            dt,
            samples,
        }
    }

    /// Profile name (usually the cycle name).
    #[inline]
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sample period.
    #[inline]
    #[must_use]
    pub fn dt(&self) -> Seconds {
        self.dt
    }

    /// Number of samples.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` if the profile has no samples (never true for
    /// constructed profiles).
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The sample at index `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k >= len()`.
    #[inline]
    #[must_use]
    pub fn sample(&self, k: usize) -> &DriveSample {
        &self.samples[k]
    }

    /// Borrows all samples.
    #[inline]
    #[must_use]
    pub fn samples(&self) -> &[DriveSample] {
        &self.samples
    }

    /// Iterates over samples.
    pub fn iter(&self) -> impl Iterator<Item = &DriveSample> + '_ {
        self.samples.iter()
    }

    /// Total profile duration.
    #[must_use]
    pub fn duration(&self) -> Seconds {
        Seconds::new(self.dt.value() * (self.len().saturating_sub(1)) as f64)
    }

    /// Distance covered (trapezoidal integral of sampled speed).
    #[must_use]
    pub fn distance(&self) -> Kilometers {
        let mut meters = 0.0;
        for w in self.samples.windows(2) {
            meters += 0.5 * (w[0].v.value() + w[1].v.value()) * self.dt.value();
        }
        Kilometers::new(meters / 1000.0)
    }

    /// Average ambient temperature over the profile.
    #[must_use]
    pub fn avg_ambient(&self) -> Celsius {
        let sum: f64 = self.samples.iter().map(|s| s.ambient.value()).sum();
        Celsius::new(sum / self.len() as f64)
    }

    /// A sub-profile window `[start, start + count)`, clamped to the
    /// profile end. Used by the MPC to extract its preview horizon.
    ///
    /// The last sample is repeated when the window extends past the end of
    /// the profile (constant-extension preview).
    #[must_use]
    pub fn window(&self, start: usize, count: usize) -> Vec<DriveSample> {
        let mut out = Vec::with_capacity(count);
        for k in start..start + count {
            let idx = k.min(self.len() - 1);
            out.push(self.samples[idx]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> DriveProfile {
        DriveProfile::from_cycle(
            &DriveCycle::ece15(),
            AmbientConditions::constant(Celsius::new(30.0)),
            Seconds::new(1.0),
        )
    }

    #[test]
    fn sampling_matches_cycle() {
        let p = profile();
        let c = DriveCycle::ece15();
        assert_eq!(p.len(), 196);
        for k in [0usize, 12, 60, 150, 195] {
            let t = Seconds::new(k as f64);
            assert!(
                (p.sample(k).v.value() - c.speed_at(t).value()).abs() < 1e-12,
                "sample {k}"
            );
        }
    }

    #[test]
    fn distance_close_to_cycle_distance() {
        let p = profile();
        let c = DriveCycle::ece15();
        let rel = (p.distance().value() - c.distance().value()).abs() / c.distance().value();
        assert!(rel < 0.01, "sampled distance {rel}");
    }

    #[test]
    fn acceleration_is_forward_difference() {
        let p = profile();
        // During the first ramp (11–15 s): 15 km/h over 4 s ≈ 1.0417 m/s².
        let a = p.sample(12).a;
        assert!((a - 15.0 / 3.6 / 4.0).abs() < 1e-9, "a = {a}");
        // Final sample has zero acceleration by construction.
        assert_eq!(p.sample(p.len() - 1).a, 0.0);
    }

    #[test]
    fn ambient_constant_and_varying() {
        let c = AmbientConditions::constant(Celsius::new(-5.0));
        assert_eq!(c.temperature_at(Seconds::new(500.0)).value(), -5.0);
        let v = AmbientConditions::varying(&[(0.0, 20.0), (100.0, 30.0)]);
        assert_eq!(v.temperature_at(Seconds::new(50.0)).value(), 25.0);
        assert_eq!(v.temperature_at(Seconds::new(200.0)).value(), 30.0);
        assert_eq!(v.temperature_at(Seconds::new(-10.0)).value(), 20.0);
    }

    #[test]
    fn solar_default_and_custom() {
        let a = AmbientConditions::constant(Celsius::new(20.0));
        assert_eq!(a.solar_at(Seconds::ZERO).value(), 350.0);
        let b = a.with_solar(Watts::new(750.0));
        assert_eq!(b.solar_at(Seconds::new(10.0)).value(), 750.0);
    }

    #[test]
    fn slope_profile_interpolation() {
        let s = SlopeProfile::from_breakpoints(&[(0.0, 0.0), (1000.0, 6.0), (2000.0, 0.0)]);
        assert_eq!(s.grade_at(500.0), 3.0);
        assert_eq!(s.grade_at(1500.0), 3.0);
        assert_eq!(s.grade_at(5000.0), 0.0);
        assert_eq!(SlopeProfile::flat().grade_at(123.0), 0.0);
    }

    #[test]
    fn profile_with_slope_assigns_grades_by_distance() {
        // Steep hill only after 500 m.
        let slope = SlopeProfile::from_breakpoints(&[(0.0, 0.0), (499.0, 0.0), (500.0, 8.0)]);
        let p = DriveProfile::from_cycle_with_slope(
            &DriveCycle::ece15(),
            AmbientConditions::constant(Celsius::new(20.0)),
            &slope,
            Seconds::new(1.0),
        );
        assert_eq!(p.sample(0).slope_percent, 0.0);
        let last = p.sample(p.len() - 1);
        assert!(
            (last.slope_percent - 8.0).abs() < 1e-9,
            "total distance ≈ 1 km"
        );
    }

    #[test]
    fn window_clamps_at_end() {
        let p = profile();
        let w = p.window(p.len() - 2, 5);
        assert_eq!(w.len(), 5);
        assert_eq!(w[1].t, w[4].t); // repeated last sample
    }

    #[test]
    fn duration_and_dt() {
        let p = profile();
        assert_eq!(p.duration().value(), 195.0);
        assert_eq!(p.dt().value(), 1.0);
        assert!(!p.is_empty());
    }

    #[test]
    fn serde_round_trip() {
        let p = profile();
        let json = serde_json::to_string(&p).unwrap();
        let back: DriveProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(p.name(), back.name());
        assert_eq!(p.len(), back.len());
        for (a, b) in p.iter().zip(back.iter()) {
            assert!((a.v.value() - b.v.value()).abs() < 1e-12);
            assert!((a.ambient.value() - b.ambient.value()).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_dt() {
        let _ = DriveProfile::from_cycle(
            &DriveCycle::ece15(),
            AmbientConditions::constant(Celsius::new(20.0)),
            Seconds::ZERO,
        );
    }
}
