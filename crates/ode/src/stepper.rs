//! Fixed-step one-step maps: explicit Euler, classic RK4 and the implicit
//! trapezoidal rule for linear-in-state scalar dynamics.

use crate::OdeSystem;

/// Which fixed-step method [`crate::integrate`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum StepMethod {
    /// First-order explicit Euler: cheapest, used for coarse sweeps.
    Euler,
    /// Classic fourth-order Runge–Kutta: the workhorse of the plant
    /// simulation.
    #[default]
    Rk4,
}

/// Advances `x` in place by one explicit Euler step of size `h`.
///
/// # Panics
///
/// Panics if `x.len() != system.dim()`.
///
/// # Examples
///
/// ```
/// use ev_ode::{euler, OdeSystem};
/// # struct Growth;
/// # impl OdeSystem for Growth {
/// #     fn dim(&self) -> usize { 1 }
/// #     fn rhs(&self, _t: f64, x: &[f64], dx: &mut [f64]) { dx[0] = x[0]; }
/// # }
/// let mut x = [1.0];
/// euler(&Growth, 0.0, &mut x, 0.5);
/// assert_eq!(x[0], 1.5);
/// ```
pub fn euler<S: OdeSystem>(system: &S, t: f64, x: &mut [f64], h: f64) {
    assert_eq!(x.len(), system.dim(), "euler: state dimension mismatch");
    let mut dx = vec![0.0; x.len()];
    system.rhs(t, x, &mut dx);
    for (xi, di) in x.iter_mut().zip(&dx) {
        *xi += h * di;
    }
}

/// Advances `x` in place by one classic fourth-order Runge–Kutta step of
/// size `h`.
///
/// # Panics
///
/// Panics if `x.len() != system.dim()`.
pub fn rk4<S: OdeSystem>(system: &S, t: f64, x: &mut [f64], h: f64) {
    assert_eq!(x.len(), system.dim(), "rk4: state dimension mismatch");
    let n = x.len();
    let mut k1 = vec![0.0; n];
    let mut k2 = vec![0.0; n];
    let mut k3 = vec![0.0; n];
    let mut k4 = vec![0.0; n];
    let mut tmp = vec![0.0; n];

    system.rhs(t, x, &mut k1);
    for i in 0..n {
        tmp[i] = x[i] + 0.5 * h * k1[i];
    }
    system.rhs(t + 0.5 * h, &tmp, &mut k2);
    for i in 0..n {
        tmp[i] = x[i] + 0.5 * h * k2[i];
    }
    system.rhs(t + 0.5 * h, &tmp, &mut k3);
    for i in 0..n {
        tmp[i] = x[i] + h * k3[i];
    }
    system.rhs(t + h, &tmp, &mut k4);
    for i in 0..n {
        x[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
    }
}

/// One implicit trapezoidal step for the scalar affine dynamics
/// `c · x' = a − b · x̄`, where `x̄ = (x⁺ + x)/2` is the step midpoint.
///
/// This is exactly the discretization the paper applies to the cabin
/// energy balance (Eq. 18–19): given the previous state `x`, thermal
/// capacitance `c > 0`, constant forcing `a` and midpoint feedback
/// coefficient `b ≥ 0` over a step of length `h`, it returns `x⁺` from
///
/// ```text
/// c · (x⁺ − x) / h = a − b · (x⁺ + x) / 2
/// ```
///
/// The trapezoidal rule is A-stable, so stiff cabin time constants cannot
/// blow up regardless of step size.
///
/// # Panics
///
/// Panics if `c <= 0`, `h <= 0`, or the implicit equation degenerates
/// (`c/h + b/2 == 0`, impossible for valid input).
///
/// # Examples
///
/// ```
/// // x' = 1 - x, starting at 0: converges to 1.
/// let mut x = 0.0;
/// for _ in 0..100 {
///     x = ev_ode::trapezoidal(x, 1.0, 1.0, 1.0, 0.1);
/// }
/// assert!((x - 1.0).abs() < 1e-4);
/// ```
#[must_use]
pub fn trapezoidal(x: f64, c: f64, a: f64, b: f64, h: f64) -> f64 {
    assert!(c > 0.0, "trapezoidal: capacitance must be positive");
    assert!(h > 0.0, "trapezoidal: step must be positive");
    let lhs = c / h + 0.5 * b;
    assert!(lhs != 0.0, "trapezoidal: degenerate implicit equation");
    ((c / h - 0.5 * b) * x + a) / lhs
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Linear;
    impl OdeSystem for Linear {
        fn dim(&self) -> usize {
            1
        }
        fn rhs(&self, _t: f64, x: &[f64], dx: &mut [f64]) {
            dx[0] = -2.0 * x[0];
        }
    }

    struct Oscillator;
    impl OdeSystem for Oscillator {
        fn dim(&self) -> usize {
            2
        }
        fn rhs(&self, _t: f64, x: &[f64], dx: &mut [f64]) {
            dx[0] = x[1];
            dx[1] = -x[0];
        }
    }

    #[test]
    fn euler_first_order_accuracy() {
        // Halving the step should roughly halve the error.
        let exact = (-2.0f64).exp();
        let run = |h: f64| {
            let mut x = [1.0];
            let steps = (1.0 / h) as usize;
            for k in 0..steps {
                euler(&Linear, k as f64 * h, &mut x, h);
            }
            (x[0] - exact).abs()
        };
        let e1 = run(0.01);
        let e2 = run(0.005);
        let ratio = e1 / e2;
        assert!(ratio > 1.8 && ratio < 2.2, "ratio {ratio}");
    }

    #[test]
    fn rk4_fourth_order_accuracy() {
        // Halving the step should reduce the error ~16x.
        let exact = (-2.0f64).exp();
        let run = |h: f64| {
            let mut x = [1.0];
            let steps = (1.0 / h) as usize;
            for k in 0..steps {
                rk4(&Linear, k as f64 * h, &mut x, h);
            }
            (x[0] - exact).abs()
        };
        let e1 = run(0.1);
        let e2 = run(0.05);
        let ratio = e1 / e2;
        assert!(ratio > 12.0 && ratio < 20.0, "ratio {ratio}");
    }

    #[test]
    fn rk4_preserves_oscillator_energy_approximately() {
        let mut x = [1.0, 0.0];
        let h = 0.01;
        for k in 0..10_000 {
            rk4(&Oscillator, k as f64 * h, &mut x, h);
        }
        let energy = x[0] * x[0] + x[1] * x[1];
        assert!((energy - 1.0).abs() < 1e-6, "energy {energy}");
    }

    #[test]
    fn trapezoidal_matches_exact_affine_solution() {
        // c x' = a - b x with c=2, a=4, b=1: x* = 4, time constant 2.
        let (c, a, b) = (2.0, 4.0, 1.0);
        let h = 0.01;
        let mut x = 0.0;
        let mut t = 0.0;
        while t < 1.0 - 1e-12 {
            x = trapezoidal(x, c, a, b, h);
            t += h;
        }
        let exact = 4.0 * (1.0 - (-1.0f64 / 2.0).exp());
        assert!((x - exact).abs() < 1e-4, "x {x} exact {exact}");
    }

    #[test]
    fn trapezoidal_is_stable_for_large_steps() {
        // Explicit Euler would oscillate/diverge for h*b/c > 2.
        let mut x = 100.0;
        for _ in 0..50 {
            x = trapezoidal(x, 1.0, 0.0, 1.0, 10.0);
        }
        assert!(x.abs() < 1.0, "trapezoidal diverged: {x}");
    }

    #[test]
    fn trapezoidal_equilibrium_is_fixed_point() {
        // At x = a/b the state must not move.
        let x = trapezoidal(3.0, 5.0, 6.0, 2.0, 0.7);
        let x2 = trapezoidal(x, 5.0, 6.0, 2.0, 0.7);
        assert!((x - 3.0).abs() < 1e-12);
        assert!((x2 - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "capacitance")]
    fn trapezoidal_rejects_bad_capacitance() {
        let _ = trapezoidal(0.0, 0.0, 1.0, 1.0, 0.1);
    }

    #[test]
    fn step_method_default_is_rk4() {
        assert_eq!(StepMethod::default(), StepMethod::Rk4);
    }
}
