//! Seeded property-based QP/NLP instance generator.
//!
//! The SQP/interior-point stack was born solving exactly one NLP family —
//! the paper's Eq. 13–21 power split — which means every solver test the
//! authors wrote shares that family's conditioning, sparsity, and active
//! set. This module manufactures convex QPs the solver's authors did *not*
//! design: random instances drawn from families chosen to stress different
//! failure modes (ill conditioning, redundant constraints, banded horizon
//! structure, infeasibility, unboundedness), each reproducible from a
//! `u64` seed so a failing instance is a two-number bug report.
//!
//! Feasible instances are built *backwards from a certificate*: an
//! interior point `x*` is sampled first and every constraint right-hand
//! side is derived from it with positive slack, so feasibility is a
//! construction invariant rather than a hope. Infeasible and unbounded
//! instances embed an explicit contradiction / uncapped ray the same way.
//!
//! The differential fuzz harness in `ev-qpbattery` consumes these
//! instances, solving each with every KKT backend and cross-checking the
//! answers (see `DESIGN.md`, "Differential oracle methodology").

use ev_linalg::{Matrix, SparseMatrix};
use ev_optim::{NlpProblem, OptimError, QpProblem, QpStructure, QpView};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which stress family a generated instance belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QpFamily {
    /// SPD Hessian with O(1) spectrum, constraints in general position.
    WellConditioned,
    /// Diagonal spread of ~1e6 in the Hessian plus skewed row scalings.
    IllConditioned,
    /// Duplicated and rescaled constraint rows (rank-deficient Jacobians,
    /// non-unique multipliers — the primal optimum stays unique).
    RedundantConstraints,
    /// Block-banded horizon structure with a declared [`QpStructure`],
    /// exercising the stage-interleaved banded KKT backend.
    Banded,
    /// Contains an explicit contradiction; solvers must report an error,
    /// never panic or spin.
    Infeasible,
    /// The objective decreases along an uncapped feasible ray.
    Unbounded,
    /// Zero decision variables (degenerate shape handling).
    ZeroVariable,
}

impl QpFamily {
    /// All families, in generation round-robin order.
    pub const ALL: [Self; 7] = [
        Self::WellConditioned,
        Self::IllConditioned,
        Self::RedundantConstraints,
        Self::Banded,
        Self::Infeasible,
        Self::Unbounded,
        Self::ZeroVariable,
    ];

    /// Whether instances of this family have an optimal solution (as
    /// opposed to being designed to fail).
    #[must_use]
    pub fn is_solvable(self) -> bool {
        !matches!(
            self,
            Self::Infeasible | Self::Unbounded | Self::ZeroVariable
        )
    }

    /// The tightest primal cross-backend agreement this family supports.
    ///
    /// Well-conditioned and banded instances agree to 1e-8; families with
    /// deliberately poor conditioning or non-unique multipliers get an
    /// order of magnitude of slack (their *primal* optimum is still
    /// unique, but finite-precision backends legitimately land farther
    /// apart).
    #[must_use]
    pub fn primal_agreement_tol(self) -> f64 {
        match self {
            Self::WellConditioned | Self::Banded => 1e-8,
            _ => 1e-6,
        }
    }
}

/// One generated convex QP, stored as the raw parts every consumer needs:
/// dense Hessian, CSR Jacobians, and (for feasible families) the interior
/// point the right-hand sides were derived from.
#[derive(Debug, Clone)]
pub struct GeneratedQp {
    /// `"<family>-s<seed>"`, unique per (seed, family).
    pub name: String,
    /// Stress family this instance was drawn from.
    pub family: QpFamily,
    /// Symmetric PSD Hessian.
    pub h: Matrix,
    /// Linear objective term.
    pub g: Vec<f64>,
    /// Equality Jacobian in CSR form (zero rows when unconstrained).
    pub a_eq: SparseMatrix,
    /// Equality right-hand side.
    pub b_eq: Vec<f64>,
    /// Inequality Jacobian in CSR form.
    pub a_in: SparseMatrix,
    /// Inequality right-hand side.
    pub b_in: Vec<f64>,
    /// Declared horizon structure ([`QpFamily::Banded`] only).
    pub structure: Option<QpStructure>,
    /// Interior feasibility certificate (feasible families only).
    pub interior_point: Option<Vec<f64>>,
}

impl GeneratedQp {
    /// Number of decision variables.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.g.len()
    }

    /// Borrows the instance as a sparse-Jacobian [`QpView`] (the banded
    /// backend's entry point).
    ///
    /// # Errors
    ///
    /// Propagates [`QpView`] construction errors (they indicate a
    /// generator bug, not a caller mistake).
    pub fn view(&self) -> Result<QpView<'_>, OptimError> {
        let mut view = QpView::new(&self.h, &self.g)?;
        if !self.b_eq.is_empty() {
            view = view.with_sparse_equalities(&self.a_eq, &self.b_eq)?;
        }
        if !self.b_in.is_empty() {
            view = view.with_sparse_inequalities(&self.a_in, &self.b_in)?;
        }
        if let Some(st) = self.structure {
            view = view.with_structure(st);
        }
        Ok(view)
    }

    /// Clones the instance into an owned dense-Jacobian [`QpProblem`]
    /// (the dense oracle's entry point).
    ///
    /// # Errors
    ///
    /// Propagates [`QpProblem`] construction errors.
    pub fn to_problem(&self) -> Result<QpProblem, OptimError> {
        let mut p = QpProblem::new(self.h.clone(), self.g.clone())?;
        if !self.b_eq.is_empty() {
            p = p.with_equalities(self.a_eq.to_dense(), self.b_eq.clone())?;
        }
        if !self.b_in.is_empty() {
            p = p.with_inequalities(self.a_in.to_dense(), self.b_in.clone())?;
        }
        Ok(p)
    }
}

/// Generates instance `index` of the deterministic stream rooted at
/// `seed`, cycling through every family in [`QpFamily::ALL`].
///
/// The (seed, index) pair fully determines the instance, so a fuzz
/// failure reproduces from two numbers.
#[must_use]
pub fn generate(seed: u64, index: usize) -> GeneratedQp {
    let family = QpFamily::ALL[index % QpFamily::ALL.len()];
    generate_family(seed.wrapping_add(index as u64), family)
}

/// Generates one instance of the given family from the given seed.
#[must_use]
pub fn generate_family(seed: u64, family: QpFamily) -> GeneratedQp {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let name = format!("{family:?}-s{seed}").to_lowercase();
    match family {
        QpFamily::WellConditioned => well_conditioned(&mut rng, name),
        QpFamily::IllConditioned => ill_conditioned(&mut rng, name),
        QpFamily::RedundantConstraints => redundant(&mut rng, name),
        QpFamily::Banded => banded(&mut rng, name),
        QpFamily::Infeasible => infeasible(&mut rng, name),
        QpFamily::Unbounded => unbounded(&mut rng, name),
        QpFamily::ZeroVariable => zero_variable(name),
    }
}

/// SPD Hessian `L·Lᵀ + c·I` from a random unit-scale lower factor.
fn random_spd(rng: &mut StdRng, n: usize, diag_boost: f64) -> Matrix {
    let mut l = Matrix::zeros(n, n);
    for r in 0..n {
        for c in 0..=r {
            l.set(r, c, rng.gen_range(-1.0..1.0));
        }
    }
    let mut h = Matrix::zeros(n, n);
    for r in 0..n {
        for c in 0..=r {
            let mut acc = 0.0;
            for k in 0..n {
                acc += l.get(r, k) * l.get(c, k);
            }
            h.set(r, c, acc);
            h.set(c, r, acc);
        }
        h.add_at(r, r, diag_boost);
    }
    h
}

/// Appends `rows` random sparse inequality rows that hold strictly at
/// `x_star` (slack drawn from `[0.1, 2)`).
fn push_feasible_ineqs(
    rng: &mut StdRng,
    a_in: &mut SparseMatrix,
    b_in: &mut Vec<f64>,
    x_star: &[f64],
    rows: usize,
) {
    let n = x_star.len();
    for _ in 0..rows {
        let nnz = rng.gen_range(1..=3.min(n));
        let mut cols: Vec<usize> = (0..nnz).map(|_| rng.gen_range(0..n)).collect();
        cols.sort_unstable();
        cols.dedup();
        let mut ax = 0.0;
        for &c in &cols {
            let v = rng.gen_range(-2.0..2.0);
            a_in.push(c, v);
            ax += v * x_star[c];
        }
        a_in.finish_row();
        b_in.push(ax + rng.gen_range(0.1..2.0));
    }
    // Box everything so no family is accidentally unbounded.
    for (i, &xi) in x_star.iter().enumerate() {
        a_in.push(i, 1.0);
        a_in.finish_row();
        b_in.push(xi.abs() + rng.gen_range(0.5..3.0));
        a_in.push(i, -1.0);
        a_in.finish_row();
        b_in.push(xi.abs() + rng.gen_range(0.5..3.0));
    }
}

fn well_conditioned(rng: &mut StdRng, name: String) -> GeneratedQp {
    let n = rng.gen_range(2..=12);
    let h = random_spd(rng, n, 0.5);
    let g: Vec<f64> = (0..n).map(|_| rng.gen_range(-3.0..3.0)).collect();
    let x_star: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();

    let mut a_in = SparseMatrix::new();
    a_in.reset(n);
    let mut b_in = Vec::new();
    let extra_rows = rng.gen_range(1..=n);
    push_feasible_ineqs(rng, &mut a_in, &mut b_in, &x_star, extra_rows);

    let mut a_eq = SparseMatrix::new();
    a_eq.reset(n);
    let mut b_eq = Vec::new();
    if n >= 4 && rng.gen_bool(0.5) {
        let me = rng.gen_range(1..=n / 2);
        for _ in 0..me {
            let mut bx = 0.0;
            for (c, &xc) in x_star.iter().enumerate() {
                let v = rng.gen_range(-1.5..1.5);
                a_eq.push(c, v);
                bx += v * xc;
            }
            a_eq.finish_row();
            b_eq.push(bx);
        }
    }
    GeneratedQp {
        name,
        family: QpFamily::WellConditioned,
        h,
        g,
        a_eq,
        b_eq,
        a_in,
        b_in,
        structure: None,
        interior_point: Some(x_star),
    }
}

fn ill_conditioned(rng: &mut StdRng, name: String) -> GeneratedQp {
    let n = rng.gen_range(3..=10);
    // Diagonal spanning six orders of magnitude with mild off-diagonal
    // coupling that keeps the matrix diagonally dominant (and thus PD).
    let mut h = Matrix::zeros(n, n);
    for i in 0..n {
        let exp = -3.0 + 6.0 * (i as f64) / ((n - 1) as f64);
        h.set(i, i, 10f64.powf(exp));
    }
    for i in 1..n {
        let couple = 0.1 * h.get(i, i).min(h.get(i - 1, i - 1));
        h.set(i, i - 1, couple);
        h.set(i - 1, i, couple);
    }
    let x_star: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let g: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let mut a_in = SparseMatrix::new();
    a_in.reset(n);
    let mut b_in = Vec::new();
    push_feasible_ineqs(rng, &mut a_in, &mut b_in, &x_star, 2);
    GeneratedQp {
        name,
        family: QpFamily::IllConditioned,
        h,
        g,
        a_eq: empty_csr(n),
        b_eq: Vec::new(),
        a_in,
        b_in,
        structure: None,
        interior_point: Some(x_star),
    }
}

fn redundant(rng: &mut StdRng, name: String) -> GeneratedQp {
    let mut base = well_conditioned(rng, name);
    base.family = QpFamily::RedundantConstraints;
    // Duplicate and rescale a prefix of the inequality rows: the feasible
    // set is unchanged, the Jacobian loses row rank, and the multipliers
    // become non-unique.
    let dup = base.b_in.len().min(3);
    let mut extra: Vec<(Vec<usize>, Vec<f64>, f64)> = Vec::new();
    for r in 0..dup {
        let (cols, vals) = base.a_in.row(r);
        let scale = rng.gen_range(0.5..2.0);
        extra.push((
            cols.to_vec(),
            vals.iter().map(|v| v * scale).collect(),
            base.b_in[r] * scale,
        ));
    }
    for (cols, vals, b) in extra {
        for (c, v) in cols.iter().zip(&vals) {
            base.a_in.push(*c, *v);
        }
        base.a_in.finish_row();
        base.b_in.push(b);
    }
    base
}

fn banded(rng: &mut StdRng, name: String) -> GeneratedQp {
    let nb = rng.gen_range(3..=8);
    let vb = rng.gen_range(2..=4);
    let n = nb * vb;
    // Strictly block-diagonal SPD Hessian — the structure declaration the
    // SQP's partitioned BFGS maintains, and the shape the banded KKT
    // assembly is specified against.
    let mut h = Matrix::zeros(n, n);
    for k in 0..nb {
        let block = random_spd(rng, vb, 0.8);
        for r in 0..vb {
            for c in 0..vb {
                h.set(k * vb + r, k * vb + c, block.get(r, c));
            }
        }
    }
    let x_star: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.5..1.5)).collect();
    let g: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();

    // Per-variable bounds plus one within-block coupling row per stage —
    // all local, so the measured bandwidth stays within the declaration.
    let mut a_in = SparseMatrix::new();
    a_in.reset(n);
    let mut b_in = Vec::new();
    for (i, &xi) in x_star.iter().enumerate() {
        a_in.push(i, 1.0);
        a_in.finish_row();
        b_in.push(xi + rng.gen_range(0.2..1.5));
        a_in.push(i, -1.0);
        a_in.finish_row();
        b_in.push(-xi + rng.gen_range(0.2..1.5));
    }
    for k in 0..nb {
        let mut ax = 0.0;
        for j in 0..vb {
            let v = rng.gen_range(-1.0..1.0);
            a_in.push(k * vb + j, v);
            ax += v * x_star[k * vb + j];
        }
        a_in.finish_row();
        b_in.push(ax + rng.gen_range(0.1..1.0));
    }

    // One equality per stage with a one-stage lookback coupling — the
    // multiple-shooting defect-constraint shape.
    let mut a_eq = SparseMatrix::new();
    a_eq.reset(n);
    let mut b_eq = Vec::new();
    for k in 0..nb {
        let mut bx = 0.0;
        if k > 0 {
            let v = rng.gen_range(0.2..0.8);
            a_eq.push((k - 1) * vb, v);
            bx += v * x_star[(k - 1) * vb];
        }
        for j in 0..vb {
            let v = rng.gen_range(0.5..1.5);
            a_eq.push(k * vb + j, v);
            bx += v * x_star[k * vb + j];
        }
        a_eq.finish_row();
        b_eq.push(bx);
    }

    GeneratedQp {
        name,
        family: QpFamily::Banded,
        h,
        g,
        a_eq,
        b_eq,
        a_in,
        b_in,
        structure: Some(QpStructure {
            vars_per_block: vb,
            eq_per_block: 1,
            lookback: 1,
        }),
        interior_point: Some(x_star),
    }
}

fn infeasible(rng: &mut StdRng, name: String) -> GeneratedQp {
    let n = rng.gen_range(1..=6);
    let h = random_spd(rng, n, 0.5);
    let g: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
    let mut a_in = SparseMatrix::new();
    a_in.reset(n);
    let mut b_in = Vec::new();
    // a·x ≤ b and a·x ≥ b + gap on the same random direction.
    let dir: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0) + 0.1).collect();
    let b = rng.gen_range(-1.0..1.0);
    let gap = rng.gen_range(0.5..3.0);
    for (c, &v) in dir.iter().enumerate() {
        a_in.push(c, v);
    }
    a_in.finish_row();
    b_in.push(b);
    for (c, &v) in dir.iter().enumerate() {
        a_in.push(c, -v);
    }
    a_in.finish_row();
    b_in.push(-(b + gap));
    GeneratedQp {
        name,
        family: QpFamily::Infeasible,
        h,
        g,
        a_eq: empty_csr(n),
        b_eq: Vec::new(),
        a_in,
        b_in,
        structure: None,
        interior_point: None,
    }
}

fn unbounded(rng: &mut StdRng, name: String) -> GeneratedQp {
    let n = rng.gen_range(2..=5);
    // Zero curvature along the last variable, a linear pull on it, and a
    // one-sided bound that leaves the descent ray open.
    let mut h = random_spd(rng, n - 1, 0.5);
    let mut full = Matrix::zeros(n, n);
    for r in 0..n - 1 {
        for c in 0..n - 1 {
            full.set(r, c, h.get(r, c));
        }
    }
    h = full;
    let mut g: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    g[n - 1] = rng.gen_range(0.5..2.0); // pulls z[n-1] toward −∞
    let mut a_in = SparseMatrix::new();
    a_in.reset(n);
    let mut b_in = Vec::new();
    // Cap z[n-1] from above only; the objective escapes below.
    a_in.push(n - 1, 1.0);
    a_in.finish_row();
    b_in.push(rng.gen_range(0.0..2.0));
    GeneratedQp {
        name,
        family: QpFamily::Unbounded,
        h,
        g,
        a_eq: empty_csr(n),
        b_eq: Vec::new(),
        a_in,
        b_in,
        structure: None,
        interior_point: None,
    }
}

fn zero_variable(name: String) -> GeneratedQp {
    GeneratedQp {
        name,
        family: QpFamily::ZeroVariable,
        h: Matrix::zeros(0, 0),
        g: Vec::new(),
        a_eq: empty_csr(0),
        b_eq: Vec::new(),
        a_in: empty_csr(0),
        b_in: Vec::new(),
        structure: None,
        interior_point: None,
    }
}

fn empty_csr(cols: usize) -> SparseMatrix {
    let mut m = SparseMatrix::new();
    m.reset(cols);
    m
}

/// Adapter exposing a [`GeneratedQp`] through the [`NlpProblem`] trait so
/// the same instances also exercise the SQP layer (exact derivatives,
/// sparse Jacobians, declared structure — every fast path the MPC uses).
#[derive(Debug, Clone)]
pub struct QpAsNlp {
    qp: GeneratedQp,
}

impl QpAsNlp {
    /// Wraps a generated QP as an NLP.
    #[must_use]
    pub fn new(qp: GeneratedQp) -> Self {
        Self { qp }
    }

    /// Borrows the wrapped instance.
    #[must_use]
    pub fn qp(&self) -> &GeneratedQp {
        &self.qp
    }

    fn copy_csr(src: &SparseMatrix, out: &mut SparseMatrix) {
        out.reset(src.cols());
        for r in 0..src.rows() {
            let (cols, vals) = src.row(r);
            for (c, v) in cols.iter().zip(vals) {
                out.push(*c, *v);
            }
            out.finish_row();
        }
    }
}

impl NlpProblem for QpAsNlp {
    fn num_vars(&self) -> usize {
        self.qp.num_vars()
    }

    fn objective(&self, z: &[f64]) -> f64 {
        let hz = self.qp.h.matvec(z).expect("dimension fixed at generation");
        0.5 * dot(z, &hz) + dot(&self.qp.g, z)
    }

    fn has_exact_derivatives(&self) -> bool {
        true
    }

    fn gradient(&self, z: &[f64], grad: &mut [f64]) {
        let hz = self.qp.h.matvec(z).expect("dimension fixed at generation");
        for (gi, (hzi, gc)) in grad.iter_mut().zip(hz.iter().zip(&self.qp.g)) {
            *gi = hzi + gc;
        }
    }

    fn num_eq(&self) -> usize {
        self.qp.b_eq.len()
    }

    fn eq_constraints(&self, z: &[f64], out: &mut [f64]) {
        self.qp
            .a_eq
            .matvec(z, out)
            .expect("dimension fixed at generation");
        for (o, b) in out.iter_mut().zip(&self.qp.b_eq) {
            *o -= b;
        }
    }

    fn num_ineq(&self) -> usize {
        self.qp.b_in.len()
    }

    fn ineq_constraints(&self, z: &[f64], out: &mut [f64]) {
        self.qp
            .a_in
            .matvec(z, out)
            .expect("dimension fixed at generation");
        for (o, b) in out.iter_mut().zip(&self.qp.b_in) {
            *o -= b;
        }
    }

    fn eq_jacobian_sparse_into(&self, _z: &[f64], out: &mut SparseMatrix) -> bool {
        Self::copy_csr(&self.qp.a_eq, out);
        true
    }

    fn ineq_jacobian_sparse_into(&self, _z: &[f64], out: &mut SparseMatrix) -> bool {
        Self::copy_csr(&self.qp.a_in, out);
        true
    }

    fn qp_structure(&self) -> Option<QpStructure> {
        self.qp.structure
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ev_optim::QpSolver;

    #[test]
    fn generation_is_deterministic() {
        for index in 0..QpFamily::ALL.len() {
            let a = generate(42, index);
            let b = generate(42, index);
            assert_eq!(a.name, b.name);
            assert_eq!(a.g, b.g);
            assert_eq!(a.b_in, b.b_in);
            assert_eq!(a.h.as_slice(), b.h.as_slice());
        }
        // Different seeds give different instances.
        let a = generate(1, 0);
        let b = generate(2, 0);
        assert_ne!(a.g, b.g);
    }

    #[test]
    fn feasible_families_hold_at_certificate() {
        for family in [
            QpFamily::WellConditioned,
            QpFamily::IllConditioned,
            QpFamily::RedundantConstraints,
            QpFamily::Banded,
        ] {
            for seed in 0..20 {
                let qp = generate_family(seed, family);
                let x = qp.interior_point.clone().expect("feasible family");
                let mut cz = vec![0.0; qp.b_in.len()];
                qp.a_in.matvec(&x, &mut cz).unwrap();
                for (i, (c, b)) in cz.iter().zip(&qp.b_in).enumerate() {
                    assert!(c < b, "{}: ineq {i} violated at certificate", qp.name);
                }
                let mut ez = vec![0.0; qp.b_eq.len()];
                qp.a_eq.matvec(&x, &mut ez).unwrap();
                for (e, b) in ez.iter().zip(&qp.b_eq) {
                    assert!((e - b).abs() < 1e-12, "{}: equality broken", qp.name);
                }
            }
        }
    }

    #[test]
    fn hessians_are_symmetric_and_solvable() {
        for seed in 0..10 {
            for family in QpFamily::ALL {
                let qp = generate_family(seed, family);
                assert!(qp.h.is_symmetric(1e-12), "{}", qp.name);
                if family.is_solvable() {
                    let sol = QpSolver::default()
                        .solve(&qp.to_problem().unwrap())
                        .unwrap_or_else(|e| panic!("{} failed: {e}", qp.name));
                    assert!(sol.objective.is_finite());
                }
            }
        }
    }

    #[test]
    fn banded_instances_take_the_banded_backend() {
        for seed in 0..10 {
            let qp = generate_family(seed, QpFamily::Banded);
            let view = qp.view().unwrap();
            let w = view
                .planned_bandwidth()
                .expect("banded instance must produce a plan");
            assert!(w <= qp.structure.unwrap().bandwidth(), "{}", qp.name);
            let sol = QpSolver::default().solve_view(&view).unwrap();
            assert_eq!(sol.kkt_backend, ev_optim::QpKktBackend::Banded);
        }
    }

    #[test]
    fn nlp_adapter_matches_qp_solution() {
        let qp = generate_family(7, QpFamily::WellConditioned);
        let direct = QpSolver::default()
            .solve(&qp.to_problem().unwrap())
            .unwrap();
        let nlp = QpAsNlp::new(qp);
        let z0 = vec![0.0; nlp.num_vars()];
        let result = ev_optim::SqpSolver::default().solve(&nlp, &z0).unwrap();
        assert!(result.is_converged());
        for (a, b) in result.z.iter().zip(&direct.z) {
            assert!((a - b).abs() < 1e-4, "sqp {a} vs qp {b}");
        }
    }
}
