//! # evclimate — battery lifetime-aware automotive climate control
//!
//! A full-stack Rust reproduction of *"Battery Lifetime-Aware Automotive
//! Climate Control for Electric Vehicles"* (Vatanparvar & Al Faruque,
//! DAC 2015). The paper's contribution — coordinating the HVAC with the
//! battery management system through a model predictive controller so that
//! cabin-comfort power complements motor power and flattens the battery
//! State-of-Charge profile — is implemented here together with every
//! substrate it needs: vehicle and HVAC physics, battery aging, drive
//! cycles, an SQP optimizer, and a co-simulation engine.
//!
//! This facade crate re-exports the public API of each workspace crate
//! under one roof so examples and downstream users need a single
//! dependency.
//!
//! ## Quickstart
//!
//! ```no_run
//! use evclimate::prelude::*;
//! use evclimate::core::ControllerKind;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Drive a Nissan-Leaf-like EV through the NEDC cycle on a hot day
//! // with the paper's battery lifetime-aware MPC at the helm.
//! let profile = DriveProfile::from_cycle(
//!     &DriveCycle::nedc(),
//!     AmbientConditions::constant(Celsius::new(35.0)),
//!     Seconds::new(1.0),
//! );
//! let ev = EvParams::nissan_leaf_like();
//! let sim = Simulation::new(ev.clone(), profile)?;
//! let mut controller = ControllerKind::Mpc.instantiate(&ev)?;
//! let result = sim.run(controller.as_mut())?;
//! println!("ΔSoH: {:.4} m%, HVAC avg: {}",
//!          result.metrics().delta_soh_milli_percent,
//!          result.metrics().avg_hvac_power);
//! # Ok(())
//! # }
//! ```
//!
//! ## Crate map
//!
//! | Module | Contents |
//! |--------|----------|
//! | [`units`] | physical-quantity newtypes |
//! | [`linalg`] | dense LU / Cholesky / QR kernel |
//! | [`ode`] | fixed-step and adaptive integrators |
//! | [`optim`] | active-set QP and SQP solvers |
//! | [`drive`] | standard driving cycles and drive profiles |
//! | [`powertrain`] | EV road loads, motor map, regen; ICE reference |
//! | [`hvac`] | single-zone VAV cabin model |
//! | [`battery`] | Peukert SoC + SoH capacity-fade model |
//! | [`control`] | On/Off, PID, fuzzy and MPC climate controllers |
//! | [`core`] | integrated EV model, simulation engine, experiments |
//! | [`telemetry`] | counters, histograms, spans and metric exporters |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ev_battery as battery;
pub use ev_control as control;
pub use ev_core as core;
pub use ev_drive as drive;
pub use ev_hvac as hvac;
pub use ev_linalg as linalg;
pub use ev_ode as ode;
pub use ev_optim as optim;
pub use ev_powertrain as powertrain;
pub use ev_telemetry as telemetry;
pub use ev_units as units;

/// Convenient glob-import of the types most programs need.
///
/// ```
/// use evclimate::prelude::*;
/// let t = Celsius::new(24.0);
/// assert_eq!(t.value(), 24.0);
/// ```
pub mod prelude {
    pub use ev_battery::{Battery, BatteryParams, Bms, SocStats, SohModel};
    pub use ev_control::{
        ClimateController, ControlContext, FuzzyController, MpcController, OnOffController,
        PidController,
    };
    pub use ev_core::{
        ControllerKind, ElectricVehicle, EvParams, Metrics, Simulation, SimulationResult,
        TelemetryObserver,
    };
    pub use ev_drive::{
        AmbientConditions, DriveCycle, DriveProfile, DriveSample, Route, RouteSegment,
    };
    pub use ev_hvac::{CabinParams, Hvac, HvacInput, HvacLimits, HvacParams, HvacState};
    pub use ev_powertrain::{IceVehicle, PowerTrain, VehicleParams};
    pub use ev_telemetry::Registry;
    pub use ev_units::{
        Celsius, KgPerSecond, KilowattHours, Kilowatts, MetersPerSecond, Percent, Seconds, Watts,
    };
}
