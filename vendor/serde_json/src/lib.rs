#![allow(clippy::all, clippy::pedantic, clippy::nursery)]
//! Offline stand-in for `serde_json`.
//!
//! Prints and parses JSON against the vendored `serde` value tree.
//! Numbers round-trip losslessly: printing uses Rust's shortest
//! round-trip `f64` formatting, and integral values are printed without
//! a fractional part so the output looks like ordinary JSON.

#![forbid(unsafe_code)]

use std::fmt;

use serde::Value;

/// JSON (de)serialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn msg(m: impl Into<String>) -> Self {
        Self(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Self(e.to_string())
    }
}

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Never fails for the value shapes this workspace serializes; the
/// `Result` mirrors the real `serde_json` signature.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to two-space-indented JSON.
///
/// # Errors
///
/// Never fails for the value shapes this workspace serializes.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses a value from JSON text.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing input at byte {}", p.pos)));
    }
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------- printing

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => write_number(out, *n),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no Inf/NaN; real serde_json errors here, but the
        // workspace only serializes finite numbers — emit null to match
        // lenient consumers.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 1e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        // `{:?}` is Rust's shortest round-trip float formatting.
        out.push_str(&format!("{n:?}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ----------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::msg("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => Ok(Value::Str(self.parse_string()?)),
            b'[' => self.parse_seq(),
            b'{' => self.parse_map(),
            _ => self.parse_number(),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            entries.push((key, self.parse_value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while !matches!(self.bytes.get(self.pos), None | Some(b'"' | b'\\')) {
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::msg(format!("invalid utf-8 in string: {e}")))?,
            );
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .bytes
                        .get(self.pos)
                        .copied()
                        .ok_or_else(|| Error::msg("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our
                            // printer; map lone surrogates to U+FFFD.
                            s.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(Error::msg(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                None => return Err(Error::msg("unterminated string")),
                _ => unreachable!(),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error::msg(format!("invalid number `{text}` at byte {start}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact_and_pretty() {
        let v = vec![1.5f64, -2.0, 0.1];
        let compact = to_string(&v).unwrap();
        assert_eq!(compact, "[1.5,-2,0.1]");
        let back: Vec<f64> = from_str(&compact).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        let back: Vec<f64> = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn strings_escape_and_parse() {
        let s = "a \"b\"\n\\c".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn shortest_float_formatting_round_trips() {
        for &x in &[0.1, 1.0 / 3.0, 6.02e23, 1e-7, -12345.678901234567] {
            let json = to_string(&x).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back, x, "{json}");
        }
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<f64>("1.5 junk").is_err());
        assert!(from_str::<Vec<f64>>("[1,").is_err());
        assert!(from_str::<String>("\"open").is_err());
    }
}
