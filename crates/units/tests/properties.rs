//! Property-based tests for the unit newtypes: conversion round trips
//! and arithmetic laws.

use ev_units::{
    Celsius, Joules, Kilometers, KilometersPerHour, KilowattHours, Kilowatts, Meters,
    MetersPerSecond, Percent, Seconds, Volts, Watts,
};
use proptest::prelude::*;

proptest! {
    #[test]
    fn celsius_kelvin_round_trip(c in -100.0f64..100.0) {
        let t = Celsius::new(c);
        let back = Celsius::from_kelvin(t.to_kelvin());
        prop_assert!((back.value() - c).abs() < 1e-12);
    }

    #[test]
    fn celsius_diff_antisymmetry(a in -50.0f64..60.0, b in -50.0f64..60.0) {
        let (x, y) = (Celsius::new(a), Celsius::new(b));
        prop_assert!((x.diff(y) + y.diff(x)).abs() < 1e-12);
        prop_assert!((y.offset(x.diff(y)).value() - a).abs() < 1e-12);
    }

    #[test]
    fn speed_round_trip(v in 0.0f64..100.0) {
        let ms = MetersPerSecond::new(v);
        let back = ms.to_kilometers_per_hour().to_meters_per_second();
        prop_assert!((back.value() - v).abs() < 1e-12);
        let kmh = KilometersPerHour::new(v);
        let back2 = kmh.to_meters_per_second().to_kilometers_per_hour();
        prop_assert!((back2.value() - v).abs() < 1e-12);
    }

    #[test]
    fn distance_round_trip(d in 0.0f64..1e6) {
        let m = Meters::new(d);
        prop_assert!((m.to_kilometers().to_meters().value() - d).abs() < 1e-9);
        let km = Kilometers::new(d);
        prop_assert!((km.to_meters().to_kilometers().value() - d).abs() < 1e-9);
    }

    #[test]
    fn power_energy_round_trip(p in 0.0f64..1e5, secs in 1.0f64..7200.0) {
        let w = Watts::new(p);
        let kw = w.to_kilowatts();
        prop_assert!((kw.to_watts().value() - p).abs() < 1e-9 * p.max(1.0));
        // Energy consistency between the two power types.
        let e1 = w.energy_over(Seconds::new(secs)).to_kilowatt_hours();
        let e2 = kw.energy_over(Seconds::new(secs));
        prop_assert!((e1.value() - e2.value()).abs() < 1e-9 * e1.value().max(1.0));
    }

    #[test]
    fn energy_round_trip(e in 0.0f64..1e3) {
        let kwh = KilowattHours::new(e);
        prop_assert!((kwh.to_joules().to_kilowatt_hours().value() - e).abs() < 1e-9);
        let j = Joules::new(e * 1e6);
        prop_assert!((j.to_kilowatt_hours().to_joules().value() - e * 1e6).abs() < 1.0);
    }

    #[test]
    fn percent_ratio_round_trip(p in 0.0f64..100.0) {
        let pct = Percent::new(p);
        prop_assert!((pct.to_ratio().to_percent().value() - p).abs() < 1e-12);
    }

    #[test]
    fn kwh_to_ah_consistency(e in 1.0f64..100.0, v in 100.0f64..800.0) {
        // Ah · V = Wh.
        let ah = KilowattHours::new(e).to_ampere_hours(Volts::new(v));
        prop_assert!((ah.value() * v - e * 1000.0).abs() < 1e-6 * e * 1000.0);
    }

    #[test]
    fn additive_arithmetic_laws(a in -1e4f64..1e4, b in -1e4f64..1e4, s in -10.0f64..10.0) {
        let (x, y) = (Kilowatts::new(a), Kilowatts::new(b));
        // Commutativity.
        prop_assert_eq!(x + y, y + x);
        // Scaling distributes.
        let lhs = (x + y) * s;
        let rhs = x * s + y * s;
        prop_assert!((lhs.value() - rhs.value()).abs() < 1e-9 * lhs.value().abs().max(1.0));
        // Neg is subtraction from zero.
        prop_assert_eq!(-x, Kilowatts::ZERO - x);
    }

    #[test]
    fn clamp_bounds(v in -100.0f64..100.0, lo in -50.0f64..0.0, width in 0.0f64..50.0) {
        let q = Watts::new(v).clamp(Watts::new(lo), Watts::new(lo + width));
        prop_assert!(q.value() >= lo && q.value() <= lo + width);
    }

    #[test]
    fn same_kind_division_is_ratio(a in 0.1f64..1e3, b in 0.1f64..1e3) {
        let ratio = Kilowatts::new(a) / Kilowatts::new(b);
        prop_assert!((ratio - a / b).abs() < 1e-12);
    }
}
