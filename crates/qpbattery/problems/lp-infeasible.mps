* Infeasible by bounds: the row forces x <= 1 while the LO bound
* demands x >= 2. The solver must return a routable error, not hang.
NAME LPINFEAS
ROWS
 N OBJ
 L CAP
COLUMNS
 X OBJ 1.0 CAP 1.0
RHS
 RHS CAP 1.0
BOUNDS
 LO BND X 2.0
ENDATA
