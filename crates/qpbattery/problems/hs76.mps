* Hock-Schittkowski 76:
* min x1^2 + 0.5x2^2 + x3^2 + 0.5x4^2 - x1x3 + x3x4 - x1 - 3x2 + x3 - x4
* s.t. x1 + 2x2 + x3 + x4 <= 5, 3x1 + x2 + 2x3 - x4 <= 4,
*      x2 + 4x3 >= 1.5, x >= 0.
* f* = -4.681818...
NAME HS76
ROWS
 N OBJ
 L C1
 L C2
 G C3
COLUMNS
 X1 OBJ -1.0 C1 1.0
 X1 C2 3.0
 X2 OBJ -3.0 C1 2.0
 X2 C2 1.0 C3 1.0
 X3 OBJ 1.0 C1 1.0
 X3 C2 2.0 C3 4.0
 X4 OBJ -1.0 C1 1.0
 X4 C2 -1.0
RHS
 RHS C1 5.0 C2 4.0
 RHS C3 1.5
QUADOBJ
 X1 X1 2.0
 X1 X3 -1.0
 X2 X2 1.0
 X3 X3 2.0
 X3 X4 1.0
 X4 X4 1.0
ENDATA
