//! The MPC flight recorder: a bounded ring buffer of per-step decision
//! records that turns a solver failure from a counter into a replayable
//! artifact.
//!
//! A [`FlightRecorder`] is a cheap cloneable handle, like
//! [`Registry`](crate::Registry): one minted with
//! [`FlightRecorder::disabled`] (the `Default`) owns no buffer at all and
//! every call on it is a single branch, so the un-instrumented control
//! path pays nothing. An enabled recorder keeps the most recent
//! `capacity` records — [`DecisionRecord`]s pushed by the controller,
//! [`StepSummary`]s pushed by the plant-side observer and free-form
//! [`FlightRecord::Note`]s — evicting the oldest first, so a dump after a
//! failure always holds the *last N* records leading up to it.
//!
//! Dumps are JSON Lines: a `{"kind":"meta", ...}` header with the
//! capacity, eviction count and dump reason, followed by one
//! self-describing object per record. [`FlightRecorder::dump_to`] creates
//! missing parent directories, so a dump can never fail on a bare
//! `io::Error` for a path like `target/postmortem/cell.jsonl`.
//!
//! Recording is strictly observation: nothing in this module feeds back
//! into the controller or the solver, so an enabled recorder leaves the
//! simulated trajectory bit-identical to a disabled one.

use std::collections::VecDeque;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use crate::export::{json_f64, json_str, write_text};

/// How one MPC solve ended, as recorded in a [`DecisionRecord`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveOutcome {
    /// The SQP solver met its KKT tolerance.
    Converged,
    /// The solver ran out of major iterations.
    MaxIterations,
    /// The line search could not make progress.
    LineSearchStalled,
    /// The solve failed structurally (non-finite data); the controller
    /// fell back to its previous input.
    Error,
}

impl SolveOutcome {
    /// Stable snake_case tag used in the JSONL schema.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Converged => "converged",
            Self::MaxIterations => "max_iterations",
            Self::LineSearchStalled => "line_search_stalled",
            Self::Error => "error",
        }
    }

    /// Whether this outcome should trigger an automatic post-mortem dump
    /// (structural errors and iteration-cap exhaustion; a stalled line
    /// search still returns the best feasible iterate).
    #[must_use]
    pub fn is_failure(self) -> bool {
        matches!(self, Self::MaxIterations | Self::Error)
    }
}

/// Where the solve's starting point came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarmStart {
    /// No previous plan existed (first solve, or the previous one was
    /// invalidated by a solver error): the heuristic cold start was used.
    Cold,
    /// The previous plan, shifted forward by `blocks` prediction blocks.
    Shifted {
        /// How many leading blocks were dropped as already executed.
        blocks: usize,
    },
}

/// One planned HVAC step of the horizon, decoded from the solution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlannedStep {
    /// Supply-air temperature (°C).
    pub ts_c: f64,
    /// Cooling-coil temperature (°C).
    pub tc_c: f64,
    /// Recirculation ratio (0–1).
    pub recirculation: f64,
    /// Supply mass flow (kg/s).
    pub flow_kg_s: f64,
    /// Total predicted HVAC power of the step (W).
    pub hvac_power_w: f64,
    /// Predicted cabin temperature after the step (°C).
    pub cabin_c: f64,
    /// Predicted SoC after the step (%).
    pub soc_pct: f64,
}

/// Per-solve attribution: how the predicted battery-power, SoC-deviation
/// and SoH-fade consequences of the plan split between motor demand
/// (incl. accessories) and the HVAC action. Computed by re-rolling the
/// horizon (Eq. 13–16) with the HVAC mass flow zeroed, so the HVAC share
/// includes the superlinear Peukert coupling of concurrent peaks.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Attribution {
    /// Predicted battery energy over the horizon (Wh).
    pub battery_energy_wh: f64,
    /// Motor + accessory share of that energy (Wh).
    pub motor_energy_wh: f64,
    /// HVAC share of that energy (Wh).
    pub hvac_energy_wh: f64,
    /// Predicted SoC drop over the horizon (%).
    pub soc_drop_total_pct: f64,
    /// SoC drop of the motor-only rollout (%).
    pub soc_drop_motor_pct: f64,
    /// SoC drop attributable to the HVAC plan, Peukert coupling included
    /// (`total − motor`, %).
    pub soc_drop_hvac_pct: f64,
    /// Effective (Peukert-inflated) charge drawn over the horizon (A·s) —
    /// the Eq. 15–16 fade driver.
    pub eff_charge_total_as: f64,
    /// Effective charge of the motor-only rollout (A·s).
    pub eff_charge_motor_as: f64,
    /// Effective charge attributable to the HVAC plan (A·s).
    pub eff_charge_hvac_as: f64,
    /// The Eq. 21 `w1·ΣP_hvac` cost term at the plan.
    pub cost_hvac_power: f64,
    /// The Eq. 21 `w2·Σ(SoC − SoC_avg)²` cost term at the plan.
    pub cost_soc_deviation: f64,
    /// The Eq. 21 `w3·Σ(Tz − T_target)²` cost term at the plan.
    pub cost_comfort: f64,
}

/// One MPC solve, recorded at the moment the controller committed to it.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionRecord {
    /// Simulation step the solve ran at.
    pub step: u64,
    /// Simulated time of the solve (s).
    pub t_s: f64,
    /// How the solve ended.
    pub outcome: SolveOutcome,
    /// Major SQP iterations spent.
    pub iterations: usize,
    /// Objective value at the returned iterate (NaN on [`SolveOutcome::Error`]).
    pub objective: f64,
    /// L1 constraint violation at the returned iterate.
    pub constraint_violation: f64,
    /// Provenance of the starting point.
    pub warm_start: WarmStart,
    /// Pack SoC when the solve ran (%).
    pub soc_pct: f64,
    /// Cabin temperature when the solve ran (°C).
    pub cabin_c: f64,
    /// The predicted motor-power horizon the solve planned against
    /// (block-averaged `Pe`, W, one entry per prediction block).
    pub motor_preview_w: Vec<f64>,
    /// The planned HVAC schedule (empty on [`SolveOutcome::Error`]).
    pub plan: Vec<PlannedStep>,
    /// Inequality-constraint rows per horizon step (the paper's 13-row
    /// C1–C10 layout); the width of each mask in `active_masks`.
    pub constraint_rows: usize,
    /// Per-horizon-step activation bitset of the final SQP iteration's
    /// active set: bit `i` of `active_masks[k]` is the `i`-th constraint
    /// row of block `k`. Empty when no iteration record was captured.
    pub active_masks: Vec<u32>,
    /// Attribution decomposition (absent on [`SolveOutcome::Error`]).
    pub attribution: Option<Attribution>,
}

/// One realized plant step, recorded by the step-observer adapter so a
/// post-mortem interleaves what the controller planned with what the
/// plant actually did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepSummary {
    /// Simulation step index.
    pub step: u64,
    /// Simulated time (s).
    pub t_s: f64,
    /// Motor electrical power (W).
    pub motor_power_w: f64,
    /// Total HVAC power actually drawn (W).
    pub hvac_power_w: f64,
    /// BMS-metered battery power (W).
    pub battery_power_w: f64,
    /// Pack SoC (%).
    pub soc_pct: f64,
    /// Cabin temperature (°C).
    pub cabin_c: f64,
    /// Ambient temperature (°C).
    pub ambient_c: f64,
}

/// One entry of the flight-recorder ring buffer.
#[derive(Debug, Clone, PartialEq)]
pub enum FlightRecord {
    /// An MPC solve.
    Decision(Box<DecisionRecord>),
    /// A realized plant step.
    Step(StepSummary),
    /// A free-form annotation (invariant violations, dump triggers).
    Note {
        /// Short machine-matchable label (e.g. `"invariant"`).
        label: String,
        /// Human-readable detail.
        detail: String,
    },
}

#[derive(Debug)]
struct RecorderInner {
    capacity: usize,
    auto_dump: Option<PathBuf>,
    records: VecDeque<FlightRecord>,
    /// Records evicted from the ring since creation.
    dropped: u64,
    /// Failure post-mortems successfully written by the auto-dump path.
    auto_dumps: u64,
    /// The last io error an automatic dump hit (dumps from the control
    /// loop cannot propagate errors).
    last_dump_error: Option<String>,
}

/// A bounded flight recorder handle. See the [module docs](self).
#[derive(Debug, Clone, Default)]
pub struct FlightRecorder {
    inner: Option<Arc<Mutex<RecorderInner>>>,
}

impl FlightRecorder {
    /// Default ring-buffer capacity: enough for ~1 min of 1 Hz plant
    /// steps plus their solves, small enough that an always-on recorder
    /// stays in cache.
    pub const DEFAULT_CAPACITY: usize = 256;

    /// An inert recorder: every call on it is a no-op branch.
    #[must_use]
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// A live recorder keeping the most recent `capacity` records
    /// (clamped to at least 1).
    #[must_use]
    pub fn enabled(capacity: usize) -> Self {
        Self {
            inner: Some(Arc::new(Mutex::new(RecorderInner {
                capacity: capacity.max(1),
                auto_dump: None,
                records: VecDeque::with_capacity(capacity.clamp(1, 1024)),
                dropped: 0,
                auto_dumps: 0,
                last_dump_error: None,
            }))),
        }
    }

    /// Enabled at [`Self::DEFAULT_CAPACITY`] or disabled, from a flag.
    #[must_use]
    pub fn with_enabled(enabled: bool) -> Self {
        if enabled {
            Self::enabled(Self::DEFAULT_CAPACITY)
        } else {
            Self::disabled()
        }
    }

    /// Whether records pushed into this handle are kept anywhere.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Configures the path failure decisions are automatically dumped to
    /// (see [`SolveOutcome::is_failure`]). Each failure overwrites the
    /// previous dump, so the file always describes the latest failure.
    /// No-op on a disabled recorder.
    #[must_use]
    pub fn with_auto_dump(self, path: impl Into<PathBuf>) -> Self {
        if let Some(inner) = &self.inner {
            inner.lock().expect("recorder poisoned").auto_dump = Some(path.into());
        }
        self
    }

    /// Number of records currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner
            .as_ref()
            .map_or(0, |i| i.lock().expect("recorder poisoned").records.len())
    }

    /// Whether the ring holds no records (always true when disabled).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records evicted from the ring so far.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.lock().expect("recorder poisoned").dropped)
    }

    /// How many failure post-mortems the auto-dump path has successfully
    /// written so far. Callers that also write an end-of-run dump to the
    /// same path should skip it when this is non-zero, or they would
    /// overwrite the preserved failure window.
    #[must_use]
    pub fn auto_dumps(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.lock().expect("recorder poisoned").auto_dumps)
    }

    /// The io error message of the most recent failed automatic dump.
    #[must_use]
    pub fn last_dump_error(&self) -> Option<String> {
        self.inner
            .as_ref()
            .and_then(|i| i.lock().expect("recorder poisoned").last_dump_error.clone())
    }

    fn push(&self, record: FlightRecord) {
        let Some(inner) = &self.inner else { return };
        let mut g = inner.lock().expect("recorder poisoned");
        if g.records.len() == g.capacity {
            g.records.pop_front();
            g.dropped += 1;
        }
        g.records.push_back(record);
    }

    /// Pushes a solve record; a failure outcome with an auto-dump path
    /// configured also writes the post-mortem immediately.
    pub fn record_decision(&self, decision: DecisionRecord) {
        if self.inner.is_none() {
            return;
        }
        let failure = decision.outcome.is_failure();
        let reason = failure.then(|| {
            format!(
                "mpc solve {} at step {} (t = {:.1} s)",
                decision.outcome.as_str(),
                decision.step,
                decision.t_s
            )
        });
        self.push(FlightRecord::Decision(Box::new(decision)));
        if let Some(reason) = reason {
            let path = self
                .inner
                .as_ref()
                .and_then(|i| i.lock().expect("recorder poisoned").auto_dump.clone());
            if let Some(path) = path {
                let result = self.dump_to(&path, &reason);
                if let Some(inner) = &self.inner {
                    let mut g = inner.lock().expect("recorder poisoned");
                    match result {
                        Ok(()) => {
                            g.auto_dumps += 1;
                            g.last_dump_error = None;
                        }
                        Err(e) => g.last_dump_error = Some(e.to_string()),
                    }
                }
            }
        }
    }

    /// Pushes a realized plant step.
    pub fn record_step(&self, step: StepSummary) {
        if self.inner.is_none() {
            return;
        }
        self.push(FlightRecord::Step(step));
    }

    /// Pushes a free-form annotation.
    pub fn note(&self, label: &str, detail: &str) {
        if self.inner.is_none() {
            return;
        }
        self.push(FlightRecord::Note {
            label: label.to_owned(),
            detail: detail.to_owned(),
        });
    }

    /// A snapshot of the ring contents, oldest first.
    #[must_use]
    pub fn records(&self) -> Vec<FlightRecord> {
        self.inner.as_ref().map_or_else(Vec::new, |i| {
            i.lock()
                .expect("recorder poisoned")
                .records
                .iter()
                .cloned()
                .collect()
        })
    }

    /// Renders the ring as JSON Lines: a meta header, then one object
    /// per record, oldest first. Empty string for a disabled recorder.
    #[must_use]
    pub fn to_jsonl(&self, reason: &str) -> String {
        let Some(inner) = &self.inner else {
            return String::new();
        };
        let g = inner.lock().expect("recorder poisoned");
        let mut out = format!(
            "{{\"kind\":\"meta\",\"version\":1,\"capacity\":{},\"records\":{},\"dropped\":{},\"reason\":{}}}\n",
            g.capacity,
            g.records.len(),
            g.dropped,
            json_str(reason)
        );
        for record in &g.records {
            out.push_str(&record_to_json(record));
            out.push('\n');
        }
        out
    }

    /// Writes the ring as JSONL to `path`, creating missing parent
    /// directories. No-op (Ok) for a disabled recorder.
    ///
    /// # Errors
    ///
    /// Propagates io errors from directory creation or the file write.
    pub fn dump_to(&self, path: &Path, reason: &str) -> io::Result<()> {
        if self.inner.is_none() {
            return Ok(());
        }
        write_text(path, &self.to_jsonl(reason))
    }
}

fn json_num_array(values: impl Iterator<Item = f64>) -> String {
    let items: Vec<String> = values.map(json_f64).collect();
    format!("[{}]", items.join(","))
}

fn warm_start_json(w: WarmStart) -> String {
    match w {
        WarmStart::Cold => "{\"kind\":\"cold\"}".to_owned(),
        WarmStart::Shifted { blocks } => {
            format!("{{\"kind\":\"shifted\",\"blocks\":{blocks}}}")
        }
    }
}

fn attribution_json(a: &Attribution) -> String {
    format!(
        "{{\"battery_energy_wh\":{},\"motor_energy_wh\":{},\"hvac_energy_wh\":{},\
         \"soc_drop_total_pct\":{},\"soc_drop_motor_pct\":{},\"soc_drop_hvac_pct\":{},\
         \"eff_charge_total_as\":{},\"eff_charge_motor_as\":{},\"eff_charge_hvac_as\":{},\
         \"cost_hvac_power\":{},\"cost_soc_deviation\":{},\"cost_comfort\":{}}}",
        json_f64(a.battery_energy_wh),
        json_f64(a.motor_energy_wh),
        json_f64(a.hvac_energy_wh),
        json_f64(a.soc_drop_total_pct),
        json_f64(a.soc_drop_motor_pct),
        json_f64(a.soc_drop_hvac_pct),
        json_f64(a.eff_charge_total_as),
        json_f64(a.eff_charge_motor_as),
        json_f64(a.eff_charge_hvac_as),
        json_f64(a.cost_hvac_power),
        json_f64(a.cost_soc_deviation),
        json_f64(a.cost_comfort),
    )
}

fn planned_step_json(p: &PlannedStep) -> String {
    format!(
        "{{\"ts_c\":{},\"tc_c\":{},\"recirculation\":{},\"flow_kg_s\":{},\
         \"hvac_power_w\":{},\"cabin_c\":{},\"soc_pct\":{}}}",
        json_f64(p.ts_c),
        json_f64(p.tc_c),
        json_f64(p.recirculation),
        json_f64(p.flow_kg_s),
        json_f64(p.hvac_power_w),
        json_f64(p.cabin_c),
        json_f64(p.soc_pct),
    )
}

fn record_to_json(record: &FlightRecord) -> String {
    match record {
        FlightRecord::Decision(d) => {
            let plan: Vec<String> = d.plan.iter().map(planned_step_json).collect();
            let masks: Vec<String> = d.active_masks.iter().map(u32::to_string).collect();
            format!(
                "{{\"kind\":\"decision\",\"step\":{},\"t_s\":{},\"outcome\":{},\
                 \"iterations\":{},\"objective\":{},\"constraint_violation\":{},\
                 \"warm_start\":{},\"soc_pct\":{},\"cabin_c\":{},\"motor_preview_w\":{},\
                 \"plan\":[{}],\"constraint_rows\":{},\"active_masks\":[{}],\"attribution\":{}}}",
                d.step,
                json_f64(d.t_s),
                json_str(d.outcome.as_str()),
                d.iterations,
                json_f64(d.objective),
                json_f64(d.constraint_violation),
                warm_start_json(d.warm_start),
                json_f64(d.soc_pct),
                json_f64(d.cabin_c),
                json_num_array(d.motor_preview_w.iter().copied()),
                plan.join(","),
                d.constraint_rows,
                masks.join(","),
                d.attribution
                    .as_ref()
                    .map_or_else(|| "null".to_owned(), attribution_json),
            )
        }
        FlightRecord::Step(s) => format!(
            "{{\"kind\":\"step\",\"step\":{},\"t_s\":{},\"motor_power_w\":{},\
             \"hvac_power_w\":{},\"battery_power_w\":{},\"soc_pct\":{},\"cabin_c\":{},\
             \"ambient_c\":{}}}",
            s.step,
            json_f64(s.t_s),
            json_f64(s.motor_power_w),
            json_f64(s.hvac_power_w),
            json_f64(s.battery_power_w),
            json_f64(s.soc_pct),
            json_f64(s.cabin_c),
            json_f64(s.ambient_c),
        ),
        FlightRecord::Note { label, detail } => format!(
            "{{\"kind\":\"note\",\"label\":{},\"detail\":{}}}",
            json_str(label),
            json_str(detail)
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decision(step: u64, outcome: SolveOutcome) -> DecisionRecord {
        DecisionRecord {
            step,
            t_s: step as f64,
            outcome,
            iterations: 3,
            objective: 1.25,
            constraint_violation: 0.0,
            warm_start: WarmStart::Shifted { blocks: 1 },
            soc_pct: 90.0,
            cabin_c: 25.0,
            motor_preview_w: vec![1_000.0, 2_000.0],
            plan: vec![PlannedStep {
                ts_c: 14.0,
                tc_c: 12.0,
                recirculation: 0.7,
                flow_kg_s: 0.1,
                hvac_power_w: 1_800.0,
                cabin_c: 24.8,
                soc_pct: 89.9,
            }],
            constraint_rows: 13,
            active_masks: vec![0b10_0000_0000, 0],
            attribution: Some(Attribution {
                battery_energy_wh: 10.0,
                motor_energy_wh: 7.0,
                hvac_energy_wh: 3.0,
                ..Attribution::default()
            }),
        }
    }

    fn step(k: u64) -> StepSummary {
        StepSummary {
            step: k,
            t_s: k as f64,
            motor_power_w: 5_000.0,
            hvac_power_w: 1_500.0,
            battery_power_w: 6_800.0,
            soc_pct: 90.0,
            cabin_c: 24.9,
            ambient_c: 35.0,
        }
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = FlightRecorder::disabled();
        rec.record_decision(decision(0, SolveOutcome::Converged));
        rec.record_step(step(0));
        rec.note("x", "y");
        assert!(!rec.is_enabled());
        assert!(rec.is_empty());
        assert_eq!(rec.auto_dumps(), 0);
        assert_eq!(rec.to_jsonl("anything"), "");
        // Dumping a disabled recorder is an explicit no-op, not an error.
        assert!(rec
            .dump_to(Path::new("/nonexistent/dir/out.jsonl"), "r")
            .is_ok());
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let rec = FlightRecorder::enabled(3);
        for k in 0..5 {
            rec.record_step(step(k));
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.dropped(), 2);
        let records = rec.records();
        match &records[0] {
            FlightRecord::Step(s) => assert_eq!(s.step, 2, "oldest surviving record"),
            other => panic!("expected step, got {other:?}"),
        }
    }

    #[test]
    fn clones_share_the_ring() {
        let rec = FlightRecorder::enabled(8);
        let other = rec.clone();
        other.record_step(step(1));
        assert_eq!(rec.len(), 1);
    }

    #[test]
    fn jsonl_has_meta_header_and_tagged_records() {
        let rec = FlightRecorder::enabled(8);
        rec.record_decision(decision(4, SolveOutcome::Converged));
        rec.record_step(step(5));
        rec.note("marker", "something happened");
        let out = rec.to_jsonl("unit test");
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("\"kind\":\"meta\""));
        assert!(lines[0].contains("\"reason\":\"unit test\""));
        assert!(lines[1].contains("\"kind\":\"decision\""));
        assert!(lines[1].contains("\"outcome\":\"converged\""));
        assert!(lines[1].contains("\"warm_start\":{\"kind\":\"shifted\",\"blocks\":1}"));
        assert!(lines[1].contains("\"active_masks\":[512,0]"));
        assert!(lines[2].contains("\"kind\":\"step\""));
        assert!(lines[3].contains("\"kind\":\"note\""));
    }

    #[test]
    fn error_decision_serializes_null_fields() {
        let rec = FlightRecorder::enabled(4);
        let mut d = decision(9, SolveOutcome::Error);
        d.objective = f64::NAN;
        d.plan.clear();
        d.attribution = None;
        rec.record_decision(d);
        let out = rec.to_jsonl("r");
        assert!(out.contains("\"objective\":null"));
        assert!(out.contains("\"attribution\":null"));
        assert!(out.contains("\"plan\":[]"));
    }

    #[test]
    fn dump_creates_missing_parent_directories() {
        let dir = std::env::temp_dir().join(format!(
            "ev-recorder-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("deeply").join("nested").join("dump.jsonl");
        let rec = FlightRecorder::enabled(4);
        rec.record_step(step(0));
        rec.dump_to(&path, "parent-dir test")
            .expect("dump succeeds");
        let text = std::fs::read_to_string(&path).expect("file exists");
        assert!(text.starts_with("{\"kind\":\"meta\""));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failure_decision_triggers_auto_dump() {
        let dir = std::env::temp_dir().join(format!(
            "ev-recorder-autodump-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("postmortem.jsonl");
        let rec = FlightRecorder::enabled(8).with_auto_dump(&path);
        rec.record_decision(decision(1, SolveOutcome::Converged));
        assert!(!path.exists(), "converged solves do not dump");
        assert_eq!(rec.auto_dumps(), 0);
        rec.record_decision(decision(2, SolveOutcome::MaxIterations));
        let text = std::fs::read_to_string(&path).expect("failure dumped");
        assert!(text.contains("mpc solve max_iterations at step 2"));
        assert_eq!(rec.auto_dumps(), 1);
        assert!(rec.last_dump_error().is_none());
        rec.record_decision(decision(3, SolveOutcome::Error));
        assert_eq!(rec.auto_dumps(), 2, "each written failure dump counts");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
