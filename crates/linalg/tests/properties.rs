//! Property-based tests for the dense linear-algebra kernel: residuals,
//! factorization invariants and error behavior on random matrices.

use ev_linalg::{solve, vecops, Cholesky, Lu, Matrix, Qr};
use proptest::prelude::*;

/// Strategy: a well-conditioned square matrix built as D + small noise,
/// with a strongly dominant diagonal so LU never hits the singularity
/// guard.
fn dominant_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-1.0f64..1.0, n * n).prop_map(move |data| {
        Matrix::from_fn(n, n, |r, c| {
            let v = data[r * n + c];
            if r == c {
                (n as f64) + 2.0 + v
            } else {
                v
            }
        })
    })
}

/// Strategy: a random right-hand side.
fn rhs(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-10.0f64..10.0, n)
}

proptest! {
    #[test]
    fn lu_solve_residual_is_small(
        a in dominant_matrix(6),
        b in rhs(6),
    ) {
        let x = solve(&a, &b).expect("diagonally dominant matrices factor");
        let r = a.matvec(&x).expect("dims");
        let err = vecops::norm_inf(&vecops::sub(&r, &b));
        prop_assert!(err < 1e-8, "residual {err}");
    }

    #[test]
    fn lu_det_matches_product_rule(
        a in dominant_matrix(4),
        s in 0.5f64..2.0,
    ) {
        // det(s·A) = s^n · det(A)
        let da = Lu::factor(&a).expect("factors").det();
        let dsa = Lu::factor(&a.scale(s)).expect("factors").det();
        let expected = s.powi(4) * da;
        prop_assert!(
            ((dsa - expected) / expected.abs().max(1.0)).abs() < 1e-9,
            "{dsa} vs {expected}"
        );
    }

    #[test]
    fn inverse_roundtrip(a in dominant_matrix(5)) {
        let inv = Lu::factor(&a).expect("factors").inverse().expect("invertible");
        let prod = a.matmul(&inv).expect("dims");
        let err = prod.sub(&Matrix::identity(5)).expect("dims").norm_max();
        prop_assert!(err < 1e-8, "A·A⁻¹ − I = {err}");
    }

    #[test]
    fn cholesky_solves_gram_systems(
        m in dominant_matrix(5),
        b in rhs(5),
    ) {
        // AᵀA + I is SPD for any A.
        let mut spd = m.transpose().matmul(&m).expect("dims");
        spd.add_diag(1.0);
        let ch = Cholesky::factor(&spd).expect("spd");
        let x = ch.solve(&b).expect("solves");
        let r = spd.matvec(&x).expect("dims");
        prop_assert!(vecops::norm_inf(&vecops::sub(&r, &b)) < 1e-7);
        // L·Lᵀ reproduces the matrix.
        let l = ch.l();
        let llt = l.matmul(&l.transpose()).expect("dims");
        prop_assert!(llt.sub(&spd).expect("dims").norm_max() < 1e-8);
    }

    #[test]
    fn cholesky_det_is_positive(m in dominant_matrix(4)) {
        let mut spd = m.transpose().matmul(&m).expect("dims");
        spd.add_diag(0.5);
        let det = Cholesky::factor(&spd).expect("spd").det();
        prop_assert!(det > 0.0);
    }

    #[test]
    fn qr_least_squares_beats_any_perturbation(
        m in dominant_matrix(4),
        b in rhs(8),
        perturb in proptest::collection::vec(-0.5f64..0.5, 4),
    ) {
        // Stack the matrix on itself for an over-determined system.
        let a = m.vstack(&m).expect("same cols");
        let x = Qr::factor(&a).expect("factors").solve_least_squares(&b).expect("full rank");
        let res = |x: &[f64]| {
            let r = a.matvec(x).expect("dims");
            vecops::norm2(&vecops::sub(&r, &b))
        };
        let base = res(&x);
        let xp = vecops::add(&x, &perturb);
        prop_assert!(res(&xp) >= base - 1e-9, "LS optimality violated");
    }

    #[test]
    fn transpose_preserves_frobenius(a in dominant_matrix(5)) {
        let t = a.transpose();
        prop_assert!((a.norm_frobenius() - t.norm_frobenius()).abs() < 1e-12);
    }

    #[test]
    fn matvec_agrees_with_matmul(
        a in dominant_matrix(4),
        x in rhs(4),
    ) {
        // A·x via matvec equals A·X (X a column matrix) via matmul.
        let col_refs: Vec<&[f64]> = x.chunks(1).collect();
        let xm = Matrix::from_rows(&col_refs).expect("column");
        let via_mm = a.matmul(&xm).expect("dims");
        let via_mv = a.matvec(&x).expect("dims");
        for (r, v) in via_mv.iter().enumerate() {
            prop_assert!((via_mm.get(r, 0) - v).abs() < 1e-12);
        }
    }

    #[test]
    fn vecops_axpy_matches_definition(
        x in rhs(7),
        y in rhs(7),
        alpha in -3.0f64..3.0,
    ) {
        let mut out = y.clone();
        vecops::axpy(alpha, &x, &mut out);
        for k in 0..7 {
            prop_assert!((out[k] - (y[k] + alpha * x[k])).abs() < 1e-12);
        }
    }

    #[test]
    fn cauchy_schwarz(x in rhs(6), y in rhs(6)) {
        let lhs = vecops::dot(&x, &y).abs();
        let rhs_value = vecops::norm2(&x) * vecops::norm2(&y);
        prop_assert!(lhs <= rhs_value + 1e-9);
    }
}

#[test]
fn singular_matrix_is_detected_not_garbage() {
    // Deterministic companion to the random suite: a rank-1 matrix.
    let a = Matrix::from_fn(4, 4, |r, c| ((r + 1) * (c + 1)) as f64);
    assert!(Lu::factor(&a).is_err());
}
