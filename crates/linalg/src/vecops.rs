//! Free functions on `&[f64]` vectors.
//!
//! The optimizer keeps its iterates as plain `Vec<f64>`; these helpers cover
//! the handful of BLAS-1 style operations it needs without pulling in a
//! vector wrapper type.
//!
//! # Examples
//!
//! ```
//! use ev_linalg::vecops;
//!
//! let x = [1.0, 2.0, 2.0];
//! assert_eq!(vecops::dot(&x, &x), 9.0);
//! assert_eq!(vecops::norm2(&x), 3.0);
//! ```

/// Dot product `xᵀy`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Euclidean norm `‖x‖₂`.
#[must_use]
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Infinity norm `‖x‖∞`.
#[must_use]
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0, |m, v| m.max(v.abs()))
}

/// In-place scaled accumulation `y ← y + a·x`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += a * xi;
    }
}

/// Elementwise difference `x − y` as a new vector.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn sub(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "sub: length mismatch");
    x.iter().zip(y).map(|(a, b)| a - b).collect()
}

/// Elementwise sum `x + y` as a new vector.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn add(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "add: length mismatch");
    x.iter().zip(y).map(|(a, b)| a + b).collect()
}

/// Scaled copy `a·x` as a new vector.
#[must_use]
pub fn scale(a: f64, x: &[f64]) -> Vec<f64> {
    x.iter().map(|v| a * v).collect()
}

/// Arithmetic mean of the entries; `0.0` for an empty slice.
#[must_use]
pub fn mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        0.0
    } else {
        x.iter().sum::<f64>() / x.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
        assert_eq!(norm_inf(&[-7.0, 2.0]), 7.0);
        assert_eq!(norm_inf(&[]), 0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, -1.0], &mut y);
        assert_eq!(y, vec![3.0, -1.0]);
    }

    #[test]
    fn add_sub_scale_mean() {
        assert_eq!(add(&[1.0, 2.0], &[3.0, 4.0]), vec![4.0, 6.0]);
        assert_eq!(sub(&[1.0, 2.0], &[3.0, 4.0]), vec![-2.0, -2.0]);
        assert_eq!(scale(0.5, &[2.0, 4.0]), vec![1.0, 2.0]);
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }
}
