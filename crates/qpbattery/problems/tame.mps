* TAME (Maros-Meszaros): min (x - y)^2 s.t. x + y = 1, x, y >= 0.
* Semidefinite Hessian; optimum x = y = 0.5, f* = 0.
NAME TAME
ROWS
 N OBJ
 E E1
COLUMNS
 X OBJ 0.0 E1 1.0
 Y OBJ 0.0 E1 1.0
RHS
 RHS E1 1.0
QUADOBJ
 X X 2.0
 X Y -2.0
 Y Y 2.0
ENDATA
