//! Seeded synthetic route and climate generators.
//!
//! The paper builds drive profiles from navigation, traffic and climate
//! databases (Google APIs and NOAA, its refs \[17\]\[18\]). Those services are
//! not available offline, so this module generates deterministic synthetic
//! equivalents: commute routes with hills and traffic waves, and a diurnal
//! ambient-temperature model. The statistical character (stop-and-go
//! urban phases, highway cruise, grade changes) is what the controller
//! reacts to, and that is preserved.
//!
//! All generators are seeded for reproducibility.

use ev_units::{Celsius, Seconds, Watts};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{AmbientConditions, DriveProfile, DriveSample, SlopeProfile};

/// Configuration of a synthetic commute route.
///
/// # Examples
///
/// ```
/// use ev_drive::synthetic::RouteConfig;
/// use ev_units::Celsius;
///
/// let profile = RouteConfig::new(42)
///     .urban_minutes(8.0)
///     .highway_minutes(12.0)
///     .ambient(Celsius::new(33.0))
///     .generate();
/// assert!(profile.distance().value() > 5.0); // km
/// ```
#[derive(Debug, Clone)]
pub struct RouteConfig {
    seed: u64,
    urban_minutes: f64,
    highway_minutes: f64,
    hilliness: f64,
    ambient: Celsius,
    solar: Watts,
    dt: Seconds,
}

impl RouteConfig {
    /// Creates a route configuration with the given RNG seed and defaults:
    /// 10 urban minutes, 10 highway minutes, mild hills, 25 °C.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            urban_minutes: 10.0,
            highway_minutes: 10.0,
            hilliness: 2.0,
            ambient: Celsius::new(25.0),
            solar: Watts::new(AmbientConditions::DEFAULT_SOLAR_W),
            dt: Seconds::new(1.0),
        }
    }

    /// Sets the urban (stop-and-go) phase duration in minutes.
    #[must_use]
    pub fn urban_minutes(mut self, minutes: f64) -> Self {
        self.urban_minutes = minutes.max(0.0);
        self
    }

    /// Sets the highway phase duration in minutes.
    #[must_use]
    pub fn highway_minutes(mut self, minutes: f64) -> Self {
        self.highway_minutes = minutes.max(0.0);
        self
    }

    /// Sets the peak grade magnitude in percent (0 = flat).
    #[must_use]
    pub fn hilliness(mut self, peak_grade_percent: f64) -> Self {
        self.hilliness = peak_grade_percent.max(0.0);
        self
    }

    /// Sets the constant ambient temperature.
    #[must_use]
    pub fn ambient(mut self, t: Celsius) -> Self {
        self.ambient = t;
        self
    }

    /// Sets the solar load.
    #[must_use]
    pub fn solar(mut self, solar: Watts) -> Self {
        self.solar = solar;
        self
    }

    /// Generates the drive profile. Deterministic for a given
    /// configuration.
    #[must_use]
    pub fn generate(&self) -> DriveProfile {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let dt = self.dt.value();
        let mut speeds: Vec<f64> = vec![0.0];

        // Urban phase: stop-to-stop humps, 30–60 km/h peaks.
        let urban_end = self.urban_minutes * 60.0;
        let mut t = 0.0;
        while t < urban_end {
            let idle = rng.gen_range(5.0..20.0);
            let peak = rng.gen_range(30.0..60.0) / 3.6;
            let accel = rng.gen_range(1.0..1.8);
            let cruise = rng.gen_range(10.0..40.0);
            let decel = rng.gen_range(1.2..2.2);
            t += hump(&mut speeds, dt, idle, peak, accel, cruise, decel);
        }
        // Highway phase: ramp to 90–120 km/h with traffic-wave modulation.
        let highway_end = urban_end + self.highway_minutes * 60.0;
        if self.highway_minutes > 0.0 {
            let base = rng.gen_range(90.0..115.0) / 3.6;
            let wave_amp = rng.gen_range(2.0..6.0);
            let wave_period = rng.gen_range(60.0..180.0);
            // Ramp up.
            let mut v = *speeds.last().expect("non-empty");
            while v < base {
                v = (v + 1.5 * dt).min(base);
                speeds.push(v);
                t += dt;
            }
            while t < highway_end {
                let phase = 2.0 * std::f64::consts::PI * t / wave_period;
                let jitter = rng.gen_range(-0.5..0.5);
                let target = base + wave_amp * phase.sin() / 3.6 + jitter / 3.6;
                v += (target - v).clamp(-2.0 * dt, 1.5 * dt);
                speeds.push(v.max(0.0));
                t += dt;
            }
            // Final deceleration to rest.
            while v > 0.0 {
                v = (v - 1.8 * dt).max(0.0);
                speeds.push(v);
            }
        }

        // Hills: a sum of two sinusoids in distance.
        let route_m: f64 = speeds.iter().sum::<f64>() * dt;
        let slope = if self.hilliness > 0.0 && route_m > 0.0 {
            let n = 24;
            let mut pts = Vec::with_capacity(n + 1);
            let l1 = rng.gen_range(1500.0..4000.0);
            let l2 = rng.gen_range(400.0..1200.0);
            for k in 0..=n {
                let d = route_m * (k as f64) / (n as f64);
                let g = self.hilliness
                    * (0.7 * (2.0 * std::f64::consts::PI * d / l1).sin()
                        + 0.3 * (2.0 * std::f64::consts::PI * d / l2).sin());
                pts.push((d + k as f64 * 1e-6, g));
            }
            SlopeProfile::from_breakpoints(&pts)
        } else {
            SlopeProfile::flat()
        };

        // Assemble samples.
        let mut samples = Vec::with_capacity(speeds.len());
        let mut distance = 0.0;
        for (k, &v) in speeds.iter().enumerate() {
            let a = if k + 1 < speeds.len() {
                (speeds[k + 1] - v) / dt
            } else {
                0.0
            };
            if k > 0 {
                distance += 0.5 * (speeds[k - 1] + v) * dt;
            }
            samples.push(DriveSample {
                t: Seconds::new(k as f64 * dt),
                v: ev_units::MetersPerSecond::new(v),
                a,
                slope_percent: slope.grade_at(distance),
                ambient: self.ambient,
                solar: self.solar,
            });
        }
        DriveProfile::from_samples(&format!("synthetic-{}", self.seed), self.dt, samples)
    }
}

/// Appends one stop-to-stop hump to `speeds`; returns the elapsed time.
fn hump(
    speeds: &mut Vec<f64>,
    dt: f64,
    idle_s: f64,
    peak: f64,
    accel: f64,
    cruise_s: f64,
    decel: f64,
) -> f64 {
    let mut elapsed = 0.0;
    let mut v = *speeds.last().expect("non-empty");
    for _ in 0..(idle_s / dt) as usize {
        speeds.push(v);
        elapsed += dt;
    }
    while v < peak {
        v = (v + accel * dt).min(peak);
        speeds.push(v);
        elapsed += dt;
    }
    for _ in 0..(cruise_s / dt) as usize {
        speeds.push(v);
        elapsed += dt;
    }
    while v > 0.0 {
        v = (v - decel * dt).max(0.0);
        speeds.push(v);
        elapsed += dt;
    }
    elapsed
}

/// A diurnal ambient-temperature model: sinusoidal between a nightly low
/// and an afternoon high, standing in for the NOAA climate database.
///
/// # Examples
///
/// ```
/// use ev_drive::synthetic::DiurnalClimate;
/// use ev_units::Celsius;
///
/// let july = DiurnalClimate::new(Celsius::new(22.0), Celsius::new(38.0));
/// let dawn = july.temperature_at_hour(5.0);
/// let peak = july.temperature_at_hour(15.0);
/// assert!(peak.value() > dawn.value());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiurnalClimate {
    low: Celsius,
    high: Celsius,
}

impl DiurnalClimate {
    /// Hour of day at which the temperature peaks.
    pub const PEAK_HOUR: f64 = 15.0;

    /// Creates a model from the nightly low and afternoon high.
    ///
    /// # Panics
    ///
    /// Panics if `high < low`.
    #[must_use]
    pub fn new(low: Celsius, high: Celsius) -> Self {
        assert!(high >= low, "diurnal high must be >= low");
        Self { low, high }
    }

    /// Ambient temperature at the given hour of day (0–24, wraps).
    #[must_use]
    pub fn temperature_at_hour(&self, hour: f64) -> Celsius {
        let mid = 0.5 * (self.low.value() + self.high.value());
        let amp = 0.5 * (self.high.value() - self.low.value());
        let phase = (hour - Self::PEAK_HOUR) / 24.0 * 2.0 * std::f64::consts::PI;
        Celsius::new(mid + amp * phase.cos())
    }

    /// Ambient conditions for a drive starting at `start_hour` lasting
    /// `duration`, sampled every 5 minutes.
    #[must_use]
    pub fn conditions_for_drive(&self, start_hour: f64, duration: Seconds) -> AmbientConditions {
        let mut pts = Vec::new();
        let step = 300.0;
        let mut t = 0.0;
        while t <= duration.value() + step {
            let hour = start_hour + t / 3600.0;
            pts.push((t, self.temperature_at_hour(hour).value()));
            t += step;
        }
        AmbientConditions::varying(&pts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = RouteConfig::new(7).generate();
        let b = RouteConfig::new(7).generate();
        assert_eq!(a, b);
        let c = RouteConfig::new(8).generate();
        assert_ne!(a, c);
    }

    #[test]
    fn phases_shape_the_profile() {
        let p = RouteConfig::new(1)
            .urban_minutes(5.0)
            .highway_minutes(5.0)
            .generate();
        // Highway phase must reach at least 85 km/h.
        let vmax = p.iter().map(|s| s.v.value()).fold(0.0f64, f64::max);
        assert!(vmax > 85.0 / 3.6, "vmax {vmax}");
        // Urban phase must contain stops after the start.
        let stops = p
            .samples()
            .iter()
            .skip(30)
            .take(250)
            .filter(|s| s.v.value() == 0.0)
            .count();
        assert!(stops > 0, "no urban stops found");
        // Ends at rest.
        assert_eq!(p.sample(p.len() - 1).v.value(), 0.0);
    }

    #[test]
    fn urban_only_profile_stays_slow() {
        let p = RouteConfig::new(3)
            .urban_minutes(4.0)
            .highway_minutes(0.0)
            .generate();
        let vmax = p.iter().map(|s| s.v.value()).fold(0.0f64, f64::max);
        assert!(vmax <= 60.0 / 3.6 + 1e-9, "vmax {vmax}");
    }

    #[test]
    fn hilliness_bounds_grades() {
        let p = RouteConfig::new(5).hilliness(4.0).generate();
        for s in p.iter() {
            assert!(s.slope_percent.abs() <= 4.0 + 1e-9);
        }
        let flat = RouteConfig::new(5).hilliness(0.0).generate();
        assert!(flat.iter().all(|s| s.slope_percent == 0.0));
    }

    #[test]
    fn ambient_and_solar_are_applied() {
        let p = RouteConfig::new(9)
            .ambient(Celsius::new(-7.0))
            .solar(Watts::new(100.0))
            .generate();
        assert!(p.iter().all(|s| s.ambient.value() == -7.0));
        assert!(p.iter().all(|s| s.solar.value() == 100.0));
    }

    #[test]
    fn diurnal_extremes() {
        let clim = DiurnalClimate::new(Celsius::new(10.0), Celsius::new(30.0));
        let peak = clim.temperature_at_hour(DiurnalClimate::PEAK_HOUR);
        assert!((peak.value() - 30.0).abs() < 1e-9);
        let trough = clim.temperature_at_hour(DiurnalClimate::PEAK_HOUR + 12.0);
        assert!((trough.value() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn diurnal_drive_conditions_vary() {
        let clim = DiurnalClimate::new(Celsius::new(15.0), Celsius::new(35.0));
        let cond = clim.conditions_for_drive(8.0, Seconds::new(7200.0));
        let start = cond.temperature_at(Seconds::ZERO);
        let end = cond.temperature_at(Seconds::new(7200.0));
        assert!(end.value() > start.value(), "morning drive should warm up");
    }

    #[test]
    #[should_panic(expected = "high must be >= low")]
    fn diurnal_rejects_inverted_range() {
        let _ = DiurnalClimate::new(Celsius::new(30.0), Celsius::new(10.0));
    }
}
