//! Adaptive Runge–Kutta–Fehlberg 4(5) integration.

use crate::{OdeSystem, Trajectory};

/// Options controlling the adaptive integrator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveOptions {
    /// Relative error tolerance per step.
    pub rel_tol: f64,
    /// Absolute error tolerance per step.
    pub abs_tol: f64,
    /// Initial step size guess.
    pub initial_step: f64,
    /// Smallest step the controller may take before giving up.
    pub min_step: f64,
    /// Largest step the controller may take.
    pub max_step: f64,
    /// Hard cap on accepted + rejected steps.
    pub max_steps: usize,
}

impl Default for AdaptiveOptions {
    fn default() -> Self {
        Self {
            rel_tol: 1e-8,
            abs_tol: 1e-10,
            initial_step: 1e-2,
            min_step: 1e-12,
            max_step: 1.0,
            max_steps: 1_000_000,
        }
    }
}

/// Reasons the adaptive integrator can fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepError {
    /// The controller shrank the step below `min_step` without meeting the
    /// error tolerance — the problem is too stiff for an explicit method.
    StepSizeUnderflow,
    /// `max_steps` was exceeded before reaching the end time.
    TooManySteps,
    /// The right-hand side produced a non-finite value.
    NonFiniteState,
}

impl core::fmt::Display for StepError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::StepSizeUnderflow => write!(f, "step size underflow: problem too stiff"),
            Self::TooManySteps => write!(f, "maximum number of steps exceeded"),
            Self::NonFiniteState => write!(f, "state became non-finite during integration"),
        }
    }
}

impl std::error::Error for StepError {}

/// Adaptive Runge–Kutta–Fehlberg 4(5) integrator.
///
/// Embedded 4th/5th-order pair with a proportional step-size controller.
/// Used in this workspace to produce reference solutions that validate the
/// fixed-step RK4 plant integration (the co-simulation itself runs fixed
/// step so the controller and plant stay sample-aligned, like the paper's
/// MATLAB↔AMESim setup).
///
/// # Examples
///
/// ```
/// use ev_ode::{AdaptiveOptions, OdeSystem, Rkf45};
///
/// struct Decay;
/// impl OdeSystem for Decay {
///     fn dim(&self) -> usize { 1 }
///     fn rhs(&self, _t: f64, x: &[f64], dx: &mut [f64]) { dx[0] = -x[0]; }
/// }
///
/// # fn main() -> Result<(), ev_ode::StepError> {
/// let solver = Rkf45::new(AdaptiveOptions::default());
/// let traj = solver.integrate(&Decay, &[1.0], 0.0, 2.0)?;
/// assert!((traj.last_state()[0] - (-2.0f64).exp()).abs() < 1e-7);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Rkf45 {
    options: AdaptiveOptions,
}

// Fehlberg coefficients.
const A: [[f64; 5]; 5] = [
    [1.0 / 4.0, 0.0, 0.0, 0.0, 0.0],
    [3.0 / 32.0, 9.0 / 32.0, 0.0, 0.0, 0.0],
    [1932.0 / 2197.0, -7200.0 / 2197.0, 7296.0 / 2197.0, 0.0, 0.0],
    [439.0 / 216.0, -8.0, 3680.0 / 513.0, -845.0 / 4104.0, 0.0],
    [
        -8.0 / 27.0,
        2.0,
        -3544.0 / 2565.0,
        1859.0 / 4104.0,
        -11.0 / 40.0,
    ],
];
const C: [f64; 6] = [0.0, 0.25, 3.0 / 8.0, 12.0 / 13.0, 1.0, 0.5];
const B5: [f64; 6] = [
    16.0 / 135.0,
    0.0,
    6656.0 / 12825.0,
    28561.0 / 56430.0,
    -9.0 / 50.0,
    2.0 / 55.0,
];
const B4: [f64; 6] = [
    25.0 / 216.0,
    0.0,
    1408.0 / 2565.0,
    2197.0 / 4104.0,
    -1.0 / 5.0,
    0.0,
];

impl Rkf45 {
    /// Creates a solver with the given options.
    #[must_use]
    pub fn new(options: AdaptiveOptions) -> Self {
        Self { options }
    }

    /// Borrows the solver options.
    #[must_use]
    pub fn options(&self) -> &AdaptiveOptions {
        &self.options
    }

    /// Integrates `system` from `t0` to `t1`, adapting the step size to the
    /// configured tolerances.
    ///
    /// # Errors
    ///
    /// Returns a [`StepError`] if the step size underflows, the step budget
    /// is exhausted, or the state becomes non-finite.
    ///
    /// # Panics
    ///
    /// Panics if `x0.len() != system.dim()` or `t1 < t0`.
    pub fn integrate<S: OdeSystem>(
        &self,
        system: &S,
        x0: &[f64],
        t0: f64,
        t1: f64,
    ) -> Result<Trajectory, StepError> {
        assert_eq!(x0.len(), system.dim(), "rkf45: state dimension mismatch");
        assert!(t1 >= t0, "rkf45: t1 must be >= t0");

        let opts = &self.options;
        let n = system.dim();
        let mut traj = Trajectory::new(n);
        let mut t = t0;
        let mut x = x0.to_vec();
        let mut h = opts.initial_step.min(opts.max_step).max(opts.min_step);
        traj.push(t, &x);

        let mut k = vec![vec![0.0; n]; 6];
        let mut tmp = vec![0.0; n];
        let mut steps = 0usize;

        while t < t1 {
            if steps >= opts.max_steps {
                return Err(StepError::TooManySteps);
            }
            steps += 1;
            h = h.min(t1 - t);

            // Evaluate the six stages.
            system.rhs(t, &x, &mut k[0]);
            for s in 1..6 {
                for i in 0..n {
                    let mut acc = 0.0;
                    for (j, kj) in k.iter().enumerate().take(s) {
                        acc += A[s - 1][j] * kj[i];
                    }
                    tmp[i] = x[i] + h * acc;
                }
                let (head, tail) = k.split_at_mut(s);
                let _ = head;
                system.rhs(t + C[s] * h, &tmp, &mut tail[0]);
            }

            // 4th/5th order solutions and error estimate.
            let mut err = 0.0f64;
            let mut x5 = vec![0.0; n];
            for i in 0..n {
                let mut acc5 = 0.0;
                let mut acc4 = 0.0;
                for s in 0..6 {
                    acc5 += B5[s] * k[s][i];
                    acc4 += B4[s] * k[s][i];
                }
                x5[i] = x[i] + h * acc5;
                let x4 = x[i] + h * acc4;
                if !x5[i].is_finite() {
                    return Err(StepError::NonFiniteState);
                }
                let scale = opts.abs_tol + opts.rel_tol * x[i].abs().max(x5[i].abs());
                err = err.max(((x5[i] - x4) / scale).abs());
            }

            if err <= 1.0 {
                // Accept.
                t += h;
                x.copy_from_slice(&x5);
                traj.push(t, &x);
            }
            // Proportional controller (order 4 ⇒ exponent 1/5).
            let factor = if err > 0.0 { 0.9 * err.powf(-0.2) } else { 5.0 };
            h *= factor.clamp(0.2, 5.0);
            h = h.min(opts.max_step);
            if h < opts.min_step {
                return Err(StepError::StepSizeUnderflow);
            }
        }
        Ok(traj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Decay;
    impl OdeSystem for Decay {
        fn dim(&self) -> usize {
            1
        }
        fn rhs(&self, _t: f64, x: &[f64], dx: &mut [f64]) {
            dx[0] = -x[0];
        }
    }

    struct Oscillator;
    impl OdeSystem for Oscillator {
        fn dim(&self) -> usize {
            2
        }
        fn rhs(&self, _t: f64, x: &[f64], dx: &mut [f64]) {
            dx[0] = x[1];
            dx[1] = -x[0];
        }
    }

    struct Explosive;
    impl OdeSystem for Explosive {
        fn dim(&self) -> usize {
            1
        }
        fn rhs(&self, _t: f64, x: &[f64], dx: &mut [f64]) {
            dx[0] = x[0] * x[0]; // finite-time blowup from x0 = 1 at t = 1
        }
    }

    #[test]
    fn decay_matches_exact_solution() {
        let solver = Rkf45::new(AdaptiveOptions::default());
        let traj = solver.integrate(&Decay, &[1.0], 0.0, 3.0).unwrap();
        assert!((traj.last_state()[0] - (-3.0f64).exp()).abs() < 1e-7);
    }

    #[test]
    fn oscillator_full_period() {
        let solver = Rkf45::new(AdaptiveOptions {
            max_step: 0.5,
            ..AdaptiveOptions::default()
        });
        let two_pi = 2.0 * std::f64::consts::PI;
        let traj = solver
            .integrate(&Oscillator, &[1.0, 0.0], 0.0, two_pi)
            .unwrap();
        let s = traj.last_state();
        assert!((s[0] - 1.0).abs() < 1e-6, "cos {s:?}");
        assert!(s[1].abs() < 1e-6, "sin {s:?}");
    }

    #[test]
    fn step_budget_is_enforced() {
        let solver = Rkf45::new(AdaptiveOptions {
            max_steps: 5,
            ..AdaptiveOptions::default()
        });
        assert_eq!(
            solver.integrate(&Decay, &[1.0], 0.0, 100.0).unwrap_err(),
            StepError::TooManySteps
        );
    }

    #[test]
    fn blowup_is_detected() {
        let solver = Rkf45::new(AdaptiveOptions {
            max_steps: 100_000,
            ..AdaptiveOptions::default()
        });
        let err = solver.integrate(&Explosive, &[1.0], 0.0, 2.0).unwrap_err();
        assert!(
            matches!(
                err,
                StepError::NonFiniteState | StepError::StepSizeUnderflow | StepError::TooManySteps
            ),
            "{err:?}"
        );
    }

    #[test]
    fn zero_span_is_identity() {
        let solver = Rkf45::new(AdaptiveOptions::default());
        let traj = solver.integrate(&Decay, &[2.5], 1.0, 1.0).unwrap();
        assert_eq!(traj.len(), 1);
        assert_eq!(traj.last_state(), &[2.5]);
    }

    #[test]
    fn display_of_errors() {
        assert!(StepError::StepSizeUnderflow.to_string().contains("stiff"));
        assert!(StepError::TooManySteps.to_string().contains("steps"));
    }
}
