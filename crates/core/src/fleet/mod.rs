//! Fleet-scale serving: many vehicle sessions, bounded resources.
//!
//! The paper evaluates one vehicle at a time; this module turns the
//! single-vehicle co-simulation into a **session engine** able to serve
//! thousands of concurrent vehicles on a fixed thread budget — the
//! substrate behind `evsim serve` and `evsim loadgen`:
//!
//! * [`BoundedQueue`] — MPMC command queue with explicit backpressure
//!   (`push` parks, `try_push` sheds; capacity is a hard bound);
//! * [`run_bounded`] — scoped worker pool that replaced the
//!   thread-per-cell fan-out in [`crate::experiments::sweep`];
//! * [`Slab`] — stable-key arena for per-shard session state;
//! * [`VehicleSession`] — one vehicle's plant + exclusively-owned
//!   controller (the warm-start isolation boundary);
//! * [`FleetEngine`] — shard-per-core, shared-nothing session registry;
//! * [`run_loadgen`] — deterministic synthetic-fleet generator and
//!   throughput/latency report.

mod bounded;
mod engine;
mod loadgen;
mod pool;
mod session;
mod slab;

pub use bounded::{BoundedQueue, TryPushError};
pub use engine::{FleetConfig, FleetEngine, FleetError, FleetStats, ShardStats};
pub use loadgen::{
    render_loadgen_report, run_loadgen, run_loadgen_on, run_loadgen_traced, LoadgenConfig,
    LoadgenReport,
};
pub use pool::{available_workers, run_bounded};
pub use session::{SessionSummary, VehicleSession};
pub use slab::Slab;
