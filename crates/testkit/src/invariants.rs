//! Physics-invariant checkers over step-level simulation traces.
//!
//! Every check is a statement that must hold for *any* correct
//! controller/plant pairing, independent of calibration: SoC stays in
//! bounds and only rises under regeneration, the BMS-metered power
//! decomposes into motor + HVAC + accessories, the cabin stays inside
//! the envelope the actuators can physically reach, and the HVAC never
//! exceeds the power caps of the paper's constraint set C1–C10.
//!
//! The checks run *online* through [`InvariantObserver`] (an
//! [`ev_core::StepObserver`]), so attaching one to a simulation or a
//! sweep cell validates every step of the run, or *offline* over a
//! recorded trace via [`check_trace`].

use ev_core::{EvParams, SimulationResult, StepObserver, StepRecord};
use serde::{Deserialize, Serialize};

/// Tolerances and physical envelopes the invariants are checked against,
/// derived from the simulated vehicle's parameter set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InvariantConfig {
    /// Lower SoC bound (%).
    pub soc_min: f64,
    /// Upper SoC bound (%).
    pub soc_max: f64,
    /// Heating-coil power cap (W, C8).
    pub max_heating_power: f64,
    /// Cooling-coil power cap (W, C9).
    pub max_cooling_power: f64,
    /// Fan power cap (W, C10).
    pub max_fan_power: f64,
    /// Supply-flow lower bound (kg/s, C1).
    pub min_flow: f64,
    /// Supply-flow upper bound (kg/s, C1).
    pub max_flow: f64,
    /// Recirculation upper bound (C7).
    pub max_recirculation: f64,
    /// Coldest coil the evaporator can produce (°C, C5).
    pub min_coil_temp: f64,
    /// Hottest supply air the heater can produce (°C, C6).
    pub max_supply_temp: f64,
    /// BMS discharge clamp (W).
    pub max_discharge_power: f64,
    /// BMS charge (regeneration) clamp (W).
    pub max_charge_power: f64,
    /// Constant accessory power (W).
    pub accessory_power: f64,
    /// Slack below the coldest actuator-reachable cabin temperature (K).
    pub cabin_margin_k: f64,
    /// Slack above ambient for a solar-soaked, unconditioned cabin (K).
    pub solar_soak_margin_k: f64,
    /// Absolute tolerance on the per-step power decomposition (W).
    pub power_tol_w: f64,
    /// Absolute tolerance on coil/fan power caps (W).
    pub cap_tol_w: f64,
    /// Relative tolerance on the cumulative energy bookkeeping.
    pub energy_rel_tol: f64,
    /// Numerical slack on SoC monotonicity (%).
    pub soc_eps: f64,
}

impl InvariantConfig {
    /// Derives the envelopes from the vehicle parameters (BMS clamps are
    /// the `ev_battery::Bms` defaults).
    #[must_use]
    pub fn from_params(params: &EvParams) -> Self {
        Self {
            soc_min: 0.0,
            soc_max: 100.0,
            max_heating_power: params.hvac.max_heating_power.value(),
            max_cooling_power: params.hvac.max_cooling_power.value(),
            max_fan_power: params.hvac.max_fan_power.value(),
            min_flow: params.hvac.min_flow.value(),
            max_flow: params.hvac.max_flow.value(),
            max_recirculation: params.hvac.max_recirculation,
            min_coil_temp: params.hvac.min_coil_temp.value(),
            max_supply_temp: params.hvac.max_supply_temp.value(),
            max_discharge_power: 90_000.0,
            max_charge_power: 50_000.0,
            accessory_power: params.accessory_power.value(),
            cabin_margin_k: 2.0,
            solar_soak_margin_k: 20.0,
            power_tol_w: 1e-6,
            cap_tol_w: 1.0,
            energy_rel_tol: 1e-9,
            soc_eps: 1e-9,
        }
    }
}

impl Default for InvariantConfig {
    fn default() -> Self {
        Self::from_params(&EvParams::nissan_leaf_like())
    }
}

/// One violated physics invariant, anchored to the step that broke it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum InvariantViolation {
    /// SoC left `[soc_min, soc_max]`.
    SocOutOfBounds {
        /// Offending step.
        step: usize,
        /// Offending SoC (%).
        soc: f64,
    },
    /// SoC increased while the battery was discharging.
    SocRoseWithoutRegen {
        /// Offending step.
        step: usize,
        /// SoC before the step (%).
        from: f64,
        /// SoC after the step (%).
        to: f64,
        /// Battery power of the step (W, positive = discharge).
        battery_power: f64,
    },
    /// The metered battery power does not decompose into
    /// motor + HVAC + accessories (after the BMS clamp).
    PowerDecomposition {
        /// Offending step.
        step: usize,
        /// Metered battery power (W).
        metered: f64,
        /// Clamped sum of the component powers (W).
        expected: f64,
    },
    /// The integral of the component powers disagrees with the
    /// BMS-metered energy over the whole trace.
    EnergyBookkeeping {
        /// ∫ battery power dt (J).
        metered_j: f64,
        /// ∫ clamp(motor + HVAC + accessories) dt (J).
        expected_j: f64,
    },
    /// Cabin temperature left the actuator-reachable envelope.
    CabinUnreachable {
        /// Offending step.
        step: usize,
        /// Offending cabin temperature (°C).
        cabin: f64,
        /// Envelope lower bound at that step (°C).
        lo: f64,
        /// Envelope upper bound at that step (°C).
        hi: f64,
    },
    /// An HVAC channel exceeded its envelope (C1, C7–C10).
    HvacEnvelope {
        /// Offending step.
        step: usize,
        /// Which channel (`"heating"`, `"cooling"`, `"fan"`, `"flow"`,
        /// `"recirculation"`).
        channel: String,
        /// Observed value.
        value: f64,
        /// Allowed bound.
        bound: f64,
    },
    /// The sample timebase is not uniform.
    NonUniformTime {
        /// Offending step.
        step: usize,
        /// Observed time delta (s).
        observed_dt: f64,
        /// Declared sample period (s).
        expected_dt: f64,
    },
    /// The assembled result disagrees with the observed stream.
    ResultMismatch {
        /// What disagreed.
        what: String,
        /// Value from the result.
        result: f64,
        /// Value from the observed stream.
        observed: f64,
    },
}

impl InvariantViolation {
    /// The simulated step the violation occurred at. `None` for the
    /// whole-trace checks ([`Self::EnergyBookkeeping`],
    /// [`Self::ResultMismatch`]), which have no single offending step.
    #[must_use]
    pub fn step(&self) -> Option<usize> {
        match self {
            Self::SocOutOfBounds { step, .. }
            | Self::SocRoseWithoutRegen { step, .. }
            | Self::PowerDecomposition { step, .. }
            | Self::CabinUnreachable { step, .. }
            | Self::HvacEnvelope { step, .. }
            | Self::NonUniformTime { step, .. } => Some(*step),
            Self::EnergyBookkeeping { .. } | Self::ResultMismatch { .. } => None,
        }
    }
}

impl core::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::SocOutOfBounds { step, soc } => {
                write!(f, "step {step}: SoC {soc} % out of bounds")
            }
            Self::SocRoseWithoutRegen {
                step,
                from,
                to,
                battery_power,
            } => write!(
                f,
                "step {step}: SoC rose {from} → {to} % while discharging at {battery_power} W"
            ),
            Self::PowerDecomposition {
                step,
                metered,
                expected,
            } => write!(
                f,
                "step {step}: battery power {metered} W != motor+HVAC+accessories {expected} W"
            ),
            Self::EnergyBookkeeping {
                metered_j,
                expected_j,
            } => write!(
                f,
                "cycle energy mismatch: metered {metered_j} J vs component integral {expected_j} J"
            ),
            Self::CabinUnreachable {
                step,
                cabin,
                lo,
                hi,
            } => write!(
                f,
                "step {step}: cabin {cabin} °C outside actuator-reachable [{lo}, {hi}] °C"
            ),
            Self::HvacEnvelope {
                step,
                channel,
                value,
                bound,
            } => write!(
                f,
                "step {step}: HVAC {channel} = {value} beyond envelope bound {bound}"
            ),
            Self::NonUniformTime {
                step,
                observed_dt,
                expected_dt,
            } => write!(
                f,
                "step {step}: time delta {observed_dt} s != sample period {expected_dt} s"
            ),
            Self::ResultMismatch {
                what,
                result,
                observed,
            } => write!(
                f,
                "result/{what}: {result} disagrees with observed stream {observed}"
            ),
        }
    }
}

/// Outcome of an invariant pass: how many violations occurred and the
/// first few, verbatim.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct InvariantReport {
    /// Profile the trace came from (empty if unknown).
    pub profile: String,
    /// Controller that drove it (empty if unknown).
    pub controller: String,
    /// Steps checked.
    pub steps: usize,
    /// Total violations (recorded + dropped).
    pub total: usize,
    /// The first violations, up to [`InvariantObserver::MAX_RECORDED`].
    pub recorded: Vec<InvariantViolation>,
}

impl InvariantReport {
    /// True when no invariant was violated.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.total == 0
    }

    /// Panics with the full report if any invariant was violated — the
    /// one-liner for tests.
    ///
    /// # Panics
    ///
    /// Panics when the report is not clean.
    pub fn assert_clean(&self) {
        assert!(self.is_clean(), "{self}");
    }
}

impl core::fmt::Display for InvariantReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.is_clean() {
            return write!(
                f,
                "invariants clean over {} steps ({} × {})",
                self.steps, self.profile, self.controller
            );
        }
        writeln!(
            f,
            "{} invariant violation(s) over {} steps ({} × {}):",
            self.total, self.steps, self.profile, self.controller
        )?;
        for v in &self.recorded {
            writeln!(f, "  - {v}")?;
        }
        if self.total > self.recorded.len() {
            writeln!(f, "  … and {} more", self.total - self.recorded.len())?;
        }
        Ok(())
    }
}

/// A [`StepObserver`] that checks every physics invariant online and
/// accumulates a report.
#[derive(Debug, Clone)]
pub struct InvariantObserver {
    config: InvariantConfig,
    report: InvariantReport,
    prev_soc: Option<f64>,
    prev_t: Option<f64>,
    /// ∫ metered battery power dt (J).
    metered_j: f64,
    /// ∫ clamp(component sum) dt (J).
    expected_j: f64,
    /// ∫ max(battery power, 0) dt (J) — the result's energy metric.
    drained_j: f64,
    last_soc: f64,
}

impl InvariantObserver {
    /// How many violations are kept verbatim; the rest only count.
    pub const MAX_RECORDED: usize = 16;

    /// Creates an observer with the given envelopes.
    #[must_use]
    pub fn new(config: InvariantConfig) -> Self {
        Self {
            config,
            report: InvariantReport::default(),
            prev_soc: None,
            prev_t: None,
            metered_j: 0.0,
            expected_j: 0.0,
            drained_j: 0.0,
            last_soc: f64::NAN,
        }
    }

    /// Creates an observer with envelopes derived from `params`.
    #[must_use]
    pub fn for_params(params: &EvParams) -> Self {
        Self::new(InvariantConfig::from_params(params))
    }

    fn push(&mut self, v: InvariantViolation) {
        self.report.total += 1;
        if self.report.recorded.len() < Self::MAX_RECORDED {
            self.report.recorded.push(v);
        }
    }

    /// The report accumulated so far (complete after `on_finish`).
    #[must_use]
    pub fn report(&self) -> &InvariantReport {
        &self.report
    }

    /// Consumes the observer, returning the report.
    #[must_use]
    pub fn into_report(self) -> InvariantReport {
        self.report
    }
}

impl StepObserver for InvariantObserver {
    fn on_start(&mut self, profile: &str, controller: &str, _steps: usize) {
        self.report = InvariantReport {
            profile: profile.to_owned(),
            controller: controller.to_owned(),
            ..InvariantReport::default()
        };
        self.prev_soc = None;
        self.prev_t = None;
        self.metered_j = 0.0;
        self.expected_j = 0.0;
        self.drained_j = 0.0;
    }

    fn on_step(&mut self, r: &StepRecord) {
        let c = self.config;
        self.report.steps += 1;
        let step = r.step;

        // SoC bounded in [soc_min, soc_max].
        if !(c.soc_min..=c.soc_max).contains(&r.soc) || !r.soc.is_finite() {
            self.push(InvariantViolation::SocOutOfBounds { step, soc: r.soc });
        }
        // SoC non-increasing during discharge: it may only rise when the
        // metered power is charging the pack (regeneration).
        if let Some(prev) = self.prev_soc {
            if r.soc > prev + c.soc_eps && r.battery_power >= 0.0 {
                self.push(InvariantViolation::SocRoseWithoutRegen {
                    step,
                    from: prev,
                    to: r.soc,
                    battery_power: r.battery_power,
                });
            }
        }
        self.prev_soc = Some(r.soc);
        self.last_soc = r.soc;

        // Per-step power decomposition through the BMS clamp.
        let expected = r
            .plant_power()
            .clamp(-c.max_charge_power, c.max_discharge_power);
        if (r.battery_power - expected).abs() > c.power_tol_w {
            self.push(InvariantViolation::PowerDecomposition {
                step,
                metered: r.battery_power,
                expected,
            });
        }
        self.metered_j += r.battery_power * r.dt;
        self.expected_j += expected * r.dt;
        self.drained_j += r.battery_power.max(0.0) * r.dt;

        // Cabin inside the actuator-reachable envelope: nothing on board
        // can push the air below the coldest coil (or below a colder
        // ambient), nor above the hottest supply air (or above a
        // solar-soaked ambient).
        let lo = c.min_coil_temp.min(r.ambient) - c.cabin_margin_k;
        let hi = c.max_supply_temp.max(r.ambient + c.solar_soak_margin_k);
        if !(lo..=hi).contains(&r.cabin_temp) {
            self.push(InvariantViolation::CabinUnreachable {
                step,
                cabin: r.cabin_temp,
                lo,
                hi,
            });
        }

        // HVAC envelopes (C1, C7–C10 of the paper's constraint set).
        let checks: [(&str, f64, f64, f64); 5] = [
            (
                "heating",
                r.heating_power,
                -c.cap_tol_w,
                c.max_heating_power + c.cap_tol_w,
            ),
            (
                "cooling",
                r.cooling_power,
                -c.cap_tol_w,
                c.max_cooling_power + c.cap_tol_w,
            ),
            (
                "fan",
                r.fan_power,
                -c.cap_tol_w,
                c.max_fan_power + c.cap_tol_w,
            ),
            ("flow", r.flow, c.min_flow - 1e-9, c.max_flow + 1e-9),
            (
                "recirculation",
                r.recirculation,
                -1e-9,
                c.max_recirculation + 1e-9,
            ),
        ];
        for (channel, value, lo, hi) in checks {
            if !(lo..=hi).contains(&value) {
                self.push(InvariantViolation::HvacEnvelope {
                    step,
                    channel: channel.to_owned(),
                    value,
                    bound: if value < lo { lo } else { hi },
                });
            }
        }

        // Uniform timebase.
        if let Some(prev_t) = self.prev_t {
            let observed_dt = r.t - prev_t;
            if (observed_dt - r.dt).abs() > 1e-9 {
                self.push(InvariantViolation::NonUniformTime {
                    step,
                    observed_dt,
                    expected_dt: r.dt,
                });
            }
        }
        self.prev_t = Some(r.t);
    }

    fn on_finish(&mut self, result: &SimulationResult) {
        let c = self.config;
        // Whole-cycle energy bookkeeping: the BMS-metered integral must
        // match the component integral.
        let scale = self.metered_j.abs().max(1.0);
        if (self.metered_j - self.expected_j).abs() > c.energy_rel_tol * scale + 1e-3 {
            self.push(InvariantViolation::EnergyBookkeeping {
                metered_j: self.metered_j,
                expected_j: self.expected_j,
            });
        }
        // The assembled result must agree with the observed stream.
        if result.series.t.len() != self.report.steps {
            self.push(InvariantViolation::ResultMismatch {
                what: "series length".to_owned(),
                result: result.series.t.len() as f64,
                observed: self.report.steps as f64,
            });
        }
        let energy_kwh = self.drained_j / 3.6e6;
        if (result.metrics().energy.value() - energy_kwh).abs() > 1e-9 {
            self.push(InvariantViolation::ResultMismatch {
                what: "energy".to_owned(),
                result: result.metrics().energy.value(),
                observed: energy_kwh,
            });
        }
        if (result.metrics().final_soc - self.last_soc).abs() > 1e-12 {
            self.push(InvariantViolation::ResultMismatch {
                what: "final SoC".to_owned(),
                result: result.metrics().final_soc,
                observed: self.last_soc,
            });
        }
    }
}

/// Replays a recorded trace through an [`InvariantObserver`] (offline
/// variant of attaching the observer to the run; the result-consistency
/// checks are skipped because no result is available).
#[must_use]
pub fn check_trace(config: InvariantConfig, records: &[StepRecord]) -> InvariantReport {
    let mut obs = InvariantObserver::new(config);
    obs.on_start("", "", records.len());
    for r in records {
        obs.on_step(r);
    }
    // Run the cumulative energy check without a result.
    let scale = obs.metered_j.abs().max(1.0);
    if (obs.metered_j - obs.expected_j).abs() > config.energy_rel_tol * scale + 1e-3 {
        let (metered_j, expected_j) = (obs.metered_j, obs.expected_j);
        obs.push(InvariantViolation::EnergyBookkeeping {
            metered_j,
            expected_j,
        });
    }
    obs.into_report()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ev_core::ControllerMode;

    fn sane_record(k: usize) -> StepRecord {
        StepRecord {
            step: k,
            t: k as f64,
            dt: 1.0,
            motor_power: 8_000.0,
            heating_power: 0.0,
            cooling_power: 2_000.0,
            fan_power: 100.0,
            accessory_power: 300.0,
            battery_power: 10_400.0,
            soc: 95.0 - 0.001 * k as f64,
            cabin_temp: 25.0,
            pack_temp: 32.0,
            ambient: 35.0,
            solar: 400.0,
            supply_temp: 12.0,
            coil_temp: 12.0,
            recirculation: 0.6,
            flow: 0.15,
            mode: ControllerMode::Cooling,
        }
    }

    fn trace(n: usize) -> Vec<StepRecord> {
        (0..n).map(sane_record).collect()
    }

    #[test]
    fn clean_trace_passes() {
        let report = check_trace(InvariantConfig::default(), &trace(50));
        assert!(report.is_clean(), "{report}");
        report.assert_clean();
        assert_eq!(report.steps, 50);
    }

    #[test]
    fn soc_bound_violation_is_caught() {
        let mut t = trace(5);
        t[3].soc = 101.0;
        let report = check_trace(InvariantConfig::default(), &t);
        assert!(report
            .recorded
            .iter()
            .any(|v| matches!(v, InvariantViolation::SocOutOfBounds { step: 3, .. })));
    }

    #[test]
    fn soc_rise_without_regen_is_caught() {
        let mut t = trace(5);
        t[2].soc = 96.0; // rises while discharging at +10.4 kW
        let report = check_trace(InvariantConfig::default(), &t);
        assert!(report
            .recorded
            .iter()
            .any(|v| matches!(v, InvariantViolation::SocRoseWithoutRegen { step: 2, .. })));
    }

    #[test]
    fn soc_rise_with_regen_is_fine() {
        let mut t = trace(5);
        t[2].battery_power = -4_000.0;
        t[2].motor_power = -6_400.0;
        t[2].soc = 95.01;
        // Restore monotonicity afterwards.
        t[3].soc = 95.0;
        t[4].soc = 94.99;
        let report = check_trace(InvariantConfig::default(), &t);
        assert!(
            !report
                .recorded
                .iter()
                .any(|v| matches!(v, InvariantViolation::SocRoseWithoutRegen { .. })),
            "{report}"
        );
    }

    #[test]
    fn power_decomposition_violation_is_caught() {
        let mut t = trace(5);
        t[1].battery_power += 50.0; // no longer motor+hvac+accessories
        let report = check_trace(InvariantConfig::default(), &t);
        assert!(report
            .recorded
            .iter()
            .any(|v| matches!(v, InvariantViolation::PowerDecomposition { step: 1, .. })));
        // The cumulative bookkeeping also drifts by 50 J > 1 mJ + rel.
        assert!(report
            .recorded
            .iter()
            .any(|v| matches!(v, InvariantViolation::EnergyBookkeeping { .. })));
    }

    #[test]
    fn bms_clamped_power_decomposes_cleanly() {
        let mut t = trace(5);
        // 100 kW requested, BMS clamps at 90 kW: still a clean step.
        t[2].motor_power = 97_600.0;
        t[2].battery_power = 90_000.0;
        let report = check_trace(InvariantConfig::default(), &t);
        assert!(
            !report
                .recorded
                .iter()
                .any(|v| matches!(v, InvariantViolation::PowerDecomposition { .. })),
            "{report}"
        );
    }

    #[test]
    fn unreachable_cabin_is_caught() {
        let mut t = trace(5);
        t[4].cabin_temp = -30.0; // colder than any coil
        let report = check_trace(InvariantConfig::default(), &t);
        assert!(report
            .recorded
            .iter()
            .any(|v| matches!(v, InvariantViolation::CabinUnreachable { step: 4, .. })));
    }

    #[test]
    fn hvac_envelope_violations_are_caught_per_channel() {
        let config = InvariantConfig::default();
        for (mutate, channel) in [
            (
                (|r: &mut StepRecord| r.heating_power = 1e5) as fn(&mut StepRecord),
                "heating",
            ),
            (|r: &mut StepRecord| r.cooling_power = 1e5, "cooling"),
            (|r: &mut StepRecord| r.fan_power = 1e5, "fan"),
            (|r: &mut StepRecord| r.flow = 9.0, "flow"),
            (|r: &mut StepRecord| r.recirculation = 1.5, "recirculation"),
        ] {
            let mut t = trace(3);
            mutate(&mut t[1]);
            // Keep the decomposition consistent so only the envelope fires.
            t[1].battery_power = t[1]
                .plant_power()
                .clamp(-config.max_charge_power, config.max_discharge_power);
            let report = check_trace(config, &t);
            assert!(
                report.recorded.iter().any(|v| matches!(
                    v,
                    InvariantViolation::HvacEnvelope { channel: c, .. } if c == channel
                )),
                "expected {channel} violation: {report}"
            );
        }
    }

    #[test]
    fn non_uniform_time_is_caught() {
        let mut t = trace(5);
        t[3].t += 0.5;
        let report = check_trace(InvariantConfig::default(), &t);
        assert!(report
            .recorded
            .iter()
            .any(|v| matches!(v, InvariantViolation::NonUniformTime { .. })));
    }

    #[test]
    fn report_caps_recorded_violations() {
        let mut t = trace(100);
        for r in &mut t {
            r.soc = 150.0;
        }
        let report = check_trace(InvariantConfig::default(), &t);
        assert_eq!(report.recorded.len(), InvariantObserver::MAX_RECORDED);
        assert!(report.total >= 100);
        let text = report.to_string();
        assert!(text.contains("more"), "{text}");
    }

    #[test]
    fn violations_render_and_round_trip() {
        let v = InvariantViolation::SocOutOfBounds {
            step: 7,
            soc: 120.0,
        };
        assert!(v.to_string().contains("step 7"));
        let json = serde_json::to_string(&v).unwrap();
        let back: InvariantViolation = serde_json::from_str(&json).unwrap();
        assert_eq!(back, v);
    }
}
