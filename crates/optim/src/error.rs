//! Error type for the optimization crate.

use ev_linalg::LinalgError;

/// Errors returned by the QP and SQP solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum OptimError {
    /// Problem data has inconsistent dimensions.
    DimensionMismatch {
        /// Human-readable description of which operand mismatched.
        what: &'static str,
    },
    /// The Hessian is not symmetric (within tolerance).
    AsymmetricHessian,
    /// The interior-point iteration limit was exceeded before the KKT
    /// residuals met tolerance; the problem may be infeasible or unbounded.
    QpMaxIterations {
        /// Final complementarity measure μ.
        mu: f64,
        /// Final primal residual norm.
        primal_residual: f64,
        /// Final dual residual norm.
        dual_residual: f64,
    },
    /// The QP's constraints admit no feasible point: the interior-point
    /// method exhausted its budget with the complementarity measure
    /// converged but the primal residual stuck far from zero, the
    /// signature of an inconsistent constraint set.
    QpInfeasible {
        /// Final primal residual norm (the irreducible constraint gap).
        primal_residual: f64,
    },
    /// The QP's objective decreases without bound over the feasible set:
    /// the iterates diverged while staying (near-)feasible. Typical for
    /// an LP (zero Hessian) missing a bound in the descent direction.
    QpUnbounded {
        /// Iterate magnitude at which divergence was declared.
        z_norm: f64,
    },
    /// A candidate solution failed independent KKT verification (see
    /// [`crate::verify_kkt`]).
    KktViolation {
        /// Worst KKT residual of the candidate point.
        residual: f64,
        /// Problem-data scale the residual is judged relative to.
        scale: f64,
    },
    /// A linear system inside the solver failed to factor.
    Linalg(LinalgError),
    /// Problem data contains NaN or infinity.
    NonFiniteData,
    /// The SQP line search could not find an acceptable step.
    LineSearchFailed {
        /// Iteration at which the search stalled.
        iteration: usize,
    },
    /// The SQP iteration limit was exceeded.
    SqpMaxIterations {
        /// Final KKT residual norm.
        kkt_residual: f64,
    },
}

impl core::fmt::Display for OptimError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::DimensionMismatch { what } => {
                write!(f, "dimension mismatch in problem data: {what}")
            }
            Self::AsymmetricHessian => write!(f, "hessian matrix must be symmetric"),
            Self::QpMaxIterations {
                mu,
                primal_residual,
                dual_residual,
            } => write!(
                f,
                "qp did not converge: mu={mu:.2e}, primal={primal_residual:.2e}, dual={dual_residual:.2e}"
            ),
            Self::QpInfeasible { primal_residual } => write!(
                f,
                "qp constraints are infeasible: primal residual stuck at {primal_residual:.2e}"
            ),
            Self::QpUnbounded { z_norm } => write!(
                f,
                "qp objective is unbounded below: iterates diverged to ‖z‖={z_norm:.2e}"
            ),
            Self::KktViolation { residual, scale } => write!(
                f,
                "candidate point violates the KKT conditions: residual {residual:.2e} (data scale {scale:.2e})"
            ),
            Self::Linalg(e) => write!(f, "linear algebra failure: {e}"),
            Self::NonFiniteData => write!(f, "problem data contains non-finite values"),
            Self::LineSearchFailed { iteration } => {
                write!(f, "line search failed at sqp iteration {iteration}")
            }
            Self::SqpMaxIterations { kkt_residual } => {
                write!(f, "sqp did not converge: kkt residual {kkt_residual:.2e}")
            }
        }
    }
}

impl std::error::Error for OptimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for OptimError {
    fn from(e: LinalgError) -> Self {
        Self::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = OptimError::DimensionMismatch { what: "g vs H" };
        assert!(e.to_string().contains("g vs H"));
        assert!(OptimError::AsymmetricHessian
            .to_string()
            .contains("symmetric"));
        let q = OptimError::QpMaxIterations {
            mu: 1e-3,
            primal_residual: 1e-2,
            dual_residual: 1e-4,
        };
        assert!(q.to_string().contains("did not converge"));
    }

    #[test]
    fn linalg_error_is_source() {
        use std::error::Error;
        let e = OptimError::from(LinalgError::Singular);
        assert!(e.source().is_some());
    }
}
