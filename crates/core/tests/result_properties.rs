//! Property-based tests for the simulation result layer: any
//! well-formed time series must produce consistent lengths, finite
//! figures of merit and a lossless serde round-trip.

use ev_battery::SocStats;
use ev_core::{SimulationResult, TimeSeries};
use ev_units::{Celsius, Kilometers, Seconds};
use proptest::prelude::*;

/// Builds a rectangular series from generated channels.
fn series(cabin: &[f64], hvac: &[f64], battery: &[f64], soc0: f64) -> TimeSeries {
    let n = cabin.len();
    TimeSeries {
        t: (0..n).map(|k| k as f64).collect(),
        cabin: cabin.to_vec(),
        motor_power: battery
            .iter()
            .zip(hvac)
            .map(|(b, h)| b - h - 300.0)
            .collect(),
        hvac_power: hvac.to_vec(),
        heating_power: vec![0.0; n],
        cooling_power: hvac.iter().map(|h| (h - 100.0).max(0.0)).collect(),
        fan_power: hvac.iter().map(|h| h.min(100.0)).collect(),
        battery_power: battery.to_vec(),
        soc: (0..n).map(|k| soc0 - 0.002 * k as f64).collect(),
        pack_temp: vec![32.0; n],
    }
}

fn result(s: TimeSeries) -> SimulationResult {
    SimulationResult::new(
        "PROP",
        "on-off",
        Seconds::new(1.0),
        s,
        0.015,
        1500.0,
        SocStats {
            avg: 90.0,
            dev: 1.0,
        },
        (Celsius::new(21.0), Celsius::new(27.0)),
        Celsius::new(24.0),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lengths_stay_consistent(
        cabin in proptest::collection::vec(10.0f64..45.0, 1..150),
        hvac_w in 0.0f64..6_000.0,
        battery_w in -20_000.0f64..60_000.0,
    ) {
        let n = cabin.len();
        let r = result(series(&cabin, &vec![hvac_w; n], &vec![battery_w; n], 95.0));
        prop_assert_eq!(r.series.t.len(), n);
        prop_assert_eq!(r.series.cabin.len(), n);
        prop_assert_eq!(r.series.hvac_power.len(), n);
        prop_assert_eq!(r.series.battery_power.len(), n);
        prop_assert_eq!(r.series.soc.len(), n);
        prop_assert_eq!(r.series.pack_temp.len(), n);
    }

    #[test]
    fn metrics_are_finite_and_sane(
        cabin in proptest::collection::vec(10.0f64..45.0, 1..150),
        hvac_w in 0.0f64..6_000.0,
        battery_w in -20_000.0f64..60_000.0,
    ) {
        let n = cabin.len();
        let r = result(series(&cabin, &vec![hvac_w; n], &vec![battery_w; n], 95.0));
        let m = r.metrics();
        prop_assert!(m.avg_hvac_power.value().is_finite());
        prop_assert!((m.avg_hvac_power.value() - hvac_w / 1000.0).abs() < 1e-9);
        prop_assert!(m.energy.value().is_finite());
        prop_assert!(m.energy.value() >= 0.0);
        // Energy is the integral of the positive battery power only.
        let expected_kwh = battery_w.max(0.0) * n as f64 / 3.6e6;
        prop_assert!((m.energy.value() - expected_kwh).abs() < 1e-9);
        prop_assert!(m.final_soc.is_finite());
        prop_assert!((m.final_soc - (95.0 - 0.002 * (n - 1) as f64)).abs() < 1e-9);
        prop_assert!(m.delta_soh_milli_percent.is_finite());
        prop_assert!(m.comfort_violations <= n);
        prop_assert!(m.max_comfort_excursion >= 0.0);
        // mean_temp_error is NaN exactly when the cabin never enters the
        // comfort band; otherwise it must be finite and non-negative.
        let entered = cabin.iter().any(|&tz| (21.0..=27.0).contains(&tz));
        if entered {
            prop_assert!(m.mean_temp_error.is_finite() && m.mean_temp_error >= 0.0);
        } else {
            prop_assert!(m.mean_temp_error.is_nan());
        }
    }

    #[test]
    fn distance_normalization_is_consistent(
        cabin in proptest::collection::vec(20.0f64..30.0, 2..100),
        battery_w in 1_000.0f64..60_000.0,
        km in 0.5f64..100.0,
    ) {
        let n = cabin.len();
        let r = result(series(&cabin, &vec![500.0; n], &vec![battery_w; n], 95.0))
            .with_distance(Kilometers::new(km));
        let m = r.metrics();
        prop_assert!(m.kwh_per_100km.is_finite());
        prop_assert!((m.kwh_per_100km - m.energy.value() / km * 100.0).abs() < 1e-9);
    }

    #[test]
    fn simulation_result_serde_round_trips(
        cabin in proptest::collection::vec(10.0f64..45.0, 1..80),
        hvac_w in 0.0f64..6_000.0,
        battery_w in -20_000.0f64..60_000.0,
    ) {
        // NaN has no JSON representation (it serializes as null), so pin
        // one in-band sample to keep mean_temp_error finite.
        let mut cabin = cabin;
        cabin[0] = 24.0;
        let n = cabin.len();
        let r = result(series(&cabin, &vec![hvac_w; n], &vec![battery_w; n], 95.0));
        let json = serde_json::to_string(&r).expect("serializes");
        let back: SimulationResult = serde_json::from_str(&json).expect("deserializes");
        // Bitwise equality of every channel; metric equality where
        // comparable (mean_temp_error may be NaN, which != NaN).
        prop_assert_eq!(&back.series, &r.series);
        prop_assert_eq!(&back.profile, &r.profile);
        prop_assert_eq!(&back.controller, &r.controller);
        prop_assert!(back.dt == r.dt);
        prop_assert!(back.metrics().final_soc == r.metrics().final_soc);
        prop_assert!(back.metrics().energy.value() == r.metrics().energy.value());
        prop_assert!(back.metrics().mean_temp_error == r.metrics().mean_temp_error);
    }
}
