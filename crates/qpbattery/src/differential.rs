//! Differential-oracle harness: one generated instance, every
//! factorization backend, cross-checked answers.
//!
//! The interior-point solver can factor its reduced KKT system three
//! ways (dense LU, dense Cholesky, banded LDLᵀ). They must agree — the
//! LU path doubles as the correctness oracle for the structured paths.
//! For each [`GeneratedQp`] this module solves:
//!
//! 1. the dense problem with default options (**dense LU** oracle),
//! 2. the dense problem with `prefer_dense_cholesky` (**dense
//!    Cholesky** where eligible, i.e. no equality rows),
//! 3. the sparse-Jacobian view with its declared [`QpStructure`]
//!    (**banded LDLᵀ** for structured instances),
//!
//! then checks that every backend's solution satisfies the KKT
//! conditions independently, that primal solutions agree pairwise to
//! the family's tolerance, that objectives agree, and — for banded
//! instances — that the banded backend actually engaged and the
//! *measured* bandwidth does not exceed the *declared* one. Unsolvable
//! families (infeasible/unbounded/zero-variable) must come back as
//! routable `Err` values from every backend, never a panic or an
//! accepted "solution".
//!
//! Any violation is recorded on the report together with a
//! self-contained free-format MPS reproducer ([`crate::mps::write_mps`])
//! so a failure found by fuzzing five layers deep becomes a battery
//! fixture candidate.

use ev_optim::{kkt_report, OptimError, QpKktBackend, QpSolution, QpSolver, QpSolverOptions};
use ev_testkit::qpgen::{generate, GeneratedQp, QpFamily};

use crate::mps::write_mps;

/// Interior-point tolerance used for every backend run; tighter than
/// the cross-check tolerances below so agreement failures indicate
/// backend bugs, not slack convergence.
const SOLVE_TOL: f64 = 1e-10;
/// Relative KKT-residual bound each backend's answer must satisfy.
const KKT_TOL: f64 = 1e-6;
/// Relative objective agreement between backends.
const OBJECTIVE_TOL: f64 = 1e-8;

/// Outcome of one backend on one instance.
#[derive(Debug, Clone)]
pub struct BackendRun {
    /// Which configuration produced this run.
    pub label: &'static str,
    /// The solver's verdict.
    pub outcome: Result<QpSolution, OptimError>,
}

/// Everything the harness learned about one instance.
#[derive(Debug, Clone)]
pub struct DifferentialReport {
    /// Instance name (from the generator).
    pub name: String,
    /// Generator family of the instance.
    pub family: QpFamily,
    /// Per-backend outcomes, oracle first.
    pub runs: Vec<BackendRun>,
    /// Human-readable cross-check violations (empty when clean).
    pub failures: Vec<String>,
    /// Free-format MPS reproducer, present iff `failures` is non-empty.
    pub reproducer: Option<String>,
}

impl DifferentialReport {
    /// True when every cross-check passed.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// Formats the failures and reproducer for a test assertion message.
    #[must_use]
    pub fn describe(&self) -> String {
        let mut s = format!("instance {} ({:?}):\n", self.name, self.family);
        for f in &self.failures {
            s.push_str("  - ");
            s.push_str(f);
            s.push('\n');
        }
        if let Some(mps) = &self.reproducer {
            s.push_str("reproducer (save as .mps and add to the battery):\n");
            s.push_str(mps);
        }
        s
    }
}

fn solver(prefer_dense_cholesky: bool) -> QpSolver {
    QpSolver::new(QpSolverOptions {
        tolerance: SOLVE_TOL,
        max_iterations: 200,
        prefer_dense_cholesky,
        ..QpSolverOptions::default()
    })
}

/// Runs one instance through all backends and cross-checks the answers.
#[must_use]
pub fn differential_solve(qp: &GeneratedQp) -> DifferentialReport {
    let mut failures: Vec<String> = Vec::new();
    let mut runs: Vec<BackendRun> = Vec::new();

    // Backend 1 & 2: dense matrices, LU oracle and (where eligible)
    // dense Cholesky.
    match qp.to_problem() {
        Ok(problem) => {
            runs.push(BackendRun {
                label: "dense-lu",
                outcome: solver(false).solve(&problem),
            });
            runs.push(BackendRun {
                label: "dense-cholesky",
                outcome: solver(true).solve(&problem),
            });
        }
        Err(e) => {
            if qp.family.is_solvable() {
                failures.push(format!("building the dense problem failed: {e}"));
            } else {
                runs.push(BackendRun {
                    label: "dense-lu",
                    outcome: Err(e),
                });
            }
        }
    }

    // Backend 3: sparse-Jacobian view with the declared structure; this
    // is the only path that can take the banded LDLᵀ factorization.
    match qp.view() {
        Ok(view) => {
            runs.push(BackendRun {
                label: "banded-view",
                outcome: solver(false).solve_view(&view),
            });
            if qp.family == QpFamily::Banded {
                let declared = qp
                    .structure
                    .as_ref()
                    .expect("banded instances declare structure")
                    .bandwidth();
                match view.planned_bandwidth() {
                    Some(measured) if measured <= declared => {}
                    Some(measured) => failures.push(format!(
                        "measured bandwidth {measured} exceeds declared {declared}"
                    )),
                    None => {
                        failures.push("banded instance did not produce a banded plan".to_owned())
                    }
                }
            }
        }
        Err(e) => {
            if qp.family.is_solvable() {
                failures.push(format!("building the sparse view failed: {e}"));
            }
        }
    }

    if qp.family.is_solvable() {
        cross_check_solvable(qp, &runs, &mut failures);
    } else {
        // Unsolvable families: a routable error is the correct answer.
        // (Reaching this line at all means no backend panicked or hung.)
        for run in &runs {
            if let Ok(sol) = &run.outcome {
                failures.push(format!(
                    "{} accepted a {:?} instance as solved (objective {:.6e})",
                    run.label, qp.family, sol.objective
                ));
            }
        }
    }

    let reproducer = (!failures.is_empty()).then(|| {
        write_mps(
            &qp.name, &qp.h, &qp.g, &qp.a_eq, &qp.b_eq, &qp.a_in, &qp.b_in,
        )
    });
    DifferentialReport {
        name: qp.name.clone(),
        family: qp.family,
        runs,
        failures,
        reproducer,
    }
}

fn cross_check_solvable(qp: &GeneratedQp, runs: &[BackendRun], failures: &mut Vec<String>) {
    // Every backend must solve, and every solution must independently
    // satisfy the KKT conditions of the *dense* problem statement.
    let dense = match qp.to_problem() {
        Ok(p) => p,
        Err(_) => return, // already recorded above
    };
    let view = dense.as_view();
    let mut solved: Vec<(&'static str, &QpSolution)> = Vec::new();
    for run in runs {
        match &run.outcome {
            Ok(sol) => {
                match kkt_report(&view, &sol.z, &sol.y_eq, &sol.lambda_in) {
                    Ok(report) if report.satisfied(KKT_TOL) => {}
                    Ok(report) => failures.push(format!(
                        "{}: KKT residual {:.3e} exceeds {:.1e} x scale {:.3e}",
                        run.label,
                        report.max_residual(),
                        KKT_TOL,
                        report.scale
                    )),
                    Err(e) => failures.push(format!("{}: KKT report failed: {e}", run.label)),
                }
                solved.push((run.label, sol));
            }
            Err(e) => failures.push(format!(
                "{} failed on a solvable {:?} instance: {e}",
                run.label, qp.family
            )),
        }
    }
    if qp.family == QpFamily::Banded {
        if let Some((_, sol)) = solved.iter().find(|(l, _)| *l == "banded-view") {
            if sol.kkt_backend != QpKktBackend::Banded {
                failures.push(format!(
                    "banded-view run used {:?} instead of the banded backend",
                    sol.kkt_backend
                ));
            }
        }
    }

    // Pairwise agreement against the first successful run (the oracle).
    let tol = qp.family.primal_agreement_tol();
    if let Some(&(oracle_label, oracle)) = solved.first() {
        for &(label, sol) in &solved[1..] {
            let mut max_diff = 0.0f64;
            let mut max_mag = 0.0f64;
            for (a, b) in oracle.z.iter().zip(&sol.z) {
                max_diff = max_diff.max((a - b).abs());
                max_mag = max_mag.max(a.abs().max(b.abs()));
            }
            let rel = max_diff / (1.0 + max_mag);
            if rel > tol {
                failures.push(format!(
                    "primal disagreement {oracle_label} vs {label}: {rel:.3e} > {tol:.1e}"
                ));
            }
            let obj_rel = (oracle.objective - sol.objective).abs() / (1.0 + oracle.objective.abs());
            if obj_rel > OBJECTIVE_TOL {
                failures.push(format!(
                    "objective disagreement {oracle_label} vs {label}: {obj_rel:.3e}"
                ));
            }
        }
    }
}

/// Runs `count` seeded instances (deterministic: same `seed` and
/// `count` always produce the same instances and verdicts) and returns
/// every report. Callers assert `all(is_clean)` and print
/// [`DifferentialReport::describe`] for the dirty ones.
#[must_use]
pub fn fuzz(seed: u64, count: usize) -> Vec<DifferentialReport> {
    (0..count)
        .map(|i| differential_solve(&generate(seed, i)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ev_testkit::qpgen::generate_family;

    #[test]
    fn clean_on_each_family_smoke() {
        for family in QpFamily::ALL {
            let qp = generate_family(7, family);
            let report = differential_solve(&qp);
            assert!(report.is_clean(), "{}", report.describe());
            assert!(!report.runs.is_empty());
        }
    }

    #[test]
    fn reproducer_is_parseable_mps() {
        // Force a "failure" by checking a deliberately broken manifest:
        // fabricate a report through the public path instead — generate
        // an instance, dump its reproducer manually, and reparse it.
        let qp = generate_family(11, QpFamily::WellConditioned);
        let mps = write_mps(
            &qp.name, &qp.h, &qp.g, &qp.a_eq, &qp.b_eq, &qp.a_in, &qp.b_in,
        );
        let reloaded = crate::mps::parse_mps(&mps, crate::mps::MpsFormat::Free)
            .expect("reproducer must reparse");
        assert_eq!(reloaded.num_vars(), qp.num_vars());
        assert_eq!(reloaded.b_in.len(), qp.b_in.len());
        assert_eq!(reloaded.b_eq.len(), qp.b_eq.len());
    }

    #[test]
    fn fuzz_is_deterministic() {
        let a = fuzz(42, 14);
        let b = fuzz(42, 14);
        assert_eq!(a.len(), b.len());
        for (ra, rb) in a.iter().zip(&b) {
            assert_eq!(ra.name, rb.name);
            assert_eq!(ra.failures, rb.failures);
            assert_eq!(ra.runs.len(), rb.runs.len());
            for (xa, xb) in ra.runs.iter().zip(&rb.runs) {
                match (&xa.outcome, &xb.outcome) {
                    (Ok(sa), Ok(sb)) => assert_eq!(sa.z, sb.z, "{} not bitwise stable", ra.name),
                    (Err(_), Err(_)) => {}
                    _ => panic!("{}: outcome flipped between runs", ra.name),
                }
            }
        }
    }
}
