//! Compressed sparse row (CSR) matrices for structured constraint
//! Jacobians.
//!
//! The MPC inequality Jacobian has a fixed sparsity pattern (a handful of
//! entries per constraint row) that a dense [`Matrix`](crate::Matrix)
//! wastes both memory and flops on. [`SparseMatrix`] stores only the
//! nonzeros in CSR form and exposes an allocation-reusing row-by-row
//! builder so a hot loop can rewrite the same pattern every iteration
//! without touching the allocator.

use crate::{LinalgError, Matrix};

/// A sparse matrix in compressed sparse row (CSR) format.
///
/// Rows are appended through [`SparseMatrix::reset`] /
/// [`SparseMatrix::push`] / [`SparseMatrix::finish_row`]; rebuilding an
/// existing instance reuses its buffers, so steady-state refills are
/// allocation-free.
///
/// # Examples
///
/// ```
/// use ev_linalg::SparseMatrix;
///
/// // [ 2 0 1 ]
/// // [ 0 3 0 ]
/// let mut a = SparseMatrix::new();
/// a.reset(3);
/// a.push(0, 2.0);
/// a.push(2, 1.0);
/// a.finish_row();
/// a.push(1, 3.0);
/// a.finish_row();
///
/// let mut y = [0.0; 2];
/// a.matvec(&[1.0, 1.0, 1.0], &mut y).unwrap();
/// assert_eq!(y, [3.0, 3.0]);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SparseMatrix {
    cols: usize,
    /// `row_ptr[r]..row_ptr[r+1]` bounds row `r` in `col_idx`/`values`.
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl SparseMatrix {
    /// Creates an empty `0 × 0` matrix ready for [`SparseMatrix::reset`].
    #[must_use]
    pub fn new() -> Self {
        Self {
            cols: 0,
            row_ptr: vec![0],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Clears the matrix to zero rows of width `cols`, keeping buffer
    /// capacity so the rebuild does not allocate.
    pub fn reset(&mut self, cols: usize) {
        self.cols = cols;
        self.row_ptr.clear();
        self.row_ptr.push(0);
        self.col_idx.clear();
        self.values.clear();
    }

    /// Appends an entry to the row currently being built.
    ///
    /// Columns must be pushed in strictly ascending order within a row
    /// (checked in debug builds); zeros may be pushed and are kept.
    pub fn push(&mut self, col: usize, value: f64) {
        debug_assert!(col < self.cols, "column {col} out of bounds {}", self.cols);
        debug_assert!(
            self.col_idx.len() == *self.row_ptr.last().expect("row_ptr non-empty")
                || *self.col_idx.last().expect("non-empty") < col,
            "columns must be strictly ascending within a row"
        );
        self.col_idx.push(col);
        self.values.push(value);
    }

    /// Closes the row currently being built (possibly empty).
    pub fn finish_row(&mut self) {
        self.row_ptr.push(self.col_idx.len());
    }

    /// Number of (finished) rows.
    #[inline]
    #[must_use]
    pub fn rows(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// Number of columns.
    #[inline]
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    #[inline]
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Column indices and values of row `r`, as parallel slices.
    #[inline]
    #[must_use]
    pub fn row(&self, r: usize) -> (&[usize], &[f64]) {
        let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// Entry `(r, c)` by linear scan of row `r` (zero if not stored).
    #[must_use]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        let (cols, vals) = self.row(r);
        match cols.binary_search(&c) {
            Ok(k) => vals[k],
            Err(_) => 0.0,
        }
    }

    /// Largest absolute stored entry (zero for an empty matrix).
    #[must_use]
    pub fn norm_max(&self) -> f64 {
        self.values.iter().fold(0.0, |m, v| m.max(v.abs()))
    }

    /// Computes `out = A·x`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `x.len() != cols()`
    /// or `out.len() != rows()`.
    pub fn matvec(&self, x: &[f64], out: &mut [f64]) -> Result<(), LinalgError> {
        if x.len() != self.cols || out.len() != self.rows() {
            return Err(LinalgError::DimensionMismatch {
                expected: (self.rows(), self.cols),
                actual: (out.len(), x.len()),
            });
        }
        for r in 0..self.rows() {
            let (cols, vals) = self.row(r);
            let mut sum = 0.0;
            for (c, v) in cols.iter().zip(vals) {
                sum += v * x[*c];
            }
            out[r] = sum;
        }
        Ok(())
    }

    /// Computes `out = Aᵀ·x`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `x.len() != rows()`
    /// or `out.len() != cols()`.
    pub fn matvec_transposed(&self, x: &[f64], out: &mut [f64]) -> Result<(), LinalgError> {
        if x.len() != self.rows() || out.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                expected: (self.cols, self.rows()),
                actual: (out.len(), x.len()),
            });
        }
        out.fill(0.0);
        for r in 0..self.rows() {
            let (cols, vals) = self.row(r);
            let xr = x[r];
            if xr == 0.0 {
                continue;
            }
            for (c, v) in cols.iter().zip(vals) {
                out[*c] += v * xr;
            }
        }
        Ok(())
    }

    /// Densifies into a row-major [`Matrix`].
    #[must_use]
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows(), self.cols.max(1));
        for r in 0..self.rows() {
            let (cols, vals) = self.row(r);
            for (c, v) in cols.iter().zip(vals) {
                m.set(r, *c, *v);
            }
        }
        m
    }

    /// Builds a CSR copy of `a`, dropping entries with `|a_ij| <= drop_tol`.
    #[must_use]
    pub fn from_dense(a: &Matrix, drop_tol: f64) -> Self {
        let mut s = Self::new();
        s.reset(a.cols());
        for r in 0..a.rows() {
            for c in 0..a.cols() {
                let v = a.get(r, c);
                if v.abs() > drop_tol {
                    s.push(c, v);
                }
            }
            s.finish_row();
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> SparseMatrix {
        // [ 1 0 2 ]
        // [ 0 0 0 ]
        // [ 0 3 4 ]
        let mut a = SparseMatrix::new();
        a.reset(3);
        a.push(0, 1.0);
        a.push(2, 2.0);
        a.finish_row();
        a.finish_row();
        a.push(1, 3.0);
        a.push(2, 4.0);
        a.finish_row();
        a
    }

    #[test]
    fn shape_and_access() {
        let a = example();
        assert_eq!((a.rows(), a.cols(), a.nnz()), (3, 3, 4));
        assert_eq!(a.get(0, 2), 2.0);
        assert_eq!(a.get(1, 1), 0.0);
        assert_eq!(a.get(2, 1), 3.0);
        assert_eq!(a.norm_max(), 4.0);
        let (cols, vals) = a.row(2);
        assert_eq!(cols, &[1, 2]);
        assert_eq!(vals, &[3.0, 4.0]);
    }

    #[test]
    fn matvec_and_transpose_match_dense() {
        let a = example();
        let d = a.to_dense();
        let x = [1.0, -2.0, 0.5];
        let mut y = [0.0; 3];
        a.matvec(&x, &mut y).unwrap();
        assert_eq!(y.to_vec(), d.matvec(&x).unwrap());

        let mut yt = [0.0; 3];
        a.matvec_transposed(&x, &mut yt).unwrap();
        assert_eq!(yt.to_vec(), d.matvec_transposed(&x).unwrap());
    }

    #[test]
    fn from_dense_round_trips() {
        let d = example().to_dense();
        let s = SparseMatrix::from_dense(&d, 0.0);
        assert_eq!(s, example());
    }

    #[test]
    fn reset_reuses_buffers() {
        let mut a = example();
        let cap = (a.col_idx.capacity(), a.values.capacity());
        a.reset(3);
        a.push(1, 9.0);
        a.finish_row();
        assert_eq!((a.rows(), a.nnz()), (1, 1));
        assert_eq!(cap, (a.col_idx.capacity(), a.values.capacity()));
    }

    #[test]
    fn dimension_errors() {
        let a = example();
        let mut out = [0.0; 3];
        assert!(a.matvec(&[1.0, 2.0], &mut out).is_err());
        assert!(a.matvec_transposed(&[1.0, 2.0], &mut out).is_err());
    }
}
