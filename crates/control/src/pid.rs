//! PID temperature controller — the building block the fuzzy baseline
//! modulates, usable standalone.

use ev_hvac::{Hvac, HvacInput, HvacLimits};
use ev_units::Celsius;

use crate::{duty_to_input, ClimateController, ControlContext};

/// A classical PID controller on the cabin-temperature error, mapped onto
/// the HVAC actuators through a signed *duty* (−1 = full heating,
/// +1 = full cooling).
///
/// The paper notes that production automotive climate control is "mostly
/// done using switching On/Off … or fuzzy-based methodologies implemented
/// on PID controllers" (its Section I); this type is that PID layer.
///
/// # Examples
///
/// ```
/// use ev_control::{ClimateController, ControlContext, PidController};
/// use ev_hvac::{CabinParams, Hvac, HvacLimits, HvacParams, HvacState};
/// use ev_units::{Celsius, Percent, Seconds, Watts};
///
/// let hvac = Hvac::new(CabinParams::default(), HvacParams::default());
/// let mut pid = PidController::new(hvac, HvacLimits::default(), Celsius::new(24.0));
/// let ctx = ControlContext {
///     state: HvacState::new(Celsius::new(26.0)),
///     ambient: Celsius::new(35.0),
///     solar: Watts::new(400.0),
///     soc: Percent::new(90.0),
///     soc_avg: 92.0,
///     dt: Seconds::new(1.0),
///     elapsed: Seconds::ZERO,
///     preview: &[],
/// };
/// let input = pid.control(&ctx);
/// assert!(input.tc < ctx.state.tz); // cooling engaged
/// ```
#[derive(Debug, Clone)]
pub struct PidController {
    hvac: Hvac,
    limits: HvacLimits,
    target: Celsius,
    /// Proportional gain (duty per kelvin).
    pub kp: f64,
    /// Integral gain (duty per kelvin-second).
    pub ki: f64,
    /// Derivative gain (duty per kelvin/second).
    pub kd: f64,
    integral: f64,
    prev_error: Option<f64>,
}

impl PidController {
    /// Anti-windup bound on the integral term (in duty units).
    const INTEGRAL_LIMIT: f64 = 1.0;

    /// Creates a PID controller with gains tuned for the default cabin.
    #[must_use]
    pub fn new(hvac: Hvac, limits: HvacLimits, target: Celsius) -> Self {
        Self {
            hvac,
            limits,
            target,
            kp: 0.8,
            ki: 0.004,
            kd: 4.0,
            integral: 0.0,
            prev_error: None,
        }
    }

    /// Overrides the gains.
    #[must_use]
    pub fn with_gains(mut self, kp: f64, ki: f64, kd: f64) -> Self {
        self.kp = kp;
        self.ki = ki;
        self.kd = kd;
        self
    }

    /// The temperature target.
    #[must_use]
    pub fn target(&self) -> Celsius {
        self.target
    }

    /// Resets the internal state (integral, derivative memory).
    pub fn reset(&mut self) {
        self.integral = 0.0;
        self.prev_error = None;
    }
}

impl ClimateController for PidController {
    fn name(&self) -> &'static str {
        "pid"
    }

    fn reset_session(&mut self) {
        self.reset();
    }

    fn control(&mut self, ctx: &ControlContext<'_>) -> HvacInput {
        let dt = ctx.dt.value();
        // Positive error = too hot = cooling duty.
        let error = ctx.state.tz.diff(self.target);
        self.integral = (self.integral + self.ki * error * dt)
            .clamp(-Self::INTEGRAL_LIMIT, Self::INTEGRAL_LIMIT);
        let derivative = match self.prev_error {
            Some(prev) => (error - prev) / dt,
            None => 0.0,
        };
        self.prev_error = Some(error);
        let duty = (self.kp * error + self.integral + self.kd * derivative).clamp(-1.0, 1.0);
        duty_to_input(&self.hvac, &self.limits, ctx, duty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ev_hvac::{CabinParams, HvacParams, HvacState};
    use ev_units::{Percent, Seconds, Watts};

    fn pid() -> PidController {
        PidController::new(
            Hvac::new(CabinParams::default(), HvacParams::default()),
            HvacLimits::default(),
            Celsius::new(24.0),
        )
    }

    fn ctx_at(tz: f64, to: f64) -> ControlContext<'static> {
        ControlContext {
            state: HvacState::new(Celsius::new(tz)),
            ambient: Celsius::new(to),
            solar: Watts::new(400.0),
            soc: Percent::new(90.0),
            soc_avg: 92.0,
            dt: Seconds::new(1.0),
            elapsed: Seconds::ZERO,
            preview: &[],
        }
    }

    #[test]
    fn cooling_engages_when_hot() {
        let mut c = pid();
        let input = c.control(&ctx_at(27.0, 35.0));
        assert!(input.tc.value() < 27.0);
        assert!(input.mz.value() > 0.02);
    }

    #[test]
    fn heating_engages_when_cold() {
        let mut c = pid();
        let input = c.control(&ctx_at(20.0, 0.0));
        assert!(input.ts > input.tc, "heater must be active");
    }

    #[test]
    fn integral_is_bounded() {
        let mut c = pid();
        for _ in 0..10_000 {
            let _ = c.control(&ctx_at(30.0, 40.0));
        }
        assert!(c.integral.abs() <= PidController::INTEGRAL_LIMIT + 1e-12);
    }

    #[test]
    fn closed_loop_settles_near_target() {
        let hvac = Hvac::new(CabinParams::default(), HvacParams::default());
        let mut c = pid();
        let mut state = HvacState::new(Celsius::new(32.0));
        for _ in 0..2000 {
            let ctx = ControlContext {
                state,
                ..ctx_at(state.tz.value(), 35.0)
            };
            let input = c.control(&ctx);
            state = hvac
                .step(
                    state,
                    &input,
                    Celsius::new(35.0),
                    Watts::new(400.0),
                    Seconds::new(1.0),
                )
                .0;
        }
        assert!(
            (state.tz.value() - 24.0).abs() < 0.8,
            "settled at {}",
            state.tz
        );
    }

    #[test]
    fn reset_clears_memory() {
        let mut c = pid();
        let _ = c.control(&ctx_at(30.0, 35.0));
        c.reset();
        assert_eq!(c.integral, 0.0);
        assert!(c.prev_error.is_none());
    }
}
