* Ill-conditioned diagonal QP, condition number 1e8:
* min sum_i d_i (x_i - 1)^2, d = (1e-4, 1e-2, 1, 1e2, 1e4),
* s.t. x1 + x2 + x3 + x4 + x5 = 4, x free.
* Analytic optimum: f* = 1 / sum_i (1/d_i) = 1e4 / 101010101.
NAME QPILLCOND
ROWS
 N OBJ
 E SUM
COLUMNS
 X1 OBJ -0.0002 SUM 1.0
 X2 OBJ -0.02 SUM 1.0
 X3 OBJ -2.0 SUM 1.0
 X4 OBJ -200.0 SUM 1.0
 X5 OBJ -20000.0 SUM 1.0
RHS
 RHS SUM 4.0 OBJ -10101.0101
BOUNDS
 FR BND X1
 FR BND X2
 FR BND X3
 FR BND X4
 FR BND X5
QUADOBJ
 X1 X1 0.0002
 X2 X2 0.02
 X3 X3 2.0
 X4 X4 200.0
 X5 X5 20000.0
ENDATA
