//! Reproduction of every table and figure in the paper's evaluation
//! (Section IV).
//!
//! | Function | Paper artifact |
//! |---|---|
//! | [`fig1`] | Fig. 1 — EV vs ICE power-type split across ambient temperatures |
//! | [`fig5`] | Fig. 5 — cabin-temperature traces per controller |
//! | [`fig6`] | Fig. 6 — MPC pre-cooling against the motor-power profile |
//! | [`fig7`] | Fig. 7 — SoH degradation per drive profile (% of On/Off) |
//! | [`fig8`] | Fig. 8 — average HVAC power per drive profile |
//! | [`table1`] | Table I — HVAC power and ΔSoH improvement vs ambient |
//! | [`ablation_horizon`], [`ablation_w2`] | extensions: MPC design-knob ablations |
//! | [`robustness_sweep`] | extension: forecast-noise robustness |
//!
//! Each function runs the actual simulations (nothing is tabulated from
//! stored data) and returns typed rows; `render_*` helpers format them as
//! the text tables printed by the `repro` binary. Absolute magnitudes
//! depend on our calibration; the claims that must reproduce are the
//! *orderings and relative improvements* (see `EXPERIMENTS.md`).

mod ablation;
mod fig1;
mod fig5;
mod fig6;
mod fig7;
mod fig8;
mod full_cycle;
mod plot;
mod robustness;
mod sweep;
mod table1;

pub use ablation::{ablation_horizon, ablation_w2, render_ablation, AblationRow};
pub use fig1::{fig1, render_fig1, Fig1Row};
pub use fig5::{fig5, render_fig5, Fig5Series};
pub use fig6::{fig6, render_fig6, Fig6Data};
pub use fig7::{fig7, fig7_from, render_fig7, Fig7Row};
pub use fig8::{fig8, fig8_from, render_fig8, Fig8Row};
pub use full_cycle::{full_cycle, render_full_cycle, FullCycleRow};
pub use plot::ascii_chart;
pub use robustness::{render_robustness, robustness_sweep, NoisyPreview, RobustnessRow};
pub use sweep::{
    evaluation_sweep, evaluation_sweep_at, evaluation_sweep_observed, evaluation_sweep_run,
    evaluation_sweep_run_recorded, find, render_sweep_report, SweepCell, SweepCellResult,
    SweepOutcome, SweepResult,
};
pub use table1::{render_table1, table1, table1_row, Table1Row, TABLE1_AMBIENTS};

use ev_drive::{AmbientConditions, DriveCycle, DriveProfile};
use ev_units::{Celsius, Seconds};

use crate::EvParams;

/// Ambient temperature used by the drive-profile comparisons (Figs. 5–8):
/// a hot summer day, the cooling-dominated regime of the paper's Fig. 6
/// ("in this case outside is warmer").
pub const COMPARISON_AMBIENT_C: f64 = 35.0;

/// Builds the standard 1 Hz profile for a cycle at a constant ambient.
#[must_use]
pub fn profile_at(cycle: &DriveCycle, ambient_c: f64) -> DriveProfile {
    DriveProfile::from_cycle(
        cycle,
        AmbientConditions::constant(Celsius::new(ambient_c)),
        Seconds::new(1.0),
    )
}

/// The shared experiment parameter set: the Leaf-like EV with the paper's
/// comfort specification.
#[must_use]
pub fn experiment_params() -> EvParams {
    EvParams::nissan_leaf_like()
}

/// Formats a fixed-width table: a header row and data rows.
pub(crate) fn format_table(header: &[String], rows: &[Vec<String>]) -> String {
    let ncols = header.len();
    let mut widths: Vec<usize> = header.iter().map(String::len).collect();
    for row in rows {
        for (c, cell) in row.iter().enumerate().take(ncols) {
            widths[c] = widths[c].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| {
        let mut line = String::new();
        for (c, cell) in cells.iter().enumerate() {
            if c > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:>width$}", cell, width = widths[c]));
        }
        line
    };
    out.push_str(&fmt_row(header, &widths));
    out.push('\n');
    let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_builder_applies_ambient() {
        let p = profile_at(&DriveCycle::ece15(), 43.0);
        assert!(p.iter().all(|s| s.ambient.value() == 43.0));
    }

    #[test]
    fn format_table_aligns() {
        let t = format_table(
            &["a".into(), "long-header".into()],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("long-header"));
        assert!(lines[1].starts_with('-'));
    }
}
