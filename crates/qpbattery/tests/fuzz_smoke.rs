//! Fixed-seed differential fuzz smoke: 200 generated instances through
//! every KKT backend, fully offline and deterministic. This is the CI
//! `solver-battery` job's long pole; the seed is pinned so a red run is
//! reproducible with `cargo test -p ev-qpbattery --test fuzz_smoke`.

use ev_qpbattery::differential::fuzz;

const SEED: u64 = 0xDAC_2015;
const COUNT: usize = 200;

#[test]
fn two_hundred_instances_cross_check_clean() {
    let reports = fuzz(SEED, COUNT);
    assert_eq!(reports.len(), COUNT);
    let dirty: Vec<_> = reports.iter().filter(|r| !r.is_clean()).collect();
    if !dirty.is_empty() {
        let mut msg = format!(
            "{} of {COUNT} instances failed the differential cross-check:\n",
            dirty.len()
        );
        for report in &dirty {
            msg.push_str(&report.describe());
            msg.push('\n');
        }
        panic!("{msg}");
    }
    // Every generator family must actually appear in the sweep — a
    // round-robin regression that skipped, say, the infeasible family
    // would silently gut coverage.
    let mut families: Vec<_> = reports.iter().map(|r| format!("{:?}", r.family)).collect();
    families.sort_unstable();
    families.dedup();
    assert!(
        families.len() >= 7,
        "expected all 7 generator families in the sweep, saw {families:?}"
    );
}
