//! Simulation output: time series and the paper's figures of merit.

use ev_battery::SocStats;
use ev_units::{Celsius, Kilometers, KilowattHours, Kilowatts, Seconds};
use serde::{Deserialize, Serialize};

/// Per-sample time series recorded by a simulation run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    /// Sample times (s).
    pub t: Vec<f64>,
    /// Cabin temperature (°C).
    pub cabin: Vec<f64>,
    /// Electric-motor power (W).
    pub motor_power: Vec<f64>,
    /// Total HVAC power (W).
    pub hvac_power: Vec<f64>,
    /// HVAC heating component (W).
    pub heating_power: Vec<f64>,
    /// HVAC cooling component (W).
    pub cooling_power: Vec<f64>,
    /// HVAC fan component (W).
    pub fan_power: Vec<f64>,
    /// Battery power after BMS clamping (W).
    pub battery_power: Vec<f64>,
    /// State of charge (%).
    pub soc: Vec<f64>,
    /// Battery-pack temperature (°C).
    #[serde(default)]
    pub pack_temp: Vec<f64>,
}

/// The figures of merit the paper reports for each run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// ΔSoH of the discharge cycle in *milli-percent* of nominal capacity
    /// (Eq. 15; m% keeps typical values O(10)).
    pub delta_soh_milli_percent: f64,
    /// Battery lifetime if every cycle looked like this one (cycles to
    /// 80 % capacity).
    pub cycles_to_eol: f64,
    /// Average total HVAC power over the drive (the paper's Fig. 8 /
    /// Table I quantity).
    pub avg_hvac_power: Kilowatts,
    /// SoC statistics of the cycle (Eq. 16–17).
    pub soc_stats: SocStats,
    /// Final state of charge (%).
    pub final_soc: f64,
    /// Total energy drawn from the battery.
    pub energy: KilowattHours,
    /// Distance covered.
    pub distance: Kilometers,
    /// Consumption normalized to 100 km.
    pub kwh_per_100km: f64,
    /// Samples in which the cabin temperature sat outside the comfort
    /// zone *after* the initial pull-in.
    pub comfort_violations: usize,
    /// Worst comfort excursion after pull-in (K beyond the band; 0 if
    /// never violated).
    pub max_comfort_excursion: f64,
    /// Mean absolute cabin-temperature error from the target after
    /// pull-in (K).
    pub mean_temp_error: f64,
}

/// The full result of one simulated drive.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationResult {
    /// Profile name.
    pub profile: String,
    /// Controller name.
    pub controller: String,
    /// Sample period (s).
    pub dt: f64,
    /// Recorded time series.
    pub series: TimeSeries,
    metrics: Metrics,
}

impl SimulationResult {
    /// Assembles a result, computing the metrics from the series.
    ///
    /// # Panics
    ///
    /// Panics if the series is empty or its vectors disagree in length.
    #[must_use]
    #[allow(clippy::too_many_arguments)] // assembly point for one result
    pub fn new(
        profile: &str,
        controller: &str,
        dt: Seconds,
        series: TimeSeries,
        delta_soh_percent: f64,
        cycles_to_eol: f64,
        soc_stats: SocStats,
        comfort_band: (Celsius, Celsius),
        target: Celsius,
    ) -> Self {
        let n = series.t.len();
        assert!(n > 0, "simulation series must be non-empty");
        assert!(
            [
                series.cabin.len(),
                series.motor_power.len(),
                series.hvac_power.len(),
                series.heating_power.len(),
                series.cooling_power.len(),
                series.fan_power.len(),
                series.battery_power.len(),
                series.soc.len(),
                series.pack_temp.len(),
            ]
            .iter()
            .all(|&l| l == n),
            "series length mismatch"
        );
        let avg_hvac_w = series.hvac_power.iter().sum::<f64>() / n as f64;
        let energy_j: f64 = series
            .battery_power
            .iter()
            .map(|p| p.max(0.0) * dt.value())
            .sum();
        let mut distance_m = 0.0;
        // Distance from the motor-power series is not recoverable; the
        // simulation records it separately via `with_distance`.
        let _ = &mut distance_m;

        // Comfort accounting after the initial pull-in: start counting
        // once the cabin first enters the band.
        let (lo, hi) = (comfort_band.0.value(), comfort_band.1.value());
        let pull_in = series
            .cabin
            .iter()
            .position(|&tz| tz >= lo && tz <= hi)
            .unwrap_or(n);
        let mut violations = 0;
        let mut worst: f64 = 0.0;
        let mut abs_err = 0.0;
        let mut counted = 0usize;
        for &tz in &series.cabin[pull_in..] {
            counted += 1;
            abs_err += (tz - target.value()).abs();
            if tz < lo {
                violations += 1;
                worst = worst.max(lo - tz);
            } else if tz > hi {
                violations += 1;
                worst = worst.max(tz - hi);
            }
        }
        let metrics = Metrics {
            delta_soh_milli_percent: delta_soh_percent * 1000.0,
            cycles_to_eol,
            avg_hvac_power: Kilowatts::new(avg_hvac_w / 1000.0),
            soc_stats,
            final_soc: *series.soc.last().expect("non-empty"),
            energy: KilowattHours::new(energy_j / 3.6e6),
            distance: Kilometers::new(0.0),
            kwh_per_100km: 0.0,
            comfort_violations: violations,
            max_comfort_excursion: worst,
            mean_temp_error: if counted > 0 {
                abs_err / counted as f64
            } else {
                f64::NAN
            },
        };
        Self {
            profile: profile.to_owned(),
            controller: controller.to_owned(),
            dt: dt.value(),
            series,
            metrics,
        }
    }

    /// Attaches the driven distance and derives the normalized
    /// consumption.
    #[must_use]
    pub fn with_distance(mut self, distance: Kilometers) -> Self {
        self.metrics.distance = distance;
        self.metrics.kwh_per_100km = if distance.value() > 0.0 {
            self.metrics.energy.value() / distance.value() * 100.0
        } else {
            0.0
        };
        self
    }

    /// Borrows the computed metrics.
    #[must_use]
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Estimated driving range at this consumption, from a full usable
    /// battery of the given energy.
    #[must_use]
    pub fn range_estimate(&self, usable: KilowattHours) -> Kilometers {
        if self.metrics.kwh_per_100km <= 0.0 {
            return Kilometers::new(f64::INFINITY);
        }
        Kilometers::new(usable.value() / self.metrics.kwh_per_100km * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(cabin: Vec<f64>) -> TimeSeries {
        let n = cabin.len();
        TimeSeries {
            t: (0..n).map(|k| k as f64).collect(),
            cabin,
            motor_power: vec![10_000.0; n],
            hvac_power: vec![2_000.0; n],
            heating_power: vec![0.0; n],
            cooling_power: vec![1_900.0; n],
            fan_power: vec![100.0; n],
            battery_power: vec![12_300.0; n],
            soc: (0..n).map(|k| 95.0 - 0.01 * k as f64).collect(),
            pack_temp: vec![30.0; n],
        }
    }

    fn result(cabin: Vec<f64>) -> SimulationResult {
        SimulationResult::new(
            "TEST",
            "on-off",
            Seconds::new(1.0),
            series(cabin),
            0.02,
            1000.0,
            SocStats {
                avg: 94.0,
                dev: 0.5,
            },
            (Celsius::new(21.0), Celsius::new(27.0)),
            Celsius::new(24.0),
        )
    }

    #[test]
    fn metrics_basic_quantities() {
        let r = result(vec![24.0; 100]);
        let m = r.metrics();
        assert!((m.avg_hvac_power.value() - 2.0).abs() < 1e-12);
        assert!((m.delta_soh_milli_percent - 20.0).abs() < 1e-12);
        // 12.3 kW · 100 s = 0.3417 kWh.
        assert!((m.energy.value() - 12_300.0 * 100.0 / 3.6e6).abs() < 1e-9);
        assert_eq!(m.comfort_violations, 0);
        assert_eq!(m.max_comfort_excursion, 0.0);
        assert_eq!(m.mean_temp_error, 0.0);
    }

    #[test]
    fn comfort_counting_starts_after_pull_in() {
        // Starts hot (outside band), enters, then violates once.
        let mut cabin = vec![30.0, 29.0, 28.0, 26.0, 24.0];
        cabin.extend(vec![24.0; 10]);
        cabin.push(27.5); // violation of 0.5 K
        let r = result(cabin);
        assert_eq!(r.metrics().comfort_violations, 1);
        assert!((r.metrics().max_comfort_excursion - 0.5).abs() < 1e-12);
    }

    #[test]
    fn never_entering_band_counts_nothing() {
        let r = result(vec![35.0; 20]);
        assert_eq!(r.metrics().comfort_violations, 0);
        assert!(r.metrics().mean_temp_error.is_nan());
    }

    #[test]
    fn distance_and_range() {
        let r = result(vec![24.0; 3600]).with_distance(Kilometers::new(20.0));
        let m = r.metrics();
        // 12.3 kW for 1 h = 12.3 kWh over 20 km = 61.5 kWh/100km.
        assert!((m.kwh_per_100km - 61.5).abs() < 0.1);
        let range = r.range_estimate(KilowattHours::new(21.0));
        assert!((range.value() - 21.0 / 61.5 * 100.0).abs() < 0.1);
    }

    #[test]
    fn serde_round_trip() {
        let r = result(vec![24.0; 5]);
        let json = serde_json::to_string(&r).unwrap();
        let back: SimulationResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back.profile, "TEST");
        assert_eq!(back.series.t.len(), 5);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_ragged_series() {
        let mut s = series(vec![24.0; 10]);
        s.soc.pop();
        let _ = SimulationResult::new(
            "TEST",
            "x",
            Seconds::new(1.0),
            s,
            0.0,
            1.0,
            SocStats::default(),
            (Celsius::new(21.0), Celsius::new(27.0)),
            Celsius::new(24.0),
        );
    }
}
