//! Exporters: JSONL event stream, Prometheus text exposition, and a
//! human-readable end-of-run report table.

use std::io;
use std::path::Path;

use crate::registry::{HistogramSnapshot, Snapshot};

/// Format an f64 as a JSON value (`null` for non-finite values).
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

/// Format an f64 for the Prometheus text exposition format. Unlike
/// JSON, the format *has* spellings for non-finite values — `NaN`,
/// `+Inf`, `-Inf` — and those exact tokens are the only valid ones
/// (`null` or Rust's `inf` would break every scraper).
pub(crate) fn prom_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else if v.is_nan() {
        "NaN".to_string()
    } else if v > 0.0 {
        "+Inf".to_string()
    } else {
        "-Inf".to_string()
    }
}

/// Escape a metric name for embedding in a JSON string literal.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render the snapshot as JSON Lines: one self-describing object per
/// metric. Counters carry `type`, `name`, `value`; histograms carry
/// `type`, `name`, `count`, `sum`, `min`, `max` (null when empty) and a
/// `buckets` array of `{le, count}` pairs plus an `overflow` count.
pub fn to_jsonl(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    for c in &snapshot.counters {
        out.push_str(&format!(
            "{{\"type\":\"counter\",\"name\":{},\"value\":{}}}\n",
            json_str(&c.name),
            c.value
        ));
    }
    for h in &snapshot.histograms {
        let buckets: Vec<String> = h
            .bounds
            .iter()
            .zip(h.counts.iter())
            .map(|(le, count)| format!("{{\"le\":{},\"count\":{}}}", json_f64(*le), count))
            .collect();
        let overflow = h.counts.last().copied().unwrap_or(0);
        out.push_str(&format!(
            "{{\"type\":\"histogram\",\"name\":{},\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[{}],\"overflow\":{}}}\n",
            json_str(&h.name),
            h.count,
            json_f64(h.sum),
            json_f64(h.min),
            json_f64(h.max),
            buckets.join(","),
            overflow
        ));
    }
    out
}

/// Render the snapshot in the Prometheus text exposition format:
/// `# TYPE` headers, cumulative `_bucket{le="..."}` series ending in
/// `le="+Inf"`, and `_sum`/`_count` series per histogram.
pub fn to_prometheus(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    for c in &snapshot.counters {
        out.push_str(&format!("# TYPE {} counter\n", c.name));
        out.push_str(&format!("{} {}\n", c.name, c.value));
    }
    for h in &snapshot.histograms {
        out.push_str(&format!("# TYPE {} histogram\n", h.name));
        let mut cumulative = 0u64;
        for (le, count) in h.bounds.iter().zip(h.counts.iter()) {
            cumulative += count;
            out.push_str(&format!(
                "{}_bucket{{le=\"{}\"}} {}\n",
                h.name,
                prom_f64(*le),
                cumulative
            ));
        }
        out.push_str(&format!("{}_bucket{{le=\"+Inf\"}} {}\n", h.name, h.count));
        out.push_str(&format!("{}_sum {}\n", h.name, prom_f64(h.sum)));
        out.push_str(&format!("{}_count {}\n", h.name, h.count));
    }
    out
}

/// Write `contents` to `path` **atomically**, creating missing parent
/// directories first — so exporting to `target/telemetry/run.jsonl`
/// works even when no part of that tree exists yet.
///
/// The write lands in a uniquely-named temporary file in the *same
/// directory* and is published with a rename, so a concurrent reader —
/// a scraper polling the metrics file, a tail-follower on a report —
/// only ever sees the previous complete contents or the new complete
/// contents, never a truncated file mid-write.
///
/// # Errors
///
/// Propagates io errors from directory creation, the temporary-file
/// write, or the rename; on failure the temporary file is removed.
pub fn write_text(path: &Path, contents: &str) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    // Unique within the process (counter) and across processes (pid);
    // same directory as the target so the rename cannot cross a
    // filesystem boundary.
    static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let mut tmp_name = std::ffi::OsString::from(format!(".{}-", std::process::id()));
    tmp_name.push(file_name);
    tmp_name.push(format!(".{seq}.tmp"));
    let tmp = path.with_file_name(tmp_name);
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

/// Strictly validates a Prometheus text exposition, returning the
/// number of samples (non-comment lines) on success.
///
/// Enforces the failure modes this workspace has actually shipped:
/// every sample value and every `le` label must be a finite decimal or
/// one of the exact tokens `NaN`, `+Inf`, `-Inf` — `null` (JSON
/// leakage) and Rust's `inf`/`-inf` spellings are rejected — and metric
/// names must be well-formed.
///
/// # Errors
///
/// Returns a message naming the first offending line.
pub fn validate_prometheus(text: &str) -> Result<usize, String> {
    fn valid_name(name: &str) -> bool {
        !name.is_empty()
            && name
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    }
    fn valid_value(token: &str) -> Result<(), String> {
        if matches!(token, "NaN" | "+Inf" | "-Inf") {
            return Ok(());
        }
        // A finite parse is a valid decimal; non-finite spellings other
        // than the three exact tokens above ("inf", "nan", "null", …)
        // are rejected.
        match token.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(()),
            _ => Err(format!("invalid sample value {token:?}")),
        }
    }
    let mut samples = 0usize;
    for (idx, line) in text.lines().enumerate() {
        let err = |msg: String| Err(format!("line {}: {msg}", idx + 1));
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut parts = comment.split_whitespace();
            if parts.next() == Some("TYPE") {
                let Some(name) = parts.next() else {
                    return err("# TYPE without a metric name".to_string());
                };
                if !valid_name(name) {
                    return err(format!("bad metric name {name:?} in # TYPE"));
                }
                match parts.next() {
                    Some("counter" | "gauge" | "histogram" | "summary" | "untyped") => {}
                    other => return err(format!("bad metric type {other:?}")),
                }
            }
            continue;
        }
        let Some((series, value)) = line.rsplit_once(' ') else {
            return err("sample line without a value".to_string());
        };
        let name_part = match series.split_once('{') {
            Some((name, labels)) => {
                let Some(labels) = labels.strip_suffix('}') else {
                    return err("unterminated label set".to_string());
                };
                for label in labels.split(',').filter(|l| !l.is_empty()) {
                    let Some((key, quoted)) = label.split_once('=') else {
                        return err(format!("label without '=': {label:?}"));
                    };
                    let Some(val) = quoted.strip_prefix('"').and_then(|q| q.strip_suffix('"'))
                    else {
                        return err(format!("unquoted label value: {label:?}"));
                    };
                    if key == "le" {
                        if let Err(msg) = valid_value(val) {
                            return err(format!("bucket bound: {msg}"));
                        }
                    }
                }
                name
            }
            None => series,
        };
        if !valid_name(name_part) {
            return err(format!("bad metric name {name_part:?}"));
        }
        if let Err(msg) = valid_value(value) {
            return err(msg);
        }
        samples += 1;
    }
    Ok(samples)
}

fn fmt_cell(v: f64) -> String {
    if !v.is_finite() {
        "-".to_string()
    } else if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1e5 || v.abs() < 1e-3 {
        format!("{v:.3e}")
    } else {
        format!("{v:.4}")
    }
}

fn report_row(h: &HistogramSnapshot) -> [String; 7] {
    [
        h.name.clone(),
        h.count.to_string(),
        fmt_cell(h.mean()),
        fmt_cell(h.quantile(0.5)),
        fmt_cell(h.quantile(0.99)),
        fmt_cell(if h.count == 0 { f64::NAN } else { h.min }),
        fmt_cell(if h.count == 0 { f64::NAN } else { h.max }),
    ]
}

/// Render a fixed-width, human-readable report of every metric in the
/// snapshot: a counter table followed by a histogram table with count,
/// mean, p50, p99, min and max columns.
pub fn render_report(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    if snapshot.is_empty() {
        out.push_str("telemetry: no metrics recorded (registry disabled?)\n");
        return out;
    }
    if !snapshot.counters.is_empty() {
        let name_w = snapshot
            .counters
            .iter()
            .map(|c| c.name.len())
            .chain(["counter".len()])
            .max()
            .unwrap_or(7);
        out.push_str(&format!("{:<name_w$}  {:>12}\n", "counter", "value"));
        for c in &snapshot.counters {
            out.push_str(&format!("{:<name_w$}  {:>12}\n", c.name, c.value));
        }
    }
    if !snapshot.histograms.is_empty() {
        if !snapshot.counters.is_empty() {
            out.push('\n');
        }
        let header = [
            "histogram".to_string(),
            "count".to_string(),
            "mean".to_string(),
            "p50".to_string(),
            "p99".to_string(),
            "min".to_string(),
            "max".to_string(),
        ];
        let rows: Vec<[String; 7]> = snapshot.histograms.iter().map(report_row).collect();
        let mut widths = [0usize; 7];
        for row in std::iter::once(&header).chain(rows.iter()) {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let render = |row: &[String; 7]| {
            let mut line = format!("{:<w$}", row[0], w = widths[0]);
            for (cell, w) in row.iter().zip(widths.iter()).skip(1) {
                line.push_str(&format!("  {cell:>w$}"));
            }
            line.push('\n');
            line
        };
        out.push_str(&render(&header));
        for row in &rows {
            out.push_str(&render(row));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HistogramSpec, Registry};

    fn sample_snapshot() -> Snapshot {
        let reg = Registry::enabled();
        reg.counter("hits_total").add(42);
        let h = reg.histogram("lat_seconds", HistogramSpec::new(1e-3, 10.0, 3));
        for v in [0.002, 0.002, 0.05, 2.0, 30.0] {
            h.record(v);
        }
        reg.snapshot()
    }

    #[test]
    fn jsonl_one_object_per_line() {
        let out = to_jsonl(&sample_snapshot());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"type\":\"counter\""));
        assert!(lines[0].contains("\"value\":42"));
        assert!(lines[1].contains("\"type\":\"histogram\""));
        assert!(lines[1].contains("\"count\":5"));
        assert!(lines[1].contains("\"overflow\":2"));
    }

    #[test]
    fn jsonl_empty_histogram_extrema_are_null() {
        let reg = Registry::enabled();
        let _h = reg.histogram("empty", HistogramSpec::counts());
        let out = to_jsonl(&reg.snapshot());
        assert!(out.contains("\"min\":null"));
        assert!(out.contains("\"max\":null"));
    }

    #[test]
    fn prometheus_buckets_are_cumulative() {
        let out = to_prometheus(&sample_snapshot());
        assert!(out.contains("# TYPE hits_total counter\nhits_total 42\n"));
        assert!(out.contains("lat_seconds_bucket{le=\"0.001\"} 0\n"));
        assert!(out.contains("lat_seconds_bucket{le=\"0.01\"} 2\n"));
        assert!(out.contains("lat_seconds_bucket{le=\"0.1\"} 3\n"));
        assert!(out.contains("lat_seconds_bucket{le=\"+Inf\"} 5\n"));
        assert!(out.contains("lat_seconds_count 5\n"));
    }

    #[test]
    fn prometheus_nan_sum_uses_the_spec_spelling_not_null() {
        // Infinite samples pass the histogram's NaN filter, and a +Inf
        // followed by a -Inf leaves the running sum NaN; the exposition
        // format spells that `NaN` — `null` is JSON and breaks
        // scrapers.
        let reg = Registry::enabled();
        let h = reg.histogram("poisoned_seconds", HistogramSpec::new(1e-3, 10.0, 3));
        h.record(0.5);
        h.record(f64::INFINITY);
        h.record(f64::NEG_INFINITY);
        let out = to_prometheus(&reg.snapshot());
        assert!(out.contains("poisoned_seconds_sum NaN\n"), "{out}");
        assert!(!out.contains("null"), "JSON null leaked: {out}");
        assert!(!out.to_lowercase().contains(" inf"), "bare inf: {out}");
        validate_prometheus(&out).expect("exposition must stay parseable");
    }

    #[test]
    fn prometheus_infinite_bucket_bound_renders_plus_inf() {
        // An explicitly infinite bound must come out as `+Inf`, not
        // Rust's `inf` debug spelling.
        let snapshot = Snapshot {
            counters: Vec::new(),
            histograms: vec![HistogramSnapshot {
                name: "weird_seconds".to_string(),
                bounds: vec![1.0, f64::INFINITY],
                counts: vec![1, 2, 0],
                count: 3,
                sum: f64::NEG_INFINITY,
                min: f64::NEG_INFINITY,
                max: 1.0,
            }],
        };
        let out = to_prometheus(&snapshot);
        assert!(
            out.contains("weird_seconds_bucket{le=\"+Inf\"} 3\n"),
            "{out}"
        );
        assert!(out.contains("weird_seconds_sum -Inf\n"), "{out}");
        assert!(!out.contains("\"inf\""), "debug inf spelling leaked: {out}");
        validate_prometheus(&out).expect("exposition must stay parseable");
    }

    #[test]
    fn validator_counts_samples_and_rejects_json_and_debug_spellings() {
        let n = validate_prometheus(&to_prometheus(&sample_snapshot())).unwrap();
        // 1 counter + 3 finite buckets + +Inf bucket + sum + count.
        assert_eq!(n, 7);
        for bad in [
            "m_sum null\n",
            "m_bucket{le=\"inf\"} 1\n",
            "m_sum inf\n",
            "m_sum -inf\n",
            "m_sum nan\n",
            "m_bucket{le=0.1} 1\n",
            "9metric 1\n",
            "just_a_name\n",
            "# TYPE m weird\n",
        ] {
            assert!(validate_prometheus(bad).is_err(), "accepted {bad:?}");
        }
        assert!(validate_prometheus("m_sum NaN\nm_total +Inf\n\n# free comment\n").is_ok());
    }

    #[test]
    fn write_text_is_atomic_rename_leaving_no_temp_files() {
        let dir = std::env::temp_dir().join(format!(
            "ev-export-atomic-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("metrics.prom");
        write_text(&path, "first\n").unwrap();
        write_text(&path, "second\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "second\n");
        // The temp file must not survive a successful publish.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .filter(|n| n != "metrics.prom")
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_writers_and_readers_never_observe_a_torn_file() {
        let dir = std::env::temp_dir().join(format!(
            "ev-export-race-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shared.prom");
        let a = "a".repeat(64 * 1024);
        let b = "b".repeat(64 * 1024);
        write_text(&path, &a).unwrap();
        std::thread::scope(|scope| {
            let writer_path = path.clone();
            let (a, b) = (&a, &b);
            scope.spawn(move || {
                for i in 0..50 {
                    let contents = if i % 2 == 0 { b } else { a };
                    write_text(&writer_path, contents).unwrap();
                }
            });
            for _ in 0..200 {
                let seen = std::fs::read_to_string(&path).unwrap();
                assert!(
                    seen == *a || seen == *b,
                    "torn read: {} bytes, first char {:?}",
                    seen.len(),
                    seen.chars().next()
                );
            }
        });
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn report_mentions_all_metrics() {
        let out = render_report(&sample_snapshot());
        assert!(out.contains("hits_total"));
        assert!(out.contains("lat_seconds"));
        assert!(out.contains("p99"));
    }

    #[test]
    fn empty_report_is_flagged() {
        let out = render_report(&Snapshot::default());
        assert!(out.contains("no metrics recorded"));
    }

    #[test]
    fn prometheus_of_empty_or_disabled_registry_is_empty() {
        assert_eq!(to_prometheus(&Snapshot::default()), "");
        assert_eq!(to_prometheus(&Registry::disabled().snapshot()), "");
        // An enabled registry with no metrics registered is equally empty.
        assert_eq!(to_prometheus(&Registry::enabled().snapshot()), "");
        assert_eq!(to_jsonl(&Registry::disabled().snapshot()), "");
    }

    #[test]
    fn write_text_creates_parent_directories() {
        let dir = std::env::temp_dir().join(format!(
            "ev-export-write-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("a").join("b").join("metrics.jsonl");
        write_text(&path, "hello\n").expect("write succeeds");
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "hello\n");
        // Bare file names (no parent component) must also work. The
        // probe lands in the process cwd, so give it a unique name and
        // guard the removal against a failing expect.
        struct Probe(std::path::PathBuf);
        impl Drop for Probe {
            fn drop(&mut self) {
                let _ = std::fs::remove_file(&self.0);
            }
        }
        let probe = Probe(std::path::PathBuf::from(format!(
            ".write-text-probe-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        )));
        write_text(&probe.0, "x").expect("bare file name works");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
