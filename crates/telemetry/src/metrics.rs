//! Counter and histogram handles plus the shared atomic cores behind them.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::span::Span;

/// A monotonically increasing event counter.
///
/// Cloning is cheap (an `Arc` bump); a counter minted from a disabled
/// [`crate::Registry`] holds `None` and every operation is a no-op.
#[derive(Debug, Clone, Default)]
pub struct Counter(pub(crate) Option<Arc<AtomicU64>>);

impl Counter {
    /// A detached counter that discards every increment.
    pub fn disabled() -> Self {
        Counter(None)
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a disabled counter).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// Lock-free gauge core: an f64 stored as bits in an `AtomicU64`.
#[derive(Debug)]
pub(crate) struct GaugeCore {
    pub(crate) bits: AtomicU64,
}

impl GaugeCore {
    pub(crate) fn new() -> Self {
        GaugeCore {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

/// A point-in-time level: queue depth, live sessions, final totals.
///
/// Unlike a [`Counter`], a gauge can move both ways: [`set`](Self::set)
/// overwrites, [`add`](Self::add)/[`sub`](Self::sub) adjust. The value
/// is an f64 stored bitwise in an atomic, so updates are lock-free;
/// `add`/`sub` use a CAS loop. A gauge minted from a disabled
/// [`crate::Registry`] holds `None` and every operation is a no-op.
#[derive(Debug, Clone, Default)]
pub struct Gauge(pub(crate) Option<Arc<GaugeCore>>);

impl Gauge {
    /// A detached gauge that discards every update.
    pub fn disabled() -> Self {
        Gauge(None)
    }

    /// Overwrite the level.
    #[inline]
    pub fn set(&self, v: f64) {
        if let Some(core) = &self.0 {
            core.bits.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Move the level up by `v`.
    #[inline]
    pub fn add(&self, v: f64) {
        if let Some(core) = &self.0 {
            atomic_f64_update(&core.bits, |x| x + v);
        }
    }

    /// Move the level down by `v`.
    #[inline]
    pub fn sub(&self, v: f64) {
        self.add(-v);
    }

    /// Current level (0.0 for a disabled gauge).
    pub fn get(&self) -> f64 {
        self.0
            .as_ref()
            .map_or(0.0, |c| f64::from_bits(c.bits.load(Ordering::Relaxed)))
    }
}

/// Geometric (log-scale) bucket layout for a [`Histogram`].
///
/// Bucket `i` covers `(start·factor^(i-1), start·factor^i]`; everything at
/// or below `start` lands in bucket 0 and everything above the last bound
/// in a dedicated overflow bucket, so no sample is ever dropped. Extrema
/// and the sum are tracked exactly regardless of the bucket layout.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSpec {
    /// Upper bound of the first bucket.
    pub start: f64,
    /// Geometric growth factor between consecutive bucket bounds (> 1).
    pub factor: f64,
    /// Number of finite buckets (excluding the overflow bucket).
    pub buckets: usize,
}

impl HistogramSpec {
    /// Build a spec, clamping degenerate inputs to a usable layout.
    pub fn new(start: f64, factor: f64, buckets: usize) -> Self {
        HistogramSpec {
            start: if start > 0.0 { start } else { 1e-9 },
            factor: if factor > 1.0 { factor } else { 2.0 },
            buckets: buckets.max(1),
        }
    }

    /// Latency layout: 1 µs … ~100 s, 8 buckets per decade.
    pub fn latency_seconds() -> Self {
        HistogramSpec::new(1e-6, 10f64.powf(0.125), 64)
    }

    /// Small-count layout (iterations, active-set sizes): 1 … ~1000.
    pub fn counts() -> Self {
        HistogramSpec::new(1.0, 10f64.powf(0.125), 24)
    }

    /// Power layout: 1 W … 1 MW, 8 buckets per decade.
    pub fn power_watts() -> Self {
        HistogramSpec::new(1.0, 10f64.powf(0.125), 48)
    }

    /// Unit-interval layout for ratios such as SQP step lengths.
    pub fn unit() -> Self {
        HistogramSpec::new(1e-4, 10f64.powf(0.25), 16)
    }

    /// The finite bucket upper bounds in increasing order.
    pub fn bounds(&self) -> Vec<f64> {
        let mut bounds = Vec::with_capacity(self.buckets);
        let mut b = self.start;
        for _ in 0..self.buckets {
            bounds.push(b);
            b *= self.factor;
        }
        bounds
    }
}

/// One recorded exemplar: a concrete sample value together with the
/// trace-span id (from [`crate::TraceRing`]) of the observation that
/// produced it — the bridge from an aggregate bucket count back to the
/// exact span on the timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exemplar {
    /// The observed sample value.
    pub value: f64,
    /// The trace-span id the observation ran under (never 0; a 0 span
    /// id at record time means "no trace" and stores no exemplar).
    pub span_id: u64,
}

/// Per-bucket exemplar storage: a tiny seqlock (even `seq` = stable,
/// odd = mid-write). Writers that lose the CAS race simply drop their
/// exemplar — exemplars are best-effort samples, not counters — so the
/// record path never spins.
#[derive(Debug)]
pub(crate) struct ExemplarSlot {
    seq: AtomicU64,
    value_bits: AtomicU64,
    span_id: AtomicU64,
}

impl ExemplarSlot {
    fn new() -> Self {
        ExemplarSlot {
            seq: AtomicU64::new(0),
            value_bits: AtomicU64::new(0),
            span_id: AtomicU64::new(0),
        }
    }

    fn store(&self, value: f64, span_id: u64) {
        let seq = self.seq.load(Ordering::Relaxed);
        if seq & 1 == 1 {
            return; // another writer is mid-flight; drop this exemplar
        }
        if self
            .seq
            .compare_exchange(seq, seq + 1, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            return;
        }
        self.value_bits.store(value.to_bits(), Ordering::Relaxed);
        self.span_id.store(span_id, Ordering::Relaxed);
        self.seq.store(seq + 2, Ordering::Release);
    }

    pub(crate) fn load(&self) -> Option<Exemplar> {
        let before = self.seq.load(Ordering::Acquire);
        if before == 0 || before & 1 == 1 {
            return None; // never written, or caught mid-write
        }
        let value = f64::from_bits(self.value_bits.load(Ordering::Relaxed));
        let span_id = self.span_id.load(Ordering::Relaxed);
        if self.seq.load(Ordering::Acquire) != before {
            return None;
        }
        Some(Exemplar { value, span_id })
    }
}

/// Lock-free histogram core shared between all clones of a handle.
#[derive(Debug)]
pub(crate) struct HistogramCore {
    pub(crate) bounds: Vec<f64>,
    /// `bounds.len() + 1` slots; the last is the overflow bucket.
    pub(crate) counts: Vec<AtomicU64>,
    pub(crate) count: AtomicU64,
    pub(crate) sum_bits: AtomicU64,
    pub(crate) min_bits: AtomicU64,
    pub(crate) max_bits: AtomicU64,
    /// One exemplar slot per bucket (last writer wins). Written only by
    /// [`Histogram::record_with_exemplar`]; plain `record` never touches
    /// them, so the un-traced hot path is unchanged.
    pub(crate) exemplars: Vec<ExemplarSlot>,
}

impl HistogramCore {
    pub(crate) fn new(spec: HistogramSpec) -> Self {
        let bounds = spec.bounds();
        let counts = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        let exemplars = (0..bounds.len() + 1).map(|_| ExemplarSlot::new()).collect();
        HistogramCore {
            bounds,
            counts,
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
            exemplars,
        }
    }

    fn record(&self, v: f64, span_id: u64) {
        if v.is_nan() {
            return;
        }
        let idx = self.bounds.partition_point(|b| v > *b);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        atomic_f64_update(&self.sum_bits, |s| s + v);
        atomic_f64_update(&self.min_bits, |m| m.min(v));
        atomic_f64_update(&self.max_bits, |m| m.max(v));
        if span_id != 0 {
            self.exemplars[idx].store(v, span_id);
        }
    }
}

/// CAS loop applying `f` to an f64 stored as bits in an `AtomicU64`.
fn atomic_f64_update(cell: &AtomicU64, f: impl Fn(f64) -> f64) {
    let mut current = cell.load(Ordering::Relaxed);
    loop {
        let next = f(f64::from_bits(current)).to_bits();
        match cell.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(observed) => current = observed,
        }
    }
}

/// A log-bucketed distribution of f64 samples with exact sum/min/max.
///
/// Cloning is cheap; a handle minted from a disabled [`crate::Registry`]
/// holds `None` and recording is a no-op (NaN samples are always ignored).
#[derive(Debug, Clone, Default)]
pub struct Histogram(pub(crate) Option<Arc<HistogramCore>>);

impl Histogram {
    /// A detached histogram that discards every sample.
    pub fn disabled() -> Self {
        Histogram(None)
    }

    /// Whether samples recorded on this handle are kept anywhere.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: f64) {
        if let Some(core) = &self.0 {
            core.record(v, 0);
        }
    }

    /// Record one sample and, when `span_id` is non-zero, stamp it as
    /// the exemplar of the bucket the sample lands in (last writer
    /// wins). A zero `span_id` — what a disabled [`crate::TraceRing`]
    /// hands out — records the sample exactly like [`record`](Self::record).
    #[inline]
    pub fn record_with_exemplar(&self, v: f64, span_id: u64) {
        if let Some(core) = &self.0 {
            core.record(v, span_id);
        }
    }

    /// Start a timing span that records its elapsed seconds here when
    /// finished or dropped. On a disabled histogram no clock is read.
    #[inline]
    pub fn start_span(&self) -> Span {
        Span::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handles_are_inert() {
        let c = Counter::disabled();
        c.inc();
        c.add(10);
        assert_eq!(c.get(), 0);
        let h = Histogram::disabled();
        h.record(1.0);
        assert!(!h.is_enabled());
    }

    #[test]
    fn bucket_boundaries_are_inclusive_upper() {
        // start=1, factor=10, 3 buckets -> bounds [1, 10, 100] + overflow.
        let core = HistogramCore::new(HistogramSpec::new(1.0, 10.0, 3));
        let bucket_of = |v: f64| core.bounds.partition_point(|b| v > *b);
        assert_eq!(bucket_of(0.0), 0); // underflow folds into bucket 0
        assert_eq!(bucket_of(1.0), 0); // exactly on a bound: lower bucket
        assert_eq!(bucket_of(1.0000001), 1);
        assert_eq!(bucket_of(10.0), 1);
        assert_eq!(bucket_of(99.0), 2);
        assert_eq!(bucket_of(100.0), 2);
        assert_eq!(bucket_of(100.1), 3); // overflow bucket
    }

    #[test]
    fn gauge_moves_both_ways_and_disabled_gauge_is_inert() {
        let g = Gauge(Some(Arc::new(GaugeCore::new())));
        g.set(10.0);
        g.add(2.5);
        g.sub(4.0);
        assert!((g.get() - 8.5).abs() < 1e-12);
        g.set(-1.0);
        assert_eq!(g.get(), -1.0);
        let off = Gauge::disabled();
        off.set(99.0);
        off.add(1.0);
        assert_eq!(off.get(), 0.0);
    }

    #[test]
    fn exemplars_land_in_the_sample_bucket_and_last_writer_wins() {
        let core = Arc::new(HistogramCore::new(HistogramSpec::new(1.0, 10.0, 3)));
        let h = Histogram(Some(core.clone()));
        h.record_with_exemplar(5.0, 17); // bucket 1 (1, 10]
        h.record_with_exemplar(7.0, 23); // same bucket, overwrites
        h.record_with_exemplar(0.5, 0); // span 0: counted, no exemplar
        h.record(2000.0); // overflow bucket, plain record: no exemplar
        assert_eq!(core.exemplars[0].load(), None);
        assert_eq!(
            core.exemplars[1].load(),
            Some(Exemplar {
                value: 7.0,
                span_id: 23
            })
        );
        assert_eq!(core.exemplars[3].load(), None);
        assert_eq!(core.count.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn nan_samples_are_dropped() {
        let core = Arc::new(HistogramCore::new(HistogramSpec::new(1.0, 2.0, 4)));
        let h = Histogram(Some(core.clone()));
        h.record(f64::NAN);
        h.record(3.0);
        assert_eq!(core.count.load(Ordering::Relaxed), 1);
        assert_eq!(f64::from_bits(core.sum_bits.load(Ordering::Relaxed)), 3.0);
    }
}
