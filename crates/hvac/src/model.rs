//! HVAC dynamics and power model.

use ev_ode::trapezoidal;
use ev_units::{Celsius, KgPerSecond, Seconds, Watts};
use serde::{Deserialize, Serialize};

use crate::{CabinParams, HvacParams};

/// The HVAC control input vector `[Ts, Tc, dr, ṁz]` of the paper's
/// Section III-A.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HvacInput {
    /// Supply (heater outlet) air temperature `Ts`.
    pub ts: Celsius,
    /// Cooling-coil outlet temperature `Tc`.
    pub tc: Celsius,
    /// Recirculated-air fraction `dr` ∈ [0, 1].
    pub dr: f64,
    /// Supply air mass flow `ṁz`.
    pub mz: KgPerSecond,
}

impl HvacInput {
    /// An "off" input: minimum flow, passive coil temperatures equal to
    /// the given cabin temperature (no heating or cooling energy moved).
    #[must_use]
    pub fn idle(params: &HvacParams, cabin: Celsius) -> Self {
        Self {
            ts: cabin,
            tc: cabin,
            dr: params.max_recirculation,
            mz: params.min_flow,
        }
    }
}

/// The HVAC state: cabin (zone) temperature `Tz`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HvacState {
    /// Cabin temperature.
    pub tz: Celsius,
}

impl HvacState {
    /// Creates a state from the cabin temperature.
    #[must_use]
    pub fn new(tz: Celsius) -> Self {
        Self { tz }
    }
}

/// Instantaneous HVAC power consumption, split by component
/// (Eq. 10–12).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct HvacPower {
    /// Heating-coil power `Ph`.
    pub heating: Watts,
    /// Cooling-coil power `Pc`.
    pub cooling: Watts,
    /// Fan power `Pf`.
    pub fan: Watts,
}

impl HvacPower {
    /// Total electrical power `Pf + Pc + Ph`.
    #[must_use]
    pub fn total(&self) -> Watts {
        self.heating + self.cooling + self.fan
    }
}

/// The single-zone VAV HVAC model: mixer, coils, fan and cabin thermal
/// dynamics (the paper's Eq. 7–12), with the trapezoidal one-step update
/// of Eq. 18–19.
///
/// # Examples
///
/// ```
/// use ev_hvac::{CabinParams, Hvac, HvacInput, HvacParams, HvacState};
/// use ev_units::{Celsius, KgPerSecond, Watts};
///
/// let hvac = Hvac::new(CabinParams::default(), HvacParams::default());
/// let input = HvacInput {
///     ts: Celsius::new(40.0), // heating
///     tc: Celsius::new(10.0),
///     dr: 0.8,
///     mz: KgPerSecond::new(0.1),
/// };
/// let p = hvac.power(&input, HvacState::new(Celsius::new(18.0)), Celsius::new(0.0));
/// assert!(p.heating.value() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Hvac {
    cabin: CabinParams,
    params: HvacParams,
}

impl Hvac {
    /// Creates the model.
    #[must_use]
    pub fn new(cabin: CabinParams, params: HvacParams) -> Self {
        Self { cabin, params }
    }

    /// Borrows the cabin parameters.
    #[must_use]
    pub fn cabin(&self) -> &CabinParams {
        &self.cabin
    }

    /// Borrows the HVAC machine parameters.
    #[must_use]
    pub fn params(&self) -> &HvacParams {
        &self.params
    }

    /// Mixed (system inlet) air temperature `Tm` (Eq. 9).
    #[must_use]
    pub fn mixed_air(&self, input: &HvacInput, tz: Celsius, to: Celsius) -> Celsius {
        Celsius::new((1.0 - input.dr) * to.value() + input.dr * tz.value())
    }

    /// Component power consumption at an operating point (Eq. 10–12).
    ///
    /// Coil powers are clamped at zero from below: a coil commanded in its
    /// passive direction (e.g. `Ts < Tc`) moves no energy rather than
    /// generating negative power. The constraint set (C3/C4) forbids such
    /// commands; the clamp keeps the *plant* physical even for raw inputs.
    #[must_use]
    pub fn power(&self, input: &HvacInput, state: HvacState, to: Celsius) -> HvacPower {
        let cp = self.cabin.air_heat_capacity.value();
        let mz = input.mz.value();
        let tm = self.mixed_air(input, state.tz, to);
        let heating = (cp / self.params.heater_efficiency * mz * input.ts.diff(input.tc)).max(0.0);
        let cooling = (cp / self.params.cooler_efficiency * mz * tm.diff(input.tc)).max(0.0);
        let fan = self.params.fan_coefficient * mz * mz;
        HvacPower {
            heating: Watts::new(heating),
            cooling: Watts::new(cooling),
            fan: Watts::new(fan),
        }
    }

    /// Continuous-time cabin temperature derivative `dTz/dt` (Eq. 7–8).
    #[must_use]
    pub fn cabin_rate(
        &self,
        input: &HvacInput,
        state: HvacState,
        to: Celsius,
        solar: Watts,
    ) -> f64 {
        let cp = self.cabin.air_heat_capacity.value();
        let q = solar.value() + self.cabin.shell_conductance.value() * to.diff(state.tz);
        let supply = input.mz.value() * cp * input.ts.diff(state.tz);
        (q + supply) / self.cabin.thermal_capacitance.value()
    }

    /// One trapezoidal step of the cabin dynamics (the discretization of
    /// Eq. 18–19): returns the next state and the power drawn over the
    /// step.
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0`.
    #[must_use]
    pub fn step(
        &self,
        state: HvacState,
        input: &HvacInput,
        to: Celsius,
        solar: Watts,
        dt: Seconds,
    ) -> (HvacState, HvacPower) {
        assert!(dt.value() > 0.0, "hvac step must be positive");
        let cp = self.cabin.air_heat_capacity.value();
        let mc = self.cabin.thermal_capacitance.value();
        let cx = self.cabin.shell_conductance.value();
        let mz = input.mz.value();
        // Mc·(Tz⁺ − Tz)/Δt = a − b·(Tz⁺ + Tz)/2 with
        //   a = Q_solar + cx·Ax·To + ṁz·cp·Ts,  b = cx·Ax + ṁz·cp.
        let a = solar.value() + cx * to.value() + mz * cp * input.ts.value();
        let b = cx + mz * cp;
        let tz_next = trapezoidal(state.tz.value(), mc, a, b, dt.value());
        let next = HvacState::new(Celsius::new(tz_next));
        let power = self.power(input, state, to);
        (next, power)
    }

    /// The affine coefficients `(a, b)` of the discretized cabin dynamics
    /// `Mc·(Tz⁺ − Tz)/Δt = a − b·(Tz⁺ + Tz)/2`, exposed so the MPC can
    /// build the identical prediction model the plant uses.
    #[must_use]
    pub fn discrete_coefficients(
        &self,
        input: &HvacInput,
        to: Celsius,
        solar: Watts,
    ) -> (f64, f64) {
        let cp = self.cabin.air_heat_capacity.value();
        let cx = self.cabin.shell_conductance.value();
        let mz = input.mz.value();
        (
            solar.value() + cx * to.value() + mz * cp * input.ts.value(),
            cx + mz * cp,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hvac() -> Hvac {
        Hvac::new(CabinParams::default(), HvacParams::default())
    }

    fn cooling_input() -> HvacInput {
        HvacInput {
            ts: Celsius::new(12.0),
            tc: Celsius::new(12.0),
            dr: 0.5,
            mz: KgPerSecond::new(0.15),
        }
    }

    #[test]
    fn mixer_blends_linearly() {
        let h = hvac();
        let mut input = cooling_input();
        input.dr = 0.25;
        let tm = h.mixed_air(&input, Celsius::new(24.0), Celsius::new(40.0));
        assert!((tm.value() - (0.75 * 40.0 + 0.25 * 24.0)).abs() < 1e-12);
    }

    #[test]
    fn cooling_power_hand_calculation() {
        // Tm = 0.5·35 + 0.5·25 = 30; Pc = 1006/0.85·0.15·(30−12) = 3195 W.
        let h = hvac();
        let p = h.power(
            &cooling_input(),
            HvacState::new(Celsius::new(25.0)),
            Celsius::new(35.0),
        );
        let expected = 1006.0 / 0.85 * 0.15 * 18.0;
        assert!((p.cooling.value() - expected).abs() < 1e-9);
        // Ts = Tc: no reheat.
        assert_eq!(p.heating.value(), 0.0);
        // Fan: 4800·0.15² = 108 W.
        assert!((p.fan.value() - 108.0).abs() < 1e-9);
        assert!((p.total().value() - expected - 108.0).abs() < 1e-9);
    }

    #[test]
    fn heating_power_hand_calculation() {
        let h = hvac();
        let input = HvacInput {
            ts: Celsius::new(45.0),
            tc: Celsius::new(10.0),
            dr: 0.9,
            mz: KgPerSecond::new(0.1),
        };
        let p = h.power(
            &input,
            HvacState::new(Celsius::new(15.0)),
            Celsius::new(0.0),
        );
        let expected = 1006.0 / 0.90 * 0.1 * 35.0;
        assert!((p.heating.value() - expected).abs() < 1e-9);
    }

    #[test]
    fn passive_coil_commands_move_no_energy() {
        let h = hvac();
        // Tc above Tm: the cooler cannot heat; clamped to zero.
        let input = HvacInput {
            ts: Celsius::new(20.0),
            tc: Celsius::new(50.0),
            dr: 0.0,
            mz: KgPerSecond::new(0.1),
        };
        let p = h.power(
            &input,
            HvacState::new(Celsius::new(24.0)),
            Celsius::new(20.0),
        );
        assert_eq!(p.cooling.value(), 0.0);
        assert_eq!(p.heating.value(), 0.0); // Ts < Tc likewise clamped
    }

    #[test]
    fn hot_cabin_cools_under_cooling_input() {
        let h = hvac();
        let mut state = HvacState::new(Celsius::new(40.0));
        for _ in 0..300 {
            let (next, _) = h.step(
                state,
                &cooling_input(),
                Celsius::new(35.0),
                Watts::new(400.0),
                Seconds::new(1.0),
            );
            assert!(next.tz.value() < state.tz.value() + 1e-12);
            state = next;
        }
        assert!(state.tz.value() < 30.0, "tz {}", state.tz);
    }

    #[test]
    fn equilibrium_matches_analytic_balance() {
        // Steady state: Q + ṁz·cp·(Ts − Tz) = 0
        //   ⇒ Tz = (Q_solar + cx·To + ṁ·cp·Ts)/(cx + ṁ·cp).
        let h = hvac();
        let input = cooling_input();
        let to = Celsius::new(35.0);
        let solar = Watts::new(400.0);
        let mut state = HvacState::new(Celsius::new(35.0));
        for _ in 0..20_000 {
            state = h.step(state, &input, to, solar, Seconds::new(1.0)).0;
        }
        let cp = 1006.0;
        let cx = 55.0;
        let expected = (400.0 + cx * 35.0 + 0.15 * cp * 12.0) / (cx + 0.15 * cp);
        assert!(
            (state.tz.value() - expected).abs() < 1e-6,
            "tz {}",
            state.tz
        );
    }

    #[test]
    fn trapezoidal_step_matches_rate_for_small_dt() {
        let h = hvac();
        let state = HvacState::new(Celsius::new(28.0));
        let input = cooling_input();
        let to = Celsius::new(35.0);
        let solar = Watts::new(400.0);
        let rate = h.cabin_rate(&input, state, to, solar);
        let (next, _) = h.step(state, &input, to, solar, Seconds::new(1e-3));
        let numeric = (next.tz.value() - state.tz.value()) / 1e-3;
        assert!((numeric - rate).abs() < 1e-6, "{numeric} vs {rate}");
    }

    #[test]
    fn solar_load_warms_the_cabin() {
        let h = hvac();
        let state = HvacState::new(Celsius::new(24.0));
        let input = HvacInput::idle(h.params(), Celsius::new(24.0));
        let sunny = h.cabin_rate(&input, state, Celsius::new(24.0), Watts::new(800.0));
        let dark = h.cabin_rate(&input, state, Celsius::new(24.0), Watts::ZERO);
        assert!(sunny > dark);
        assert!(dark.abs() < 1e-9, "no drivers, no drift");
    }

    #[test]
    fn idle_input_moves_no_coil_energy() {
        let h = hvac();
        let cab = Celsius::new(22.0);
        let p = h.power(
            &HvacInput::idle(h.params(), cab),
            HvacState::new(cab),
            Celsius::new(22.0),
        );
        assert_eq!(p.heating.value(), 0.0);
        assert_eq!(p.cooling.value(), 0.0);
        assert!(p.fan.value() > 0.0); // minimum ventilation flow
    }

    #[test]
    fn discrete_coefficients_match_step() {
        let h = hvac();
        let input = cooling_input();
        let to = Celsius::new(35.0);
        let solar = Watts::new(400.0);
        let (a, b) = h.discrete_coefficients(&input, to, solar);
        let state = HvacState::new(Celsius::new(27.0));
        let expected = ev_ode::trapezoidal(27.0, 8.0e4, a, b, 1.0);
        let (next, _) = h.step(state, &input, to, solar, Seconds::new(1.0));
        assert!((next.tz.value() - expected).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn step_rejects_zero_dt() {
        let h = hvac();
        let _ = h.step(
            HvacState::new(Celsius::new(24.0)),
            &cooling_input(),
            Celsius::new(30.0),
            Watts::ZERO,
            Seconds::ZERO,
        );
    }
}
