//! Exporters: JSONL event stream, Prometheus text exposition, and a
//! human-readable end-of-run report table.

use std::io;
use std::path::Path;

use crate::metrics::Exemplar;
use crate::registry::{HistogramSnapshot, Snapshot};

/// Escape a label value for the Prometheus exposition format. The spec
/// defines exactly three escapes inside label values: `\\`, `\"` and
/// `\n` — everything else is literal.
pub(crate) fn prom_label_escape(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Render a sorted label set as `{k="v",k2="v2"}`, with `extra`
/// (e.g. `le` on bucket series) appended last. Empty input renders as
/// the empty string so unlabeled series look exactly as before.
fn prom_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    if labels.is_empty() && extra.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .chain(extra)
    {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&prom_label_escape(v));
        out.push('"');
    }
    out.push('}');
    out
}

/// Render a label set as a JSON object (`{}` when empty is elided by
/// callers; this always renders the braces).
fn json_labels(labels: &[(String, String)]) -> String {
    let pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}:{}", json_str(k), json_str(v)))
        .collect();
    format!("{{{}}}", pairs.join(","))
}

/// Format an f64 as a JSON value (`null` for non-finite values).
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

/// Format an f64 for the Prometheus text exposition format. Unlike
/// JSON, the format *has* spellings for non-finite values — `NaN`,
/// `+Inf`, `-Inf` — and those exact tokens are the only valid ones
/// (`null` or Rust's `inf` would break every scraper).
pub(crate) fn prom_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else if v.is_nan() {
        "NaN".to_string()
    } else if v > 0.0 {
        "+Inf".to_string()
    } else {
        "-Inf".to_string()
    }
}

/// Escape a metric name for embedding in a JSON string literal.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render the snapshot as JSON Lines: one self-describing object per
/// metric series. Counters carry `type`, `name`, `value`; gauges carry
/// `type`, `name`, `value` (null when non-finite); histograms carry
/// `type`, `name`, `count`, `sum`, `min`, `max` (null when empty) and a
/// `buckets` array of `{le, count}` pairs plus an `overflow` count.
/// Labeled series additionally carry a `labels` object with sorted
/// keys; unlabeled series omit the field, so pre-label consumers see an
/// unchanged schema.
pub fn to_jsonl(snapshot: &Snapshot) -> String {
    let labels_field = |labels: &[(String, String)]| {
        if labels.is_empty() {
            String::new()
        } else {
            format!(",\"labels\":{}", json_labels(labels))
        }
    };
    let mut out = String::new();
    for c in &snapshot.counters {
        out.push_str(&format!(
            "{{\"type\":\"counter\",\"name\":{}{},\"value\":{}}}\n",
            json_str(&c.name),
            labels_field(&c.labels),
            c.value
        ));
    }
    for g in &snapshot.gauges {
        out.push_str(&format!(
            "{{\"type\":\"gauge\",\"name\":{}{},\"value\":{}}}\n",
            json_str(&g.name),
            labels_field(&g.labels),
            json_f64(g.value)
        ));
    }
    for h in &snapshot.histograms {
        let buckets: Vec<String> = h
            .bounds
            .iter()
            .zip(h.counts.iter())
            .map(|(le, count)| format!("{{\"le\":{},\"count\":{}}}", json_f64(*le), count))
            .collect();
        let overflow = h.counts.last().copied().unwrap_or(0);
        out.push_str(&format!(
            "{{\"type\":\"histogram\",\"name\":{}{},\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[{}],\"overflow\":{}}}\n",
            json_str(&h.name),
            labels_field(&h.labels),
            h.count,
            json_f64(h.sum),
            json_f64(h.min),
            json_f64(h.max),
            buckets.join(","),
            overflow
        ));
    }
    out
}

/// Render the snapshot in the Prometheus text exposition format:
/// `# TYPE` headers (one per metric family — labeled series of the same
/// name share it), label sets rendered as `name{shard="3",cmd="step"}`,
/// cumulative `_bucket{...,le="..."}` series ending in `le="+Inf"`, and
/// `_sum`/`_count` series per histogram.
pub fn to_prometheus(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    // Snapshots are sorted by (name, labels), so series of one family
    // are adjacent and the TYPE header is emitted on each name change.
    let mut last_type_header = String::new();
    let mut type_header = |out: &mut String, name: &str, kind: &str| {
        if last_type_header != name {
            out.push_str(&format!("# TYPE {name} {kind}\n"));
            last_type_header = name.to_string();
        }
    };
    for c in &snapshot.counters {
        type_header(&mut out, &c.name, "counter");
        out.push_str(&format!(
            "{}{} {}\n",
            c.name,
            prom_labels(&c.labels, None),
            c.value
        ));
    }
    for g in &snapshot.gauges {
        type_header(&mut out, &g.name, "gauge");
        out.push_str(&format!(
            "{}{} {}\n",
            g.name,
            prom_labels(&g.labels, None),
            prom_f64(g.value)
        ));
    }
    for h in &snapshot.histograms {
        type_header(&mut out, &h.name, "histogram");
        let labels = prom_labels(&h.labels, None);
        let mut cumulative = 0u64;
        for (i, (le, count)) in h.bounds.iter().zip(h.counts.iter()).enumerate() {
            cumulative += count;
            out.push_str(&format!(
                "{}_bucket{} {}{}\n",
                h.name,
                prom_labels(&h.labels, Some(("le", &prom_f64(*le)))),
                cumulative,
                prom_exemplar_suffix(bucket_exemplar(h, i))
            ));
        }
        out.push_str(&format!(
            "{}_bucket{} {}{}\n",
            h.name,
            prom_labels(&h.labels, Some(("le", "+Inf"))),
            h.count,
            prom_exemplar_suffix(bucket_exemplar(h, h.counts.len().saturating_sub(1)))
        ));
        out.push_str(&format!("{}_sum{} {}\n", h.name, labels, prom_f64(h.sum)));
        out.push_str(&format!("{}_count{} {}\n", h.name, labels, h.count));
    }
    out
}

/// The exemplar of bucket `i`, if one was ever recorded there.
fn bucket_exemplar(h: &HistogramSnapshot, i: usize) -> Option<Exemplar> {
    h.exemplars.get(i).copied().flatten()
}

/// Render an exemplar as the OpenMetrics ` # {trace_id="…"} value`
/// suffix for a bucket line, or the empty string for `None` — so
/// histograms that never recorded an exemplar expose byte-identical
/// lines to the pre-exemplar format.
fn prom_exemplar_suffix(ex: Option<Exemplar>) -> String {
    match ex {
        Some(ex) => format!(" # {{trace_id=\"{}\"}} {}", ex.span_id, prom_f64(ex.value)),
        None => String::new(),
    }
}

/// Write `contents` to `path` **atomically**, creating missing parent
/// directories first — so exporting to `target/telemetry/run.jsonl`
/// works even when no part of that tree exists yet.
///
/// The write lands in a uniquely-named temporary file in the *same
/// directory* and is published with a rename, so a concurrent reader —
/// a scraper polling the metrics file, a tail-follower on a report —
/// only ever sees the previous complete contents or the new complete
/// contents, never a truncated file mid-write.
///
/// # Errors
///
/// Propagates io errors from directory creation, the temporary-file
/// write, or the rename; on failure the temporary file is removed.
pub fn write_text(path: &Path, contents: &str) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    // Unique within the process (counter) and across processes (pid);
    // same directory as the target so the rename cannot cross a
    // filesystem boundary.
    static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let mut tmp_name = std::ffi::OsString::from(format!(".{}-", std::process::id()));
    tmp_name.push(file_name);
    tmp_name.push(format!(".{seq}.tmp"));
    let tmp = path.with_file_name(tmp_name);
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

fn valid_metric_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Parse a label set from `chars`, which must be positioned just past
/// the opening `{`; consumes through the closing `}`. Strict by design:
/// label values must be double-quoted, the only recognised escapes are
/// `\\`, `\"` and `\n` (unknown escapes are an error, not a literal),
/// and duplicate label names are rejected. A trailing comma before `}`
/// is allowed, as the exposition format permits.
fn parse_label_set(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
) -> Result<Vec<(String, String)>, String> {
    let mut labels: Vec<(String, String)> = Vec::new();
    loop {
        if chars.peek() == Some(&'}') {
            chars.next();
            break;
        }
        let mut key = String::new();
        loop {
            match chars.next() {
                Some('=') => break,
                Some(c) if c.is_ascii_alphanumeric() || c == '_' => key.push(c),
                Some(c) => return Err(format!("unexpected {c:?} in label name")),
                None => return Err("unterminated label set".to_string()),
            }
        }
        if !valid_label_name(&key) {
            return Err(format!("bad label name {key:?}"));
        }
        if labels.iter().any(|(k, _)| *k == key) {
            return Err(format!("duplicate label {key:?}"));
        }
        if chars.next() != Some('"') {
            return Err(format!("unquoted label value for {key:?}"));
        }
        let mut value = String::new();
        loop {
            match chars.next() {
                Some('"') => break,
                Some('\\') => match chars.next() {
                    Some('\\') => value.push('\\'),
                    Some('"') => value.push('"'),
                    Some('n') => value.push('\n'),
                    Some(c) => return Err(format!("unknown escape \\{c} in label value")),
                    None => return Err("unterminated label value".to_string()),
                },
                Some(c) => value.push(c),
                None => return Err("unterminated label value".to_string()),
            }
        }
        labels.push((key, value));
        match chars.next() {
            Some(',') => continue,
            Some('}') => break,
            Some(c) => return Err(format!("expected ',' or '}}' after label, got {c:?}")),
            None => return Err("unterminated label set".to_string()),
        }
    }
    Ok(labels)
}

/// Parse a series identifier (`name` or `name{k="v",...}`) into the
/// metric name and its **unescaped** label pairs, in source order.
/// The label set must close the string (see [`parse_label_set`] for
/// the strictness rules inside the braces).
#[cfg(test)]
pub(crate) fn parse_series(series: &str) -> Result<(String, Vec<(String, String)>), String> {
    let mut chars = series.chars().peekable();
    let mut name = String::new();
    while let Some(&c) = chars.peek() {
        if c == '{' {
            break;
        }
        name.push(c);
        chars.next();
    }
    if !valid_metric_name(&name) {
        return Err(format!("bad metric name {name:?}"));
    }
    let labels = if chars.peek() == Some(&'{') {
        chars.next();
        parse_label_set(&mut chars)?
    } else {
        Vec::new()
    };
    if chars.next().is_some() {
        return Err("trailing characters after label set".to_string());
    }
    Ok((name, labels))
}

/// Parse a sample-value token: a finite decimal or one of the exact
/// spellings `NaN`, `+Inf`, `-Inf`. `null` (JSON leakage) and Rust's
/// `inf`/`-inf` debug spellings are rejected.
fn parse_value_token(token: &str) -> Result<f64, String> {
    match token {
        "NaN" => Ok(f64::NAN),
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        token => match token.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(v),
            _ => Err(format!("invalid sample value {token:?}")),
        },
    }
}

/// One parsed exemplar from an OpenMetrics-style
/// ` # {trace_id="…"} value [timestamp]` suffix on a bucket line.
#[derive(Debug, Clone, PartialEq)]
pub struct PromExemplar {
    /// Unescaped exemplar label pairs in source order (conventionally a
    /// single `trace_id`).
    pub labels: Vec<(String, String)>,
    /// The exemplar's observed value.
    pub value: f64,
}

impl PromExemplar {
    /// The `trace_id` exemplar label, if present.
    #[must_use]
    pub fn trace_id(&self) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == "trace_id")
            .map(|(_, v)| v.as_str())
    }

    /// The `trace_id` parsed as the numeric span id this crate's
    /// [`crate::TraceRing`] hands out, if it is one.
    #[must_use]
    pub fn span_id(&self) -> Option<u64> {
        self.trace_id().and_then(|v| v.parse().ok())
    }
}

/// One parsed sample from a Prometheus text exposition: the metric
/// name, its unescaped label pairs in source order, the value
/// (non-finite for the `NaN`/`±Inf` tokens), and the exemplar when the
/// line carried one.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// The metric name (for histograms this includes the `_bucket`,
    /// `_sum` or `_count` suffix — the parser does not reassemble
    /// families).
    pub name: String,
    /// Unescaped label pairs in source order.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
    /// The OpenMetrics exemplar attached to the line, if any.
    pub exemplar: Option<PromExemplar>,
}

impl PromSample {
    /// The value of label `key`, if present.
    #[must_use]
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Parse one non-comment exposition line left to right: name, optional
/// label set, value, optional exemplar. Sequential parsing (rather than
/// splitting on the last space) is what lets label values contain
/// spaces *and* lets an exemplar suffix follow the value unambiguously.
fn parse_sample_line(line: &str) -> Result<PromSample, String> {
    let mut chars = line.chars().peekable();
    let skip_ws = |chars: &mut std::iter::Peekable<std::str::Chars<'_>>| -> usize {
        let mut n = 0;
        while matches!(chars.peek(), Some(' ' | '\t')) {
            chars.next();
            n += 1;
        }
        n
    };
    let take_token = |chars: &mut std::iter::Peekable<std::str::Chars<'_>>| -> String {
        let mut tok = String::new();
        while let Some(&c) = chars.peek() {
            if c == ' ' || c == '\t' {
                break;
            }
            tok.push(c);
            chars.next();
        }
        tok
    };
    let mut name = String::new();
    while let Some(&c) = chars.peek() {
        if c == '{' || c == ' ' || c == '\t' {
            break;
        }
        name.push(c);
        chars.next();
    }
    if !valid_metric_name(&name) {
        return Err(format!("bad metric name {name:?}"));
    }
    let labels = if chars.peek() == Some(&'{') {
        chars.next();
        parse_label_set(&mut chars)?
    } else {
        Vec::new()
    };
    for (key, val) in &labels {
        if key == "le" {
            parse_value_token(val).map_err(|msg| format!("bucket bound: {msg}"))?;
        }
    }
    if skip_ws(&mut chars) == 0 {
        return match chars.peek() {
            Some(_) => Err("trailing characters after label set".to_string()),
            None => Err("sample line without a value".to_string()),
        };
    }
    let value = parse_value_token(&take_token(&mut chars))?;
    skip_ws(&mut chars);
    let exemplar = if chars.peek() == Some(&'#') {
        chars.next();
        skip_ws(&mut chars);
        if chars.next() != Some('{') {
            return Err("exemplar must open with a label set".to_string());
        }
        let elabels = parse_label_set(&mut chars).map_err(|msg| format!("exemplar: {msg}"))?;
        if skip_ws(&mut chars) == 0 {
            return Err("exemplar without a value".to_string());
        }
        let evalue =
            parse_value_token(&take_token(&mut chars)).map_err(|msg| format!("exemplar: {msg}"))?;
        skip_ws(&mut chars);
        if chars.peek().is_some() {
            // OpenMetrics allows an exemplar timestamp; accept a finite
            // decimal and discard it.
            let ts = take_token(&mut chars);
            match ts.parse::<f64>() {
                Ok(v) if v.is_finite() => {}
                _ => return Err(format!("invalid exemplar timestamp {ts:?}")),
            }
        }
        Some(PromExemplar {
            labels: elabels,
            value: evalue,
        })
    } else {
        None
    };
    skip_ws(&mut chars);
    if chars.peek().is_some() {
        return Err("trailing characters after sample".to_string());
    }
    Ok(PromSample {
        name,
        labels,
        value,
        exemplar,
    })
}

/// Shared walk behind [`validate_prometheus`] and [`parse_prometheus`]:
/// checks `# TYPE` comments and parses every sample line strictly.
fn parse_exposition(text: &str) -> Result<Vec<PromSample>, String> {
    let mut samples = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let err = |msg: String| Err(format!("line {}: {msg}", idx + 1));
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut parts = comment.split_whitespace();
            if parts.next() == Some("TYPE") {
                let Some(name) = parts.next() else {
                    return err("# TYPE without a metric name".to_string());
                };
                if !valid_metric_name(name) {
                    return err(format!("bad metric name {name:?} in # TYPE"));
                }
                match parts.next() {
                    Some("counter" | "gauge" | "histogram" | "summary" | "untyped") => {}
                    other => return err(format!("bad metric type {other:?}")),
                }
            }
            continue;
        }
        match parse_sample_line(line) {
            Ok(sample) => samples.push(sample),
            Err(msg) => return err(msg),
        }
    }
    Ok(samples)
}

/// Strictly validates a Prometheus text exposition, returning the
/// number of samples (non-comment lines) on success.
///
/// Enforces the failure modes this workspace has actually shipped:
/// every sample value and every `le` label must be a finite decimal or
/// one of the exact tokens `NaN`, `+Inf`, `-Inf` — `null` (JSON
/// leakage) and Rust's `inf`/`-inf` spellings are rejected — metric
/// names must be well-formed, label sets must parse strictly (quoted
/// values, known escapes only, no duplicate label names), and an
/// OpenMetrics ` # {…} value` exemplar suffix, when present, must parse
/// under the same rules.
///
/// # Errors
///
/// Returns a message naming the first offending line.
pub fn validate_prometheus(text: &str) -> Result<usize, String> {
    Ok(parse_exposition(text)?.len())
}

/// Parse a Prometheus text exposition into its samples, with the same
/// strictness as [`validate_prometheus`]. Consumers like the `evsim
/// top` dashboard and the tsdb recorder build per-label-set views from
/// the returned list.
///
/// # Errors
///
/// Returns a message naming the first offending line.
pub fn parse_prometheus(text: &str) -> Result<Vec<PromSample>, String> {
    parse_exposition(text)
}

/// Flatten a [`Snapshot`] into the same sample list that rendering it
/// with [`to_prometheus`] and re-parsing would produce — counters and
/// gauges as single samples, histograms as cumulative `_bucket` series
/// (with bucket exemplars attached) ending in `le="+Inf"`, plus
/// `_sum`/`_count` — so in-process consumers such as the tsdb recorder
/// skip the text round trip entirely.
pub fn snapshot_samples(snapshot: &Snapshot) -> Vec<PromSample> {
    let to_prom_exemplar = |ex: Exemplar| PromExemplar {
        labels: vec![("trace_id".to_string(), ex.span_id.to_string())],
        value: ex.value,
    };
    let mut out = Vec::new();
    for c in &snapshot.counters {
        out.push(PromSample {
            name: c.name.clone(),
            labels: c.labels.clone(),
            value: c.value as f64,
            exemplar: None,
        });
    }
    for g in &snapshot.gauges {
        out.push(PromSample {
            name: g.name.clone(),
            labels: g.labels.clone(),
            value: g.value,
            exemplar: None,
        });
    }
    for h in &snapshot.histograms {
        let bucket_labels = |le: &str| {
            let mut labels = h.labels.clone();
            labels.push(("le".to_string(), le.to_string()));
            labels
        };
        let mut cumulative = 0u64;
        for (i, (le, count)) in h.bounds.iter().zip(h.counts.iter()).enumerate() {
            cumulative += count;
            out.push(PromSample {
                name: format!("{}_bucket", h.name),
                labels: bucket_labels(&prom_f64(*le)),
                value: cumulative as f64,
                exemplar: bucket_exemplar(h, i).map(to_prom_exemplar),
            });
        }
        out.push(PromSample {
            name: format!("{}_bucket", h.name),
            labels: bucket_labels("+Inf"),
            value: h.count as f64,
            exemplar: bucket_exemplar(h, h.counts.len().saturating_sub(1)).map(to_prom_exemplar),
        });
        out.push(PromSample {
            name: format!("{}_sum", h.name),
            labels: h.labels.clone(),
            value: h.sum,
            exemplar: None,
        });
        out.push(PromSample {
            name: format!("{}_count", h.name),
            labels: h.labels.clone(),
            value: h.count as f64,
            exemplar: None,
        });
    }
    out
}

fn fmt_cell(v: f64) -> String {
    if !v.is_finite() {
        "-".to_string()
    } else if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1e5 || v.abs() < 1e-3 {
        format!("{v:.3e}")
    } else {
        format!("{v:.4}")
    }
}

/// Display name for a series in human-readable tables: the metric name
/// with its label set appended in exposition syntax when present.
fn series_display(name: &str, labels: &[(String, String)]) -> String {
    format!("{}{}", name, prom_labels(labels, None))
}

fn report_row(h: &HistogramSnapshot) -> [String; 7] {
    [
        series_display(&h.name, &h.labels),
        h.count.to_string(),
        fmt_cell(h.mean()),
        fmt_cell(h.quantile(0.5)),
        fmt_cell(h.quantile(0.99)),
        fmt_cell(if h.count == 0 { f64::NAN } else { h.min }),
        fmt_cell(if h.count == 0 { f64::NAN } else { h.max }),
    ]
}

/// Render a fixed-width, human-readable report of every metric in the
/// snapshot: a counter table followed by a histogram table with count,
/// mean, p50, p99, min and max columns.
pub fn render_report(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    if snapshot.is_empty() {
        out.push_str("telemetry: no metrics recorded (registry disabled?)\n");
        return out;
    }
    if !snapshot.counters.is_empty() {
        let names: Vec<String> = snapshot
            .counters
            .iter()
            .map(|c| series_display(&c.name, &c.labels))
            .collect();
        let name_w = names
            .iter()
            .map(|n| n.len())
            .chain(["counter".len()])
            .max()
            .unwrap_or(7);
        out.push_str(&format!("{:<name_w$}  {:>12}\n", "counter", "value"));
        for (c, name) in snapshot.counters.iter().zip(names.iter()) {
            out.push_str(&format!("{name:<name_w$}  {:>12}\n", c.value));
        }
    }
    if !snapshot.gauges.is_empty() {
        if !snapshot.counters.is_empty() {
            out.push('\n');
        }
        let names: Vec<String> = snapshot
            .gauges
            .iter()
            .map(|g| series_display(&g.name, &g.labels))
            .collect();
        let name_w = names
            .iter()
            .map(|n| n.len())
            .chain(["gauge".len()])
            .max()
            .unwrap_or(5);
        out.push_str(&format!("{:<name_w$}  {:>12}\n", "gauge", "value"));
        for (g, name) in snapshot.gauges.iter().zip(names.iter()) {
            out.push_str(&format!("{name:<name_w$}  {:>12}\n", fmt_cell(g.value)));
        }
    }
    if !snapshot.histograms.is_empty() {
        if !snapshot.counters.is_empty() || !snapshot.gauges.is_empty() {
            out.push('\n');
        }
        let header = [
            "histogram".to_string(),
            "count".to_string(),
            "mean".to_string(),
            "p50".to_string(),
            "p99".to_string(),
            "min".to_string(),
            "max".to_string(),
        ];
        let rows: Vec<[String; 7]> = snapshot.histograms.iter().map(report_row).collect();
        let mut widths = [0usize; 7];
        for row in std::iter::once(&header).chain(rows.iter()) {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let render = |row: &[String; 7]| {
            let mut line = format!("{:<w$}", row[0], w = widths[0]);
            for (cell, w) in row.iter().zip(widths.iter()).skip(1) {
                line.push_str(&format!("  {cell:>w$}"));
            }
            line.push('\n');
            line
        };
        out.push_str(&render(&header));
        for row in &rows {
            out.push_str(&render(row));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HistogramSpec, Registry};

    fn sample_snapshot() -> Snapshot {
        let reg = Registry::enabled();
        reg.counter("hits_total").add(42);
        let h = reg.histogram("lat_seconds", HistogramSpec::new(1e-3, 10.0, 3));
        for v in [0.002, 0.002, 0.05, 2.0, 30.0] {
            h.record(v);
        }
        reg.snapshot()
    }

    #[test]
    fn jsonl_one_object_per_line() {
        let out = to_jsonl(&sample_snapshot());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"type\":\"counter\""));
        assert!(lines[0].contains("\"value\":42"));
        assert!(lines[1].contains("\"type\":\"histogram\""));
        assert!(lines[1].contains("\"count\":5"));
        assert!(lines[1].contains("\"overflow\":2"));
    }

    #[test]
    fn jsonl_empty_histogram_extrema_are_null() {
        let reg = Registry::enabled();
        let _h = reg.histogram("empty", HistogramSpec::counts());
        let out = to_jsonl(&reg.snapshot());
        assert!(out.contains("\"min\":null"));
        assert!(out.contains("\"max\":null"));
    }

    #[test]
    fn prometheus_buckets_are_cumulative() {
        let out = to_prometheus(&sample_snapshot());
        assert!(out.contains("# TYPE hits_total counter\nhits_total 42\n"));
        assert!(out.contains("lat_seconds_bucket{le=\"0.001\"} 0\n"));
        assert!(out.contains("lat_seconds_bucket{le=\"0.01\"} 2\n"));
        assert!(out.contains("lat_seconds_bucket{le=\"0.1\"} 3\n"));
        assert!(out.contains("lat_seconds_bucket{le=\"+Inf\"} 5\n"));
        assert!(out.contains("lat_seconds_count 5\n"));
    }

    #[test]
    fn prometheus_nan_sum_uses_the_spec_spelling_not_null() {
        // Infinite samples pass the histogram's NaN filter, and a +Inf
        // followed by a -Inf leaves the running sum NaN; the exposition
        // format spells that `NaN` — `null` is JSON and breaks
        // scrapers.
        let reg = Registry::enabled();
        let h = reg.histogram("poisoned_seconds", HistogramSpec::new(1e-3, 10.0, 3));
        h.record(0.5);
        h.record(f64::INFINITY);
        h.record(f64::NEG_INFINITY);
        let out = to_prometheus(&reg.snapshot());
        assert!(out.contains("poisoned_seconds_sum NaN\n"), "{out}");
        assert!(!out.contains("null"), "JSON null leaked: {out}");
        assert!(!out.to_lowercase().contains(" inf"), "bare inf: {out}");
        validate_prometheus(&out).expect("exposition must stay parseable");
    }

    #[test]
    fn prometheus_infinite_bucket_bound_renders_plus_inf() {
        // An explicitly infinite bound must come out as `+Inf`, not
        // Rust's `inf` debug spelling.
        let snapshot = Snapshot {
            counters: Vec::new(),
            gauges: Vec::new(),
            histograms: vec![HistogramSnapshot {
                name: "weird_seconds".to_string(),
                labels: Vec::new(),
                bounds: vec![1.0, f64::INFINITY],
                counts: vec![1, 2, 0],
                count: 3,
                sum: f64::NEG_INFINITY,
                min: f64::NEG_INFINITY,
                max: 1.0,
                exemplars: vec![None; 3],
            }],
        };
        let out = to_prometheus(&snapshot);
        assert!(
            out.contains("weird_seconds_bucket{le=\"+Inf\"} 3\n"),
            "{out}"
        );
        assert!(out.contains("weird_seconds_sum -Inf\n"), "{out}");
        assert!(!out.contains("\"inf\""), "debug inf spelling leaked: {out}");
        validate_prometheus(&out).expect("exposition must stay parseable");
    }

    #[test]
    fn validator_counts_samples_and_rejects_json_and_debug_spellings() {
        let n = validate_prometheus(&to_prometheus(&sample_snapshot())).unwrap();
        // 1 counter + 3 finite buckets + +Inf bucket + sum + count.
        assert_eq!(n, 7);
        for bad in [
            "m_sum null\n",
            "m_bucket{le=\"inf\"} 1\n",
            "m_sum inf\n",
            "m_sum -inf\n",
            "m_sum nan\n",
            "m_bucket{le=0.1} 1\n",
            "9metric 1\n",
            "just_a_name\n",
            "# TYPE m weird\n",
        ] {
            assert!(validate_prometheus(bad).is_err(), "accepted {bad:?}");
        }
        assert!(validate_prometheus("m_sum NaN\nm_total +Inf\n\n# free comment\n").is_ok());
    }

    fn labeled_snapshot() -> Snapshot {
        let reg = Registry::enabled();
        reg.counter_with("fleet_steps_total", &[("shard", "0")])
            .add(10);
        reg.counter_with("fleet_steps_total", &[("shard", "1")])
            .add(20);
        reg.gauge_with("fleet_queue_depth", &[("shard", "0")])
            .set(3.0);
        let h = reg.histogram_with(
            "fleet_cmd_seconds",
            HistogramSpec::new(1e-3, 10.0, 3),
            &[("cmd", "step"), ("shard", "0")],
        );
        h.record(0.002);
        h.record(0.5);
        reg.snapshot()
    }

    #[test]
    fn prometheus_labeled_series_render_and_round_trip() {
        let out = to_prometheus(&labeled_snapshot());
        // One TYPE header per family, not per labeled series.
        assert_eq!(out.matches("# TYPE fleet_steps_total counter").count(), 1);
        assert!(out.contains("fleet_steps_total{shard=\"0\"} 10\n"), "{out}");
        assert!(out.contains("fleet_steps_total{shard=\"1\"} 20\n"), "{out}");
        assert!(out.contains("# TYPE fleet_queue_depth gauge\n"), "{out}");
        assert!(
            out.contains("fleet_queue_depth{shard=\"0\"} 3.0\n"),
            "{out}"
        );
        // Bucket series merge the series labels with `le`, labels first.
        assert!(
            out.contains("fleet_cmd_seconds_bucket{cmd=\"step\",shard=\"0\",le=\"0.01\"} 1\n"),
            "{out}"
        );
        assert!(
            out.contains("fleet_cmd_seconds_bucket{cmd=\"step\",shard=\"0\",le=\"+Inf\"} 2\n"),
            "{out}"
        );
        assert!(
            out.contains("fleet_cmd_seconds_count{cmd=\"step\",shard=\"0\"} 2\n"),
            "{out}"
        );
        let n = validate_prometheus(&out).expect("labeled exposition validates");
        // 2 counters + 1 gauge + (3 buckets + Inf + sum + count).
        assert_eq!(n, 9);
    }

    #[test]
    fn parse_prometheus_returns_typed_samples() {
        let samples = parse_prometheus(&to_prometheus(&labeled_snapshot())).expect("parses");
        assert_eq!(samples.len(), 9);
        let shard1 = samples
            .iter()
            .find(|s| s.name == "fleet_steps_total" && s.label("shard") == Some("1"))
            .expect("shard 1 series");
        assert_eq!(shard1.value, 20.0);
        let inf_bucket = samples
            .iter()
            .find(|s| s.name == "fleet_cmd_seconds_bucket" && s.label("le") == Some("+Inf"))
            .expect("+Inf bucket");
        assert_eq!(inf_bucket.value, 2.0);
        assert_eq!(inf_bucket.label("cmd"), Some("step"));
        // NaN gauges survive the round trip as NaN values.
        let nan = parse_prometheus("g NaN\n").expect("parses");
        assert!(nan[0].value.is_nan());
        // Invalid expositions are rejected, not partially parsed.
        assert!(parse_prometheus("g null\n").is_err());
    }

    #[test]
    fn bucket_exemplars_render_openmetrics_suffix_and_round_trip() {
        let reg = Registry::enabled();
        let h = reg.histogram("lat_seconds", HistogramSpec::new(1e-3, 10.0, 3));
        h.record(0.002); // no exemplar
        h.record_with_exemplar(0.05, 4242); // bucket le=0.1
        let out = to_prometheus(&reg.snapshot());
        assert!(
            out.contains("lat_seconds_bucket{le=\"0.1\"} 2 # {trace_id=\"4242\"} 0.05\n"),
            "{out}"
        );
        // Untraced buckets keep the byte-identical pre-exemplar line.
        assert!(out.contains("lat_seconds_bucket{le=\"0.01\"} 1\n"), "{out}");
        validate_prometheus(&out).expect("exemplar exposition validates");
        let samples = parse_prometheus(&out).expect("parses");
        let with_ex = samples
            .iter()
            .find(|s| s.exemplar.is_some())
            .expect("one sample carries the exemplar");
        assert_eq!(with_ex.name, "lat_seconds_bucket");
        assert_eq!(with_ex.label("le"), Some("0.1"));
        let ex = with_ex.exemplar.as_ref().unwrap();
        assert_eq!(ex.trace_id(), Some("4242"));
        assert_eq!(ex.span_id(), Some(4242));
        assert_eq!(ex.value, 0.05);
    }

    #[test]
    fn exemplar_suffix_parsing_is_strict() {
        // A valid exemplar, with and without the optional timestamp.
        assert!(validate_prometheus("m_bucket{le=\"1\"} 2 # {trace_id=\"7\"} 0.5\n").is_ok());
        assert!(
            validate_prometheus("m_bucket{le=\"1\"} 2 # {trace_id=\"7\"} 0.5 1234.5\n").is_ok()
        );
        for bad in [
            "m_bucket{le=\"1\"} 2 # trace_id=\"7\" 0.5\n", // no label set braces
            "m_bucket{le=\"1\"} 2 # {trace_id=\"7\"}\n",   // no exemplar value
            "m_bucket{le=\"1\"} 2 # {trace_id=\"7\"} null\n", // bad exemplar value
            "m_bucket{le=\"1\"} 2 # {trace_id=\"7\"} 0.5 zz\n", // bad timestamp
            "m_bucket{le=\"1\"} 2 # {trace_id=\"7\"} 0.5 1 2\n", // trailing garbage
        ] {
            assert!(validate_prometheus(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn snapshot_samples_matches_the_text_round_trip() {
        let reg = Registry::enabled();
        reg.counter_with("fleet_steps_total", &[("shard", "0")])
            .add(10);
        reg.gauge("fleet_queue_depth").set(3.5);
        let h = reg.histogram("fleet_cmd_seconds", HistogramSpec::new(1e-3, 10.0, 3));
        h.record_with_exemplar(0.05, 99);
        h.record(4.0);
        let snap = reg.snapshot();
        let direct = snapshot_samples(&snap);
        let via_text = parse_prometheus(&to_prometheus(&snap)).expect("parses");
        assert_eq!(direct, via_text);
    }

    #[test]
    fn label_values_with_specials_escape_and_round_trip() {
        let reg = Registry::enabled();
        let tricky = "quote\" slash\\ newline\n end";
        reg.counter_with("odd_total", &[("note", tricky)]).inc();
        let out = to_prometheus(&reg.snapshot());
        assert!(
            out.contains("odd_total{note=\"quote\\\" slash\\\\ newline\\n end\"} 1\n"),
            "{out}"
        );
        validate_prometheus(&out).expect("escaped labels validate");
        // Round-trip: the parser recovers the original value exactly.
        let line = out.lines().find(|l| l.starts_with("odd_total{")).unwrap();
        let series = line.rsplit_once(' ').unwrap().0;
        let (name, labels) = parse_series(series).unwrap();
        assert_eq!(name, "odd_total");
        assert_eq!(labels, vec![("note".to_string(), tricky.to_string())]);
    }

    #[test]
    fn validator_rejects_malformed_label_sets() {
        for bad in [
            "m{a=\"1\",a=\"2\"} 1\n", // duplicate label
            "m{a=\"1\"b=\"2\"} 1\n",  // missing comma
            "m{a=\"1} 1\n",           // unterminated value
            "m{a=\"x\\q\"} 1\n",      // unknown escape
            "m{9a=\"1\"} 1\n",        // bad label name
            "m{a=\"1\"}x 1\n",        // trailing garbage
            "m{le=\"zzz\"} 1\n",      // non-numeric bucket bound
            "m{a=1} 1\n",             // unquoted value
        ] {
            assert!(validate_prometheus(bad).is_err(), "accepted {bad:?}");
        }
        // Spaces and commas inside quoted values are fine, as is a
        // trailing comma before the closing brace.
        for good in ["m{a=\"x, y z\"} 1\n", "m{a=\"1\",} 1\n", "m{} 1\n"] {
            assert!(validate_prometheus(good).is_ok(), "rejected {good:?}");
        }
    }

    #[test]
    fn jsonl_labeled_series_carry_a_labels_object() {
        let out = to_jsonl(&labeled_snapshot());
        assert!(
            out.contains(
                "{\"type\":\"counter\",\"name\":\"fleet_steps_total\",\"labels\":{\"shard\":\"0\"},\"value\":10}"
            ),
            "{out}"
        );
        assert!(
            out.contains(
                "{\"type\":\"gauge\",\"name\":\"fleet_queue_depth\",\"labels\":{\"shard\":\"0\"},\"value\":3.0}"
            ),
            "{out}"
        );
        assert!(
            out.contains("\"labels\":{\"cmd\":\"step\",\"shard\":\"0\"}"),
            "{out}"
        );
        // Unlabeled series keep the pre-label schema: no labels field.
        let unlabeled = to_jsonl(&sample_snapshot());
        assert!(!unlabeled.contains("\"labels\""), "{unlabeled}");
    }

    #[test]
    fn report_renders_gauges_and_labeled_names() {
        let out = render_report(&labeled_snapshot());
        assert!(out.contains("gauge"), "{out}");
        assert!(out.contains("fleet_queue_depth{shard=\"0\"}"), "{out}");
        assert!(
            out.contains("fleet_cmd_seconds{cmd=\"step\",shard=\"0\"}"),
            "{out}"
        );
    }

    #[test]
    fn write_text_is_atomic_rename_leaving_no_temp_files() {
        let dir = std::env::temp_dir().join(format!(
            "ev-export-atomic-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("metrics.prom");
        write_text(&path, "first\n").unwrap();
        write_text(&path, "second\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "second\n");
        // The temp file must not survive a successful publish.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .filter(|n| n != "metrics.prom")
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_writers_and_readers_never_observe_a_torn_file() {
        let dir = std::env::temp_dir().join(format!(
            "ev-export-race-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shared.prom");
        let a = "a".repeat(64 * 1024);
        let b = "b".repeat(64 * 1024);
        write_text(&path, &a).unwrap();
        std::thread::scope(|scope| {
            let writer_path = path.clone();
            let (a, b) = (&a, &b);
            scope.spawn(move || {
                for i in 0..50 {
                    let contents = if i % 2 == 0 { b } else { a };
                    write_text(&writer_path, contents).unwrap();
                }
            });
            for _ in 0..200 {
                let seen = std::fs::read_to_string(&path).unwrap();
                assert!(
                    seen == *a || seen == *b,
                    "torn read: {} bytes, first char {:?}",
                    seen.len(),
                    seen.chars().next()
                );
            }
        });
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn report_mentions_all_metrics() {
        let out = render_report(&sample_snapshot());
        assert!(out.contains("hits_total"));
        assert!(out.contains("lat_seconds"));
        assert!(out.contains("p99"));
    }

    #[test]
    fn empty_report_is_flagged() {
        let out = render_report(&Snapshot::default());
        assert!(out.contains("no metrics recorded"));
    }

    #[test]
    fn prometheus_of_empty_or_disabled_registry_is_empty() {
        assert_eq!(to_prometheus(&Snapshot::default()), "");
        assert_eq!(to_prometheus(&Registry::disabled().snapshot()), "");
        // An enabled registry with no metrics registered is equally empty.
        assert_eq!(to_prometheus(&Registry::enabled().snapshot()), "");
        assert_eq!(to_jsonl(&Registry::disabled().snapshot()), "");
    }

    #[test]
    fn write_text_creates_parent_directories() {
        let dir = std::env::temp_dir().join(format!(
            "ev-export-write-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("a").join("b").join("metrics.jsonl");
        write_text(&path, "hello\n").expect("write succeeds");
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "hello\n");
        // Bare file names (no parent component) must also work. The
        // probe lands in the process cwd, so give it a unique name and
        // guard the removal against a failing expect.
        struct Probe(std::path::PathBuf);
        impl Drop for Probe {
            fn drop(&mut self) {
                let _ = std::fs::remove_file(&self.0);
            }
        }
        let probe = Probe(std::path::PathBuf::from(format!(
            ".write-text-probe-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        )));
        write_text(&probe.0, "x").expect("bare file name works");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
