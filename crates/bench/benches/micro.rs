//! Micro-benchmarks of the substrates: the optimizer, the component
//! models and one MPC control step.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ev_bench::{bench_context, bench_preview};
use ev_control::{ClimateController, MpcController};
use ev_hvac::{CabinParams, Hvac, HvacInput, HvacLimits, HvacParams, HvacState};
use ev_linalg::{Lu, Matrix};
use ev_optim::{NlpProblem, QpProblem, QpSolver, SqpSolver};
use ev_powertrain::{PowerTrain, VehicleParams};
use ev_units::{Celsius, KgPerSecond, MetersPerSecond, Seconds, Watts};

/// Dense LU factor+solve at the KKT sizes the MPC produces (~40–80).
fn bench_lu(c: &mut Criterion) {
    let mut group = c.benchmark_group("linalg");
    for n in [16usize, 40, 80] {
        let a = Matrix::from_fn(n, n, |r, cc| {
            if r == cc {
                (n + r) as f64
            } else {
                1.0 / (1.0 + (r as f64 - cc as f64).abs())
            }
        });
        let b: Vec<f64> = (0..n).map(|k| k as f64).collect();
        group.bench_function(format!("lu_solve_{n}"), |bch| {
            bch.iter(|| {
                let lu = Lu::factor(black_box(&a)).expect("spd-ish");
                black_box(lu.solve(&b).expect("solves"))
            })
        });
    }
    group.finish();
}

/// Interior-point QP at the MPC subproblem size (32 vars, 104 ineqs).
fn bench_qp(c: &mut Criterion) {
    let n = 32;
    let mi = 104;
    let h = Matrix::from_fn(n, n, |r, cc| if r == cc { 2.0 } else { 0.0 });
    let g: Vec<f64> = (0..n).map(|k| ((k % 7) as f64) - 3.0).collect();
    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(mi);
    let mut rhs = Vec::with_capacity(mi);
    for i in 0..mi {
        let mut row = vec![0.0; n];
        row[i % n] = if i % 2 == 0 { 1.0 } else { -1.0 };
        row[(i * 3 + 1) % n] += 0.25;
        rows.push(row);
        rhs.push(2.0 + (i % 5) as f64);
    }
    let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
    let a = Matrix::from_rows(&refs).expect("rectangular");
    let p = QpProblem::new(h, g)
        .expect("valid h")
        .with_inequalities(a, rhs)
        .expect("valid constraints");
    c.bench_function("qp_ipm_32v_104c", |b| {
        b.iter(|| black_box(QpSolver::default().solve(black_box(&p)).expect("solves")))
    });
}

/// SQP on a bilinear HVAC-like problem.
fn bench_sqp(c: &mut Criterion) {
    struct Bilinear;
    impl NlpProblem for Bilinear {
        fn num_vars(&self) -> usize {
            4
        }
        fn objective(&self, z: &[f64]) -> f64 {
            let power = z[0] * z[1] + z[2] * z[3];
            power + 2.0 * (z[0] * z[1] - 1.5).powi(2) + (z[2] - z[3]).powi(2)
        }
        fn num_ineq(&self) -> usize {
            8
        }
        fn ineq_constraints(&self, z: &[f64], out: &mut [f64]) {
            for k in 0..4 {
                out[2 * k] = -z[k]; // z ≥ 0
                out[2 * k + 1] = z[k] - 3.0; // z ≤ 3
            }
        }
    }
    c.bench_function("sqp_bilinear_4v_8c", |b| {
        b.iter(|| {
            black_box(
                SqpSolver::default()
                    .solve(&Bilinear, &[0.5, 1.0, 0.5, 0.5])
                    .expect("solves"),
            )
        })
    });
}

/// One HVAC trapezoidal plant step.
fn bench_hvac_step(c: &mut Criterion) {
    let hvac = Hvac::new(CabinParams::default(), HvacParams::default());
    let state = HvacState::new(Celsius::new(25.0));
    let input = HvacInput {
        ts: Celsius::new(12.0),
        tc: Celsius::new(12.0),
        dr: 0.6,
        mz: KgPerSecond::new(0.15),
    };
    c.bench_function("hvac_step", |b| {
        b.iter(|| {
            black_box(hvac.step(
                black_box(state),
                &input,
                Celsius::new(35.0),
                Watts::new(350.0),
                Seconds::new(1.0),
            ))
        })
    });
}

/// One power-train operating-point evaluation.
fn bench_powertrain(c: &mut Criterion) {
    let train = PowerTrain::new(VehicleParams::nissan_leaf());
    c.bench_function("powertrain_power", |b| {
        b.iter(|| {
            black_box(train.power(
                black_box(MetersPerSecond::new(22.0)),
                black_box(0.7),
                black_box(1.5),
            ))
        })
    });
}

/// One full MPC control step (the paper's per-sample optimization).
fn bench_mpc_step(c: &mut Criterion) {
    let preview = bench_preview(64);
    let mut group = c.benchmark_group("mpc");
    group.sample_size(20);
    group.bench_function("mpc_control_step_h8", |b| {
        let hvac = Hvac::new(CabinParams::default(), HvacParams::default());
        let mut mpc = MpcController::builder(hvac, HvacLimits::default())
            .horizon(8)
            .recompute_every(1)
            .build()
            .expect("valid config");
        let ctx = bench_context(&preview);
        b.iter(|| black_box(mpc.control(black_box(&ctx))))
    });
    group.finish();
}

criterion_group!(
    micro,
    bench_lu,
    bench_qp,
    bench_sqp,
    bench_hvac_step,
    bench_powertrain,
    bench_mpc_step
);
criterion_main!(micro);
