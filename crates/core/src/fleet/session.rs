//! One vehicle's serving session: a plant, its drive profile and a
//! privately-owned controller.

use std::sync::Arc;

use ev_control::ClimateController;
use ev_telemetry::TraceRing;

use crate::observe::StepRecord;
use crate::sim::{SimSession, Simulation};

/// The state a fleet shard keeps per connected vehicle: the shared
/// (immutable, `Arc`ed) simulation — profile plus precomputed
/// motor-power vector — the vehicle's own plant cursor, and a
/// controller instance **owned exclusively by this session**.
///
/// Controller ownership is the warm-start isolation boundary: the MPC's
/// shifted-plan warm start and interior-point multiplier cache live
/// inside the controller, so they can only ever be reused by *this*
/// vehicle's next step. Handing the slot to a new drive goes through
/// [`reset`](Self::reset), which calls
/// [`ClimateController::reset_session`] to invalidate them.
pub struct VehicleSession {
    vehicle_id: u64,
    sim: Arc<Simulation>,
    session: SimSession,
    controller: Box<dyn ClimateController>,
    steps: u64,
    drives: u32,
    /// Trace handle scoped to this session's (shard, vehicle) track;
    /// disabled by default so untraced fleets pay one `Option` branch.
    trace: TraceRing,
}

impl VehicleSession {
    /// Opens a session for `vehicle_id` on `sim` with a freshly
    /// instantiated `controller`.
    #[must_use]
    pub fn new(
        vehicle_id: u64,
        sim: Arc<Simulation>,
        controller: Box<dyn ClimateController>,
    ) -> Self {
        let session = sim.start_session();
        Self {
            vehicle_id,
            sim,
            session,
            controller,
            steps: 0,
            drives: 1,
            trace: TraceRing::disabled(),
        }
    }

    /// Attaches a (shard, session)-scoped trace handle; the shard
    /// worker records its command spans onto it.
    #[must_use]
    pub fn with_trace(mut self, trace: TraceRing) -> Self {
        self.trace = trace;
        self
    }

    /// The session's scoped trace handle.
    #[must_use]
    pub fn trace(&self) -> &TraceRing {
        &self.trace
    }

    /// The vehicle this session serves.
    #[must_use]
    pub fn vehicle_id(&self) -> u64 {
        self.vehicle_id
    }

    /// Total plant steps executed across all drives on this slot.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// How many drives (initial plus resets) this slot has served.
    #[must_use]
    pub fn drives(&self) -> u32 {
        self.drives
    }

    /// Whether the current drive profile is exhausted.
    #[must_use]
    pub fn finished(&self) -> bool {
        self.session.cursor() >= self.sim.profile().len()
    }

    /// Advances one control + plant step; `None` once the drive is over.
    pub fn step(&mut self) -> Option<StepRecord> {
        let rec = self
            .sim
            .advance(&mut self.session, self.controller.as_mut())?;
        self.steps += 1;
        Some(rec)
    }

    /// Advances up to `n` steps, returning how many actually ran.
    pub fn step_many(&mut self, n: usize) -> usize {
        let mut ran = 0;
        while ran < n && self.step().is_some() {
            ran += 1;
        }
        ran
    }

    /// Rebinds the slot to a new drive (possibly a different profile),
    /// resetting the plant and invalidating every piece of controller
    /// state anchored to the previous trajectory — warm starts included.
    pub fn reset(&mut self, sim: Arc<Simulation>) {
        self.controller.reset_session();
        self.session = sim.start_session();
        self.sim = sim;
        self.drives += 1;
    }

    /// A point-in-time summary of the session, used for close replies
    /// and the loadgen fleet digest.
    #[must_use]
    pub fn summary(&self) -> SessionSummary {
        let ev = self.session.vehicle();
        SessionSummary {
            vehicle_id: self.vehicle_id,
            steps: self.steps,
            drives: self.drives,
            finished: self.finished(),
            soc_percent: ev.bms().soc().value(),
            cabin_temp_c: ev.cabin_state().tz.value(),
        }
    }
}

/// The closing (or polled) state of one session — everything the fleet
/// digest and the serve endpoint need, no borrow of the slot.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSummary {
    /// The vehicle served.
    pub vehicle_id: u64,
    /// Total plant steps executed on the slot.
    pub steps: u64,
    /// Drives served (initial plus resets).
    pub drives: u32,
    /// Whether the active drive profile was exhausted.
    pub finished: bool,
    /// Final battery state of charge (percent).
    pub soc_percent: f64,
    /// Final cabin temperature (°C).
    pub cabin_temp_c: f64,
}
