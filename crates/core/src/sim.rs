//! The co-simulation engine implementing the paper's Algorithm 1.

use ev_control::{ClimateController, ControlContext, PreviewSample};
use ev_drive::DriveProfile;
use ev_units::{Seconds, Watts};

use crate::observe::{ControllerMode, NoopObserver, StepObserver, StepRecord};
use crate::{ElectricVehicle, EvParams, SimulationResult, TimeSeries};

/// Errors from constructing or running a simulation.
///
/// Marked non-exhaustive: future variants (plant fault injection,
/// observer-requested aborts) must not break downstream matches.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// The drive profile has no samples.
    EmptyProfile,
    /// The requested preview window length is zero.
    ZeroPreview,
    /// The state-of-health parameters are out of range. Caught at
    /// construction so the failure carries a routable error instead of
    /// panicking deep inside the run (possibly on a worker thread).
    InvalidSohParams(ev_battery::SohParamsError),
}

impl core::fmt::Display for SimError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::EmptyProfile => write!(f, "drive profile has no samples"),
            Self::ZeroPreview => write!(f, "preview window length must be positive"),
            Self::InvalidSohParams(e) => write!(f, "invalid soh parameters: {e}"),
        }
    }
}

impl std::error::Error for SimError {}

/// The fixed-step co-simulation loop of the paper's Algorithm 1:
///
/// 1. extract the route information and precompute the electric-motor
///    power vector `e` from the drive profile (lines 2–5);
/// 2. at every sample period, hand the controller the measured state,
///    BMS feedback and the preview window of `e` and ambient (lines
///    14–16), apply its input to the plant (line 18), and meter the total
///    power through the BMS (lines 19–20);
/// 3. evaluate ΔSoH of the whole discharge cycle at the end (line 23).
///
/// # Examples
///
/// ```no_run
/// use ev_core::{ControllerKind, EvParams, Simulation};
/// use ev_drive::{AmbientConditions, DriveCycle, DriveProfile};
/// use ev_units::{Celsius, Seconds};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let params = EvParams::nissan_leaf_like();
/// let profile = DriveProfile::from_cycle(
///     &DriveCycle::ece15(),
///     AmbientConditions::constant(Celsius::new(30.0)),
///     Seconds::new(1.0),
/// );
/// let sim = Simulation::new(params.clone(), profile)?;
/// let mut onoff = ControllerKind::OnOff.instantiate(&params)?;
/// let result = sim.run(onoff.as_mut())?;
/// assert!(result.metrics().avg_hvac_power.value() >= 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Simulation {
    params: EvParams,
    profile: DriveProfile,
    /// Motor-power vector `e` precomputed from the profile (W).
    motor_power: Vec<f64>,
    /// Length of the preview window handed to the controller (samples).
    preview_len: usize,
}

impl Simulation {
    /// Creates a simulation, precomputing the motor-power vector.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptyProfile`] if the profile has no samples,
    /// or [`SimError::InvalidSohParams`] if the degradation parameters
    /// are out of range.
    pub fn new(params: EvParams, profile: DriveProfile) -> Result<Self, SimError> {
        if profile.is_empty() {
            return Err(SimError::EmptyProfile);
        }
        if let Err(e) = params.soh.try_validated() {
            return Err(SimError::InvalidSohParams(e));
        }
        // Algorithm 1 lines 2–5: PowerTrain(d_t) for every sample.
        let train = ev_powertrain::PowerTrain::new(params.vehicle.clone());
        let motor_power: Vec<f64> = profile
            .iter()
            .map(|s| train.power(s.v, s.a, s.slope_percent).value())
            .collect();
        Ok(Self {
            params,
            profile,
            motor_power,
            preview_len: 64,
        })
    }

    /// Overrides the preview window length (samples at the profile rate).
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`; use
    /// [`try_with_preview_len`](Self::try_with_preview_len) to handle
    /// that case as an error.
    #[must_use]
    pub fn with_preview_len(self, len: usize) -> Self {
        self.try_with_preview_len(len)
            .expect("preview length must be positive")
    }

    /// Fallible variant of [`with_preview_len`](Self::with_preview_len).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ZeroPreview`] if `len == 0`.
    pub fn try_with_preview_len(mut self, len: usize) -> Result<Self, SimError> {
        if len == 0 {
            return Err(SimError::ZeroPreview);
        }
        self.preview_len = len;
        Ok(self)
    }

    /// Borrows the drive profile.
    #[must_use]
    pub fn profile(&self) -> &DriveProfile {
        &self.profile
    }

    /// Borrows the precomputed motor-power vector (W).
    #[must_use]
    pub fn motor_power(&self) -> &[f64] {
        &self.motor_power
    }

    /// Runs the closed loop with the given controller and returns the
    /// recorded result.
    ///
    /// # Errors
    ///
    /// Currently infallible after construction; the `Result` is kept for
    /// forward compatibility (plant fault injection).
    pub fn run(
        &self,
        controller: &mut dyn ClimateController,
    ) -> Result<SimulationResult, SimError> {
        self.run_observed(controller, &mut NoopObserver)
    }

    /// Runs the closed loop, invoking `observer` with the full
    /// [`StepRecord`] after every plant step. The observer is statically
    /// dispatched, so [`NoopObserver`] costs nothing; see
    /// [`crate::observe`] for ready-made observers.
    ///
    /// Internally this is exactly the incremental [`SimSession`] engine —
    /// [`start_session`](Self::start_session) followed by
    /// [`advance`](Self::advance) until the profile is exhausted — so a
    /// batch run and a step-at-a-time fleet session take bitwise-identical
    /// trajectories.
    ///
    /// # Errors
    ///
    /// Currently infallible after construction; the `Result` is kept for
    /// forward compatibility (plant fault injection).
    pub fn run_observed<O: StepObserver>(
        &self,
        controller: &mut dyn ClimateController,
        observer: &mut O,
    ) -> Result<SimulationResult, SimError> {
        let dt = self.profile.dt();
        let n = self.profile.len();
        let mut session = self.start_session();

        observer.on_start(self.profile.name(), controller.name(), n);

        let mut series = TimeSeries::default();
        series.t.reserve(n);

        while let Some(rec) = self.advance(&mut session, controller) {
            series.t.push(rec.t);
            series.cabin.push(rec.cabin_temp);
            series
                .hvac_power
                .push(rec.heating_power + rec.cooling_power + rec.fan_power);
            series.motor_power.push(rec.motor_power);
            series.heating_power.push(rec.heating_power);
            series.cooling_power.push(rec.cooling_power);
            series.fan_power.push(rec.fan_power);
            series.battery_power.push(rec.battery_power);
            series.soc.push(rec.soc);
            series.pack_temp.push(rec.pack_temp);
            observer.on_step(&rec);
        }

        let ev = session.vehicle();
        let stats = ev.bms().cycle_stats();
        let delta_soh = ev.bms().cycle_degradation();
        let cycles = ev.bms().cycles_to_eol();
        let limits = self.params.limits();
        let result = SimulationResult::new(
            self.profile.name(),
            controller.name(),
            dt,
            series,
            delta_soh,
            cycles,
            stats,
            (limits.comfort_min, limits.comfort_max),
            self.params.target,
        )
        .with_distance(self.profile.distance());
        observer.on_finish(&result);
        Ok(result)
    }

    /// Borrows the integrated parameter set this simulation runs with.
    #[must_use]
    pub fn params(&self) -> &EvParams {
        &self.params
    }

    /// Starts an incrementally-stepped run of this profile: a fresh
    /// plant (cabin soaked or preconditioned per
    /// [`EvParams::initial_cabin`], pack soaked to the first ambient) at
    /// step zero. Drive it with [`advance`](Self::advance).
    ///
    /// A [`SimSession`] owns no borrow of the `Simulation`, so many
    /// sessions can share one `Simulation` (e.g. behind an `Arc` in the
    /// fleet engine, one plant per vehicle over a shared precomputed
    /// motor-power vector).
    #[must_use]
    pub fn start_session(&self) -> SimSession {
        let first_ambient = self.profile.sample(0).ambient;
        let initial_cabin = self.params.initial_cabin.unwrap_or(first_ambient);
        // A parked pack soaks to ambient regardless of any cabin
        // preconditioning.
        SimSession {
            ev: ElectricVehicle::new(&self.params, initial_cabin)
                .with_pack_temperature(first_ambient),
            cursor: 0,
            preview: Vec::with_capacity(self.preview_len),
        }
    }

    /// Advances `session` by one control + plant step of the paper's
    /// Algorithm 1 and returns the full [`StepRecord`], or `None` once
    /// the profile is exhausted. A session must only be advanced by the
    /// `Simulation` that created it.
    pub fn advance(
        &self,
        session: &mut SimSession,
        controller: &mut dyn ClimateController,
    ) -> Option<StepRecord> {
        let dt = self.profile.dt();
        let n = self.profile.len();
        let k = session.cursor;
        if k >= n {
            return None;
        }
        session.cursor += 1;
        let min_flow = self.params.hvac.min_flow.value();
        let sample = *self.profile.sample(k);
        // Build the preview window (constant extension past the end).
        session.preview.clear();
        for j in k..k + self.preview_len {
            let idx = j.min(n - 1);
            let s = self.profile.sample(idx);
            session.preview.push(PreviewSample {
                motor_power: Watts::new(self.motor_power[idx]),
                ambient: s.ambient,
                solar: s.solar,
            });
        }
        let ev = &mut session.ev;
        let ctx = ControlContext {
            state: ev.cabin_state(),
            ambient: sample.ambient,
            solar: sample.solar,
            soc: ev.bms().soc(),
            soc_avg: ev.bms().running_soc_avg(),
            dt,
            elapsed: Seconds::new(k as f64 * dt.value()),
            preview: &session.preview,
        };
        let input = controller.control(&ctx);
        let step = ev.step(&input, &sample, dt);
        Some(StepRecord {
            step: k,
            t: sample.t.value(),
            dt: dt.value(),
            motor_power: step.motor_power.value(),
            heating_power: step.hvac_power.heating.value(),
            cooling_power: step.hvac_power.cooling.value(),
            fan_power: step.hvac_power.fan.value(),
            accessory_power: step.accessory_power.value(),
            battery_power: step.battery_power.value(),
            soc: step.soc.value(),
            cabin_temp: step.cabin.value(),
            pack_temp: step.pack_temp.value(),
            ambient: sample.ambient.value(),
            solar: sample.solar.value(),
            supply_temp: input.ts.value(),
            coil_temp: input.tc.value(),
            recirculation: input.dr,
            flow: input.mz.value(),
            mode: ControllerMode::classify(
                step.hvac_power.heating.value(),
                step.hvac_power.cooling.value(),
                input.mz.value(),
                min_flow,
            ),
        })
    }
}

/// The mutable state of one incrementally-stepped simulation run: the
/// plant, the profile cursor and a reusable preview buffer. Created by
/// [`Simulation::start_session`], advanced one control + plant step at a
/// time by [`Simulation::advance`] — the substrate of a fleet vehicle
/// session, where thousands of plants share one precomputed profile.
#[derive(Debug, Clone)]
pub struct SimSession {
    ev: ElectricVehicle,
    cursor: usize,
    preview: Vec<PreviewSample>,
}

impl SimSession {
    /// Index of the next profile sample to execute (equals the number of
    /// steps taken so far).
    #[must_use]
    pub fn cursor(&self) -> usize {
        self.cursor
    }

    /// Borrows the plant, e.g. to read the live SoC, cabin temperature
    /// or BMS cycle statistics mid-drive.
    #[must_use]
    pub fn vehicle(&self) -> &ElectricVehicle {
        &self.ev
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ControllerKind;
    use ev_drive::{AmbientConditions, DriveCycle};
    use ev_units::Celsius;

    fn short_sim(to: f64) -> Simulation {
        let profile = DriveProfile::from_cycle(
            &DriveCycle::ece15(),
            AmbientConditions::constant(Celsius::new(to)),
            Seconds::new(1.0),
        );
        Simulation::new(EvParams::nissan_leaf_like(), profile).expect("profile non-empty")
    }

    #[test]
    fn motor_power_precomputation_matches_profile() {
        let sim = short_sim(30.0);
        assert_eq!(sim.motor_power().len(), sim.profile().len());
        // Standstill at t = 0: zero motor power.
        assert_eq!(sim.motor_power()[0], 0.0);
        // Some acceleration sample draws real power.
        assert!(sim.motor_power().iter().any(|&p| p > 5_000.0));
    }

    #[test]
    fn onoff_run_produces_complete_series() {
        let sim = short_sim(35.0);
        let mut c = ControllerKind::OnOff
            .instantiate(&EvParams::nissan_leaf_like())
            .unwrap();
        let r = sim.run(c.as_mut()).unwrap();
        assert_eq!(r.series.t.len(), sim.profile().len());
        let m = r.metrics();
        assert!(m.avg_hvac_power.value() > 0.0);
        assert!(m.final_soc < 95.0);
        assert!(m.delta_soh_milli_percent > 0.0);
        assert!(m.distance.value() > 0.9);
    }

    #[test]
    fn hot_start_cools_toward_band() {
        let sim = short_sim(35.0);
        let mut c = ControllerKind::Fuzzy
            .instantiate(&EvParams::nissan_leaf_like())
            .unwrap();
        let r = sim.run(c.as_mut()).unwrap();
        let last = *r.series.cabin.last().unwrap();
        assert!(last < 32.0, "cabin should cool from 35 °C soak: {last}");
    }

    #[test]
    fn soc_is_monotone_without_regen() {
        // ECE-15 braking is gentle but regen exists; check the SoC never
        // *increases more than regen can explain* — simply verify overall
        // decrease and boundedness.
        let sim = short_sim(21.0);
        let mut c = ControllerKind::OnOff
            .instantiate(&EvParams::nissan_leaf_like())
            .unwrap();
        let r = sim.run(c.as_mut()).unwrap();
        let socs = &r.series.soc;
        assert!(socs.first().unwrap() >= socs.last().unwrap());
        assert!(socs.iter().all(|&s| (10.0..=100.0).contains(&s)));
    }

    #[test]
    fn sim_error_display_is_stable() {
        assert_eq!(
            SimError::EmptyProfile.to_string(),
            "drive profile has no samples"
        );
        assert_eq!(
            SimError::ZeroPreview.to_string(),
            "preview window length must be positive"
        );
    }

    #[test]
    fn invalid_soh_params_are_rejected_at_construction() {
        let mut params = EvParams::nissan_leaf_like();
        params.soh.a1 = -1.0;
        let profile = DriveProfile::from_cycle(
            &ev_drive::DriveCycle::ece15(),
            ev_drive::AmbientConditions::constant(ev_units::Celsius::new(30.0)),
            Seconds::new(1.0),
        );
        let err = Simulation::new(params, profile).unwrap_err();
        assert!(matches!(err, SimError::InvalidSohParams(_)));
        assert!(err.to_string().contains("a1"), "{err}");
    }

    #[test]
    fn sim_error_is_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(SimError::ZeroPreview);
        assert!(e.source().is_none());
        assert!(!format!("{e:?}").is_empty());
    }

    #[test]
    fn zero_preview_is_rejected() {
        let sim = short_sim(30.0);
        assert_eq!(
            sim.clone().try_with_preview_len(0).unwrap_err(),
            SimError::ZeroPreview
        );
        assert_eq!(sim.try_with_preview_len(16).unwrap().preview_len, 16);
    }

    #[test]
    fn observer_sees_every_step_consistently() {
        use crate::observe::{StatsObserver, TraceRecorder};
        let sim = short_sim(35.0);
        let mut c = ControllerKind::OnOff
            .instantiate(&EvParams::nissan_leaf_like())
            .unwrap();
        let mut obs = (TraceRecorder::new(), StatsObserver::new());
        let r = sim.run_observed(c.as_mut(), &mut obs).unwrap();
        let (trace, stats) = obs;
        assert_eq!(trace.records().len(), r.series.t.len());
        assert_eq!(stats.steps(), r.series.t.len());
        assert_eq!(trace.profile(), r.profile);
        assert_eq!(trace.controller(), r.controller);
        // The observed stream and the recorded series agree sample by
        // sample.
        for (k, rec) in trace.records().iter().enumerate() {
            assert_eq!(rec.step, k);
            assert_eq!(rec.t, r.series.t[k]);
            assert_eq!(rec.soc, r.series.soc[k]);
            assert_eq!(rec.cabin_temp, r.series.cabin[k]);
            assert_eq!(rec.pack_temp, r.series.pack_temp[k]);
            assert_eq!(rec.battery_power, r.series.battery_power[k]);
            assert!((rec.hvac_power() - r.series.hvac_power[k]).abs() < 1e-12);
        }
        // Hot soak at 35 °C: the On/Off controller must spend time
        // cooling.
        assert!(stats.modes.cooling > 0);
    }

    #[test]
    fn observed_run_equals_plain_run() {
        // Precondition the cabin so mean_temp_error is a number (NaN is
        // not equal to itself, which would defeat the whole-result
        // comparison).
        let mut params = EvParams::nissan_leaf_like();
        params.initial_cabin = Some(params.target);
        let profile = DriveProfile::from_cycle(
            &DriveCycle::ece15(),
            AmbientConditions::constant(Celsius::new(35.0)),
            Seconds::new(1.0),
        );
        let sim = Simulation::new(params.clone(), profile).expect("profile non-empty");
        let mut c1 = ControllerKind::Fuzzy.instantiate(&params).unwrap();
        let mut c2 = ControllerKind::Fuzzy.instantiate(&params).unwrap();
        let plain = sim.run(c1.as_mut()).unwrap();
        let mut trace = crate::observe::TraceRecorder::new();
        let observed = sim.run_observed(c2.as_mut(), &mut trace).unwrap();
        assert_eq!(plain, observed, "observation must not perturb the physics");
    }

    #[test]
    fn pack_starts_at_ambient_and_heats_under_load() {
        let sim = short_sim(35.0);
        let mut c = ControllerKind::OnOff
            .instantiate(&EvParams::nissan_leaf_like())
            .unwrap();
        let r = sim.run(c.as_mut()).unwrap();
        assert!((r.series.pack_temp[0] - 35.0).abs() < 0.1);
        // Sustained discharge generates I²R heat faster than a 35 °C
        // ambient removes it.
        assert!(
            r.series.pack_temp.last().unwrap() >= &r.series.pack_temp[0],
            "pack must not spontaneously cool below ambient"
        );
    }

    #[test]
    fn initial_cabin_override() {
        let profile = DriveProfile::from_cycle(
            &DriveCycle::ece15(),
            AmbientConditions::constant(Celsius::new(35.0)),
            Seconds::new(1.0),
        );
        let mut params = EvParams::nissan_leaf_like();
        params.initial_cabin = Some(Celsius::new(24.0));
        let sim = Simulation::new(params.clone(), profile).unwrap();
        let mut c = ControllerKind::OnOff.instantiate(&params).unwrap();
        let r = sim.run(c.as_mut()).unwrap();
        // Starting inside the band, comfort accounting begins at once.
        assert!(r.series.cabin[0] < 27.0);
    }
}
