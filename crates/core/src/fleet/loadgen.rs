//! Deterministic synthetic-fleet load generator.
//!
//! Drives N vehicle sessions through the [`FleetEngine`] from a seeded
//! arrival process over a drive-cycle × ambient mix, then reports
//! throughput and solve latency. Everything the *simulation* produces
//! is reproducible: the same seed yields the same cycle/ambient draws,
//! the same per-session step counts and therefore the same final fleet
//! state, captured in an order-independent digest. Wall-clock figures
//! (steps/sec, solve-latency quantiles, shed counts) are measured, not
//! derived, and sit outside the determinism guarantee.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use ev_drive::{AmbientConditions, DriveCycle, DriveProfile};
use ev_telemetry::{Registry, TraceRing};
use ev_units::{Celsius, Seconds};
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::params::{ControllerKind, ControllerSetup};
use crate::sim::Simulation;
use crate::EvParams;

use super::engine::{FleetConfig, FleetEngine, FleetError};
use super::pool::available_workers;
use super::session::SessionSummary;

/// Configuration for [`run_loadgen`].
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Number of vehicle sessions to serve.
    pub sessions: usize,
    /// Plant steps each session executes (clamped by its profile).
    pub steps_per_session: usize,
    /// Steps per submitted command (the fan-out granularity).
    pub chunk: usize,
    /// Seed for the arrival process and scenario mix.
    pub seed: u64,
    /// Shard count handed to the engine (`0` = auto).
    pub shards: usize,
    /// Per-shard command-queue bound.
    pub queue_capacity: usize,
    /// Controller every session runs.
    pub controller: ControllerKind,
    /// Fault injection: cap the MPC's SQP iterations per solve
    /// (`None` = the controller default). A cap of 1 forces most
    /// solves to hit the iteration limit, driving
    /// `mpc_solve_max_iterations_total` — the seeded breach the SLO CI
    /// job proves the alert pipeline on.
    pub max_sqp_iterations: Option<usize>,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            sessions: 100,
            steps_per_session: 120,
            chunk: 16,
            seed: 42,
            shards: 0,
            queue_capacity: 256,
            controller: ControllerKind::Mpc,
            max_sqp_iterations: None,
        }
    }
}

/// What a loadgen run produced. The fields up to and including
/// [`fleet_digest`](Self::fleet_digest) are **deterministic** in the
/// config (same seed → bit-identical values); the rest are wall-clock
/// measurements.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Sessions served.
    pub sessions: usize,
    /// Total plant steps executed fleet-wide.
    pub total_steps: u64,
    /// Drives stepped to the end of their profile.
    pub finished_drives: u64,
    /// MPC warm-start hits fleet-wide.
    pub warm_start_hits: u64,
    /// MPC warm-start misses fleet-wide.
    pub warm_start_misses: u64,
    /// Order-independent digest of every session's final state
    /// (id, steps, SoC, cabin temperature). Equal seeds must produce
    /// equal digests; a digest change flags a cross-session leak.
    pub fleet_digest: u64,
    /// Step submissions shed by backpressure before the parking retry
    /// (timing-dependent).
    pub shed_events: u64,
    /// Wall-clock duration of the run.
    pub wall_seconds: f64,
    /// Throughput: plant steps per wall-clock second.
    pub steps_per_second: f64,
    /// Sessions served per available core.
    pub sessions_per_core: f64,
    /// Median MPC control-step latency (milliseconds; NaN when the
    /// controller records no solve timings).
    pub p50_solve_ms: f64,
    /// 99th-percentile MPC control-step latency (milliseconds).
    pub p99_solve_ms: f64,
    /// Shards the engine ran with.
    pub shards: usize,
}

/// One splitmix64 avalanche round.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hashes one session summary into a single word.
fn summary_digest(s: &SessionSummary) -> u64 {
    let mut h = mix64(s.vehicle_id ^ 0x5EED_F1EE_7D16_E575);
    h = mix64(h ^ s.steps);
    h = mix64(h ^ u64::from(s.drives));
    h = mix64(h ^ u64::from(s.finished));
    h = mix64(h ^ s.soc_percent.to_bits());
    mix64(h ^ s.cabin_temp_c.to_bits())
}

/// Folds per-session digests **order-independently** (wrapping sum), so
/// shard scheduling cannot perturb the fleet digest.
fn fleet_digest(summaries: &[SessionSummary]) -> u64 {
    summaries
        .iter()
        .fold(0u64, |acc, s| acc.wrapping_add(summary_digest(s)))
}

/// The drive-cycle mix the generator draws from.
fn cycle_mix() -> [DriveCycle; 3] {
    [
        DriveCycle::ece_eudc(),
        DriveCycle::udds(),
        DriveCycle::us06(),
    ]
}

/// The ambient mix (°C): deep winter, freezing, mild, paper-hot.
const AMBIENT_MIX_C: [f64; 4] = [-10.0, 0.0, 20.0, 35.0];

/// Runs the synthetic fleet and reports. See [`LoadgenConfig`].
///
/// # Panics
///
/// Panics if `sessions` is zero or a built-in drive profile fails to
/// construct (it does not).
#[must_use]
pub fn run_loadgen(config: &LoadgenConfig) -> LoadgenReport {
    run_loadgen_on(config, &Registry::enabled())
}

/// [`run_loadgen`] recording into a caller-supplied registry — the
/// `evsim serve` path, where the same registry backs the scrape
/// endpoint so a burst's metrics are observable while it runs.
///
/// # Panics
///
/// Panics if `sessions` is zero or a built-in drive profile fails to
/// construct (it does not).
#[must_use]
pub fn run_loadgen_on(config: &LoadgenConfig, registry: &Registry) -> LoadgenReport {
    run_loadgen_traced(config, registry, &TraceRing::disabled())
}

/// [`run_loadgen_on`] additionally capturing begin/end events into
/// `trace` — the `evsim trace` path. The ring's sampling policy decides
/// which sessions land in the capture; metrics cover all of them either
/// way.
///
/// # Panics
///
/// Panics if `sessions` is zero or a built-in drive profile fails to
/// construct (it does not).
#[must_use]
pub fn run_loadgen_traced(
    config: &LoadgenConfig,
    registry: &Registry,
    trace: &TraceRing,
) -> LoadgenReport {
    assert!(config.sessions > 0, "loadgen needs at least one session");
    let params = EvParams::nissan_leaf_like();
    let registry = registry.clone();
    let fleet = FleetEngine::new(FleetConfig {
        shards: config.shards,
        queue_capacity: config.queue_capacity,
        params: params.clone(),
        setup: ControllerSetup {
            telemetry: registry.clone(),
            trace: trace.clone(),
            max_sqp_iterations: config.max_sqp_iterations,
            ..ControllerSetup::default()
        },
    });
    let shards = fleet.shards();
    let cycles = cycle_mix();
    let chunk = config.chunk.max(1);
    let mut rng = StdRng::seed_from_u64(config.seed);
    // Profiles are immutable and expensive (precomputed motor-power
    // vectors), so every (cycle, ambient) pair is built once and shared
    // across its sessions.
    let mut sim_cache: HashMap<(usize, usize), Arc<Simulation>> = HashMap::new();
    let started = Instant::now();

    let mut shed_events = 0u64;
    // (vehicle_id, remaining steps), in arrival order.
    let mut active: Vec<(u64, usize)> = Vec::with_capacity(config.sessions);
    let mut summaries: Vec<SessionSummary> = Vec::with_capacity(config.sessions);
    let mut opened = 0usize;

    // Submits one chunk with shed-then-park backpressure handling: a
    // full queue is *counted* (the shed event) and then waited out, so
    // every generated step eventually executes and the totals stay
    // deterministic.
    let submit_chunk =
        |fleet: &FleetEngine, id: u64, n: usize, shed: &mut u64| match fleet.try_step(id, n) {
            Ok(()) => {}
            Err(FleetError::Shed) => {
                *shed += 1;
                fleet.step(id, n).expect("engine alive while loadgen runs");
            }
            Err(e) => panic!("loadgen submission failed: {e}"),
        };

    while opened < config.sessions || !active.is_empty() {
        // Seeded arrival burst: a few vehicles connect…
        if opened < config.sessions {
            let burst = rng.gen_range(1usize..=4).min(config.sessions - opened);
            for _ in 0..burst {
                let id = opened as u64;
                let cycle_idx = rng.gen_range(0usize..cycles.len());
                let ambient_idx = rng.gen_range(0usize..AMBIENT_MIX_C.len());
                let sim = Arc::clone(sim_cache.entry((cycle_idx, ambient_idx)).or_insert_with(
                    || {
                        let profile = DriveProfile::from_cycle(
                            &cycles[cycle_idx],
                            AmbientConditions::constant(Celsius::new(AMBIENT_MIX_C[ambient_idx])),
                            Seconds::new(1.0),
                        );
                        Arc::new(
                            Simulation::new(params.clone(), profile).expect("profile non-empty"),
                        )
                    },
                ));
                fleet
                    .open(id, sim, config.controller)
                    .expect("engine alive while loadgen runs");
                active.push((id, config.steps_per_session));
                opened += 1;
            }
        }
        // …then every connected vehicle advances one chunk.
        for (id, remaining) in &mut active {
            let n = chunk.min(*remaining);
            submit_chunk(&fleet, *id, n, &mut shed_events);
            *remaining -= n;
        }
        // Completed sessions disconnect and contribute their summary.
        let mut still_active = Vec::with_capacity(active.len());
        for (id, remaining) in active {
            if remaining == 0 {
                summaries.push(fleet.close(id).expect("session was open"));
            } else {
                still_active.push((id, remaining));
            }
        }
        active = still_active;
    }

    let stats = fleet.shutdown();
    let wall_seconds = started.elapsed().as_secs_f64();
    let snapshot = registry.snapshot();
    // MPC metrics are per-shard labeled series now; quantiles and
    // totals come from the label-merged aggregates.
    let (p50, p99) = snapshot
        .histogram_merged("mpc_control_step_seconds")
        .map_or((f64::NAN, f64::NAN), |h| {
            (h.quantile(0.5) * 1e3, h.quantile(0.99) * 1e3)
        });

    LoadgenReport {
        sessions: config.sessions,
        total_steps: stats.total.steps,
        finished_drives: stats.total.finished_drives,
        warm_start_hits: snapshot
            .counter_sum("mpc_warm_start_hits_total")
            .unwrap_or(0),
        warm_start_misses: snapshot
            .counter_sum("mpc_warm_start_misses_total")
            .unwrap_or(0),
        fleet_digest: fleet_digest(&summaries),
        shed_events,
        wall_seconds,
        steps_per_second: stats.total.steps as f64 / wall_seconds.max(1e-9),
        sessions_per_core: config.sessions as f64 / available_workers() as f64,
        p50_solve_ms: p50,
        p99_solve_ms: p99,
        shards,
    }
}

/// Formats a quantile for display (`n/a` when no samples exist).
fn fmt_ms(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3} ms")
    } else {
        "n/a".to_owned()
    }
}

/// Renders the report as the text block `evsim loadgen` prints.
#[must_use]
pub fn render_loadgen_report(r: &LoadgenReport) -> String {
    format!(
        "Synthetic fleet — {} sessions on {} shards\n\
         deterministic:\n\
         \x20 total steps        {}\n\
         \x20 finished drives    {}\n\
         \x20 warm-start hits    {}\n\
         \x20 warm-start misses  {}\n\
         \x20 fleet digest       {:016x}\n\
         measured:\n\
         \x20 wall time          {:.3} s\n\
         \x20 throughput         {:.0} steps/s\n\
         \x20 sessions/core      {:.1}\n\
         \x20 shed events        {}\n\
         \x20 solve p50          {}\n\
         \x20 solve p99          {}\n",
        r.sessions,
        r.shards,
        r.total_steps,
        r.finished_drives,
        r.warm_start_hits,
        r.warm_start_misses,
        r.fleet_digest,
        r.wall_seconds,
        r.steps_per_second,
        r.sessions_per_core,
        r.shed_events,
        fmt_ms(r.p50_solve_ms),
        fmt_ms(r.p99_solve_ms),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> LoadgenConfig {
        LoadgenConfig {
            sessions: 12,
            steps_per_session: 40,
            chunk: 8,
            seed: 7,
            shards: 2,
            queue_capacity: 32,
            controller: ControllerKind::Mpc,
            max_sqp_iterations: None,
        }
    }

    #[test]
    fn loadgen_executes_every_generated_step() {
        let config = quick_config();
        let report = run_loadgen(&config);
        assert_eq!(report.sessions, 12);
        assert_eq!(report.total_steps, 12 * 40);
        assert!(
            report.warm_start_hits > 0,
            "MPC fleet must reuse warm starts"
        );
        assert!(report.p99_solve_ms.is_finite(), "solve histogram populated");
    }

    #[test]
    fn same_seed_same_deterministic_fields() {
        let config = quick_config();
        let a = run_loadgen(&config);
        let b = run_loadgen(&config);
        assert_eq!(a.total_steps, b.total_steps);
        assert_eq!(a.finished_drives, b.finished_drives);
        assert_eq!(a.warm_start_hits, b.warm_start_hits);
        assert_eq!(a.warm_start_misses, b.warm_start_misses);
        assert_eq!(a.fleet_digest, b.fleet_digest);
    }

    #[test]
    fn different_seed_changes_the_mix() {
        let a = run_loadgen(&quick_config());
        let b = run_loadgen(&LoadgenConfig {
            seed: 8,
            ..quick_config()
        });
        assert_ne!(
            a.fleet_digest, b.fleet_digest,
            "a different arrival mix must change the fleet digest"
        );
    }

    #[test]
    fn shutdown_gauges_match_loadgen_totals_and_series_are_per_shard() {
        let config = quick_config();
        let registry = Registry::enabled();
        let report = run_loadgen_on(&config, &registry);
        let snap = registry.snapshot();
        // The shutdown fold makes the final totals scrapeable.
        assert_eq!(
            snap.gauge("fleet_shutdown_steps_final"),
            Some(report.total_steps as f64)
        );
        assert_eq!(
            snap.gauge("fleet_shutdown_sessions_final"),
            Some(report.sessions as f64)
        );
        assert_eq!(
            snap.gauge("fleet_shutdown_finished_drives_final"),
            Some(report.finished_drives as f64)
        );
        // Engine counters are per-shard labeled series whose sum is the
        // fleet total.
        assert_eq!(
            snap.counter("fleet_steps_total"),
            None,
            "no unlabeled series"
        );
        assert_eq!(
            snap.counter_sum("fleet_steps_total"),
            Some(report.total_steps)
        );
        assert!(snap
            .counter_labeled("fleet_steps_total", &[("shard", "0")])
            .is_some());
        // Per-command latency histograms populated on every shard.
        for shard in 0..report.shards {
            let shard = shard.to_string();
            let h = snap
                .histogram_labeled("fleet_cmd_seconds", &[("cmd", "step"), ("shard", &shard)])
                .expect("step latency series per shard");
            assert!(h.count > 0, "shard {shard} step histogram empty");
            assert!(snap
                .gauge_labeled("fleet_queue_depth", &[("shard", &shard)])
                .is_some());
        }
        // Per-shard shutdown gauges sum to the fleet total.
        let shard_steps: f64 = (0..report.shards)
            .map(|i| {
                let shard = i.to_string();
                snap.gauge_labeled("fleet_shutdown_shard_steps_final", &[("shard", &shard)])
                    .expect("per-shard final steps gauge")
            })
            .sum();
        assert_eq!(shard_steps as u64, report.total_steps);
        // Live sessions have all drained back to zero.
        for i in 0..report.shards {
            let shard = i.to_string();
            assert_eq!(
                snap.gauge_labeled("fleet_live_sessions", &[("shard", &shard)]),
                Some(0.0),
                "shard {shard} still reports live sessions"
            );
        }
        // MPC solve-outcome counters are per-shard too.
        assert!(snap.counter_sum("mpc_solves_total").unwrap_or(0) > 0);
        assert!(snap.counter("mpc_solves_total").is_none());
    }

    #[test]
    fn traced_loadgen_captures_session_step_and_solve_spans() {
        let trace = TraceRing::enabled(8192);
        let report = run_loadgen_traced(&quick_config(), &Registry::enabled(), &trace);
        assert_eq!(report.total_steps, 12 * 40, "tracing must not drop steps");
        let events = trace.events();
        assert!(!events.is_empty());
        let count = |name: &str, phase| {
            events
                .iter()
                .filter(|e| e.name == name && e.phase == phase)
                .count()
        };
        use ev_telemetry::TracePhase;
        assert_eq!(count("session", TracePhase::Begin), 12);
        assert_eq!(count("session", TracePhase::End), 12);
        assert!(count("step", TracePhase::Complete) > 0);
        assert!(count("mpc_solve", TracePhase::Complete) > 0);
        // Events carry the engine's (shard, session) identity.
        assert!(events.iter().all(|e| (e.pid as usize) < report.shards));
        assert!(events.iter().any(|e| e.tid > 0));
        let json = trace.to_chrome_json();
        assert!(
            json.contains("\"ph\":\"X\"") && json.contains("\"ph\":\"B\""),
            "{json}"
        );
    }

    #[test]
    fn sampled_trace_keeps_a_session_subset() {
        let trace = TraceRing::sampled(8192, 4);
        let _ = run_loadgen_traced(&quick_config(), &Registry::enabled(), &trace);
        let events = trace.events();
        assert!(!events.is_empty(), "vehicle ids divisible by 4 are sampled");
        assert!(
            events.iter().all(|e| e.tid % 4 == 0),
            "unsampled session leaked"
        );
    }

    #[test]
    fn report_renders_without_invalid_tokens() {
        let text = render_loadgen_report(&run_loadgen(&LoadgenConfig {
            sessions: 4,
            steps_per_session: 10,
            controller: ControllerKind::OnOff,
            ..quick_config()
        }));
        assert!(text.contains("fleet digest"));
        assert!(text.contains("solve p99          n/a"), "{text}");
    }
}
