//! Standard driving cycles and multi-variable drive profiles.
//!
//! The paper's controller consumes a *drive profile* (its Section II-A): a
//! discrete-time, multi-variable sample of the environment the EV drives
//! through — vehicle speed, acceleration, road slope, ambient temperature
//! and solar load. In the paper these come from navigation/traffic/climate
//! databases or from standard regulatory driving cycles; the evaluation
//! uses the cycles NEDC, US06, ECE_EUDC, SC03 and UDDS.
//!
//! This crate provides:
//!
//! * [`DriveCycle`] — a named piecewise-linear speed trace with
//!   constructors for the six standard cycles. NEDC, ECE-15 and EUDC are
//!   encoded from their piecewise-linear regulatory definitions; US06,
//!   SC03 and UDDS (measured dynamometer traces in reality) are
//!   *synthesized* piecewise-linear approximations matching the published
//!   duration, distance, average and maximum speed of each cycle — see
//!   `DESIGN.md` for the substitution rationale.
//! * [`DriveProfile`] — the sampled multi-variable input the simulator and
//!   MPC consume, built from a cycle plus [`AmbientConditions`] and an
//!   optional slope profile.
//! * [`synthetic`] — seeded generators for realistic commute routes
//!   (hills, traffic waves) and diurnal ambient temperature, standing in
//!   for the Google-Maps/NOAA databases the paper cites.
//!
//! # Examples
//!
//! ```
//! use ev_drive::{AmbientConditions, DriveCycle, DriveProfile};
//! use ev_units::{Celsius, Seconds};
//!
//! let cycle = DriveCycle::nedc();
//! assert_eq!(cycle.name(), "NEDC");
//! let profile = DriveProfile::from_cycle(
//!     &cycle,
//!     AmbientConditions::constant(Celsius::new(30.0)),
//!     Seconds::new(1.0),
//! );
//! assert!(profile.distance().value() > 10.0); // km
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cycle;
mod profile;
mod route;
pub mod synthetic;

pub use cycle::{CycleStats, DriveCycle};
pub use profile::{AmbientConditions, DriveProfile, DriveSample, SlopeProfile};
pub use route::{Route, RouteSegment};
