//! Time-stamped state history produced by the integrators.

/// A time-stamped sequence of states produced by an integration run.
///
/// States are stored flat, `dim` values per sample, so a trajectory of a
/// scalar system is just its sample vector.
///
/// # Examples
///
/// ```
/// use ev_ode::Trajectory;
///
/// let mut traj = Trajectory::new(2);
/// traj.push(0.0, &[1.0, 0.0]);
/// traj.push(0.5, &[0.9, -0.1]);
/// assert_eq!(traj.len(), 2);
/// assert_eq!(traj.state(1), &[0.9, -0.1]);
/// assert_eq!(traj.component(0), vec![1.0, 0.9]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Trajectory {
    dim: usize,
    times: Vec<f64>,
    states: Vec<f64>,
}

impl Trajectory {
    /// Creates an empty trajectory for states of the given dimension.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    #[must_use]
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "trajectory dimension must be positive");
        Self {
            dim,
            times: Vec::new(),
            states: Vec::new(),
        }
    }

    /// State dimension.
    #[inline]
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stored samples.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Returns `true` if no samples are stored.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics if `state.len() != dim()`.
    pub fn push(&mut self, t: f64, state: &[f64]) {
        assert_eq!(state.len(), self.dim, "trajectory state dimension mismatch");
        self.times.push(t);
        self.states.extend_from_slice(state);
    }

    /// Borrows the sample times.
    #[inline]
    #[must_use]
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Borrows the state at sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    #[must_use]
    pub fn state(&self, i: usize) -> &[f64] {
        assert!(i < self.len(), "trajectory sample index out of bounds");
        &self.states[i * self.dim..(i + 1) * self.dim]
    }

    /// Borrows the most recent state.
    ///
    /// # Panics
    ///
    /// Panics if the trajectory is empty.
    #[inline]
    #[must_use]
    pub fn last_state(&self) -> &[f64] {
        assert!(!self.is_empty(), "trajectory is empty");
        self.state(self.len() - 1)
    }

    /// Copies the time series of one state component.
    ///
    /// # Panics
    ///
    /// Panics if `k >= dim()`.
    #[must_use]
    pub fn component(&self, k: usize) -> Vec<f64> {
        assert!(k < self.dim, "trajectory component index out of bounds");
        (0..self.len()).map(|i| self.state(i)[k]).collect()
    }

    /// Iterates over `(t, state)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, &[f64])> + '_ {
        self.times
            .iter()
            .enumerate()
            .map(move |(i, &t)| (t, self.state(i)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_access() {
        let mut traj = Trajectory::new(1);
        assert!(traj.is_empty());
        traj.push(0.0, &[1.0]);
        traj.push(1.0, &[2.0]);
        assert_eq!(traj.len(), 2);
        assert_eq!(traj.times(), &[0.0, 1.0]);
        assert_eq!(traj.last_state(), &[2.0]);
    }

    #[test]
    fn component_extraction() {
        let mut traj = Trajectory::new(3);
        traj.push(0.0, &[1.0, 2.0, 3.0]);
        traj.push(1.0, &[4.0, 5.0, 6.0]);
        assert_eq!(traj.component(1), vec![2.0, 5.0]);
    }

    #[test]
    fn iter_yields_pairs() {
        let mut traj = Trajectory::new(1);
        traj.push(0.0, &[10.0]);
        traj.push(0.5, &[20.0]);
        let pairs: Vec<(f64, f64)> = traj.iter().map(|(t, s)| (t, s[0])).collect();
        assert_eq!(pairs, vec![(0.0, 10.0), (0.5, 20.0)]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn push_wrong_dim_panics() {
        Trajectory::new(2).push(0.0, &[1.0]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn last_state_on_empty_panics() {
        let _ = Trajectory::new(1).last_state();
    }
}
