//! Exporters: JSONL event stream, Prometheus text exposition, and a
//! human-readable end-of-run report table.

use std::io;
use std::path::Path;

use crate::registry::{HistogramSnapshot, Snapshot};

/// Format an f64 as a JSON value (`null` for non-finite values).
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

/// Escape a metric name for embedding in a JSON string literal.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render the snapshot as JSON Lines: one self-describing object per
/// metric. Counters carry `type`, `name`, `value`; histograms carry
/// `type`, `name`, `count`, `sum`, `min`, `max` (null when empty) and a
/// `buckets` array of `{le, count}` pairs plus an `overflow` count.
pub fn to_jsonl(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    for c in &snapshot.counters {
        out.push_str(&format!(
            "{{\"type\":\"counter\",\"name\":{},\"value\":{}}}\n",
            json_str(&c.name),
            c.value
        ));
    }
    for h in &snapshot.histograms {
        let buckets: Vec<String> = h
            .bounds
            .iter()
            .zip(h.counts.iter())
            .map(|(le, count)| format!("{{\"le\":{},\"count\":{}}}", json_f64(*le), count))
            .collect();
        let overflow = h.counts.last().copied().unwrap_or(0);
        out.push_str(&format!(
            "{{\"type\":\"histogram\",\"name\":{},\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[{}],\"overflow\":{}}}\n",
            json_str(&h.name),
            h.count,
            json_f64(h.sum),
            json_f64(h.min),
            json_f64(h.max),
            buckets.join(","),
            overflow
        ));
    }
    out
}

/// Render the snapshot in the Prometheus text exposition format:
/// `# TYPE` headers, cumulative `_bucket{le="..."}` series ending in
/// `le="+Inf"`, and `_sum`/`_count` series per histogram.
pub fn to_prometheus(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    for c in &snapshot.counters {
        out.push_str(&format!("# TYPE {} counter\n", c.name));
        out.push_str(&format!("{} {}\n", c.name, c.value));
    }
    for h in &snapshot.histograms {
        out.push_str(&format!("# TYPE {} histogram\n", h.name));
        let mut cumulative = 0u64;
        for (le, count) in h.bounds.iter().zip(h.counts.iter()) {
            cumulative += count;
            out.push_str(&format!(
                "{}_bucket{{le=\"{:?}\"}} {}\n",
                h.name, le, cumulative
            ));
        }
        out.push_str(&format!("{}_bucket{{le=\"+Inf\"}} {}\n", h.name, h.count));
        out.push_str(&format!("{}_sum {}\n", h.name, json_f64(h.sum)));
        out.push_str(&format!("{}_count {}\n", h.name, h.count));
    }
    out
}

/// Write `contents` to `path`, creating missing parent directories
/// first — so exporting to `target/telemetry/run.jsonl` works even when
/// no part of that tree exists yet.
///
/// # Errors
///
/// Propagates io errors from directory creation or the file write.
pub fn write_text(path: &Path, contents: &str) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, contents)
}

fn fmt_cell(v: f64) -> String {
    if !v.is_finite() {
        "-".to_string()
    } else if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1e5 || v.abs() < 1e-3 {
        format!("{v:.3e}")
    } else {
        format!("{v:.4}")
    }
}

fn report_row(h: &HistogramSnapshot) -> [String; 7] {
    [
        h.name.clone(),
        h.count.to_string(),
        fmt_cell(h.mean()),
        fmt_cell(h.quantile(0.5)),
        fmt_cell(h.quantile(0.99)),
        fmt_cell(if h.count == 0 { f64::NAN } else { h.min }),
        fmt_cell(if h.count == 0 { f64::NAN } else { h.max }),
    ]
}

/// Render a fixed-width, human-readable report of every metric in the
/// snapshot: a counter table followed by a histogram table with count,
/// mean, p50, p99, min and max columns.
pub fn render_report(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    if snapshot.is_empty() {
        out.push_str("telemetry: no metrics recorded (registry disabled?)\n");
        return out;
    }
    if !snapshot.counters.is_empty() {
        let name_w = snapshot
            .counters
            .iter()
            .map(|c| c.name.len())
            .chain(["counter".len()])
            .max()
            .unwrap_or(7);
        out.push_str(&format!("{:<name_w$}  {:>12}\n", "counter", "value"));
        for c in &snapshot.counters {
            out.push_str(&format!("{:<name_w$}  {:>12}\n", c.name, c.value));
        }
    }
    if !snapshot.histograms.is_empty() {
        if !snapshot.counters.is_empty() {
            out.push('\n');
        }
        let header = [
            "histogram".to_string(),
            "count".to_string(),
            "mean".to_string(),
            "p50".to_string(),
            "p99".to_string(),
            "min".to_string(),
            "max".to_string(),
        ];
        let rows: Vec<[String; 7]> = snapshot.histograms.iter().map(report_row).collect();
        let mut widths = [0usize; 7];
        for row in std::iter::once(&header).chain(rows.iter()) {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let render = |row: &[String; 7]| {
            let mut line = format!("{:<w$}", row[0], w = widths[0]);
            for (cell, w) in row.iter().zip(widths.iter()).skip(1) {
                line.push_str(&format!("  {cell:>w$}"));
            }
            line.push('\n');
            line
        };
        out.push_str(&render(&header));
        for row in &rows {
            out.push_str(&render(row));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HistogramSpec, Registry};

    fn sample_snapshot() -> Snapshot {
        let reg = Registry::enabled();
        reg.counter("hits_total").add(42);
        let h = reg.histogram("lat_seconds", HistogramSpec::new(1e-3, 10.0, 3));
        for v in [0.002, 0.002, 0.05, 2.0, 30.0] {
            h.record(v);
        }
        reg.snapshot()
    }

    #[test]
    fn jsonl_one_object_per_line() {
        let out = to_jsonl(&sample_snapshot());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"type\":\"counter\""));
        assert!(lines[0].contains("\"value\":42"));
        assert!(lines[1].contains("\"type\":\"histogram\""));
        assert!(lines[1].contains("\"count\":5"));
        assert!(lines[1].contains("\"overflow\":2"));
    }

    #[test]
    fn jsonl_empty_histogram_extrema_are_null() {
        let reg = Registry::enabled();
        let _h = reg.histogram("empty", HistogramSpec::counts());
        let out = to_jsonl(&reg.snapshot());
        assert!(out.contains("\"min\":null"));
        assert!(out.contains("\"max\":null"));
    }

    #[test]
    fn prometheus_buckets_are_cumulative() {
        let out = to_prometheus(&sample_snapshot());
        assert!(out.contains("# TYPE hits_total counter\nhits_total 42\n"));
        assert!(out.contains("lat_seconds_bucket{le=\"0.001\"} 0\n"));
        assert!(out.contains("lat_seconds_bucket{le=\"0.01\"} 2\n"));
        assert!(out.contains("lat_seconds_bucket{le=\"0.1\"} 3\n"));
        assert!(out.contains("lat_seconds_bucket{le=\"+Inf\"} 5\n"));
        assert!(out.contains("lat_seconds_count 5\n"));
    }

    #[test]
    fn report_mentions_all_metrics() {
        let out = render_report(&sample_snapshot());
        assert!(out.contains("hits_total"));
        assert!(out.contains("lat_seconds"));
        assert!(out.contains("p99"));
    }

    #[test]
    fn empty_report_is_flagged() {
        let out = render_report(&Snapshot::default());
        assert!(out.contains("no metrics recorded"));
    }

    #[test]
    fn prometheus_of_empty_or_disabled_registry_is_empty() {
        assert_eq!(to_prometheus(&Snapshot::default()), "");
        assert_eq!(to_prometheus(&Registry::disabled().snapshot()), "");
        // An enabled registry with no metrics registered is equally empty.
        assert_eq!(to_prometheus(&Registry::enabled().snapshot()), "");
        assert_eq!(to_jsonl(&Registry::disabled().snapshot()), "");
    }

    #[test]
    fn write_text_creates_parent_directories() {
        let dir = std::env::temp_dir().join(format!(
            "ev-export-write-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("a").join("b").join("metrics.jsonl");
        write_text(&path, "hello\n").expect("write succeeds");
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "hello\n");
        // Bare file names (no parent component) must also work. The
        // probe lands in the process cwd, so give it a unique name and
        // guard the removal against a failing expect.
        struct Probe(std::path::PathBuf);
        impl Drop for Probe {
            fn drop(&mut self) {
                let _ = std::fs::remove_file(&self.0);
            }
        }
        let probe = Probe(std::path::PathBuf::from(format!(
            ".write-text-probe-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        )));
        write_text(&probe.0, "x").expect("bare file name works");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
