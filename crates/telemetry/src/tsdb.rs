//! An embedded time-series store for fleet health history.
//!
//! Where [`crate::Registry`] answers *what is happening now* and
//! [`crate::TraceRing`] answers *what happened in the last few
//! milliseconds*, this module keeps **history**: registry snapshots —
//! taken in-process or parsed from [`crate::scrape_once`] expositions —
//! are appended to a crash-safe segment file and mirrored into an
//! in-memory multi-resolution store that the SLO engine
//! ([`crate::slo`]) and `evsim query` evaluate windowed expressions
//! over. Dependency-free by design, like the rest of the crate.
//!
//! ## Segment format
//!
//! A segment is an append-only file of checksummed records:
//!
//! ```text
//! magic "EVTSDB1\n" (8 bytes)
//! repeated: [u32 LE payload length][u32 LE CRC32(payload)][payload]
//! ```
//!
//! Payloads are tagged by their first byte:
//!
//! - `1` **series definition** — kind byte (0 gauge, 1 counter), varint
//!   series id, name, label pairs (strings are varint length + UTF-8).
//!   Written once, the first time the writer sees a series.
//! - `2` **frame** — varint timestamp (ms since the Unix epoch), varint
//!   sample count, then per sample a varint series id followed by the
//!   value: counters as a **zigzag-varint delta** from the series'
//!   previous frame value (the first frame carries the absolute value
//!   as a delta from 0), gauges as 8 raw little-endian f64 bits.
//! - `3` **exemplar** — varint series id, varint trace-span id, 8-byte
//!   f64 observed value. Written when a bucket series' exemplar
//!   changes, just before the frame that observed it.
//!
//! Because every record is length-prefixed and checksummed, a crash
//! mid-append leaves at most one torn record *at the tail*; the reader
//! verifies each CRC and stops at the first invalid record, returning
//! everything before it plus a `truncated` flag — it never errors on a
//! torn tail.
//!
//! ## Downsampling invariants
//!
//! The in-memory store keeps three resolutions per series — raw points,
//! 10-second rollups, 1-minute rollups — each under its own retention
//! cap (oldest evicted first). Rollups are *sealed append-only*: a
//! rollup bucket only ever aggregates points whose timestamps fall in
//! its window, raw eviction never rewrites a rollup, and for counters
//! each rollup's `last` equals the raw cumulative value at the bucket's
//! final point — so rates computed from rollups agree with rates
//! computed from raw at every bucket boundary, and windowed queries
//! degrade in *resolution*, never in *truth*, as raw history ages out.

use std::collections::{HashMap, VecDeque};
use std::io::{BufWriter, Write};
use std::path::Path;

use crate::export::{snapshot_samples, PromExemplar, PromSample};
use crate::metrics::Exemplar;
use crate::registry::Snapshot;

const MAGIC: &[u8; 8] = b"EVTSDB1\n";
const REC_SERIES_DEF: u8 = 1;
const REC_FRAME: u8 = 2;
const REC_EXEMPLAR: u8 = 3;

const R10_MS: u64 = 10_000;
const R60_MS: u64 = 60_000;

// ---------------------------------------------------------------------
// CRC32 (IEEE 802.3), table-driven, computed at compile time.
// ---------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE) of `data` — the per-record checksum of the segment
/// format.
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------
// Varint / zigzag primitives.
// ---------------------------------------------------------------------

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn get_varint(data: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *data.get(*pos)?;
        *pos += 1;
        if shift >= 64 {
            return None;
        }
        v |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn get_str(data: &[u8], pos: &mut usize) -> Option<String> {
    let len = get_varint(data, pos)? as usize;
    let bytes = data.get(*pos..*pos + len)?;
    *pos += len;
    String::from_utf8(bytes.to_vec()).ok()
}

// ---------------------------------------------------------------------
// Series identity and classification.
// ---------------------------------------------------------------------

/// How a series' values are encoded and queried.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesKind {
    /// A free-moving level, stored as raw f64 (also used for `_sum`
    /// series, which are cumulative but fractional).
    Gauge,
    /// A monotone cumulative count (`_total`/`_count`/`_bucket`
    /// suffixes), delta-encoded in segments and queried via windowed
    /// deltas.
    Counter,
}

/// Classify a sample name by the Prometheus suffix conventions this
/// workspace emits.
#[must_use]
pub fn classify(name: &str) -> SeriesKind {
    if name.ends_with("_total") || name.ends_with("_count") || name.ends_with("_bucket") {
        SeriesKind::Counter
    } else {
        SeriesKind::Gauge
    }
}

type SeriesKey = (String, Vec<(String, String)>);

fn sample_key(s: &PromSample) -> SeriesKey {
    (s.name.clone(), s.labels.clone())
}

// ---------------------------------------------------------------------
// Segment writer.
// ---------------------------------------------------------------------

/// Appends snapshot frames to a segment file with crash-safe framing.
///
/// The writer assigns dense series ids in order of first sight, emits a
/// series-definition record per new series, delta-encodes counters
/// against the previous frame, and emits exemplar records whenever a
/// bucket series' exemplar changes.
pub struct SegmentWriter {
    file: BufWriter<std::fs::File>,
    index: HashMap<SeriesKey, u32>,
    kinds: Vec<SeriesKind>,
    prev_counter: Vec<i64>,
    prev_exemplar: Vec<u64>,
    frames: u64,
}

impl SegmentWriter {
    /// Create (truncating) a segment at `path` and write the magic.
    ///
    /// # Errors
    ///
    /// Propagates file creation/write errors.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut file = BufWriter::new(std::fs::File::create(path)?);
        file.write_all(MAGIC)?;
        Ok(SegmentWriter {
            file,
            index: HashMap::new(),
            kinds: Vec::new(),
            prev_counter: Vec::new(),
            prev_exemplar: Vec::new(),
            frames: 0,
        })
    }

    /// Frames appended so far.
    #[must_use]
    pub fn frames(&self) -> u64 {
        self.frames
    }

    fn write_record(&mut self, payload: &[u8]) -> std::io::Result<()> {
        self.file.write_all(&(payload.len() as u32).to_le_bytes())?;
        self.file.write_all(&crc32(payload).to_le_bytes())?;
        self.file.write_all(payload)
    }

    fn series_id(&mut self, sample: &PromSample) -> std::io::Result<u32> {
        if let Some(&id) = self.index.get(&sample_key(sample)) {
            return Ok(id);
        }
        let id = self.kinds.len() as u32;
        let kind = classify(&sample.name);
        self.index.insert(sample_key(sample), id);
        self.kinds.push(kind);
        self.prev_counter.push(0);
        self.prev_exemplar.push(0);
        let mut payload = vec![
            REC_SERIES_DEF,
            if kind == SeriesKind::Counter { 1 } else { 0 },
        ];
        put_varint(&mut payload, u64::from(id));
        put_str(&mut payload, &sample.name);
        put_varint(&mut payload, sample.labels.len() as u64);
        for (k, v) in &sample.labels {
            put_str(&mut payload, k);
            put_str(&mut payload, v);
        }
        self.write_record(&payload)?;
        Ok(id)
    }

    /// Append one frame of samples observed at `t_ms` (milliseconds
    /// since the Unix epoch). Emits definitions for unseen series and
    /// exemplar records for changed exemplars first, then the frame.
    ///
    /// # Errors
    ///
    /// Propagates io errors; the file may then end in a torn record,
    /// which readers skip.
    pub fn append(&mut self, t_ms: u64, samples: &[PromSample]) -> std::io::Result<()> {
        let mut frame = vec![REC_FRAME];
        put_varint(&mut frame, t_ms);
        put_varint(&mut frame, samples.len() as u64);
        for s in samples {
            let id = self.series_id(s)?;
            if let Some(ex) = &s.exemplar {
                if let Some(span_id) = ex.span_id() {
                    if span_id != 0 && self.prev_exemplar[id as usize] != span_id {
                        self.prev_exemplar[id as usize] = span_id;
                        let mut payload = vec![REC_EXEMPLAR];
                        put_varint(&mut payload, u64::from(id));
                        put_varint(&mut payload, span_id);
                        payload.extend_from_slice(&ex.value.to_le_bytes());
                        self.write_record(&payload)?;
                    }
                }
            }
            put_varint(&mut frame, u64::from(id));
            match self.kinds[id as usize] {
                SeriesKind::Counter => {
                    let v = s.value as i64;
                    let prev = std::mem::replace(&mut self.prev_counter[id as usize], v);
                    put_varint(&mut frame, zigzag(v - prev));
                }
                SeriesKind::Gauge => frame.extend_from_slice(&s.value.to_le_bytes()),
            }
        }
        self.write_record(&frame)?;
        self.frames += 1;
        self.file.flush()
    }
}

// ---------------------------------------------------------------------
// Segment reader.
// ---------------------------------------------------------------------

/// One series declared in a segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeriesDecl {
    /// Metric name (with any `_bucket`/`_sum`/`_count` suffix).
    pub name: String,
    /// Label pairs in declaration order.
    pub labels: Vec<(String, String)>,
    /// Value encoding/query kind.
    pub kind: SeriesKind,
}

/// One decoded frame: every sample holds the reconstructed **absolute**
/// value (counter deltas are re-accumulated by the reader).
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Frame timestamp, milliseconds since the Unix epoch.
    pub t_ms: u64,
    /// `(series id, absolute value)` pairs.
    pub samples: Vec<(u32, f64)>,
    /// Exemplar records that arrived with this frame:
    /// `(series id, trace-span id, observed value)`.
    pub exemplars: Vec<(u32, u64, f64)>,
}

/// A fully decoded segment.
#[derive(Debug, Clone, Default)]
pub struct SegmentData {
    /// Declared series, indexed by series id.
    pub series: Vec<SeriesDecl>,
    /// Frames in append order.
    pub frames: Vec<Frame>,
    /// Whether decoding stopped at a torn/invalid record before the end
    /// of the file (the crash-mid-append case).
    pub truncated: bool,
}

impl SegmentData {
    /// Rehydrate frame `i` as [`PromSample`]s (exemplars attached to
    /// their bucket series), ready for [`Tsdb::ingest`].
    #[must_use]
    pub fn frame_samples(&self, i: usize) -> Vec<PromSample> {
        let Some(frame) = self.frames.get(i) else {
            return Vec::new();
        };
        frame
            .samples
            .iter()
            .filter_map(|&(id, value)| {
                let decl = self.series.get(id as usize)?;
                let exemplar = frame.exemplars.iter().find(|(eid, _, _)| *eid == id).map(
                    |&(_, span_id, v)| PromExemplar {
                        labels: vec![("trace_id".to_string(), span_id.to_string())],
                        value: v,
                    },
                );
                Some(PromSample {
                    name: decl.name.clone(),
                    labels: decl.labels.clone(),
                    value,
                    exemplar,
                })
            })
            .collect()
    }

    /// The latest exemplar per series id, in segment order.
    #[must_use]
    pub fn latest_exemplars(&self) -> HashMap<u32, (u64, f64)> {
        let mut out = HashMap::new();
        for frame in &self.frames {
            for &(id, span_id, value) in &frame.exemplars {
                out.insert(id, (span_id, value));
            }
        }
        out
    }
}

/// Decode the segment at `path`. A torn or corrupt record stops the
/// decode at that point (`truncated = true`) rather than erroring — the
/// append-only format guarantees a crash leaves damage only at the
/// tail.
///
/// # Errors
///
/// Io errors reading the file, or a bad/missing magic header (which
/// means the file is not a segment at all, not a torn one).
pub fn read_segment(path: &Path) -> Result<SegmentData, String> {
    let data = std::fs::read(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    if data.len() < MAGIC.len() || &data[..MAGIC.len()] != MAGIC {
        return Err(format!(
            "{}: not a tsdb segment (bad magic)",
            path.display()
        ));
    }
    let mut out = SegmentData::default();
    let mut counter_state: Vec<i64> = Vec::new();
    let mut pending_exemplars: Vec<(u32, u64, f64)> = Vec::new();
    let mut pos = MAGIC.len();
    loop {
        if pos == data.len() {
            break; // clean end
        }
        let Some(header) = data.get(pos..pos + 8) else {
            out.truncated = true;
            break;
        };
        let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        let Some(payload) = data.get(pos + 8..pos + 8 + len) else {
            out.truncated = true;
            break;
        };
        if crc32(payload) != crc {
            out.truncated = true;
            break;
        }
        pos += 8 + len;
        if !decode_record(
            payload,
            &mut out,
            &mut counter_state,
            &mut pending_exemplars,
        ) {
            out.truncated = true;
            break;
        }
    }
    Ok(out)
}

/// Decode one checksummed payload into `out`; returns false on a
/// structurally invalid record (treated as truncation by the caller).
fn decode_record(
    payload: &[u8],
    out: &mut SegmentData,
    counter_state: &mut Vec<i64>,
    pending_exemplars: &mut Vec<(u32, u64, f64)>,
) -> bool {
    let Some(&tag) = payload.first() else {
        return false;
    };
    let mut pos = 1usize;
    match tag {
        REC_SERIES_DEF => {
            let Some(&kind_byte) = payload.get(pos) else {
                return false;
            };
            pos += 1;
            let Some(id) = get_varint(payload, &mut pos) else {
                return false;
            };
            let Some(name) = get_str(payload, &mut pos) else {
                return false;
            };
            let Some(n_labels) = get_varint(payload, &mut pos) else {
                return false;
            };
            let mut labels = Vec::with_capacity(n_labels as usize);
            for _ in 0..n_labels {
                let (Some(k), Some(v)) = (get_str(payload, &mut pos), get_str(payload, &mut pos))
                else {
                    return false;
                };
                labels.push((k, v));
            }
            if id as usize != out.series.len() {
                return false; // ids are dense and in declaration order
            }
            out.series.push(SeriesDecl {
                name,
                labels,
                kind: if kind_byte == 1 {
                    SeriesKind::Counter
                } else {
                    SeriesKind::Gauge
                },
            });
            counter_state.push(0);
            true
        }
        REC_FRAME => {
            let Some(t_ms) = get_varint(payload, &mut pos) else {
                return false;
            };
            let Some(n) = get_varint(payload, &mut pos) else {
                return false;
            };
            let mut samples = Vec::with_capacity(n as usize);
            for _ in 0..n {
                let Some(id) = get_varint(payload, &mut pos) else {
                    return false;
                };
                let Some(decl) = out.series.get(id as usize) else {
                    return false;
                };
                let value = match decl.kind {
                    SeriesKind::Counter => {
                        let Some(raw) = get_varint(payload, &mut pos) else {
                            return false;
                        };
                        let state = &mut counter_state[id as usize];
                        *state += unzigzag(raw);
                        *state as f64
                    }
                    SeriesKind::Gauge => {
                        let Some(bytes) = payload.get(pos..pos + 8) else {
                            return false;
                        };
                        pos += 8;
                        f64::from_le_bytes(bytes.try_into().expect("8 bytes"))
                    }
                };
                samples.push((id as u32, value));
            }
            out.frames.push(Frame {
                t_ms,
                samples,
                exemplars: std::mem::take(pending_exemplars),
            });
            true
        }
        REC_EXEMPLAR => {
            let Some(id) = get_varint(payload, &mut pos) else {
                return false;
            };
            let Some(span_id) = get_varint(payload, &mut pos) else {
                return false;
            };
            let Some(bytes) = payload.get(pos..pos + 8) else {
                return false;
            };
            let value = f64::from_le_bytes(bytes.try_into().expect("8 bytes"));
            pending_exemplars.push((id as u32, span_id, value));
            true
        }
        _ => true, // unknown record type: skip (forward compatibility)
    }
}

// ---------------------------------------------------------------------
// In-memory multi-resolution store.
// ---------------------------------------------------------------------

/// One raw observation of a series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Milliseconds since the Unix epoch.
    pub t_ms: u64,
    /// Observed value (cumulative for counters).
    pub v: f64,
}

/// One sealed downsampling bucket.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rollup {
    /// Bucket start (aligned to the resolution width).
    pub t_start_ms: u64,
    /// Timestamp of the bucket's last folded point. [`Series::value_at`]
    /// only answers from buckets whose last point is at or before the
    /// asked time — a rollup must never leak values from the future of
    /// the query point, or short-window deltas would collapse to zero.
    pub t_last_ms: u64,
    /// First observed value in the bucket.
    pub first: f64,
    /// Last observed value in the bucket — for counters, the cumulative
    /// value at the bucket's final point (the downsampling invariant
    /// rates rely on).
    pub last: f64,
    /// Minimum observed value.
    pub min: f64,
    /// Maximum observed value.
    pub max: f64,
    /// Observations folded into the bucket.
    pub count: u32,
}

impl Rollup {
    fn new(t_start_ms: u64, t_ms: u64, v: f64) -> Self {
        Rollup {
            t_start_ms,
            t_last_ms: t_ms,
            first: v,
            last: v,
            min: v,
            max: v,
            count: 1,
        }
    }

    fn fold(&mut self, t_ms: u64, v: f64) {
        self.t_last_ms = t_ms;
        self.last = v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.count += 1;
    }
}

/// Query resolution for [`Series::rollups`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resolution {
    /// 10-second rollup buckets.
    TenSeconds,
    /// 1-minute rollup buckets.
    Minute,
}

/// Retention caps per resolution (oldest evicted first).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetentionPolicy {
    /// Raw points kept per series.
    pub raw_points: usize,
    /// 10-second rollups kept per series.
    pub rollups_10s: usize,
    /// 1-minute rollups kept per series.
    pub rollups_1m: usize,
}

impl Default for RetentionPolicy {
    fn default() -> Self {
        RetentionPolicy {
            raw_points: 4096,
            rollups_10s: 2048,
            rollups_1m: 2048,
        }
    }
}

/// One series held in the in-memory store.
#[derive(Debug, Clone)]
pub struct Series {
    /// Metric name.
    pub name: String,
    /// Label pairs (source order from ingestion).
    pub labels: Vec<(String, String)>,
    /// Counter or gauge semantics.
    pub kind: SeriesKind,
    /// Latest exemplar seen on this series (bucket series only).
    pub exemplar: Option<Exemplar>,
    raw: VecDeque<Point>,
    r10: VecDeque<Rollup>,
    r60: VecDeque<Rollup>,
}

impl Series {
    /// Raw points within `[t0, t1]`, oldest first.
    #[must_use]
    pub fn points(&self, t0_ms: u64, t1_ms: u64) -> Vec<Point> {
        self.raw
            .iter()
            .filter(|p| p.t_ms >= t0_ms && p.t_ms <= t1_ms)
            .copied()
            .collect()
    }

    /// The most recent raw point.
    #[must_use]
    pub fn latest(&self) -> Option<Point> {
        self.raw.back().copied()
    }

    /// Raw points currently retained.
    #[must_use]
    pub fn raw_len(&self) -> usize {
        self.raw.len()
    }

    /// Rollup buckets of `res` overlapping `[t0, t1]`, oldest first.
    #[must_use]
    pub fn rollups(&self, res: Resolution, t0_ms: u64, t1_ms: u64) -> Vec<Rollup> {
        let (deque, width) = match res {
            Resolution::TenSeconds => (&self.r10, R10_MS),
            Resolution::Minute => (&self.r60, R60_MS),
        };
        deque
            .iter()
            .filter(|r| r.t_start_ms + width > t0_ms && r.t_start_ms <= t1_ms)
            .copied()
            .collect()
    }

    /// The value at or before `t_ms`: raw history first, then 10 s,
    /// then 1 min rollups. A rollup answers with its `last` only when
    /// the bucket's final point is at or before `t_ms` — never a value
    /// from the future of the query point (that would zero out deltas
    /// whose window edge lands inside a still-open bucket). `None` when
    /// no retained observation provably precedes `t_ms`; windowed
    /// queries then anchor at [`Series::earliest`].
    #[must_use]
    pub fn value_at(&self, t_ms: u64) -> Option<f64> {
        if let Some(p) = self.raw.iter().rev().find(|p| p.t_ms <= t_ms) {
            return Some(p.v);
        }
        if let Some(r) = self.r10.iter().rev().find(|r| r.t_last_ms <= t_ms) {
            return Some(r.last);
        }
        self.r60
            .iter()
            .rev()
            .find(|r| r.t_last_ms <= t_ms)
            .map(|r| r.last)
    }

    /// The earliest retained observation (from the coarsest surviving
    /// resolution), used to anchor windows that reach past history.
    #[must_use]
    pub fn earliest(&self) -> Option<Point> {
        if let Some(r) = self.r60.front() {
            return Some(Point {
                t_ms: r.t_start_ms,
                v: r.first,
            });
        }
        if let Some(r) = self.r10.front() {
            return Some(Point {
                t_ms: r.t_start_ms,
                v: r.first,
            });
        }
        self.raw.front().copied()
    }

    fn push(&mut self, t_ms: u64, v: f64, policy: &RetentionPolicy) {
        // Drop out-of-order points: segments and live scrapes are both
        // append-ordered, so a regression is a replay artifact.
        if self.raw.back().is_some_and(|p| p.t_ms > t_ms) {
            return;
        }
        self.raw.push_back(Point { t_ms, v });
        while self.raw.len() > policy.raw_points {
            self.raw.pop_front();
        }
        Self::roll(&mut self.r10, R10_MS, t_ms, v, policy.rollups_10s);
        Self::roll(&mut self.r60, R60_MS, t_ms, v, policy.rollups_1m);
    }

    fn roll(deque: &mut VecDeque<Rollup>, width_ms: u64, t_ms: u64, v: f64, cap: usize) {
        let start = t_ms - t_ms % width_ms;
        match deque.back_mut() {
            Some(r) if r.t_start_ms == start => r.fold(t_ms, v),
            Some(r) if r.t_start_ms > start => {} // out of order: drop
            _ => {
                deque.push_back(Rollup::new(start, t_ms, v));
                while deque.len() > cap {
                    deque.pop_front();
                }
            }
        }
    }
}

/// The in-memory store: series keyed by `(name, labels)`, each holding
/// raw + 10 s + 1 min history under a [`RetentionPolicy`].
#[derive(Debug, Default)]
pub struct Tsdb {
    series: Vec<Series>,
    index: HashMap<SeriesKey, usize>,
    policy: RetentionPolicy,
}

impl Tsdb {
    /// An empty store with the default retention policy.
    #[must_use]
    pub fn new() -> Self {
        Tsdb::with_policy(RetentionPolicy::default())
    }

    /// An empty store with an explicit retention policy.
    #[must_use]
    pub fn with_policy(policy: RetentionPolicy) -> Self {
        Tsdb {
            series: Vec::new(),
            index: HashMap::new(),
            policy,
        }
    }

    /// All series currently held, in first-seen order.
    #[must_use]
    pub fn series(&self) -> &[Series] {
        &self.series
    }

    /// Ingest one frame of samples observed at `t_ms`.
    pub fn ingest(&mut self, t_ms: u64, samples: &[PromSample]) {
        for s in samples {
            let idx = match self.index.get(&sample_key(s)) {
                Some(&idx) => idx,
                None => {
                    let idx = self.series.len();
                    self.index.insert(sample_key(s), idx);
                    self.series.push(Series {
                        name: s.name.clone(),
                        labels: s.labels.clone(),
                        kind: classify(&s.name),
                        exemplar: None,
                        raw: VecDeque::new(),
                        r10: VecDeque::new(),
                        r60: VecDeque::new(),
                    });
                    idx
                }
            };
            let series = &mut self.series[idx];
            series.push(t_ms, s.value, &self.policy);
            if let Some(ex) = &s.exemplar {
                if let Some(span_id) = ex.span_id() {
                    if span_id != 0 {
                        series.exemplar = Some(Exemplar {
                            value: ex.value,
                            span_id,
                        });
                    }
                }
            }
        }
    }

    /// Ingest a registry snapshot directly (the in-process hook path),
    /// flattened exactly as its scrape exposition would parse.
    pub fn ingest_snapshot(&mut self, t_ms: u64, snapshot: &Snapshot) {
        self.ingest(t_ms, &snapshot_samples(snapshot));
    }

    /// Replay a decoded segment into the store, oldest frame first.
    pub fn ingest_segment(&mut self, segment: &SegmentData) {
        for i in 0..segment.frames.len() {
            self.ingest(segment.frames[i].t_ms, &segment.frame_samples(i));
        }
    }

    /// Indices of series named `name` whose labels contain every pair
    /// in `labels` (subset match; `le` is a label like any other).
    #[must_use]
    pub fn find(&self, name: &str, labels: &[(&str, &str)]) -> Vec<usize> {
        self.series
            .iter()
            .enumerate()
            .filter(|(_, s)| {
                s.name == name
                    && labels
                        .iter()
                        .all(|(k, v)| s.labels.iter().any(|(sk, sv)| sk == k && sv == v))
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// The series at `idx` (indices from [`Tsdb::find`]).
    #[must_use]
    pub fn get(&self, idx: usize) -> Option<&Series> {
        self.series.get(idx)
    }

    /// Windowed increase of a cumulative series over `[t0, t1]`,
    /// clamped at 0 (a counter reset yields 0, not a negative rate).
    /// When the window reaches past retained history the earliest
    /// observation anchors the left edge — attaching mid-flight never
    /// counts a server's whole uptime as one window. `None` when the
    /// series has no value at or before `t1`.
    #[must_use]
    pub fn delta(&self, idx: usize, t0_ms: u64, t1_ms: u64) -> Option<f64> {
        let series = self.series.get(idx)?;
        let v1 = series.value_at(t1_ms)?;
        let v0 = match series.value_at(t0_ms) {
            Some(v) => v,
            None => {
                let earliest = series.earliest()?;
                if earliest.t_ms > t1_ms {
                    return None;
                }
                earliest.v
            }
        };
        Some((v1 - v0).max(0.0))
    }

    /// Windowed per-second rate of a cumulative series over `[t0, t1]`.
    #[must_use]
    pub fn rate(&self, idx: usize, t0_ms: u64, t1_ms: u64) -> Option<f64> {
        if t1_ms <= t0_ms {
            return None;
        }
        let delta = self.delta(idx, t0_ms, t1_ms)?;
        Some(delta / ((t1_ms - t0_ms) as f64 / 1e3))
    }

    /// Sum of [`Tsdb::rate`] across every series matching
    /// `(name, labels)` — how a fleet-wide rate aggregates over shard
    /// labels. `None` when no matching series has data in the window.
    #[must_use]
    pub fn rate_sum(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        t0_ms: u64,
        t1_ms: u64,
    ) -> Option<f64> {
        let mut found = false;
        let mut total = 0.0;
        for idx in self.find(name, labels) {
            if let Some(r) = self.rate(idx, t0_ms, t1_ms) {
                found = true;
                total += r;
            }
        }
        found.then_some(total)
    }

    /// The bucket-delta view of histogram `name{labels}` over
    /// `[t0, t1]`: cumulative bucket counts at the window edges
    /// subtracted per `le` and summed across matching series (shards),
    /// returned as ascending cumulative `(le, count)` pairs ending in
    /// the `+Inf` bucket. `None` when no bucket series has data.
    #[must_use]
    pub fn histogram_delta(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        t0_ms: u64,
        t1_ms: u64,
    ) -> Option<Vec<(f64, f64)>> {
        let bucket_name = format!("{name}_bucket");
        let mut by_le: Vec<(f64, f64)> = Vec::new();
        let mut found = false;
        for idx in self.find(&bucket_name, labels) {
            let series = &self.series[idx];
            let Some(le) = series
                .labels
                .iter()
                .find(|(k, _)| k == "le")
                .map(|(_, v)| parse_le(v))
            else {
                continue;
            };
            let Some(delta) = self.delta(idx, t0_ms, t1_ms) else {
                continue;
            };
            found = true;
            match by_le
                .iter_mut()
                .find(|(b, _)| *b == le || (b.is_infinite() && le.is_infinite()))
            {
                Some((_, c)) => *c += delta,
                None => by_le.push((le, delta)),
            }
        }
        if !found {
            return None;
        }
        by_le.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        Some(by_le)
    }

    /// Windowed `q`-quantile of histogram `name{labels}` over
    /// `[t0, t1]`, computed from bucket deltas. NaN when the window saw
    /// no samples; `None` when the histogram has no data at all.
    #[must_use]
    pub fn windowed_quantile(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        t0_ms: u64,
        t1_ms: u64,
        q: f64,
    ) -> Option<f64> {
        let buckets = self.histogram_delta(name, labels, t0_ms, t1_ms)?;
        Some(quantile_from_cumulative(&buckets, q))
    }
}

/// Parse a `le` label value (`+Inf` included) to f64.
fn parse_le(v: &str) -> f64 {
    match v {
        "+Inf" => f64::INFINITY,
        v => v.parse().unwrap_or(f64::NAN),
    }
}

/// Estimate the `q`-quantile from ascending **cumulative** `(le,
/// count)` buckets (the last entry conventionally `+Inf`). The estimate
/// is the upper bound of the bucket containing the target rank; a rank
/// landing in the `+Inf` bucket answers with the largest finite bound.
/// NaN for an empty window, a NaN `q`, or malformed buckets.
///
/// Shared between the SLO engine's windowed quantile rules and `evsim
/// top`'s per-poll bucket deltas, so "the p99 the dashboard shows" and
/// "the p99 the alert fired on" are the same number by construction.
#[must_use]
pub fn quantile_from_cumulative(buckets: &[(f64, f64)], q: f64) -> f64 {
    if buckets.is_empty() || q.is_nan() {
        return f64::NAN;
    }
    let total = buckets.last().map_or(0.0, |(_, c)| *c);
    if total <= 0.0 {
        return f64::NAN;
    }
    let q = q.clamp(0.0, 1.0);
    let rank = (q * total).ceil().max(1.0);
    let mut last_finite = f64::NAN;
    for &(le, cum) in buckets {
        if le.is_finite() {
            last_finite = le;
        }
        if cum >= rank {
            return if le.is_finite() { le } else { last_finite };
        }
    }
    last_finite
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HistogramSpec, Registry};

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "ev-tsdb-{tag}-{}-{:?}.seg",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    fn sample(name: &str, labels: &[(&str, &str)], value: f64) -> PromSample {
        PromSample {
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            value,
            exemplar: None,
        }
    }

    #[test]
    fn varint_and_zigzag_round_trip() {
        for v in [0u64, 1, 127, 128, 300, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn segment_round_trips_counters_gauges_and_exemplars() {
        let path = temp_path("roundtrip");
        let mut w = SegmentWriter::create(&path).unwrap();
        let mut bucket = sample("lat_bucket", &[("le", "0.1")], 3.0);
        bucket.exemplar = Some(PromExemplar {
            labels: vec![("trace_id".to_string(), "42".to_string())],
            value: 0.07,
        });
        w.append(
            1000,
            &[
                sample("steps_total", &[("shard", "0")], 10.0),
                sample("queue_depth", &[], 2.5),
                bucket.clone(),
            ],
        )
        .unwrap();
        bucket.value = 5.0;
        w.append(
            2000,
            &[
                sample("steps_total", &[("shard", "0")], 25.0),
                sample("queue_depth", &[], -1.5),
                bucket,
            ],
        )
        .unwrap();
        drop(w);
        let seg = read_segment(&path).unwrap();
        assert!(!seg.truncated);
        assert_eq!(seg.series.len(), 3);
        assert_eq!(seg.series[0].kind, SeriesKind::Counter);
        assert_eq!(seg.series[1].kind, SeriesKind::Gauge);
        assert_eq!(seg.frames.len(), 2);
        assert_eq!(seg.frames[0].t_ms, 1000);
        assert_eq!(seg.frames[0].samples, vec![(0, 10.0), (1, 2.5), (2, 3.0)]);
        assert_eq!(seg.frames[1].samples, vec![(0, 25.0), (1, -1.5), (2, 5.0)]);
        // The exemplar arrived with frame 0 and did not repeat.
        assert_eq!(seg.frames[0].exemplars, vec![(2, 42, 0.07)]);
        assert!(seg.frames[1].exemplars.is_empty());
        let rehydrated = seg.frame_samples(0);
        assert_eq!(rehydrated[2].exemplar.as_ref().unwrap().span_id(), Some(42));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn counter_reset_is_encoded_as_negative_delta_and_survives() {
        let path = temp_path("reset");
        let mut w = SegmentWriter::create(&path).unwrap();
        w.append(0, &[sample("hits_total", &[], 1000.0)]).unwrap();
        w.append(1000, &[sample("hits_total", &[], 3.0)]).unwrap(); // reset
        drop(w);
        let seg = read_segment(&path).unwrap();
        assert_eq!(seg.frames[1].samples, vec![(0, 3.0)]);
    }

    #[test]
    fn reader_skips_a_torn_final_record() {
        let path = temp_path("torn");
        let mut w = SegmentWriter::create(&path).unwrap();
        w.append(1000, &[sample("a_total", &[], 1.0)]).unwrap();
        w.append(2000, &[sample("a_total", &[], 2.0)]).unwrap();
        drop(w);
        let intact = std::fs::read(&path).unwrap();
        let clean = read_segment(&path).unwrap();
        assert_eq!(clean.frames.len(), 2);
        assert!(!clean.truncated);
        // Walk the intact record framing to find the clean boundaries:
        // a cut landing exactly on one leaves a valid shorter file, any
        // other cut is a torn tail the reader must flag, never error on.
        let full = intact.len();
        let mut boundaries = vec![MAGIC.len()];
        let mut off = MAGIC.len();
        while off < full {
            let len = u32::from_le_bytes(intact[off..off + 4].try_into().unwrap()) as usize;
            off += 8 + len;
            boundaries.push(off);
        }
        assert_eq!(off, full, "intact file is record-aligned");
        for cut in 1..full - MAGIC.len() {
            std::fs::write(&path, &intact[..full - cut]).unwrap();
            let seg = read_segment(&path).expect("torn tail never errors");
            let aligned = boundaries.contains(&(full - cut));
            assert_eq!(seg.truncated, !aligned, "cut {cut}");
            // Whatever survives is a strict prefix of the true frames.
            let times: Vec<u64> = seg.frames.iter().map(|f| f.t_ms).collect();
            assert!([&[][..], &[1000], &[1000, 2000]].contains(&times.as_slice()));
            assert!(
                times.len() < 2,
                "cut {cut}: final frame cannot survive a cut"
            );
        }
        // A flipped byte mid-record (bad CRC) also stops cleanly.
        let mut corrupt = intact.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0xFF;
        std::fs::write(&path, &corrupt).unwrap();
        let seg = read_segment(&path).unwrap();
        assert!(seg.truncated);
        assert_eq!(seg.frames.len(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn not_a_segment_is_an_error_not_a_truncation() {
        let path = temp_path("nonseg");
        std::fs::write(&path, b"definitely not a segment").unwrap();
        assert!(read_segment(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rollups_downsample_and_retention_evicts_oldest() {
        let policy = RetentionPolicy {
            raw_points: 8,
            rollups_10s: 4,
            rollups_1m: 2,
        };
        let mut db = Tsdb::with_policy(policy);
        // 1 sample/second for 100 s.
        for t in 0..100u64 {
            db.ingest(t * 1000, &[sample("steps_total", &[], (t * 5) as f64)]);
        }
        let s = &db.series()[0];
        assert_eq!(s.raw_len(), 8, "raw capped");
        let r10 = s.rollups(Resolution::TenSeconds, 0, u64::MAX);
        assert_eq!(r10.len(), 4, "10s rollups capped");
        // Counter invariant: each sealed rollup's `last` is the raw
        // cumulative value at its final point.
        for r in &r10 {
            let last_t = (r.t_start_ms / 1000) + 9;
            assert_eq!(r.last, (last_t * 5) as f64, "rollup at {}", r.t_start_ms);
            assert_eq!(r.count, 10);
        }
        let r60 = s.rollups(Resolution::Minute, 0, u64::MAX);
        assert_eq!(r60.len(), 2, "1m rollups capped");
        // value_at falls back raw -> r10 -> r60 as history coarsens,
        // but only answers from buckets whose final point is at or
        // before the asked time — never a value from the future.
        assert_eq!(s.value_at(99_000), Some(495.0)); // raw
                                                     // 65 s: the r10 bucket [60s,70s) ends at 69 s (in the future),
                                                     // so the answer comes from the sealed r60 bucket [0,60s).
        assert_eq!(s.value_at(65_000), Some((59 * 5) as f64));
        // 10 s: every retained bucket ends after 10 s — no answer.
        assert_eq!(s.value_at(10_000), None);
        assert_eq!(s.value_at(0), None, "before all provable history");
    }

    #[test]
    fn delta_and_rate_use_windows_and_clamp_resets() {
        let mut db = Tsdb::new();
        db.ingest(0, &[sample("hits_total", &[("shard", "0")], 0.0)]);
        db.ingest(10_000, &[sample("hits_total", &[("shard", "0")], 100.0)]);
        db.ingest(20_000, &[sample("hits_total", &[("shard", "0")], 150.0)]);
        let idx = db.find("hits_total", &[("shard", "0")])[0];
        assert_eq!(db.delta(idx, 0, 20_000), Some(150.0));
        assert_eq!(db.delta(idx, 10_000, 20_000), Some(50.0));
        assert_eq!(db.rate(idx, 10_000, 20_000), Some(5.0));
        // Window reaching before history anchors at the earliest point.
        assert_eq!(db.delta(idx, 0u64.wrapping_sub(0), 20_000), Some(150.0));
        // Reset: value drops; delta clamps to 0.
        db.ingest(30_000, &[sample("hits_total", &[("shard", "0")], 10.0)]);
        assert_eq!(db.delta(idx, 20_000, 30_000), Some(0.0));
        // rate_sum aggregates across shards.
        db.ingest(30_000, &[sample("hits_total", &[("shard", "1")], 0.0)]);
        db.ingest(40_000, &[sample("hits_total", &[("shard", "1")], 20.0)]);
        let total = db.rate_sum("hits_total", &[], 30_000, 40_000).unwrap();
        assert!((total - ((10.0 - 10.0) + 2.0)).abs() < 1e-9, "{total}");
    }

    #[test]
    fn quantile_from_cumulative_walks_buckets() {
        let buckets = [
            (0.01, 0.0),
            (0.1, 90.0),
            (1.0, 99.0),
            (f64::INFINITY, 100.0),
        ];
        assert_eq!(quantile_from_cumulative(&buckets, 0.5), 0.1);
        assert_eq!(quantile_from_cumulative(&buckets, 0.95), 1.0);
        // Rank in the +Inf bucket answers the largest finite bound.
        assert_eq!(quantile_from_cumulative(&buckets, 1.0), 1.0);
        assert!(quantile_from_cumulative(&[], 0.5).is_nan());
        assert!(quantile_from_cumulative(&buckets, f64::NAN).is_nan());
        assert!(quantile_from_cumulative(&[(1.0, 0.0), (f64::INFINITY, 0.0)], 0.5).is_nan());
    }

    #[test]
    fn windowed_p99_matches_direct_recomputation_from_raw_snapshots() {
        // The acceptance criterion: the tsdb's windowed quantile must
        // equal subtracting two raw Snapshots' bucket counts by hand.
        let reg = Registry::enabled();
        let h = reg.histogram_with(
            "fleet_cmd_seconds",
            HistogramSpec::latency_seconds(),
            &[("cmd", "step"), ("shard", "0")],
        );
        let mut db = Tsdb::new();
        // Early transient: slow samples before the window opens.
        for _ in 0..50 {
            h.record(2.0);
        }
        let snap_t0 = reg.snapshot();
        db.ingest_snapshot(10_000, &snap_t0);
        // Inside the window: fast samples with a 2% slow tail, so the
        // p99 rank lands past the fast buckets.
        for i in 0..200 {
            h.record(if i % 50 == 0 { 0.5 } else { 0.002 });
        }
        let snap_t1 = reg.snapshot();
        db.ingest_snapshot(20_000, &snap_t1);

        let from_db = db
            .windowed_quantile(
                "fleet_cmd_seconds",
                &[("cmd", "step")],
                10_000,
                20_000,
                0.99,
            )
            .expect("histogram has data");

        // Direct recomputation: subtract the two snapshots' cumulative
        // bucket counts and walk the delta.
        let h0 = snap_t0
            .histograms
            .iter()
            .find(|h| h.name == "fleet_cmd_seconds")
            .unwrap();
        let h1 = snap_t1
            .histograms
            .iter()
            .find(|h| h.name == "fleet_cmd_seconds")
            .unwrap();
        let mut cum0 = 0u64;
        let mut cum1 = 0u64;
        let mut buckets: Vec<(f64, f64)> = Vec::new();
        for (i, le) in h1.bounds.iter().enumerate() {
            cum0 += h0.counts[i];
            cum1 += h1.counts[i];
            buckets.push((*le, (cum1 - cum0) as f64));
        }
        buckets.push((f64::INFINITY, (h1.count - h0.count) as f64));
        let direct = quantile_from_cumulative(&buckets, 0.99);
        assert_eq!(from_db, direct, "tsdb {from_db} vs direct {direct}");
        // And the window excludes the pre-window transient: its p99
        // reflects the 0.5 s tail, not the 2 s flood.
        assert!((0.1..=1.0).contains(&from_db), "windowed p99 {from_db}");
        // Whereas the cumulative-since-start p99 is dominated by it.
        let cumulative = snap_t1
            .histograms
            .iter()
            .find(|h| h.name == "fleet_cmd_seconds")
            .unwrap()
            .quantile(0.99);
        assert!(cumulative > 1.0, "cumulative p99 {cumulative}");
    }

    #[test]
    fn segment_replay_equals_live_ingest() {
        let path = temp_path("replay");
        let reg = Registry::enabled();
        let c = reg.counter("steps_total");
        let g = reg.gauge("depth");
        let mut w = SegmentWriter::create(&path).unwrap();
        let mut live = Tsdb::new();
        for t in 1..=5u64 {
            c.add(t * 3);
            g.set(t as f64 * 0.5);
            let samples = snapshot_samples(&reg.snapshot());
            w.append(t * 1000, &samples).unwrap();
            live.ingest(t * 1000, &samples);
        }
        drop(w);
        let mut replayed = Tsdb::new();
        replayed.ingest_segment(&read_segment(&path).unwrap());
        assert_eq!(live.series().len(), replayed.series().len());
        for (a, b) in live.series().iter().zip(replayed.series().iter()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.points(0, u64::MAX), b.points(0, u64::MAX), "{}", a.name);
        }
        let _ = std::fs::remove_file(&path);
    }
}
