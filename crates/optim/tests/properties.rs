#![allow(clippy::needless_range_loop)] // parallel-array indexing in assertions

//! Property-based tests for the QP and SQP solvers: KKT conditions,
//! feasibility and invariance properties on random problems.

use ev_linalg::{vecops, Matrix};
use ev_optim::{NlpProblem, QpProblem, QpSolver, SqpSolver};
use proptest::prelude::*;

/// Strategy: an SPD Hessian H = AᵀA + I of side `n`.
fn spd(n: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-1.0f64..1.0, n * n).prop_map(move |data| {
        let a = Matrix::from_fn(n, n, |r, c| data[r * n + c]);
        let mut h = a.transpose().matmul(&a).expect("dims");
        h.add_diag(1.0);
        h
    })
}

fn linear(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-5.0f64..5.0, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn unconstrained_qp_matches_linear_solve(
        h in spd(4),
        g in linear(4),
    ) {
        // min ½zᵀHz + gᵀz ⇒ Hz* = −g.
        let p = QpProblem::new(h.clone(), g.clone()).expect("valid");
        let sol = QpSolver::default().solve(&p).expect("solves");
        let direct = ev_linalg::solve(&h, &vecops::scale(-1.0, &g)).expect("spd");
        for k in 0..4 {
            prop_assert!((sol.z[k] - direct[k]).abs() < 1e-5,
                "ipm {} vs direct {}", sol.z[k], direct[k]);
        }
    }

    #[test]
    fn box_constrained_qp_satisfies_kkt(
        h in spd(3),
        g in linear(3),
        bound in 0.2f64..3.0,
    ) {
        // Box −bound ≤ z ≤ bound as 6 inequalities.
        let mut rows = Vec::new();
        let mut rhs = Vec::new();
        for i in 0..3 {
            let mut up = vec![0.0; 3];
            up[i] = 1.0;
            rows.push(up);
            rhs.push(bound);
            let mut lo = vec![0.0; 3];
            lo[i] = -1.0;
            rows.push(lo);
            rhs.push(bound);
        }
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        let a = Matrix::from_rows(&refs).expect("rect");
        let p = QpProblem::new(h.clone(), g.clone())
            .expect("valid")
            .with_inequalities(a.clone(), rhs.clone())
            .expect("valid");
        let sol = QpSolver::default().solve(&p).expect("solves");

        // Primal feasibility.
        let az = a.matvec(&sol.z).expect("dims");
        for i in 0..6 {
            prop_assert!(az[i] <= rhs[i] + 1e-6, "constraint {i} violated");
            // Dual feasibility.
            prop_assert!(sol.lambda_in[i] >= -1e-8);
            // Complementary slackness.
            prop_assert!(sol.lambda_in[i] * (rhs[i] - az[i]) < 1e-4);
        }
        // Stationarity: Hz + g + Aᵀλ ≈ 0.
        let hz = h.matvec(&sol.z).expect("dims");
        let atl = a.matvec_transposed(&sol.lambda_in).expect("dims");
        for k in 0..3 {
            prop_assert!((hz[k] + g[k] + atl[k]).abs() < 1e-4,
                "stationarity residual at {k}");
        }
    }

    #[test]
    fn qp_objective_no_worse_than_feasible_probes(
        h in spd(3),
        g in linear(3),
        probe in proptest::collection::vec(-1.0f64..1.0, 3),
    ) {
        // Unit box; any feasible probe must not beat the solver.
        let mut rows = Vec::new();
        let mut rhs = Vec::new();
        for i in 0..3 {
            let mut up = vec![0.0; 3];
            up[i] = 1.0;
            rows.push(up);
            rhs.push(1.0);
            let mut lo = vec![0.0; 3];
            lo[i] = -1.0;
            rows.push(lo);
            rhs.push(1.0);
        }
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        let p = QpProblem::new(h, g)
            .expect("valid")
            .with_inequalities(Matrix::from_rows(&refs).expect("rect"), rhs)
            .expect("valid");
        let sol = QpSolver::default().solve(&p).expect("solves");
        prop_assert!(sol.objective <= p.objective(&probe) + 1e-6);
    }

    #[test]
    fn equality_constrained_qp_stays_on_plane(
        h in spd(4),
        g in linear(4),
        target in -2.0f64..2.0,
    ) {
        let a_eq = Matrix::from_rows(&[&[1.0, 1.0, 1.0, 1.0]]).expect("row");
        let p = QpProblem::new(h, g)
            .expect("valid")
            .with_equalities(a_eq, vec![target])
            .expect("valid");
        let sol = QpSolver::default().solve(&p).expect("solves");
        let sum: f64 = sol.z.iter().sum();
        prop_assert!((sum - target).abs() < 1e-6, "sum {sum} target {target}");
    }

    #[test]
    fn sqp_quadratic_with_box_converges_to_projection(
        center in proptest::collection::vec(-3.0f64..3.0, 2),
    ) {
        // min ‖z − c‖² over the unit box = clamped c.
        struct Proj {
            c: Vec<f64>,
        }
        impl NlpProblem for Proj {
            fn num_vars(&self) -> usize {
                2
            }
            fn objective(&self, z: &[f64]) -> f64 {
                (z[0] - self.c[0]).powi(2) + (z[1] - self.c[1]).powi(2)
            }
            fn num_ineq(&self) -> usize {
                4
            }
            fn ineq_constraints(&self, z: &[f64], out: &mut [f64]) {
                out[0] = z[0] - 1.0;
                out[1] = -z[0] - 1.0;
                out[2] = z[1] - 1.0;
                out[3] = -z[1] - 1.0;
            }
        }
        let r = SqpSolver::default()
            .solve(&Proj { c: center.clone() }, &[0.0, 0.0])
            .expect("solves");
        for k in 0..2 {
            let expected = center[k].clamp(-1.0, 1.0);
            prop_assert!((r.z[k] - expected).abs() < 1e-3,
                "z[{k}] = {} expected {expected} ({:?})", r.z[k], r.status);
        }
    }

    #[test]
    fn sqp_result_is_feasible_even_from_infeasible_start(
        start in proptest::collection::vec(-20.0f64..20.0, 2),
    ) {
        struct Box2;
        impl NlpProblem for Box2 {
            fn num_vars(&self) -> usize {
                2
            }
            fn objective(&self, z: &[f64]) -> f64 {
                z[0] * z[0] + 0.5 * z[1] * z[1] + z[0] * 0.3
            }
            fn num_ineq(&self) -> usize {
                4
            }
            fn ineq_constraints(&self, z: &[f64], out: &mut [f64]) {
                out[0] = z[0] - 2.0;
                out[1] = -z[0] - 2.0;
                out[2] = z[1] - 2.0;
                out[3] = -z[1] - 2.0;
            }
        }
        let r = SqpSolver::default().solve(&Box2, &start).expect("solves");
        prop_assert!(r.constraint_violation < 1e-3,
            "violation {} from start {start:?} ({:?})", r.constraint_violation, r.status);
    }
}
