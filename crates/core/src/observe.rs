//! Step-level observability for the co-simulation loop.
//!
//! [`Simulation::run`](crate::Simulation::run) drives the plant blind: it
//! returns a [`crate::SimulationResult`] but exposes nothing *while* the
//! loop runs. This module adds a [`StepObserver`] trait that
//! [`Simulation::run_observed`](crate::Simulation::run_observed) invokes
//! once per sample with the full [`StepRecord`] — time, motor power, the
//! commanded HVAC input, the power breakdown, battery state and the
//! inferred controller mode — so tests, invariant checkers and trace
//! exporters can watch every step without touching the loop itself.
//!
//! Three ready-made observers cover the common needs:
//!
//! * [`TraceRecorder`] — keeps every record in memory (golden traces,
//!   invariant checking over whole trajectories);
//! * [`TraceWriter`] — streams each record as one JSON object per line
//!   (JSONL) into any [`std::io::Write`] sink;
//! * [`StatsObserver`] — running min/max/mean counters per channel plus
//!   controller-mode occupancy, O(1) memory.
//!
//! The default [`NoopObserver`] is a zero-sized type whose callbacks are
//! empty; with static dispatch the observed loop compiles down to the
//! unobserved one.
//!
//! # Examples
//!
//! ```no_run
//! use ev_core::{ControllerKind, EvParams, Simulation, TraceRecorder};
//! use ev_drive::{AmbientConditions, DriveCycle, DriveProfile};
//! use ev_units::{Celsius, Seconds};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let params = EvParams::nissan_leaf_like();
//! let profile = DriveProfile::from_cycle(
//!     &DriveCycle::ece15(),
//!     AmbientConditions::constant(Celsius::new(35.0)),
//!     Seconds::new(1.0),
//! );
//! let sim = Simulation::new(params.clone(), profile)?;
//! let mut controller = ControllerKind::Mpc.instantiate(&params)?;
//! let mut trace = TraceRecorder::new();
//! let result = sim.run_observed(controller.as_mut(), &mut trace)?;
//! assert_eq!(trace.records().len(), result.series.t.len());
//! # Ok(())
//! # }
//! ```

use serde::{Deserialize, Serialize};

use crate::SimulationResult;

/// What the HVAC was commanded to do in one step, inferred from the
/// realized power breakdown and air flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ControllerMode {
    /// The heater coil draws real power.
    Heating,
    /// The cooling coil draws real power.
    Cooling,
    /// Air moves well above the idle trickle but neither coil is active.
    Vent,
    /// Idle trickle flow, both coils passive.
    Idle,
}

impl ControllerMode {
    /// Power below which a coil counts as passive (W). Well above
    /// numerical noise, well below any deliberate actuation.
    pub const COIL_EPS_W: f64 = 1.0;

    /// Classifies a step from its realized coil powers and supply flow.
    /// `min_flow` is the HVAC's idle trickle (kg/s); flow beyond 1.5× of
    /// it with passive coils counts as [`ControllerMode::Vent`].
    #[must_use]
    pub fn classify(heating_w: f64, cooling_w: f64, flow_kg_s: f64, min_flow_kg_s: f64) -> Self {
        if heating_w > Self::COIL_EPS_W && heating_w >= cooling_w {
            Self::Heating
        } else if cooling_w > Self::COIL_EPS_W {
            Self::Cooling
        } else if flow_kg_s > 1.5 * min_flow_kg_s {
            Self::Vent
        } else {
            Self::Idle
        }
    }
}

impl core::fmt::Display for ControllerMode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            Self::Heating => "heating",
            Self::Cooling => "cooling",
            Self::Vent => "vent",
            Self::Idle => "idle",
        })
    }
}

/// Everything one simulation step produced, in plain SI scalars so
/// observers can stream, diff and serialize records without unit
/// plumbing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepRecord {
    /// Step index (0-based).
    pub step: usize,
    /// Sample time (s).
    pub t: f64,
    /// Sample period (s).
    pub dt: f64,
    /// Electric-motor power (W; negative = regeneration).
    pub motor_power: f64,
    /// HVAC heating-coil power (W).
    pub heating_power: f64,
    /// HVAC cooling-coil power (W).
    pub cooling_power: f64,
    /// HVAC fan power (W).
    pub fan_power: f64,
    /// Constant accessory power (W).
    pub accessory_power: f64,
    /// Power metered into the battery after BMS clamping (W).
    pub battery_power: f64,
    /// State of charge after the step (%).
    pub soc: f64,
    /// Cabin temperature after the step (°C).
    pub cabin_temp: f64,
    /// Battery-pack temperature after the step (°C).
    pub pack_temp: f64,
    /// Outside temperature (°C).
    pub ambient: f64,
    /// Solar load (W).
    pub solar: f64,
    /// Commanded supply-air temperature `Ts` (°C).
    pub supply_temp: f64,
    /// Commanded cooling-coil temperature `Tc` (°C).
    pub coil_temp: f64,
    /// Commanded recirculation fraction `dr`.
    pub recirculation: f64,
    /// Commanded supply-air flow `ṁz` (kg/s).
    pub flow: f64,
    /// Inferred controller mode.
    pub mode: ControllerMode,
}

impl StepRecord {
    /// Total HVAC power of the step (W).
    #[must_use]
    pub fn hvac_power(&self) -> f64 {
        self.heating_power + self.cooling_power + self.fan_power
    }

    /// Total plant load before BMS clamping (W).
    #[must_use]
    pub fn plant_power(&self) -> f64 {
        self.motor_power + self.hvac_power() + self.accessory_power
    }
}

/// A per-step callback invoked by
/// [`Simulation::run_observed`](crate::Simulation::run_observed).
///
/// All methods have empty defaults, so an observer implements only what
/// it needs; [`NoopObserver`] implements none and vanishes under
/// monomorphization.
pub trait StepObserver {
    /// Called once before the first step.
    fn on_start(&mut self, profile: &str, controller: &str, steps: usize) {
        let _ = (profile, controller, steps);
    }

    /// Called after every plant step with the full record.
    fn on_step(&mut self, record: &StepRecord) {
        let _ = record;
    }

    /// Called once after the last step with the assembled result.
    fn on_finish(&mut self, result: &SimulationResult) {
        let _ = result;
    }
}

/// The do-nothing observer behind the plain
/// [`Simulation::run`](crate::Simulation::run).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopObserver;

impl StepObserver for NoopObserver {}

/// Observers compose by reference, so one can be threaded through a
/// generic call without giving up ownership.
impl<O: StepObserver + ?Sized> StepObserver for &mut O {
    fn on_start(&mut self, profile: &str, controller: &str, steps: usize) {
        (**self).on_start(profile, controller, steps);
    }
    fn on_step(&mut self, record: &StepRecord) {
        (**self).on_step(record);
    }
    fn on_finish(&mut self, result: &SimulationResult) {
        (**self).on_finish(result);
    }
}

/// Pairs compose: both observers see every callback, left first.
impl<A: StepObserver, B: StepObserver> StepObserver for (A, B) {
    fn on_start(&mut self, profile: &str, controller: &str, steps: usize) {
        self.0.on_start(profile, controller, steps);
        self.1.on_start(profile, controller, steps);
    }
    fn on_step(&mut self, record: &StepRecord) {
        self.0.on_step(record);
        self.1.on_step(record);
    }
    fn on_finish(&mut self, result: &SimulationResult) {
        self.0.on_finish(result);
        self.1.on_finish(result);
    }
}

/// An in-memory trace of every step.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceRecorder {
    profile: String,
    controller: String,
    records: Vec<StepRecord>,
}

impl TraceRecorder {
    /// Creates an empty recorder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The profile name seen at `on_start` (empty before a run).
    #[must_use]
    pub fn profile(&self) -> &str {
        &self.profile
    }

    /// The controller name seen at `on_start` (empty before a run).
    #[must_use]
    pub fn controller(&self) -> &str {
        &self.controller
    }

    /// Borrows the recorded steps.
    #[must_use]
    pub fn records(&self) -> &[StepRecord] {
        &self.records
    }

    /// Consumes the recorder, returning the recorded steps.
    #[must_use]
    pub fn into_records(self) -> Vec<StepRecord> {
        self.records
    }
}

impl StepObserver for TraceRecorder {
    fn on_start(&mut self, profile: &str, controller: &str, steps: usize) {
        self.profile = profile.to_owned();
        self.controller = controller.to_owned();
        self.records.clear();
        self.records.reserve(steps);
    }

    fn on_step(&mut self, record: &StepRecord) {
        self.records.push(*record);
    }
}

/// Streams every step as one JSON object per line (JSONL) into a
/// [`std::io::Write`] sink.
///
/// The observer callbacks are infallible by design, so write errors are
/// latched instead of propagated: the first failure stops further writes
/// and [`TraceWriter::finish`] surfaces it. `finish` also flushes the
/// sink (a wrapped `BufWriter` would otherwise hold the tail records in
/// memory), and dropping an unfinished writer best-effort flushes too,
/// so an aborted run does not silently lose its buffered tail.
#[derive(Debug)]
pub struct TraceWriter<W: std::io::Write> {
    /// `Some` until [`TraceWriter::finish`] takes the sink; the `Drop`
    /// flush only runs while it is still here.
    sink: Option<W>,
    error: Option<std::io::Error>,
    written: usize,
}

impl<W: std::io::Write> TraceWriter<W> {
    /// Wraps a sink.
    pub fn new(sink: W) -> Self {
        Self {
            sink: Some(sink),
            error: None,
            written: 0,
        }
    }

    /// Number of records written so far.
    #[must_use]
    pub fn written(&self) -> usize {
        self.written
    }

    /// Flushes and unwraps the sink, surfacing any latched write error.
    ///
    /// # Errors
    ///
    /// Returns the first I/O error the underlying sink reported — either
    /// latched from a step write or raised by the final flush.
    pub fn finish(mut self) -> std::io::Result<W> {
        let mut sink = self.sink.take().expect("sink present until finish");
        let flushed = sink.flush();
        match self.error.take() {
            Some(e) => Err(e),
            None => {
                flushed?;
                Ok(sink)
            }
        }
    }
}

impl<W: std::io::Write> Drop for TraceWriter<W> {
    /// Best-effort flush when the writer is dropped without `finish`
    /// (e.g. a run aborted by a panic); errors here have nowhere to go
    /// and are discarded.
    fn drop(&mut self) {
        if let Some(sink) = self.sink.as_mut() {
            let _ = sink.flush();
        }
    }
}

impl<W: std::io::Write> StepObserver for TraceWriter<W> {
    fn on_step(&mut self, record: &StepRecord) {
        if self.error.is_some() {
            return;
        }
        let Some(sink) = self.sink.as_mut() else {
            return;
        };
        let line = serde_json::to_string(record).expect("StepRecord serializes infallibly");
        if let Err(e) = writeln!(sink, "{line}") {
            self.error = Some(e);
            return;
        }
        self.written += 1;
    }
}

/// Running min/max/mean of one observed channel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChannelStats {
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
    /// Sum of observed values (for the mean).
    pub sum: f64,
    /// Number of observations.
    pub count: usize,
}

impl Default for ChannelStats {
    fn default() -> Self {
        Self {
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
            count: 0,
        }
    }
}

impl ChannelStats {
    /// Folds one observation in.
    pub fn push(&mut self, x: f64) {
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        self.sum += x;
        self.count += 1;
    }

    /// Mean of the observations (`NaN` before the first).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }
}

/// How many steps each [`ControllerMode`] occupied.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModeCounts {
    /// Steps spent heating.
    pub heating: usize,
    /// Steps spent cooling.
    pub cooling: usize,
    /// Steps spent venting.
    pub vent: usize,
    /// Steps spent idle.
    pub idle: usize,
}

impl ModeCounts {
    /// Total counted steps.
    #[must_use]
    pub fn total(&self) -> usize {
        self.heating + self.cooling + self.vent + self.idle
    }
}

/// O(1)-memory summary statistics over a run: per-channel min/max/mean
/// and controller-mode occupancy.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsObserver {
    /// Total HVAC power (W).
    pub hvac_power: ChannelStats,
    /// Battery power (W).
    pub battery_power: ChannelStats,
    /// State of charge (%).
    pub soc: ChannelStats,
    /// Cabin temperature (°C).
    pub cabin_temp: ChannelStats,
    /// Battery-pack temperature (°C).
    pub pack_temp: ChannelStats,
    /// Controller-mode occupancy.
    pub modes: ModeCounts,
}

impl StatsObserver {
    /// Creates empty counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of observed steps.
    #[must_use]
    pub fn steps(&self) -> usize {
        self.soc.count
    }
}

impl StepObserver for StatsObserver {
    fn on_step(&mut self, r: &StepRecord) {
        self.hvac_power.push(r.hvac_power());
        self.battery_power.push(r.battery_power);
        self.soc.push(r.soc);
        self.cabin_temp.push(r.cabin_temp);
        self.pack_temp.push(r.pack_temp);
        match r.mode {
            ControllerMode::Heating => self.modes.heating += 1,
            ControllerMode::Cooling => self.modes.cooling += 1,
            ControllerMode::Vent => self.modes.vent += 1,
            ControllerMode::Idle => self.modes.idle += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(k: usize) -> StepRecord {
        StepRecord {
            step: k,
            t: k as f64,
            dt: 1.0,
            motor_power: 10_000.0,
            heating_power: 0.0,
            cooling_power: 1_800.0,
            fan_power: 150.0,
            accessory_power: 300.0,
            battery_power: 12_250.0,
            soc: 95.0 - 0.01 * k as f64,
            cabin_temp: 25.0,
            pack_temp: 30.0,
            ambient: 35.0,
            solar: 400.0,
            supply_temp: 12.0,
            coil_temp: 12.0,
            recirculation: 0.8,
            flow: 0.15,
            mode: ControllerMode::Cooling,
        }
    }

    #[test]
    fn mode_classification() {
        let min_flow = 0.02;
        assert_eq!(
            ControllerMode::classify(2_000.0, 0.0, 0.2, min_flow),
            ControllerMode::Heating
        );
        assert_eq!(
            ControllerMode::classify(0.0, 2_000.0, 0.2, min_flow),
            ControllerMode::Cooling
        );
        assert_eq!(
            ControllerMode::classify(0.0, 0.0, 0.2, min_flow),
            ControllerMode::Vent
        );
        assert_eq!(
            ControllerMode::classify(0.0, 0.5, 0.02, min_flow),
            ControllerMode::Idle
        );
    }

    #[test]
    fn record_totals() {
        let r = record(0);
        assert_eq!(r.hvac_power(), 1_950.0);
        assert_eq!(r.plant_power(), 12_250.0);
    }

    #[test]
    fn trace_recorder_collects_in_order() {
        let mut rec = TraceRecorder::new();
        rec.on_start("P", "C", 3);
        for k in 0..3 {
            rec.on_step(&record(k));
        }
        assert_eq!(rec.profile(), "P");
        assert_eq!(rec.controller(), "C");
        assert_eq!(rec.records().len(), 3);
        assert_eq!(rec.records()[2].step, 2);
    }

    #[test]
    fn trace_recorder_resets_between_runs() {
        let mut rec = TraceRecorder::new();
        rec.on_start("A", "x", 1);
        rec.on_step(&record(0));
        rec.on_start("B", "y", 1);
        assert!(rec.records().is_empty());
        assert_eq!(rec.profile(), "B");
    }

    #[test]
    fn trace_writer_emits_one_json_line_per_step() {
        let mut w = TraceWriter::new(Vec::new());
        w.on_step(&record(0));
        w.on_step(&record(1));
        assert_eq!(w.written(), 2);
        let bytes = w.finish().expect("no io error");
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let back: StepRecord = serde_json::from_str(lines[1]).expect("parses");
        assert_eq!(back.step, 1);
        assert_eq!(back.mode, ControllerMode::Cooling);
    }

    /// A sink that counts flushes through shared state, so tests can see
    /// them even after the writer is dropped.
    struct FlushCounter {
        flushes: std::rc::Rc<std::cell::Cell<usize>>,
        fail_flush: bool,
    }

    impl std::io::Write for FlushCounter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            self.flushes.set(self.flushes.get() + 1);
            if self.fail_flush {
                Err(std::io::Error::other("flush failed"))
            } else {
                Ok(())
            }
        }
    }

    #[test]
    fn trace_writer_finish_flushes_the_sink() {
        let flushes = std::rc::Rc::new(std::cell::Cell::new(0));
        let mut w = TraceWriter::new(FlushCounter {
            flushes: flushes.clone(),
            fail_flush: false,
        });
        w.on_step(&record(0));
        w.finish().expect("no io error");
        assert_eq!(flushes.get(), 1, "finish must flush buffered records");
    }

    #[test]
    fn trace_writer_flushes_on_drop() {
        let flushes = std::rc::Rc::new(std::cell::Cell::new(0));
        {
            let mut w = TraceWriter::new(FlushCounter {
                flushes: flushes.clone(),
                fail_flush: false,
            });
            w.on_step(&record(0));
            // Dropped without finish — an aborted run.
        }
        assert_eq!(flushes.get(), 1, "drop must flush the buffered tail");
    }

    #[test]
    fn trace_writer_finish_surfaces_flush_error() {
        let flushes = std::rc::Rc::new(std::cell::Cell::new(0));
        let mut w = TraceWriter::new(FlushCounter {
            flushes,
            fail_flush: true,
        });
        w.on_step(&record(0));
        assert!(w.finish().is_err(), "flush failure must surface");
    }

    #[test]
    fn stats_observer_tracks_extrema_and_modes() {
        let mut s = StatsObserver::new();
        for k in 0..10 {
            s.on_step(&record(k));
        }
        let mut hot = record(10);
        hot.mode = ControllerMode::Idle;
        hot.cabin_temp = 31.0;
        s.on_step(&hot);
        assert_eq!(s.steps(), 11);
        assert_eq!(s.cabin_temp.max, 31.0);
        assert_eq!(s.cabin_temp.min, 25.0);
        assert_eq!(s.modes.cooling, 10);
        assert_eq!(s.modes.idle, 1);
        assert_eq!(s.modes.total(), 11);
        assert!((s.soc.mean() - s.soc.sum / 11.0).abs() < 1e-12);
    }

    #[test]
    fn observers_compose_as_pairs() {
        let mut pair = (TraceRecorder::new(), StatsObserver::new());
        pair.on_start("P", "C", 2);
        pair.on_step(&record(0));
        pair.on_step(&record(1));
        assert_eq!(pair.0.records().len(), 2);
        assert_eq!(pair.1.steps(), 2);
    }

    #[test]
    fn step_record_serde_round_trip() {
        let r = record(7);
        let json = serde_json::to_string(&r).unwrap();
        let back: StepRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
