//! Moist-air psychrometrics: the paper's equivalent dry-air temperature.
//!
//! The paper does not model humidity directly: "the temperature represents
//! an equivalent dry air temperature at which the dry air has the same
//! specific enthalpy as the actual moist air mixture" (Section II-C).
//! This module implements exactly that mapping, so profiles specified with
//! relative humidity can be converted into the dry-equivalent temperatures
//! the rest of the stack consumes.

use ev_units::Celsius;

/// Specific heat of dry air (J/(kg·K)).
const CP_DRY: f64 = 1006.0;
/// Specific heat of water vapor (J/(kg·K)).
const CP_VAPOR: f64 = 1860.0;
/// Latent heat of vaporization of water at 0 °C (J/kg).
const H_LATENT: f64 = 2.501e6;
/// Standard atmospheric pressure (Pa).
const P_ATM: f64 = 101_325.0;

/// Saturation vapor pressure of water over liquid (Pa), Magnus formula.
///
/// Accurate to ~0.1 % between −40 and 50 °C — the automotive envelope.
///
/// # Examples
///
/// ```
/// let p = ev_hvac::moist_air::saturation_pressure(ev_units::Celsius::new(20.0));
/// assert!((p - 2339.0).abs() < 30.0); // ≈2.34 kPa at 20 °C
/// ```
#[must_use]
pub fn saturation_pressure(t: Celsius) -> f64 {
    let tc = t.value();
    610.94 * ((17.625 * tc) / (243.04 + tc)).exp()
}

/// Humidity ratio (kg water / kg dry air) at a temperature and relative
/// humidity.
///
/// # Panics
///
/// Panics if `rh` is outside `[0, 1]`.
#[must_use]
pub fn humidity_ratio(t: Celsius, rh: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&rh),
        "relative humidity must lie in [0, 1]"
    );
    let pv = rh * saturation_pressure(t);
    0.621_945 * pv / (P_ATM - pv)
}

/// Specific enthalpy of moist air (J per kg of dry air), referenced to
/// 0 °C dry air.
#[must_use]
pub fn moist_enthalpy(t: Celsius, rh: f64) -> f64 {
    let w = humidity_ratio(t, rh);
    let tc = t.value();
    CP_DRY * tc + w * (H_LATENT + CP_VAPOR * tc)
}

/// The paper's equivalent dry-air temperature: the dry-air temperature
/// with the same specific enthalpy as the moist mixture.
///
/// Humid air carries latent heat, so its equivalent dry temperature is
/// *higher* than its thermometer reading — a 35 °C / 60 % RH afternoon
/// loads the HVAC like a much hotter dry day.
///
/// # Panics
///
/// Panics if `rh` is outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use ev_hvac::moist_air::equivalent_dry_temperature;
/// use ev_units::Celsius;
///
/// let humid = equivalent_dry_temperature(Celsius::new(35.0), 0.6);
/// assert!(humid.value() > 35.0);
/// let dry = equivalent_dry_temperature(Celsius::new(35.0), 0.0);
/// assert!((dry.value() - 35.0).abs() < 1e-9);
/// ```
#[must_use]
pub fn equivalent_dry_temperature(t: Celsius, rh: f64) -> Celsius {
    Celsius::new(moist_enthalpy(t, rh) / CP_DRY)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturation_pressure_reference_points() {
        // Published values: 611 Pa at 0 °C, 3169 Pa at 25 °C, 7384 at 40 °C.
        assert!((saturation_pressure(Celsius::new(0.0)) - 611.0).abs() < 5.0);
        assert!((saturation_pressure(Celsius::new(25.0)) - 3169.0).abs() < 40.0);
        assert!((saturation_pressure(Celsius::new(40.0)) - 7384.0).abs() < 100.0);
    }

    #[test]
    fn humidity_ratio_reference() {
        // 20 °C, 50 % RH: w ≈ 0.00726 kg/kg.
        let w = humidity_ratio(Celsius::new(20.0), 0.5);
        assert!((w - 0.00726).abs() < 2e-4, "w {w}");
        assert_eq!(humidity_ratio(Celsius::new(20.0), 0.0), 0.0);
    }

    #[test]
    fn enthalpy_reference() {
        // 25 °C, 50 % RH: h ≈ 50.3 kJ/kg dry air.
        let h = moist_enthalpy(Celsius::new(25.0), 0.5);
        assert!((h / 1000.0 - 50.3).abs() < 1.0, "h {h}");
    }

    #[test]
    fn equivalent_temperature_monotone_in_humidity() {
        let t = Celsius::new(30.0);
        let mut prev = equivalent_dry_temperature(t, 0.0).value();
        for k in 1..=10 {
            let cur = equivalent_dry_temperature(t, f64::from(k) / 10.0).value();
            assert!(cur > prev, "rh {} not monotone", k);
            prev = cur;
        }
    }

    #[test]
    fn humid_summer_day_loads_like_a_hotter_dry_day() {
        // 35 °C at 60 % RH ≈ dry-equivalent well above 80 °C enthalpy-wise
        // (latent load dominates); sanity-check it exceeds 60 °C.
        let eq = equivalent_dry_temperature(Celsius::new(35.0), 0.6);
        assert!(eq.value() > 60.0, "eq {eq}");
    }

    #[test]
    fn dry_air_is_identity() {
        for t in [-10.0, 0.0, 21.0, 43.0] {
            let eq = equivalent_dry_temperature(Celsius::new(t), 0.0);
            assert!((eq.value() - t).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "[0, 1]")]
    fn rejects_bad_rh() {
        let _ = humidity_ratio(Celsius::new(20.0), 1.5);
    }
}
