//! Property-based tests for the controllers: every controller must emit
//! inputs that satisfy the static HVAC constraint set from any plausible
//! state, and the fuzzy engine must stay within its output universe.

use ev_control::fuzzy::{FuzzyEngine, MembershipFunction, Rule, Term};
use ev_control::{
    duty_to_input, ClimateController, ControlContext, FuzzyController, OnOffController,
    PidController, PreviewSample,
};
use ev_hvac::{CabinParams, Hvac, HvacLimits, HvacParams, HvacState};
use ev_units::{Celsius, Percent, Seconds, Watts};
use proptest::prelude::*;

fn hvac() -> Hvac {
    Hvac::new(CabinParams::default(), HvacParams::default())
}

fn ctx_at(tz: f64, to: f64, soc: f64) -> ControlContext<'static> {
    ControlContext {
        state: HvacState::new(Celsius::new(tz)),
        ambient: Celsius::new(to),
        solar: Watts::new(350.0),
        soc: Percent::new(soc),
        soc_avg: soc + 1.0,
        dt: Seconds::new(1.0),
        elapsed: Seconds::ZERO,
        preview: &[],
    }
}

/// Checks the statically guaranteed constraints on an emitted input.
fn assert_static_feasible(
    h: &Hvac,
    input: &ev_hvac::HvacInput,
    state: HvacState,
    to: Celsius,
) -> Result<(), TestCaseError> {
    let p = h.params();
    prop_assert!(input.mz.value() >= p.min_flow.value() - 1e-9);
    prop_assert!(input.mz.value() <= p.max_flow.value() + 1e-9);
    prop_assert!(input.dr >= -1e-12 && input.dr <= p.max_recirculation + 1e-12);
    prop_assert!(input.ts >= input.tc.offset(-1e-9), "C3: {input:?}");
    let tm = h.mixed_air(input, state.tz, to);
    prop_assert!(input.tc <= tm.offset(1e-9), "C4: {input:?} tm {tm}");
    prop_assert!(input.ts <= p.max_supply_temp.offset(1e-9));
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn onoff_inputs_are_statically_feasible(
        tz in 10.0f64..45.0,
        to in -20.0f64..48.0,
        soc in 20.0f64..95.0,
    ) {
        let h = hvac();
        let mut c = OnOffController::new(h.clone(), HvacLimits::default(), Celsius::new(24.0), 1.5);
        let ctx = ctx_at(tz, to, soc);
        let input = c.control(&ctx);
        assert_static_feasible(&h, &input, ctx.state, ctx.ambient)?;
        // Coil powers within caps (the On/Off controller promises this).
        let p = h.power(&input, ctx.state, ctx.ambient);
        prop_assert!(p.heating.value() <= 6000.0 + 1.0);
        prop_assert!(p.cooling.value() <= 6000.0 + 1.0);
    }

    #[test]
    fn fuzzy_inputs_are_statically_feasible(
        tz in 10.0f64..45.0,
        to in -20.0f64..48.0,
    ) {
        let h = hvac();
        let mut c = FuzzyController::new(h.clone(), HvacLimits::default(), Celsius::new(24.0));
        let ctx = ctx_at(tz, to, 80.0);
        let input = c.control(&ctx);
        assert_static_feasible(&h, &input, ctx.state, ctx.ambient)?;
    }

    #[test]
    fn pid_inputs_are_statically_feasible(
        tz in 10.0f64..45.0,
        to in -20.0f64..48.0,
        kp in 0.1f64..2.0,
    ) {
        let h = hvac();
        let mut c = PidController::new(h.clone(), HvacLimits::default(), Celsius::new(24.0))
            .with_gains(kp, 0.005, 2.0);
        let ctx = ctx_at(tz, to, 80.0);
        let input = c.control(&ctx);
        assert_static_feasible(&h, &input, ctx.state, ctx.ambient)?;
    }

    #[test]
    fn duty_mapping_is_statically_feasible_for_any_duty(
        duty in -2.0f64..2.0,
        tz in 10.0f64..45.0,
        to in -20.0f64..48.0,
    ) {
        let h = hvac();
        let ctx = ctx_at(tz, to, 80.0);
        let input = duty_to_input(&h, &HvacLimits::default(), &ctx, duty);
        assert_static_feasible(&h, &input, ctx.state, ctx.ambient)?;
    }

    #[test]
    fn duty_sign_selects_mode(
        magnitude in 0.2f64..1.0,
        tz in 22.0f64..26.0,
    ) {
        let h = hvac();
        let ctx = ctx_at(tz, 30.0, 80.0);
        let state = ctx.state;
        let cooling = duty_to_input(&h, &HvacLimits::default(), &ctx, magnitude);
        let heating = duty_to_input(&h, &HvacLimits::default(), &ctx, -magnitude);
        let pc = h.power(&cooling, state, ctx.ambient);
        let ph = h.power(&heating, state, ctx.ambient);
        prop_assert!(pc.cooling.value() > 0.0 && pc.heating.value() == 0.0);
        prop_assert!(ph.heating.value() > 0.0 && ph.cooling.value() == 0.0);
    }

    #[test]
    fn fuzzy_engine_output_stays_in_universe(
        x in -3.0f64..3.0,
        y in -3.0f64..3.0,
    ) {
        // A 2-input engine with shoulder terms: output must stay within
        // the declared universe for any crisp inputs.
        let tri = |a: f64, b: f64, c: f64| MembershipFunction::Triangle { a, b, c };
        let terms = vec![
            Term { label: "lo", mf: tri(-1.0, -1.0, 0.0) },
            Term { label: "hi", mf: tri(0.0, 1.0, 1.0) },
        ];
        let engine = FuzzyEngine::new(
            vec![terms.clone(), terms.clone()],
            terms,
            (-1.0, 1.0),
            vec![
                Rule { antecedents: vec![Some(0), None], consequent: 0 },
                Rule { antecedents: vec![Some(1), None], consequent: 1 },
                Rule { antecedents: vec![None, Some(0)], consequent: 0 },
                Rule { antecedents: vec![None, Some(1)], consequent: 1 },
            ],
        );
        let out = engine.infer(&[x, y]);
        prop_assert!((-1.0..=1.0).contains(&out), "output {out}");
    }

    #[test]
    fn membership_degree_always_in_unit_interval(
        a in -5.0f64..0.0,
        width1 in 0.1f64..3.0,
        width2 in 0.1f64..3.0,
        x in -10.0f64..10.0,
    ) {
        let tri = MembershipFunction::Triangle { a, b: a + width1, c: a + width1 + width2 };
        let d = tri.degree(x);
        prop_assert!((0.0..=1.0).contains(&d));
        let trap = MembershipFunction::Trapezoid {
            a,
            b: a + width1,
            c: a + width1 + width2,
            d: a + width1 + width2 + 1.0,
        };
        let d = trap.degree(x);
        prop_assert!((0.0..=1.0).contains(&d));
    }

    #[test]
    fn preview_sample_is_cloneable_and_orderable_by_time(
        p in 0.0f64..50_000.0,
    ) {
        let s = PreviewSample {
            motor_power: Watts::new(p),
            ambient: Celsius::new(30.0),
            solar: Watts::new(350.0),
        };
        let t = s;
        prop_assert_eq!(t.motor_power.value(), p);
    }
}
