//! Error type for linear-algebra operations.

/// Errors returned by factorizations and solves in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Operand shapes are incompatible for the requested operation.
    DimensionMismatch {
        /// Shape (rows, cols) expected by the operation.
        expected: (usize, usize),
        /// Shape (rows, cols) actually supplied.
        actual: (usize, usize),
    },
    /// The matrix is singular (or numerically singular) to working precision.
    Singular,
    /// The matrix is not symmetric positive definite (Cholesky only).
    NotPositiveDefinite,
    /// A matrix that must be square is not.
    NotSquare {
        /// Rows of the offending matrix.
        rows: usize,
        /// Columns of the offending matrix.
        cols: usize,
    },
    /// Row data passed to a constructor had inconsistent lengths.
    RaggedRows,
    /// An empty matrix was supplied where a non-empty one is required.
    Empty,
}

impl core::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::DimensionMismatch { expected, actual } => write!(
                f,
                "dimension mismatch: expected {}x{}, got {}x{}",
                expected.0, expected.1, actual.0, actual.1
            ),
            Self::Singular => write!(f, "matrix is singular to working precision"),
            Self::NotPositiveDefinite => {
                write!(f, "matrix is not symmetric positive definite")
            }
            Self::NotSquare { rows, cols } => {
                write!(f, "matrix must be square, got {rows}x{cols}")
            }
            Self::RaggedRows => write!(f, "row data has inconsistent lengths"),
            Self::Empty => write!(f, "matrix must be non-empty"),
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = LinalgError::DimensionMismatch {
            expected: (3, 3),
            actual: (2, 3),
        };
        assert_eq!(e.to_string(), "dimension mismatch: expected 3x3, got 2x3");
        assert!(LinalgError::Singular.to_string().contains("singular"));
        assert!(LinalgError::NotPositiveDefinite
            .to_string()
            .contains("positive definite"));
        assert_eq!(
            LinalgError::NotSquare { rows: 2, cols: 5 }.to_string(),
            "matrix must be square, got 2x5"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }
}
