//! Physical-quantity newtypes for the evclimate EV simulation stack.
//!
//! Every quantity that crosses a public API boundary in the evclimate
//! workspace — temperatures, powers, energies, speeds, masses, currents —
//! is wrapped in a dedicated newtype so that the compiler rejects unit
//! confusion (passing a speed where a power is expected, or km/h where m/s
//! is expected) at compile time.
//!
//! All quantities wrap an `f64` in SI or SI-adjacent units and are cheap
//! [`Copy`] values. Arithmetic is implemented only where it is physically
//! meaningful: quantities of the same kind can be added and subtracted,
//! every quantity can be scaled by a dimensionless `f64`, and a handful of
//! cross-type operations with a clear physical reading (e.g. power × time =
//! energy) are provided explicitly.
//!
//! # Examples
//!
//! ```
//! use ev_units::{Celsius, Kilowatts, KilowattHours, Seconds, MetersPerSecond};
//!
//! let ambient = Celsius::new(35.0);
//! assert_eq!(ambient.to_kelvin().value(), 308.15);
//!
//! let hvac = Kilowatts::new(4.0);
//! let energy: KilowattHours = hvac.energy_over(Seconds::new(1800.0));
//! assert!((energy.value() - 2.0).abs() < 1e-12);
//!
//! let v = MetersPerSecond::new(27.78);
//! assert!((v.to_kilometers_per_hour().value() - 100.0).abs() < 0.1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize};

/// Defines a quantity newtype over `f64` with standard constructors,
/// accessors, same-type additive arithmetic, scalar scaling and `Display`.
macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $unit:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        #[serde(transparent)]
        pub struct $name(f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// Creates the quantity from a raw value expressed in the
            /// canonical unit of this type.
            ///
            /// ```
            #[doc = concat!("let q = ev_units::", stringify!($name), "::new(1.5);")]
            /// assert_eq!(q.value(), 1.5);
            /// ```
            #[inline]
            #[must_use]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the raw value in the canonical unit of this type.
            #[inline]
            #[must_use]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Returns the absolute value of the quantity.
            #[inline]
            #[must_use]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns the smaller of `self` and `other`.
            #[inline]
            #[must_use]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns the larger of `self` and `other`.
            #[inline]
            #[must_use]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Clamps the quantity into `[lo, hi]`.
            ///
            /// # Panics
            ///
            /// Panics if `lo > hi` or either bound is NaN.
            #[inline]
            #[must_use]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// Returns `true` if the underlying value is finite.
            #[inline]
            #[must_use]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl core::ops::Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl core::ops::AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl core::ops::Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl core::ops::SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl core::ops::Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl core::ops::Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl core::ops::Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl core::ops::Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl core::ops::Div<$name> for $name {
            /// Dividing two quantities of the same kind yields a
            /// dimensionless ratio.
            type Output = f64;
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl core::iter::Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl core::fmt::Display for $name {
            fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                if let Some(prec) = f.precision() {
                    write!(f, "{:.*} {}", prec, self.0, $unit)
                } else {
                    write!(f, "{} {}", self.0, $unit)
                }
            }
        }
    };
}

// ---------------------------------------------------------------------------
// Time, distance, kinematics
// ---------------------------------------------------------------------------

quantity!(
    /// A duration in seconds.
    Seconds,
    "s"
);

quantity!(
    /// A distance in meters.
    Meters,
    "m"
);

quantity!(
    /// A distance in kilometers.
    Kilometers,
    "km"
);

quantity!(
    /// A speed in meters per second (canonical speed unit of the stack).
    MetersPerSecond,
    "m/s"
);

quantity!(
    /// A speed in kilometers per hour (for human-facing I/O).
    KilometersPerHour,
    "km/h"
);

quantity!(
    /// An acceleration in meters per second squared.
    MetersPerSecondSquared,
    "m/s²"
);

// ---------------------------------------------------------------------------
// Mass and flow
// ---------------------------------------------------------------------------

quantity!(
    /// A mass in kilograms.
    Kilograms,
    "kg"
);

quantity!(
    /// A mass flow rate in kilograms per second (HVAC supply-air flow).
    KgPerSecond,
    "kg/s"
);

// ---------------------------------------------------------------------------
// Mechanics and electricity
// ---------------------------------------------------------------------------

quantity!(
    /// A force in newtons.
    Newtons,
    "N"
);

quantity!(
    /// A power in watts.
    Watts,
    "W"
);

quantity!(
    /// A power in kilowatts (human-facing power unit of the paper).
    Kilowatts,
    "kW"
);

quantity!(
    /// An energy in joules.
    Joules,
    "J"
);

quantity!(
    /// An energy in kilowatt-hours (battery capacity unit).
    KilowattHours,
    "kWh"
);

quantity!(
    /// An electric current in amperes.
    Amperes,
    "A"
);

quantity!(
    /// An electric charge in ampere-hours (battery nominal capacity).
    AmpereHours,
    "Ah"
);

quantity!(
    /// An electric potential in volts.
    Volts,
    "V"
);

quantity!(
    /// An electric resistance in ohms.
    Ohms,
    "Ω"
);

// ---------------------------------------------------------------------------
// Thermal
// ---------------------------------------------------------------------------

quantity!(
    /// An absolute temperature in kelvins.
    Kelvin,
    "K"
);

quantity!(
    /// A thermal capacitance in joules per kelvin (cabin lumped capacity).
    JoulesPerKelvin,
    "J/K"
);

quantity!(
    /// A specific heat capacity in joules per kilogram-kelvin.
    JoulesPerKgKelvin,
    "J/(kg·K)"
);

quantity!(
    /// A heat-transfer conductance in watts per kelvin (`c_x · A_x`).
    WattsPerKelvin,
    "W/K"
);

// ---------------------------------------------------------------------------
// Dimensionless
// ---------------------------------------------------------------------------

quantity!(
    /// A percentage, 0–100 scale (SoC, SoH, road slope grade).
    Percent,
    "%"
);

quantity!(
    /// A dimensionless ratio, 0–1 scale (efficiencies, damper fraction).
    Ratio,
    "·"
);

// ---------------------------------------------------------------------------
// Celsius: affine scale, so it gets a bespoke implementation rather than the
// additive macro (adding two Celsius temperatures is physically meaningless).
// ---------------------------------------------------------------------------

/// A temperature on the Celsius scale.
///
/// Celsius is an *affine* unit: adding two Celsius temperatures has no
/// physical meaning, so `Celsius` deliberately does not implement `Add`.
/// The difference of two temperatures is a kelvin-valued interval obtained
/// via [`Celsius::diff`], and offsets are applied with
/// [`Celsius::offset`].
///
/// # Examples
///
/// ```
/// use ev_units::Celsius;
///
/// let cabin = Celsius::new(24.0);
/// let outside = Celsius::new(35.0);
/// assert_eq!(outside.diff(cabin), 11.0); // kelvins
/// assert_eq!(cabin.offset(-3.0), Celsius::new(21.0));
/// assert_eq!(cabin.to_kelvin().value(), 297.15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Celsius(f64);

impl Celsius {
    /// The freezing point of water, 0 °C.
    pub const ZERO: Self = Self(0.0);

    /// Offset between the Celsius and Kelvin scales.
    pub const KELVIN_OFFSET: f64 = 273.15;

    /// Creates a temperature from degrees Celsius.
    #[inline]
    #[must_use]
    pub const fn new(deg: f64) -> Self {
        Self(deg)
    }

    /// Returns the temperature in degrees Celsius.
    #[inline]
    #[must_use]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Converts to the Kelvin scale.
    #[inline]
    #[must_use]
    pub fn to_kelvin(self) -> Kelvin {
        Kelvin::new(self.0 + Self::KELVIN_OFFSET)
    }

    /// Creates a Celsius temperature from an absolute Kelvin temperature.
    #[inline]
    #[must_use]
    pub fn from_kelvin(k: Kelvin) -> Self {
        Self(k.value() - Self::KELVIN_OFFSET)
    }

    /// Returns the signed temperature difference `self − other` in kelvins.
    #[inline]
    #[must_use]
    pub fn diff(self, other: Self) -> f64 {
        self.0 - other.0
    }

    /// Returns this temperature shifted by `delta_kelvin` kelvins.
    #[inline]
    #[must_use]
    pub fn offset(self, delta_kelvin: f64) -> Self {
        Self(self.0 + delta_kelvin)
    }

    /// Returns the lower of two temperatures.
    #[inline]
    #[must_use]
    pub fn min(self, other: Self) -> Self {
        Self(self.0.min(other.0))
    }

    /// Returns the higher of two temperatures.
    #[inline]
    #[must_use]
    pub fn max(self, other: Self) -> Self {
        Self(self.0.max(other.0))
    }

    /// Clamps the temperature into `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is NaN.
    #[inline]
    #[must_use]
    pub fn clamp(self, lo: Self, hi: Self) -> Self {
        Self(self.0.clamp(lo.0, hi.0))
    }

    /// Returns `true` if the underlying value is finite.
    #[inline]
    #[must_use]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }
}

impl core::fmt::Display for Celsius {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if let Some(prec) = f.precision() {
            write!(f, "{:.*} °C", prec, self.0)
        } else {
            write!(f, "{} °C", self.0)
        }
    }
}

impl From<Kelvin> for Celsius {
    #[inline]
    fn from(k: Kelvin) -> Self {
        Self::from_kelvin(k)
    }
}

impl From<Celsius> for Kelvin {
    #[inline]
    fn from(c: Celsius) -> Self {
        c.to_kelvin()
    }
}

// ---------------------------------------------------------------------------
// Cross-type conversions
// ---------------------------------------------------------------------------

impl MetersPerSecond {
    /// Converts to kilometers per hour.
    #[inline]
    #[must_use]
    pub fn to_kilometers_per_hour(self) -> KilometersPerHour {
        KilometersPerHour::new(self.value() * 3.6)
    }
}

impl KilometersPerHour {
    /// Converts to meters per second.
    #[inline]
    #[must_use]
    pub fn to_meters_per_second(self) -> MetersPerSecond {
        MetersPerSecond::new(self.value() / 3.6)
    }
}

impl From<KilometersPerHour> for MetersPerSecond {
    #[inline]
    fn from(v: KilometersPerHour) -> Self {
        v.to_meters_per_second()
    }
}

impl From<MetersPerSecond> for KilometersPerHour {
    #[inline]
    fn from(v: MetersPerSecond) -> Self {
        v.to_kilometers_per_hour()
    }
}

impl Meters {
    /// Converts to kilometers.
    #[inline]
    #[must_use]
    pub fn to_kilometers(self) -> Kilometers {
        Kilometers::new(self.value() / 1000.0)
    }
}

impl Kilometers {
    /// Converts to meters.
    #[inline]
    #[must_use]
    pub fn to_meters(self) -> Meters {
        Meters::new(self.value() * 1000.0)
    }
}

impl From<Meters> for Kilometers {
    #[inline]
    fn from(d: Meters) -> Self {
        d.to_kilometers()
    }
}

impl From<Kilometers> for Meters {
    #[inline]
    fn from(d: Kilometers) -> Self {
        d.to_meters()
    }
}

impl Watts {
    /// Converts to kilowatts.
    #[inline]
    #[must_use]
    pub fn to_kilowatts(self) -> Kilowatts {
        Kilowatts::new(self.value() / 1000.0)
    }

    /// Returns the energy delivered at this constant power over `dt`.
    #[inline]
    #[must_use]
    pub fn energy_over(self, dt: Seconds) -> Joules {
        Joules::new(self.value() * dt.value())
    }
}

impl Kilowatts {
    /// Converts to watts.
    #[inline]
    #[must_use]
    pub fn to_watts(self) -> Watts {
        Watts::new(self.value() * 1000.0)
    }

    /// Returns the energy delivered at this constant power over `dt`.
    #[inline]
    #[must_use]
    pub fn energy_over(self, dt: Seconds) -> KilowattHours {
        KilowattHours::new(self.value() * dt.value() / 3600.0)
    }
}

impl From<Watts> for Kilowatts {
    #[inline]
    fn from(p: Watts) -> Self {
        p.to_kilowatts()
    }
}

impl From<Kilowatts> for Watts {
    #[inline]
    fn from(p: Kilowatts) -> Self {
        p.to_watts()
    }
}

impl Joules {
    /// Converts to kilowatt-hours.
    #[inline]
    #[must_use]
    pub fn to_kilowatt_hours(self) -> KilowattHours {
        KilowattHours::new(self.value() / 3.6e6)
    }
}

impl KilowattHours {
    /// Converts to joules.
    #[inline]
    #[must_use]
    pub fn to_joules(self) -> Joules {
        Joules::new(self.value() * 3.6e6)
    }

    /// Returns the ampere-hour charge equivalent at a given nominal voltage.
    #[inline]
    #[must_use]
    pub fn to_ampere_hours(self, nominal: Volts) -> AmpereHours {
        AmpereHours::new(self.value() * 1000.0 / nominal.value())
    }
}

impl From<Joules> for KilowattHours {
    #[inline]
    fn from(e: Joules) -> Self {
        e.to_kilowatt_hours()
    }
}

impl From<KilowattHours> for Joules {
    #[inline]
    fn from(e: KilowattHours) -> Self {
        e.to_joules()
    }
}

impl Percent {
    /// Converts a 0–100 percentage into a 0–1 ratio.
    #[inline]
    #[must_use]
    pub fn to_ratio(self) -> Ratio {
        Ratio::new(self.value() / 100.0)
    }
}

impl Ratio {
    /// Converts a 0–1 ratio into a 0–100 percentage.
    #[inline]
    #[must_use]
    pub fn to_percent(self) -> Percent {
        Percent::new(self.value() * 100.0)
    }
}

impl From<Percent> for Ratio {
    #[inline]
    fn from(p: Percent) -> Self {
        p.to_ratio()
    }
}

impl From<Ratio> for Percent {
    #[inline]
    fn from(r: Ratio) -> Self {
        r.to_percent()
    }
}

impl Newtons {
    /// Returns the mechanical power needed to sustain this force at speed
    /// `v`: `P = F · v`.
    #[inline]
    #[must_use]
    pub fn power_at(self, v: MetersPerSecond) -> Watts {
        Watts::new(self.value() * v.value())
    }
}

impl Amperes {
    /// Returns the charge moved by this constant current over `dt`.
    #[inline]
    #[must_use]
    pub fn charge_over(self, dt: Seconds) -> AmpereHours {
        AmpereHours::new(self.value() * dt.value() / 3600.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn celsius_kelvin_round_trip() {
        let c = Celsius::new(21.5);
        let k = c.to_kelvin();
        assert!((k.value() - 294.65).abs() < 1e-12);
        assert_eq!(Celsius::from_kelvin(k), c);
    }

    #[test]
    fn celsius_diff_and_offset() {
        let a = Celsius::new(30.0);
        let b = Celsius::new(24.0);
        assert_eq!(a.diff(b), 6.0);
        assert_eq!(b.diff(a), -6.0);
        assert_eq!(b.offset(6.0), a);
    }

    #[test]
    fn celsius_min_max_clamp() {
        let lo = Celsius::new(21.0);
        let hi = Celsius::new(27.0);
        assert_eq!(Celsius::new(30.0).clamp(lo, hi), hi);
        assert_eq!(Celsius::new(10.0).clamp(lo, hi), lo);
        assert_eq!(Celsius::new(24.0).clamp(lo, hi), Celsius::new(24.0));
        assert_eq!(lo.max(hi), hi);
        assert_eq!(lo.min(hi), lo);
    }

    #[test]
    fn speed_conversion_round_trip() {
        let v = MetersPerSecond::new(13.89);
        let kmh = v.to_kilometers_per_hour();
        assert!((kmh.value() - 50.004).abs() < 1e-9);
        let back = kmh.to_meters_per_second();
        assert!((back.value() - v.value()).abs() < 1e-12);
    }

    #[test]
    fn power_energy_relations() {
        let p = Kilowatts::new(6.0);
        let e = p.energy_over(Seconds::new(3600.0));
        assert!((e.value() - 6.0).abs() < 1e-12);
        let j = e.to_joules();
        assert!((j.value() - 2.16e7).abs() < 1.0);
        assert!((j.to_kilowatt_hours().value() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn watts_kilowatts_round_trip() {
        let w = Watts::new(1500.0);
        assert!((w.to_kilowatts().value() - 1.5).abs() < 1e-12);
        assert!((w.to_kilowatts().to_watts().value() - 1500.0).abs() < 1e-9);
    }

    #[test]
    fn force_power() {
        let f = Newtons::new(400.0);
        let p = f.power_at(MetersPerSecond::new(25.0));
        assert_eq!(p.value(), 10_000.0);
    }

    #[test]
    fn charge_over_time() {
        let i = Amperes::new(20.0);
        let q = i.charge_over(Seconds::new(1800.0));
        assert!((q.value() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn kwh_to_ah() {
        // 24 kWh at 360 V nominal is 66.67 Ah.
        let ah = KilowattHours::new(24.0).to_ampere_hours(Volts::new(360.0));
        assert!((ah.value() - 66.666_666).abs() < 1e-3);
    }

    #[test]
    fn percent_ratio_round_trip() {
        let p = Percent::new(85.0);
        assert!((p.to_ratio().value() - 0.85).abs() < 1e-12);
        assert!((p.to_ratio().to_percent().value() - 85.0).abs() < 1e-12);
    }

    #[test]
    fn quantity_arithmetic() {
        let a = Kilowatts::new(2.0);
        let b = Kilowatts::new(3.0);
        assert_eq!((a + b).value(), 5.0);
        assert_eq!((b - a).value(), 1.0);
        assert_eq!((-a).value(), -2.0);
        assert_eq!((a * 2.0).value(), 4.0);
        assert_eq!((2.0 * a).value(), 4.0);
        assert_eq!((a / 2.0).value(), 1.0);
        assert_eq!(b / a, 1.5);
        let mut c = a;
        c += b;
        assert_eq!(c.value(), 5.0);
        c -= a;
        assert_eq!(c.value(), 3.0);
    }

    #[test]
    fn quantity_sum() {
        let total: Kilowatts = [1.0, 2.0, 3.5].iter().map(|&v| Kilowatts::new(v)).sum();
        assert!((total.value() - 6.5).abs() < 1e-12);
    }

    #[test]
    fn quantity_abs_min_max() {
        let n = Watts::new(-10.0);
        assert_eq!(n.abs().value(), 10.0);
        assert_eq!(n.min(Watts::ZERO), n);
        assert_eq!(n.max(Watts::ZERO), Watts::ZERO);
        assert_eq!(
            Watts::new(7.0).clamp(Watts::ZERO, Watts::new(5.0)).value(),
            5.0
        );
    }

    #[test]
    fn display_formatting() {
        assert_eq!(format!("{:.1}", Kilowatts::new(3.456)), "3.5 kW");
        assert_eq!(format!("{:.2}", Celsius::new(24.0)), "24.00 °C");
        assert_eq!(format!("{}", Seconds::new(2.0)), "2 s");
    }

    #[test]
    fn serde_round_trip_is_transparent() {
        let p = Kilowatts::new(4.25);
        let json = serde_json_value(&p);
        assert_eq!(json, "4.25");
    }

    /// Minimal serde check without depending on serde_json in this crate:
    /// use the serde test pattern via Display of the transparent f64.
    fn serde_json_value(p: &Kilowatts) -> String {
        // Transparent serde means serializing yields the plain number; we
        // emulate it through the public accessor here and verify the
        // attribute compiles (actual JSON round trip is covered in ev-core).
        format!("{}", p.value())
    }

    #[test]
    fn distance_round_trip() {
        let m = Meters::new(1500.0);
        assert_eq!(m.to_kilometers().value(), 1.5);
        assert_eq!(m.to_kilometers().to_meters(), m);
    }

    #[test]
    fn is_finite_flags_nan() {
        assert!(Kilowatts::new(1.0).is_finite());
        assert!(!Kilowatts::new(f64::NAN).is_finite());
        assert!(!Celsius::new(f64::INFINITY).is_finite());
    }
}
