//! Always-on MPC solve diagnostics.
//!
//! [`MpcDiagnostics`] is a handful of plain `u64` counters the MPC
//! controller bumps on every solve — cheap enough to stay on
//! unconditionally, unlike the optional `ev_telemetry` histograms. It is
//! the source for the sweep run-report columns (SQP iteration counts,
//! warm-start hit rate, solver outcome mix) and is exposed through
//! [`crate::ClimateController::solver_diagnostics`].

/// Cumulative counters describing every MPC solve a controller has run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MpcDiagnostics {
    /// Total receding-horizon solves attempted.
    pub solves: u64,
    /// Solves that reached the convergence tolerance.
    pub converged: u64,
    /// Solves that ran out of the major-iteration budget.
    pub max_iterations: u64,
    /// Solves whose merit line search stalled.
    pub line_search_stalled: u64,
    /// Solves that returned a structural error (non-finite data,
    /// dimension mismatch) and fell back to the held input.
    pub solver_errors: u64,
    /// Total major SQP iterations across all successful solves.
    pub sqp_iterations: u64,
    /// Solves seeded from a shifted previous plan.
    pub warm_start_hits: u64,
    /// Solves that had to cold-start.
    pub warm_start_misses: u64,
    /// Warm starts dropped because the solver errored (the stale plan
    /// would have anchored later solves in the past).
    pub warm_start_invalidated: u64,
    /// NLP evaluations served from the per-iterate rollout cache.
    pub rollout_cache_hits: u64,
    /// NLP evaluations that had to run a fresh rollout.
    pub rollout_cache_misses: u64,
}

impl MpcDiagnostics {
    /// Fraction of solves seeded from a warm start (NaN before the
    /// first solve).
    #[must_use]
    pub fn warm_start_hit_rate(&self) -> f64 {
        let total = self.warm_start_hits + self.warm_start_misses;
        if total == 0 {
            f64::NAN
        } else {
            self.warm_start_hits as f64 / total as f64
        }
    }

    /// Mean major iterations per successful solve (NaN if none ran).
    #[must_use]
    pub fn mean_sqp_iterations(&self) -> f64 {
        let ok = self.solves.saturating_sub(self.solver_errors);
        if ok == 0 {
            f64::NAN
        } else {
            self.sqp_iterations as f64 / ok as f64
        }
    }

    /// Fraction of solves that converged (NaN before the first solve).
    #[must_use]
    pub fn convergence_rate(&self) -> f64 {
        if self.solves == 0 {
            f64::NAN
        } else {
            self.converged as f64 / self.solves as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_on_empty_diagnostics_are_nan() {
        let d = MpcDiagnostics::default();
        assert!(d.warm_start_hit_rate().is_nan());
        assert!(d.mean_sqp_iterations().is_nan());
        assert!(d.convergence_rate().is_nan());
    }

    #[test]
    fn rates_follow_counters() {
        let d = MpcDiagnostics {
            solves: 10,
            converged: 8,
            solver_errors: 2,
            sqp_iterations: 40,
            warm_start_hits: 9,
            warm_start_misses: 1,
            ..MpcDiagnostics::default()
        };
        assert!((d.warm_start_hit_rate() - 0.9).abs() < 1e-12);
        assert!((d.mean_sqp_iterations() - 5.0).abs() < 1e-12);
        assert!((d.convergence_rate() - 0.8).abs() < 1e-12);
    }
}
