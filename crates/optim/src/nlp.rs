//! The nonlinear-program interface consumed by the SQP solver.

use ev_linalg::{Matrix, SparseMatrix};

use crate::{finite_diff, QpStructure};

/// A smooth nonlinear program
///
/// ```text
/// minimize    f(z)
/// subject to  c_eq(z) = 0
///             c_in(z) ≤ 0
/// ```
///
/// Implementors must provide the objective and constraint values; gradients
/// and Jacobians default to central finite differences
/// ([`crate::finite_diff`]), which is accurate enough for the smooth,
/// well-scaled MPC problems in this workspace. Override them for speed or
/// extra precision.
///
/// # Examples
///
/// A one-dimensional problem: minimize `(z−2)²` subject to `z ≤ 1`.
///
/// ```
/// use ev_optim::NlpProblem;
///
/// struct Bounded;
/// impl NlpProblem for Bounded {
///     fn num_vars(&self) -> usize { 1 }
///     fn objective(&self, z: &[f64]) -> f64 { (z[0] - 2.0).powi(2) }
///     fn num_ineq(&self) -> usize { 1 }
///     fn ineq_constraints(&self, z: &[f64], out: &mut [f64]) {
///         out[0] = z[0] - 1.0;
///     }
/// }
/// ```
pub trait NlpProblem {
    /// Number of decision variables.
    fn num_vars(&self) -> usize;

    /// Objective value `f(z)`.
    fn objective(&self, z: &[f64]) -> f64;

    /// Whether this problem supplies exact (analytic) derivatives.
    ///
    /// Returns `false` for implementations relying on the default
    /// central-difference [`gradient`](Self::gradient) /
    /// [`eq_jacobian`](Self::eq_jacobian) /
    /// [`ineq_jacobian`](Self::ineq_jacobian) — the documented fallback
    /// path. Implementations overriding those with exact derivatives
    /// should also override this to `true` so harnesses (benchmarks,
    /// derivative cross-checks) can tell the two apart.
    fn has_exact_derivatives(&self) -> bool {
        false
    }

    /// Gradient of the objective. Defaults to central differences.
    fn gradient(&self, z: &[f64], grad: &mut [f64]) {
        let g = finite_diff::gradient(&|p: &[f64]| self.objective(p), z);
        grad.copy_from_slice(&g);
    }

    /// Number of equality constraints. Defaults to zero.
    fn num_eq(&self) -> usize {
        0
    }

    /// Evaluates `c_eq(z)` into `out` (length [`NlpProblem::num_eq`]).
    ///
    /// The default implementation panics if `num_eq() > 0` without an
    /// override, and is a no-op otherwise.
    fn eq_constraints(&self, _z: &[f64], out: &mut [f64]) {
        assert!(
            out.is_empty(),
            "NlpProblem::eq_constraints must be overridden when num_eq() > 0"
        );
    }

    /// Jacobian of the equality constraints (`num_eq × num_vars`).
    /// Defaults to central differences.
    fn eq_jacobian(&self, z: &[f64]) -> Matrix {
        jacobian_matrix(
            &|p: &[f64], out: &mut [f64]| self.eq_constraints(p, out),
            z,
            self.num_eq(),
            self.num_vars(),
        )
    }

    /// Number of inequality constraints. Defaults to zero.
    fn num_ineq(&self) -> usize {
        0
    }

    /// Evaluates `c_in(z)` into `out` (length [`NlpProblem::num_ineq`]).
    ///
    /// The default implementation panics if `num_ineq() > 0` without an
    /// override, and is a no-op otherwise.
    fn ineq_constraints(&self, _z: &[f64], out: &mut [f64]) {
        assert!(
            out.is_empty(),
            "NlpProblem::ineq_constraints must be overridden when num_ineq() > 0"
        );
    }

    /// Jacobian of the inequality constraints (`num_ineq × num_vars`).
    /// Defaults to central differences.
    fn ineq_jacobian(&self, z: &[f64]) -> Matrix {
        jacobian_matrix(
            &|p: &[f64], out: &mut [f64]| self.ineq_constraints(p, out),
            z,
            self.num_ineq(),
            self.num_vars(),
        )
    }

    /// Fills `out` with the inequality Jacobian in CSR form and returns
    /// `true`, or returns `false` (the default) when this problem only
    /// produces dense Jacobians. Implementations must reuse `out`'s
    /// storage ([`SparseMatrix::reset`]) so the SQP loop stays
    /// allocation-free after warm-up.
    fn ineq_jacobian_sparse_into(&self, _z: &[f64], _out: &mut SparseMatrix) -> bool {
        false
    }

    /// Fills `out` with the equality Jacobian in CSR form and returns
    /// `true`, or returns `false` (the default) when this problem only
    /// produces dense Jacobians.
    fn eq_jacobian_sparse_into(&self, _z: &[f64], _out: &mut SparseMatrix) -> bool {
        false
    }

    /// The block-banded horizon structure of this problem's QP
    /// subproblems, if it has one (see [`QpStructure`]). Declaring a
    /// structure routes the SQP's KKT solves to the banded backend;
    /// `None` (the default) keeps the dense path.
    fn qp_structure(&self) -> Option<QpStructure> {
        None
    }
}

/// Builds an `m × n` [`Matrix`] Jacobian via finite differences.
fn jacobian_matrix(f: &dyn Fn(&[f64], &mut [f64]), z: &[f64], m: usize, n: usize) -> Matrix {
    if m == 0 {
        return Matrix::zeros(0, n.max(1));
    }
    let rows = finite_diff::jacobian(f, z, m);
    let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
    Matrix::from_rows(&refs).expect("finite-difference jacobian is rectangular")
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Rosenbrock;
    impl NlpProblem for Rosenbrock {
        fn num_vars(&self) -> usize {
            2
        }
        fn objective(&self, z: &[f64]) -> f64 {
            (1.0 - z[0]).powi(2) + 100.0 * (z[1] - z[0] * z[0]).powi(2)
        }
    }

    struct Circle;
    impl NlpProblem for Circle {
        fn num_vars(&self) -> usize {
            2
        }
        fn objective(&self, z: &[f64]) -> f64 {
            z[0] + z[1]
        }
        fn num_eq(&self) -> usize {
            1
        }
        fn eq_constraints(&self, z: &[f64], out: &mut [f64]) {
            out[0] = z[0] * z[0] + z[1] * z[1] - 2.0;
        }
    }

    #[test]
    fn default_gradient_matches_analytic() {
        let z = [0.5, 0.5];
        let mut g = [0.0; 2];
        Rosenbrock.gradient(&z, &mut g);
        // Analytic: dx = -2(1-x) - 400 x (y - x²); dy = 200 (y - x²).
        let gx = -2.0 * 0.5 - 400.0 * 0.5 * 0.25;
        let gy = 200.0 * 0.25;
        assert!((g[0] - gx).abs() < 1e-4);
        assert!((g[1] - gy).abs() < 1e-4);
    }

    #[test]
    fn default_eq_jacobian() {
        let j = Circle.eq_jacobian(&[1.0, -1.0]);
        assert_eq!(j.shape(), (1, 2));
        assert!((j.get(0, 0) - 2.0).abs() < 1e-6);
        assert!((j.get(0, 1) + 2.0).abs() < 1e-6);
    }

    #[test]
    fn exact_derivative_flag_defaults_to_false() {
        assert!(!Rosenbrock.has_exact_derivatives());
        struct Exact;
        impl NlpProblem for Exact {
            fn num_vars(&self) -> usize {
                1
            }
            fn objective(&self, z: &[f64]) -> f64 {
                z[0] * z[0]
            }
            fn gradient(&self, z: &[f64], grad: &mut [f64]) {
                grad[0] = 2.0 * z[0];
            }
            fn has_exact_derivatives(&self) -> bool {
                true
            }
        }
        assert!(Exact.has_exact_derivatives());
    }

    #[test]
    fn zero_constraint_defaults_are_noops() {
        let mut out: [f64; 0] = [];
        Rosenbrock.eq_constraints(&[0.0, 0.0], &mut out);
        Rosenbrock.ineq_constraints(&[0.0, 0.0], &mut out);
        assert_eq!(Rosenbrock.num_eq(), 0);
        assert_eq!(Rosenbrock.num_ineq(), 0);
        assert_eq!(Rosenbrock.eq_jacobian(&[0.0, 0.0]).rows(), 0);
    }
}
