//! SLO rules and multi-window burn-rate alerting over the [`crate::tsdb`].
//!
//! A rule names a windowed expression over the store — a gauge level, a
//! counter rate, a histogram quantile computed from bucket deltas, or a
//! multi-window **burn rate** (the fraction of events violating an
//! objective, normalized by the error budget) — plus a comparison that
//! defines a *breach*. The engine evaluates all rules against the store
//! at a timestamp and drives each through the classic alert state
//! machine:
//!
//! ```text
//! Inactive --breach--> Pending --breach for `for_s`--> Firing
//!    ^                    |                              |
//!    '----- clear --------'            clear --> Resolved (sticky)
//! ```
//!
//! `Resolved` is sticky for visibility ("this fired earlier in the
//! run") and [`SloEngine::ever_fired`] survives resolution — that is
//! what `evsim slo --once` turns into a non-zero exit code so CI can
//! assert "this soak stayed within budget".
//!
//! Burn-rate rules follow the multi-window pattern: the alert requires
//! the budget to be burning **both** over a fast window (catches
//! sudden breakage quickly, resets quickly once fixed) *and* over a
//! slow window (suppresses blips that cannot meaningfully dent the
//! budget). A burn of 1.0 means "exactly consuming the budget"; the
//! threshold is the multiple of budget-consumption-rate that pages.
//!
//! Rules load from a minimal TOML subset ([`parse_config`]) or are
//! built programmatically via [`RawRule`].

use std::fmt;

use crate::tsdb::Tsdb;

/// Comparison applied to `value` vs `threshold`; the rule breaches when
/// the comparison holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Comparison {
    /// Breach when `value > threshold`.
    Gt,
    /// Breach when `value < threshold`.
    Lt,
}

impl Comparison {
    fn holds(self, value: f64, threshold: f64) -> bool {
        match self {
            Comparison::Gt => value > threshold,
            Comparison::Lt => value < threshold,
        }
    }

    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "gt" | ">" => Ok(Comparison::Gt),
            "lt" | "<" => Ok(Comparison::Lt),
            other => Err(format!(
                "unknown comparison {other:?} (want \"gt\" or \"lt\")"
            )),
        }
    }
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Comparison::Gt => ">",
            Comparison::Lt => "<",
        })
    }
}

/// The windowed expression a rule evaluates.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Current level of a gauge (worst across matching series: max for
    /// [`Comparison::Gt`] rules, min for [`Comparison::Lt`]).
    Gauge {
        /// Gauge metric name.
        metric: String,
        /// Label subset the series must carry.
        labels: Vec<(String, String)>,
    },
    /// Per-second rate of a counter over a trailing window, summed
    /// across matching series (shards).
    Rate {
        /// Counter metric name (with its `_total` suffix).
        metric: String,
        /// Label subset the series must carry.
        labels: Vec<(String, String)>,
        /// Trailing window length, seconds.
        window_s: u64,
    },
    /// A histogram quantile over a trailing window, computed from
    /// bucket deltas summed across matching series.
    Quantile {
        /// Histogram base name (no `_bucket` suffix).
        metric: String,
        /// Label subset the series must carry (`le` excluded).
        labels: Vec<(String, String)>,
        /// Quantile in `0.0..=1.0`.
        q: f64,
        /// Trailing window length, seconds.
        window_s: u64,
    },
    /// Multi-window burn rate: `(bad_rate / total_rate) / objective`
    /// must exceed the rule threshold over **both** windows to breach.
    BurnRate {
        /// Counter of budget-violating events.
        bad_metric: String,
        /// Label subset for the bad counter.
        bad_labels: Vec<(String, String)>,
        /// Counter of all events.
        total_metric: String,
        /// Label subset for the total counter.
        total_labels: Vec<(String, String)>,
        /// Allowed bad fraction (the error budget), e.g. `0.001`.
        objective: f64,
        /// Fast window, seconds.
        fast_window_s: u64,
        /// Slow window, seconds.
        slow_window_s: u64,
    },
}

/// One SLO rule: a named expression, a breach comparison, and how long
/// a breach must persist before firing.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Rule name (shown in alerts and used in exit summaries).
    pub name: String,
    /// The windowed expression.
    pub expr: Expr,
    /// Breach comparison.
    pub op: Comparison,
    /// Breach threshold.
    pub threshold: f64,
    /// Seconds a breach must persist before `Pending` becomes
    /// `Firing` (0 fires immediately).
    pub for_s: u64,
}

/// Alert lifecycle state of one rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertState {
    /// No breach observed.
    Inactive,
    /// Breaching, waiting out `for_s` (since the contained timestamp).
    Pending {
        /// When the breach began, ms since the Unix epoch.
        since_ms: u64,
    },
    /// Breach persisted past `for_s` (since the contained timestamp).
    Firing {
        /// When the alert fired, ms since the Unix epoch.
        since_ms: u64,
    },
    /// Fired earlier, currently clear (sticky for visibility).
    Resolved {
        /// When the breach cleared, ms since the Unix epoch.
        at_ms: u64,
    },
}

impl AlertState {
    /// Whether the alert is currently firing.
    #[must_use]
    pub fn is_firing(&self) -> bool {
        matches!(self, AlertState::Firing { .. })
    }
}

impl fmt::Display for AlertState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlertState::Inactive => f.write_str("ok"),
            AlertState::Pending { .. } => f.write_str("pending"),
            AlertState::Firing { .. } => f.write_str("FIRING"),
            AlertState::Resolved { .. } => f.write_str("resolved"),
        }
    }
}

/// The outcome of evaluating one rule at one timestamp.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleStatus {
    /// Rule name.
    pub name: String,
    /// Evaluated value (`None` when the store has no data for the
    /// expression yet — never a breach).
    pub value: Option<f64>,
    /// Rule threshold (for rendering).
    pub threshold: f64,
    /// Breach comparison (for rendering).
    pub op: Comparison,
    /// Whether this evaluation breached.
    pub breached: bool,
    /// Alert state after this evaluation.
    pub state: AlertState,
}

struct RuleSlot {
    rule: Rule,
    state: AlertState,
    ever_fired: bool,
}

/// Evaluates a fixed rule set against a [`Tsdb`], carrying alert state
/// between evaluations.
pub struct SloEngine {
    slots: Vec<RuleSlot>,
}

impl SloEngine {
    /// An engine over `rules`, all alerts `Inactive`.
    #[must_use]
    pub fn new(rules: Vec<Rule>) -> Self {
        SloEngine {
            slots: rules
                .into_iter()
                .map(|rule| RuleSlot {
                    rule,
                    state: AlertState::Inactive,
                    ever_fired: false,
                })
                .collect(),
        }
    }

    /// The rules under evaluation.
    #[must_use]
    pub fn rules(&self) -> Vec<&Rule> {
        self.slots.iter().map(|s| &s.rule).collect()
    }

    /// Whether any rule ever reached `Firing` (survives resolution) —
    /// the `evsim slo --once` exit-code signal.
    #[must_use]
    pub fn ever_fired(&self) -> bool {
        self.slots.iter().any(|s| s.ever_fired)
    }

    /// Rules currently firing.
    #[must_use]
    pub fn firing_count(&self) -> usize {
        self.slots.iter().filter(|s| s.state.is_firing()).count()
    }

    /// Evaluate every rule against `db` at `now_ms`, advancing alert
    /// states. A rule whose expression has no data yet stays where it
    /// is on the breach side (`None` value never breaches).
    pub fn evaluate(&mut self, db: &Tsdb, now_ms: u64) -> Vec<RuleStatus> {
        self.slots
            .iter_mut()
            .map(|slot| {
                let value = eval_expr(&slot.rule.expr, &slot.rule, db, now_ms);
                let breached = value
                    .is_some_and(|v| !v.is_nan() && slot.rule.op.holds(v, slot.rule.threshold));
                slot.state = step_state(slot.state, breached, slot.rule.for_s, now_ms);
                if slot.state.is_firing() {
                    slot.ever_fired = true;
                }
                RuleStatus {
                    name: slot.rule.name.clone(),
                    value,
                    threshold: slot.rule.threshold,
                    op: slot.rule.op,
                    breached,
                    state: slot.state,
                }
            })
            .collect()
    }
}

fn step_state(state: AlertState, breached: bool, for_s: u64, now_ms: u64) -> AlertState {
    match (state, breached) {
        (AlertState::Inactive | AlertState::Resolved { .. }, true) => {
            if for_s == 0 {
                AlertState::Firing { since_ms: now_ms }
            } else {
                AlertState::Pending { since_ms: now_ms }
            }
        }
        (AlertState::Pending { since_ms }, true) => {
            if now_ms.saturating_sub(since_ms) >= for_s.saturating_mul(1000) {
                AlertState::Firing { since_ms }
            } else {
                AlertState::Pending { since_ms }
            }
        }
        (AlertState::Firing { since_ms }, true) => AlertState::Firing { since_ms },
        (AlertState::Pending { .. }, false) => AlertState::Inactive,
        (AlertState::Firing { .. }, false) => AlertState::Resolved { at_ms: now_ms },
        (state, false) => state,
    }
}

fn borrow_labels(labels: &[(String, String)]) -> Vec<(&str, &str)> {
    labels
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .collect()
}

fn eval_expr(expr: &Expr, rule: &Rule, db: &Tsdb, now_ms: u64) -> Option<f64> {
    let window_start = |w_s: u64| now_ms.saturating_sub(w_s.saturating_mul(1000));
    match expr {
        Expr::Gauge { metric, labels } => {
            let labels = borrow_labels(labels);
            let values: Vec<f64> = db
                .find(metric, &labels)
                .into_iter()
                .filter_map(|idx| db.get(idx).and_then(|s| s.value_at(now_ms)))
                .filter(|v| !v.is_nan())
                .collect();
            if values.is_empty() {
                return None;
            }
            // Worst value across series for the rule's direction.
            Some(match rule.op {
                Comparison::Gt => values.iter().copied().fold(f64::MIN, f64::max),
                Comparison::Lt => values.iter().copied().fold(f64::MAX, f64::min),
            })
        }
        Expr::Rate {
            metric,
            labels,
            window_s,
        } => db.rate_sum(
            metric,
            &borrow_labels(labels),
            window_start(*window_s),
            now_ms,
        ),
        Expr::Quantile {
            metric,
            labels,
            q,
            window_s,
        } => db.windowed_quantile(
            metric,
            &borrow_labels(labels),
            window_start(*window_s),
            now_ms,
            *q,
        ),
        Expr::BurnRate {
            bad_metric,
            bad_labels,
            total_metric,
            total_labels,
            objective,
            fast_window_s,
            slow_window_s,
        } => {
            let burn = |w_s: u64| -> Option<f64> {
                let t0 = window_start(w_s);
                let total = db.rate_sum(total_metric, &borrow_labels(total_labels), t0, now_ms)?;
                if total <= 0.0 {
                    return Some(0.0); // no traffic burns no budget
                }
                let bad = db
                    .rate_sum(bad_metric, &borrow_labels(bad_labels), t0, now_ms)
                    .unwrap_or(0.0);
                Some((bad / total) / objective.max(f64::MIN_POSITIVE))
            };
            let fast = burn(*fast_window_s)?;
            let slow = burn(*slow_window_s)?;
            // Both windows must burn for the alert to breach; the min
            // is therefore the binding value to compare and report.
            Some(fast.min(slow))
        }
    }
}

// ---------------------------------------------------------------------
// Config: a minimal TOML subset.
// ---------------------------------------------------------------------

/// A rule under construction — every field optional, validated by
/// [`RawRule::build`]. This is both the config-parser target and the
/// programmatic entry point for callers that assemble rules from other
/// formats (e.g. `evsim` building rules from JSON flags).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RawRule {
    /// Rule name (required).
    pub name: Option<String>,
    /// Expression kind: `"gauge"`, `"rate"`, `"quantile"`,
    /// `"burn_rate"` (required).
    pub kind: Option<String>,
    /// Metric name for gauge/rate/quantile rules.
    pub metric: Option<String>,
    /// Label subset as `"k=v,k2=v2"`.
    pub labels: Option<String>,
    /// Quantile for `quantile` rules.
    pub q: Option<f64>,
    /// Window seconds for rate/quantile rules.
    pub window_s: Option<u64>,
    /// Breach comparison: `"gt"`/`">"` or `"lt"`/`"<"`.
    pub op: Option<String>,
    /// Breach threshold (required for all kinds).
    pub threshold: Option<f64>,
    /// Pending duration before firing (default 0).
    pub for_s: Option<u64>,
    /// Bad-event counter for `burn_rate` rules.
    pub bad_metric: Option<String>,
    /// Label subset for the bad counter, `"k=v"` form.
    pub bad_labels: Option<String>,
    /// Total-event counter for `burn_rate` rules.
    pub total_metric: Option<String>,
    /// Label subset for the total counter, `"k=v"` form.
    pub total_labels: Option<String>,
    /// Error budget (allowed bad fraction) for `burn_rate` rules.
    pub objective: Option<f64>,
    /// Fast window seconds for `burn_rate` rules.
    pub fast_window_s: Option<u64>,
    /// Slow window seconds for `burn_rate` rules.
    pub slow_window_s: Option<u64>,
}

/// Parse a `"k=v,k2=v2"` label subset (empty/missing → no constraint).
fn parse_label_subset(s: Option<&String>) -> Result<Vec<(String, String)>, String> {
    let Some(s) = s else {
        return Ok(Vec::new());
    };
    let s = s.trim();
    if s.is_empty() {
        return Ok(Vec::new());
    }
    s.split(',')
        .map(|pair| {
            let (k, v) = pair
                .split_once('=')
                .ok_or_else(|| format!("label pair {pair:?} is not k=v"))?;
            Ok((k.trim().to_string(), v.trim().to_string()))
        })
        .collect()
}

impl RawRule {
    /// Validate and assemble into a [`Rule`].
    ///
    /// # Errors
    ///
    /// Describes the first missing or malformed field.
    pub fn build(self) -> Result<Rule, String> {
        let name = self.name.clone().ok_or("rule missing name")?;
        let fail = |msg: &str| format!("rule {name:?}: {msg}");
        let kind = self.kind.as_deref().ok_or_else(|| fail("missing kind"))?;
        let op = match self.op.as_deref() {
            Some(s) => Comparison::parse(s).map_err(|e| fail(&e))?,
            None => Comparison::Gt,
        };
        let threshold = self.threshold.ok_or_else(|| fail("missing threshold"))?;
        let labels = parse_label_subset(self.labels.as_ref()).map_err(|e| fail(&e))?;
        let metric = |raw: &Option<String>| -> Result<String, String> {
            raw.clone().ok_or_else(|| fail("missing metric"))
        };
        let expr = match kind {
            "gauge" => Expr::Gauge {
                metric: metric(&self.metric)?,
                labels,
            },
            "rate" => Expr::Rate {
                metric: metric(&self.metric)?,
                labels,
                window_s: self.window_s.ok_or_else(|| fail("missing window_s"))?,
            },
            "quantile" => {
                let q = self.q.ok_or_else(|| fail("missing q"))?;
                if !(0.0..=1.0).contains(&q) {
                    return Err(fail("q out of [0, 1]"));
                }
                Expr::Quantile {
                    metric: metric(&self.metric)?,
                    labels,
                    q,
                    window_s: self.window_s.ok_or_else(|| fail("missing window_s"))?,
                }
            }
            "burn_rate" => {
                let objective = self.objective.ok_or_else(|| fail("missing objective"))?;
                if objective <= 0.0 || objective > 1.0 {
                    return Err(fail("objective out of (0, 1]"));
                }
                Expr::BurnRate {
                    bad_metric: self.bad_metric.ok_or_else(|| fail("missing bad_metric"))?,
                    bad_labels: parse_label_subset(self.bad_labels.as_ref())
                        .map_err(|e| fail(&e))?,
                    total_metric: self
                        .total_metric
                        .ok_or_else(|| fail("missing total_metric"))?,
                    total_labels: parse_label_subset(self.total_labels.as_ref())
                        .map_err(|e| fail(&e))?,
                    objective,
                    fast_window_s: self
                        .fast_window_s
                        .ok_or_else(|| fail("missing fast_window_s"))?,
                    slow_window_s: self
                        .slow_window_s
                        .ok_or_else(|| fail("missing slow_window_s"))?,
                }
            }
            other => return Err(fail(&format!("unknown kind {other:?}"))),
        };
        Ok(Rule {
            name,
            expr,
            op,
            threshold,
            for_s: self.for_s.unwrap_or(0),
        })
    }

    fn assign(&mut self, key: &str, value: ConfigValue) -> Result<(), String> {
        let as_str = |v: ConfigValue| -> Result<String, String> {
            match v {
                ConfigValue::Str(s) => Ok(s),
                ConfigValue::Num(n) => Err(format!("expected a string, got {n}")),
            }
        };
        let as_f64 = |v: ConfigValue| -> Result<f64, String> {
            match v {
                ConfigValue::Num(n) => Ok(n),
                ConfigValue::Str(s) => Err(format!("expected a number, got {s:?}")),
            }
        };
        let as_u64 = |v: ConfigValue| -> Result<u64, String> {
            let n = as_f64(v)?;
            if n < 0.0 || n.fract() != 0.0 {
                return Err(format!("expected a non-negative integer, got {n}"));
            }
            Ok(n as u64)
        };
        match key {
            "name" => self.name = Some(as_str(value)?),
            "kind" => self.kind = Some(as_str(value)?),
            "metric" => self.metric = Some(as_str(value)?),
            "labels" => self.labels = Some(as_str(value)?),
            "q" => self.q = Some(as_f64(value)?),
            "window_s" => self.window_s = Some(as_u64(value)?),
            "op" => self.op = Some(as_str(value)?),
            "threshold" => self.threshold = Some(as_f64(value)?),
            "for_s" => self.for_s = Some(as_u64(value)?),
            "bad_metric" => self.bad_metric = Some(as_str(value)?),
            "bad_labels" => self.bad_labels = Some(as_str(value)?),
            "total_metric" => self.total_metric = Some(as_str(value)?),
            "total_labels" => self.total_labels = Some(as_str(value)?),
            "objective" => self.objective = Some(as_f64(value)?),
            "fast_window_s" => self.fast_window_s = Some(as_u64(value)?),
            "slow_window_s" => self.slow_window_s = Some(as_u64(value)?),
            other => return Err(format!("unknown key {other:?}")),
        }
        Ok(())
    }
}

enum ConfigValue {
    Str(String),
    Num(f64),
}

/// Strip a `#` comment that is not inside a quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        escaped = false;
    }
    line
}

fn parse_value(raw: &str) -> Result<ConfigValue, String> {
    let raw = raw.trim();
    if let Some(rest) = raw.strip_prefix('"') {
        let Some(inner) = rest.strip_suffix('"') else {
            return Err(format!("unterminated string {raw:?}"));
        };
        // The config subset supports the TOML basic escapes we need.
        let mut out = String::with_capacity(inner.len());
        let mut chars = inner.chars();
        while let Some(c) = chars.next() {
            if c != '\\' {
                out.push(c);
                continue;
            }
            match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                other => return Err(format!("unsupported escape \\{other:?} in {raw:?}")),
            }
        }
        return Ok(ConfigValue::Str(out));
    }
    raw.parse::<f64>()
        .map(ConfigValue::Num)
        .map_err(|_| format!("cannot parse value {raw:?}"))
}

/// Parse an SLO config in a minimal TOML subset: `[[slo]]` table
/// headers, one `key = value` per line (quoted strings or plain
/// numbers), `#` comments. See the crate-level `EXPERIMENTS.md`
/// walkthrough for a worked example.
///
/// # Errors
///
/// Reports the first offending line with its 1-based number.
pub fn parse_config(text: &str) -> Result<Vec<Rule>, String> {
    let mut raws: Vec<RawRule> = Vec::new();
    for (idx, raw_line) in text.lines().enumerate() {
        let line = strip_comment(raw_line).trim();
        let at = |msg: String| format!("line {}: {msg}", idx + 1);
        if line.is_empty() {
            continue;
        }
        if line == "[[slo]]" {
            raws.push(RawRule::default());
            continue;
        }
        if line.starts_with('[') {
            return Err(at(format!("unknown table {line:?} (only [[slo]])")));
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(at(format!("expected key = value, got {line:?}")));
        };
        let Some(current) = raws.last_mut() else {
            return Err(at(format!("{:?} outside any [[slo]] table", key.trim())));
        };
        let value = parse_value(value).map_err(at)?;
        current.assign(key.trim(), value).map_err(at)?;
    }
    raws.into_iter().map(RawRule::build).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::PromSample;

    fn sample(name: &str, labels: &[(&str, &str)], value: f64) -> PromSample {
        PromSample {
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            value,
            exemplar: None,
        }
    }

    #[test]
    fn config_round_trips_every_rule_kind() {
        let text = r#"
# fleet SLOs
[[slo]]
name = "queue-depth"
kind = "gauge"
metric = "fleet_queue_depth"
op = "gt"
threshold = 100        # commands
for_s = 5

[[slo]]
name = "step-rate-floor"
kind = "rate"
metric = "fleet_steps_total"
labels = "shard=0"
window_s = 60
op = "lt"
threshold = 1.5

[[slo]]
name = "step-p99"
kind = "quantile"
metric = "fleet_cmd_seconds"
labels = "cmd=step"
q = 0.99
window_s = 60
threshold = 0.05

[[slo]]
name = "solve-iteration-budget"
kind = "burn_rate"
bad_metric = "mpc_solve_max_iterations_total"
total_metric = "mpc_solves_total"
objective = 0.01
fast_window_s = 30
slow_window_s = 120
threshold = 1.0
"#;
        let rules = parse_config(text).unwrap();
        assert_eq!(rules.len(), 4);
        assert_eq!(rules[0].name, "queue-depth");
        assert_eq!(rules[0].for_s, 5);
        assert_eq!(rules[1].op, Comparison::Lt);
        match &rules[2].expr {
            Expr::Quantile {
                q,
                window_s,
                labels,
                ..
            } => {
                assert_eq!(*q, 0.99);
                assert_eq!(*window_s, 60);
                assert_eq!(labels[0].1, "step");
            }
            other => panic!("wrong expr {other:?}"),
        }
        match &rules[3].expr {
            Expr::BurnRate { objective, .. } => assert_eq!(*objective, 0.01),
            other => panic!("wrong expr {other:?}"),
        }
    }

    #[test]
    fn config_errors_carry_line_numbers() {
        let err = parse_config("name = \"x\"\n").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        assert!(err.contains("outside any"), "{err}");
        let err = parse_config("[[slo]]\nkind 5\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let err = parse_config("[[slo]]\nthreshold = \"high\"\n").unwrap_err();
        assert!(err.contains("expected a number"), "{err}");
        let err =
            parse_config("[[slo]]\nname = \"x\"\nkind = \"quantile\"\nthreshold = 1\nq = 3\n")
                .unwrap_err();
        assert!(err.contains("q out of"), "{err}");
    }

    #[test]
    fn gauge_rule_fires_pends_and_resolves() {
        let rules = parse_config(
            "[[slo]]\nname = \"queue\"\nkind = \"gauge\"\nmetric = \"depth\"\nthreshold = 10\nfor_s = 2\n",
        )
        .unwrap();
        let mut engine = SloEngine::new(rules);
        let mut db = Tsdb::new();
        db.ingest(0, &[sample("depth", &[], 5.0)]);
        let s = engine.evaluate(&db, 0);
        assert_eq!(s[0].state, AlertState::Inactive);
        assert!(!s[0].breached);
        // Breach begins: pending, not yet firing.
        db.ingest(1000, &[sample("depth", &[], 50.0)]);
        let s = engine.evaluate(&db, 1000);
        assert_eq!(s[0].state, AlertState::Pending { since_ms: 1000 });
        // Still breaching after for_s: fires.
        db.ingest(3000, &[sample("depth", &[], 60.0)]);
        let s = engine.evaluate(&db, 3000);
        assert_eq!(s[0].state, AlertState::Firing { since_ms: 1000 });
        assert!(engine.ever_fired());
        assert_eq!(engine.firing_count(), 1);
        // Clears: resolved, and stays resolved; ever_fired persists.
        db.ingest(4000, &[sample("depth", &[], 1.0)]);
        let s = engine.evaluate(&db, 4000);
        assert_eq!(s[0].state, AlertState::Resolved { at_ms: 4000 });
        let s = engine.evaluate(&db, 5000);
        assert_eq!(s[0].state, AlertState::Resolved { at_ms: 4000 });
        assert!(engine.ever_fired());
        assert_eq!(engine.firing_count(), 0);
    }

    #[test]
    fn pending_that_clears_before_for_s_never_fires() {
        let rules = parse_config(
            "[[slo]]\nname = \"queue\"\nkind = \"gauge\"\nmetric = \"depth\"\nthreshold = 10\nfor_s = 60\n",
        )
        .unwrap();
        let mut engine = SloEngine::new(rules);
        let mut db = Tsdb::new();
        db.ingest(0, &[sample("depth", &[], 50.0)]);
        engine.evaluate(&db, 0);
        db.ingest(1000, &[sample("depth", &[], 2.0)]);
        let s = engine.evaluate(&db, 1000);
        assert_eq!(s[0].state, AlertState::Inactive);
        assert!(!engine.ever_fired());
    }

    #[test]
    fn no_data_never_breaches() {
        let rules = parse_config(
            "[[slo]]\nname = \"q\"\nkind = \"rate\"\nmetric = \"absent_total\"\nwindow_s = 10\nthreshold = 1\n",
        )
        .unwrap();
        let mut engine = SloEngine::new(rules);
        let db = Tsdb::new();
        let s = engine.evaluate(&db, 1000);
        assert_eq!(s[0].value, None);
        assert!(!s[0].breached);
        assert_eq!(s[0].state, AlertState::Inactive);
    }

    #[test]
    fn burn_rate_requires_both_windows() {
        let rules = parse_config(
            "[[slo]]\nname = \"budget\"\nkind = \"burn_rate\"\nbad_metric = \"bad_total\"\ntotal_metric = \"all_total\"\nobjective = 0.1\nfast_window_s = 10\nslow_window_s = 60\nthreshold = 1\n",
        )
        .unwrap();
        let mut engine = SloEngine::new(rules);
        let mut db = Tsdb::new();
        // 60 s of clean traffic: 10 events/s, no bad.
        for t in 0..=60u64 {
            db.ingest(
                t * 1000,
                &[
                    sample("all_total", &[], (t * 10) as f64),
                    sample("bad_total", &[], 0.0),
                ],
            );
        }
        let s = engine.evaluate(&db, 60_000);
        assert_eq!(s[0].value, Some(0.0));
        assert!(!s[0].breached);
        // A fast spike: the last 10 s go 50% bad. Fast window burns at
        // 5x budget, but the slow window is still diluted below 1x —
        // so the multi-window alert stays quiet.
        for t in 61..=70u64 {
            db.ingest(
                t * 1000,
                &[
                    sample("all_total", &[], (t * 10) as f64),
                    sample("bad_total", &[], ((t - 60) * 5) as f64),
                ],
            );
        }
        let s = engine.evaluate(&db, 70_000);
        let v = s[0].value.unwrap();
        assert!(v < 1.0, "slow window should bind: {v}");
        assert!(!s[0].breached);
        // Sustained badness: keep burning until the slow window agrees.
        for t in 71..=130u64 {
            db.ingest(
                t * 1000,
                &[
                    sample("all_total", &[], (t * 10) as f64),
                    sample("bad_total", &[], ((t - 60) * 5) as f64),
                ],
            );
        }
        let s = engine.evaluate(&db, 130_000);
        let v = s[0].value.unwrap();
        assert!(v > 1.0, "sustained burn must breach: {v}");
        assert!(s[0].breached);
        assert!(s[0].state.is_firing());
    }

    #[test]
    fn quantile_rule_breaches_on_windowed_tail() {
        let mut rules = parse_config(
            "[[slo]]\nname = \"p99\"\nkind = \"quantile\"\nmetric = \"lat_seconds\"\nq = 0.99\nwindow_s = 10\nthreshold = 0.1\n",
        )
        .unwrap();
        assert_eq!(rules.len(), 1);
        let rule = rules.pop().unwrap();
        let mut engine = SloEngine::new(vec![rule]);
        let mut db = Tsdb::new();
        let buckets = |fast: f64, slow: f64| {
            vec![
                sample("lat_seconds_bucket", &[("le", "0.1")], fast),
                sample("lat_seconds_bucket", &[("le", "1.0")], fast + slow),
                sample("lat_seconds_bucket", &[("le", "+Inf")], fast + slow),
            ]
        };
        db.ingest(0, &buckets(100.0, 0.0));
        db.ingest(10_000, &buckets(200.0, 0.0));
        let s = engine.evaluate(&db, 10_000);
        assert_eq!(s[0].value, Some(0.1));
        assert!(!s[0].breached, "p99 at the bound is not a breach");
        // 5% of the next window lands beyond 0.1 s: p99 escapes.
        db.ingest(20_000, &buckets(295.0, 5.0));
        let s = engine.evaluate(&db, 20_000);
        assert!(s[0].value.unwrap() > 0.1);
        assert!(s[0].breached);
    }
}
