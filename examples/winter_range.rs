//! Winter range anxiety: how much driving range cabin heating costs at
//! different ambient temperatures, and how much of it the battery
//! lifetime-aware MPC recovers.
//!
//! The paper motivates its work with the observation that the HVAC "may
//! consume upto 6KW and reduce the driving range upto 50%" (Section I);
//! this example quantifies that trade on our calibrated Leaf-like EV.
//!
//! ```text
//! cargo run --release --example winter_range
//! ```

use evclimate::core::ControllerKind;
use evclimate::prelude::*;

fn range_km(kind: ControllerKind, ambient_c: f64) -> Result<f64, Box<dyn std::error::Error>> {
    let profile = DriveProfile::from_cycle(
        &DriveCycle::ece_eudc(),
        AmbientConditions::constant(Celsius::new(ambient_c)),
        Seconds::new(1.0),
    );
    let mut params = EvParams::nissan_leaf_like();
    params.initial_cabin = Some(params.target);
    let sim = Simulation::new(params.clone(), profile)?;
    let mut controller = kind.instantiate(&params)?;
    let result = sim.run(controller.as_mut())?;
    // 21 kWh usable from the 24 kWh pack.
    Ok(result.range_estimate(KilowattHours::new(21.0)).value())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("driving range on the ECE_EUDC mixed cycle (21 kWh usable)\n");
    println!(
        "{:>12} {:>14} {:>14} {:>14} {:>12}",
        "ambient °C", "On/Off km", "Fuzzy km", "MPC km", "MPC vs O/O"
    );
    let mut mild_range = None;
    for ambient in [20.0, 10.0, 0.0, -10.0] {
        let onoff = range_km(ControllerKind::OnOff, ambient)?;
        let fuzzy = range_km(ControllerKind::Fuzzy, ambient)?;
        let mpc = range_km(ControllerKind::Mpc, ambient)?;
        if ambient == 20.0 {
            mild_range = Some(onoff);
        }
        println!(
            "{:>12.0} {:>14.1} {:>14.1} {:>14.1} {:>11.1}%",
            ambient,
            onoff,
            fuzzy,
            mpc,
            100.0 * (mpc - onoff) / onoff
        );
    }
    if let Some(mild) = mild_range {
        let cold = range_km(ControllerKind::OnOff, -10.0)?;
        println!(
            "\nOn/Off heating at −10 °C costs {:.0} % of the mild-weather range",
            100.0 * (mild - cold) / mild
        );
    }
    Ok(())
}
