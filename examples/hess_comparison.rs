//! Software vs hardware SoC flattening: the paper's MPC schedules the
//! HVAC to smooth the battery load; a hybrid energy storage system
//! (battery + ultracapacitor, the paper's HESS context [3]) smooths it in
//! hardware. This example puts both — and their combination — on the same
//! aggressive US06 drive.
//!
//! ```text
//! cargo run --release --example hess_comparison
//! ```

use evclimate::battery::{Hess, SocStats, SohModel, SplitPolicy, Ultracapacitor};
use evclimate::core::ControllerKind;
use evclimate::prelude::*;

/// Replays a simulation's total battery-power trace through a HESS and
/// returns the battery-side SoC statistics and ΔSoH.
fn replay_through_hess(result: &SimulationResult, policy: SplitPolicy) -> (SocStats, f64) {
    let mut hess = Hess::new(
        BatteryParams::leaf_24kwh(),
        Ultracapacitor::transit_bank(),
        policy,
    );
    let dt = Seconds::new(result.dt);
    let mut trace = vec![hess.battery().soc().value()];
    for &p in &result.series.battery_power {
        hess.apply_load(Watts::new(p), dt);
        trace.push(hess.battery().soc().value());
    }
    let stats = SocStats::from_trace(&trace);
    let soh = SohModel::default().degradation(stats);
    (stats, soh)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = DriveProfile::from_cycle(
        &DriveCycle::us06(),
        AmbientConditions::constant(Celsius::new(35.0)),
        Seconds::new(1.0),
    );
    let mut params = EvParams::nissan_leaf_like();
    params.initial_cabin = Some(params.target);
    let sim = Simulation::new(params.clone(), profile)?;

    // The two power traces: reactive On/Off and the lifetime-aware MPC.
    let mut onoff = ControllerKind::OnOff.instantiate(&params)?;
    let onoff_run = sim.run(onoff.as_mut())?;
    let mut mpc = ControllerKind::Mpc.instantiate(&params)?;
    let mpc_run = sim.run(mpc.as_mut())?;

    let shave = SplitPolicy::PeakShave {
        battery_ceiling_w: 30_000.0,
    };
    println!("US06 @ 35 °C — SoC flattening, software vs hardware\n");
    println!(
        "{:<42} {:>10} {:>12}",
        "configuration", "SoC dev %", "ΔSoH (m%)"
    );
    for (label, run, policy) in [
        ("On/Off, battery only", &onoff_run, SplitPolicy::BatteryOnly),
        ("On/Off + ultracap peak-shave (hardware)", &onoff_run, shave),
        (
            "Lifetime-aware MPC, battery only (software)",
            &mpc_run,
            SplitPolicy::BatteryOnly,
        ),
        ("Lifetime-aware MPC + ultracap (both)", &mpc_run, shave),
    ] {
        let (stats, soh) = replay_through_hess(run, policy);
        println!("{label:<42} {:>10.3} {:>12.3}", stats.dev, soh * 1000.0);
    }
    println!(
        "\nThe two mechanisms compose: scheduling shifts HVAC energy away from\n\
         motor peaks, the ultracapacitor absorbs what scheduling cannot move."
    );
    Ok(())
}
