//! The information a climate controller sees at each control step.

use ev_hvac::HvacState;
use ev_units::{Celsius, Percent, Seconds, Watts};
use serde::{Deserialize, Serialize};

/// One step of look-ahead information: what the drive profile predicts
/// for a future instant (the paper's Algorithm 1, lines 14–15).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PreviewSample {
    /// Predicted electric-motor power `Pe` (negative = regeneration).
    pub motor_power: Watts,
    /// Predicted outside temperature `To`.
    pub ambient: Celsius,
    /// Predicted solar load.
    pub solar: Watts,
}

/// Everything a controller may observe at one control instant.
///
/// Reactive controllers (On/Off, PID, fuzzy) read only the measured state
/// and current ambient; the battery-lifetime-aware MPC additionally uses
/// the [`preview`](Self::preview) of future motor power and ambient
/// temperature, and the BMS feedback (`soc`, `soc_avg`).
#[derive(Debug, Clone, PartialEq)]
pub struct ControlContext<'a> {
    /// Measured HVAC state (cabin temperature).
    pub state: HvacState,
    /// Current outside temperature.
    pub ambient: Celsius,
    /// Current solar load.
    pub solar: Watts,
    /// Battery state of charge reported by the BMS.
    pub soc: Percent,
    /// Running SoC average over the discharge cycle so far (percent),
    /// reported by the BMS (the `SoC_avg` of the paper's Eq. 21).
    pub soc_avg: f64,
    /// Sample period of the control loop.
    pub dt: Seconds,
    /// Elapsed time since the start of the drive.
    pub elapsed: Seconds,
    /// Preview of the drive ahead, sampled at the MPC prediction period.
    /// May be empty for purely reactive controllers.
    pub preview: &'a [PreviewSample],
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_is_constructible_and_cloneable() {
        let preview = [PreviewSample {
            motor_power: Watts::new(12_000.0),
            ambient: Celsius::new(30.0),
            solar: Watts::new(400.0),
        }];
        let ctx = ControlContext {
            state: HvacState::new(Celsius::new(25.0)),
            ambient: Celsius::new(30.0),
            solar: Watts::new(400.0),
            soc: Percent::new(80.0),
            soc_avg: 85.0,
            dt: Seconds::new(1.0),
            elapsed: Seconds::ZERO,
            preview: &preview,
        };
        let copy = ctx.clone();
        assert_eq!(copy.preview.len(), 1);
        assert_eq!(copy.soc, Percent::new(80.0));
    }
}
