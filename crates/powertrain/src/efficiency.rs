//! Motor/generator efficiency map with bilinear interpolation.

use serde::{Deserialize, Serialize};

/// A speed×torque efficiency map for the traction motor.
///
/// The paper notes that `η_m` "is highly dependent on the motor rotational
/// speed and the generated torque" (Section II-B); this type captures that
/// dependency as a rectangular grid with bilinear interpolation, the same
/// representation vendor efficiency maps ship in.
///
/// Queries outside the grid are clamped to the boundary, and torque is
/// looked up by magnitude (the map is symmetric between motor and
/// generator quadrants, with regeneration losses applied separately by the
/// power train).
///
/// # Examples
///
/// ```
/// use ev_powertrain::EfficiencyMap;
///
/// let map = EfficiencyMap::leaf_like();
/// let eta = map.efficiency(400.0, 120.0); // rad/s, Nm
/// assert!(eta > 0.80 && eta < 0.97);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EfficiencyMap {
    /// Motor speed grid (rad/s), ascending.
    speeds: Vec<f64>,
    /// Torque-magnitude grid (Nm), ascending.
    torques: Vec<f64>,
    /// Efficiency values, row-major `[speed][torque]`, each in (0, 1].
    values: Vec<f64>,
}

impl EfficiencyMap {
    /// Creates a map from explicit grids.
    ///
    /// # Panics
    ///
    /// Panics if the grids have fewer than two points each, are not
    /// strictly ascending, `values.len() != speeds.len() * torques.len()`,
    /// or any efficiency is outside `(0, 1]`.
    #[must_use]
    pub fn from_grid(speeds: Vec<f64>, torques: Vec<f64>, values: Vec<f64>) -> Self {
        assert!(speeds.len() >= 2, "speed grid needs at least two points");
        assert!(torques.len() >= 2, "torque grid needs at least two points");
        assert!(
            speeds.windows(2).all(|w| w[1] > w[0]),
            "speed grid must be strictly ascending"
        );
        assert!(
            torques.windows(2).all(|w| w[1] > w[0]),
            "torque grid must be strictly ascending"
        );
        assert_eq!(
            values.len(),
            speeds.len() * torques.len(),
            "efficiency grid size mismatch"
        );
        assert!(
            values.iter().all(|&v| v > 0.0 && v <= 1.0),
            "efficiencies must lie in (0, 1]"
        );
        Self {
            speeds,
            torques,
            values,
        }
    }

    /// A Leaf-like 80 kW PMSM map: ~93 % peak efficiency near mid speed
    /// and mid torque, dropping toward low torque (iron/copper-loss
    /// dominated) and extreme speed.
    #[must_use]
    pub fn leaf_like() -> Self {
        let speeds: Vec<f64> = (0..=10).map(|k| f64::from(k) * 100.0).collect(); // 0–1000 rad/s
        let torques: Vec<f64> = (0..=10).map(|k| f64::from(k) * 28.0).collect(); // 0–280 Nm
        let omega_opt = 450.0;
        let tau_opt = 140.0;
        let mut values = Vec::with_capacity(speeds.len() * torques.len());
        for &w in &speeds {
            for &t in &torques {
                let sw = ((w - omega_opt) / 500.0).powi(2);
                let st = ((t - tau_opt) / 160.0).powi(2);
                let eta: f64 = 0.93 - 0.14 * sw - 0.10 * st;
                values.push(eta.clamp(0.60, 0.93));
            }
        }
        Self::from_grid(speeds, torques, values)
    }

    /// A constant-efficiency map (useful for analytic tests and as the
    /// "coarse model" baseline the paper criticizes).
    ///
    /// # Panics
    ///
    /// Panics if `eta` is outside `(0, 1]`.
    #[must_use]
    pub fn constant(eta: f64) -> Self {
        assert!(eta > 0.0 && eta <= 1.0, "efficiency must lie in (0, 1]");
        Self::from_grid(vec![0.0, 1000.0], vec![0.0, 300.0], vec![eta; 4])
    }

    /// Bilinear efficiency lookup at motor speed `omega` (rad/s) and
    /// torque `tau` (Nm, sign ignored). Out-of-grid queries clamp.
    #[must_use]
    pub fn efficiency(&self, omega: f64, tau: f64) -> f64 {
        let w = omega.abs();
        let t = tau.abs();
        let (i, fw) = locate(&self.speeds, w);
        let (j, ft) = locate(&self.torques, t);
        let nt = self.torques.len();
        let v00 = self.values[i * nt + j];
        let v01 = self.values[i * nt + j + 1];
        let v10 = self.values[(i + 1) * nt + j];
        let v11 = self.values[(i + 1) * nt + j + 1];
        let v0 = v00 + ft * (v01 - v00);
        let v1 = v10 + ft * (v11 - v10);
        v0 + fw * (v1 - v0)
    }

    /// Peak efficiency anywhere on the grid.
    #[must_use]
    pub fn peak(&self) -> f64 {
        self.values.iter().copied().fold(0.0, f64::max)
    }
}

/// Finds the cell index and fractional position of `x` in ascending
/// `grid`, clamped to the grid span.
fn locate(grid: &[f64], x: f64) -> (usize, f64) {
    let n = grid.len();
    if x <= grid[0] {
        return (0, 0.0);
    }
    if x >= grid[n - 1] {
        return (n - 2, 1.0);
    }
    let idx = grid.partition_point(|&g| g <= x) - 1;
    let frac = (x - grid[idx]) / (grid[idx + 1] - grid[idx]);
    (idx, frac)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_map_is_flat() {
        let m = EfficiencyMap::constant(0.85);
        assert_eq!(m.efficiency(0.0, 0.0), 0.85);
        assert_eq!(m.efficiency(500.0, 150.0), 0.85);
        assert_eq!(m.efficiency(5000.0, 5000.0), 0.85);
        assert_eq!(m.peak(), 0.85);
    }

    #[test]
    fn bilinear_interpolation_exact_on_corners_and_centers() {
        let m =
            EfficiencyMap::from_grid(vec![0.0, 10.0], vec![0.0, 10.0], vec![0.8, 0.9, 0.6, 0.7]);
        assert!((m.efficiency(0.0, 0.0) - 0.8).abs() < 1e-12);
        assert!((m.efficiency(0.0, 10.0) - 0.9).abs() < 1e-12);
        assert!((m.efficiency(10.0, 0.0) - 0.6).abs() < 1e-12);
        assert!((m.efficiency(10.0, 10.0) - 0.7).abs() < 1e-12);
        assert!((m.efficiency(5.0, 5.0) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn lookup_clamps_out_of_range() {
        let m = EfficiencyMap::leaf_like();
        assert_eq!(m.efficiency(-50.0, 10.0), m.efficiency(50.0, 10.0));
        assert_eq!(m.efficiency(99_999.0, 140.0), m.efficiency(1000.0, 140.0));
    }

    #[test]
    fn torque_sign_is_ignored() {
        let m = EfficiencyMap::leaf_like();
        assert_eq!(m.efficiency(300.0, 100.0), m.efficiency(300.0, -100.0));
    }

    #[test]
    fn leaf_map_peaks_near_design_point() {
        let m = EfficiencyMap::leaf_like();
        let opt = m.efficiency(450.0, 140.0);
        assert!((opt - 0.93).abs() < 0.01, "opt {opt}");
        // Low-torque creep is much less efficient.
        let creep = m.efficiency(50.0, 5.0);
        assert!(creep < 0.80, "creep {creep}");
        assert!(creep >= 0.60);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn rejects_unsorted_grid() {
        let _ = EfficiencyMap::from_grid(vec![1.0, 0.0], vec![0.0, 1.0], vec![0.9; 4]);
    }

    #[test]
    #[should_panic(expected = "(0, 1]")]
    fn rejects_bad_efficiency() {
        let _ = EfficiencyMap::from_grid(vec![0.0, 1.0], vec![0.0, 1.0], vec![1.5; 4]);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn rejects_wrong_value_count() {
        let _ = EfficiencyMap::from_grid(vec![0.0, 1.0], vec![0.0, 1.0], vec![0.9; 3]);
    }
}
