* Hock-Schittkowski 51: min (x1-x2)^2 + (x2+x3-2)^2 + (x4-1)^2 + (x5-1)^2
* s.t. x1 + 3x2 = 4, x3 + x4 - 2x5 = 0, x2 - x5 = 0, x free.
* Optimum x = (1, 1, 1, 1, 1), f* = 0 (semidefinite Hessian).
NAME HS51
ROWS
 N OBJ
 E E1
 E E2
 E E3
COLUMNS
 X1 OBJ 0.0 E1 1.0
 X2 OBJ -4.0 E1 3.0
 X2 E3 1.0
 X3 OBJ -4.0 E2 1.0
 X4 OBJ -2.0 E2 1.0
 X5 OBJ -2.0 E2 -2.0
 X5 E3 -1.0
RHS
 RHS E1 4.0 OBJ -6.0
BOUNDS
 FR BND X1
 FR BND X2
 FR BND X3
 FR BND X4
 FR BND X5
QUADOBJ
 X1 X1 2.0
 X1 X2 -2.0
 X2 X2 4.0
 X2 X3 2.0
 X3 X3 2.0
 X4 X4 2.0
 X5 X5 2.0
ENDATA
