//! Dense convex quadratic programming by an infeasible-start primal-dual
//! interior-point method (Mehrotra predictor–corrector).

use ev_linalg::{vecops, Lu, Matrix};

use crate::OptimError;

/// A convex quadratic program
///
/// ```text
/// minimize    ½ zᵀ H z + gᵀ z
/// subject to  A_eq z = b_eq
///             A_in z ≤ b_in
/// ```
///
/// `H` must be symmetric positive semidefinite; the solver adds a tiny
/// Levenberg regularization so semidefinite Hessians (common in MPC, where
/// some inputs do not enter the cost) are handled without special cases.
///
/// # Examples
///
/// ```
/// use ev_optim::QpProblem;
/// use ev_linalg::Matrix;
///
/// # fn main() -> Result<(), ev_optim::OptimError> {
/// // min (z-3)²  s.t. z ≤ 1
/// let p = QpProblem::new(Matrix::from_diag(&[2.0]), vec![-6.0])?
///     .with_inequalities(Matrix::from_rows(&[&[1.0]]).unwrap(), vec![1.0])?;
/// assert_eq!(p.num_vars(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct QpProblem {
    h: Matrix,
    g: Vec<f64>,
    a_eq: Option<Matrix>,
    b_eq: Vec<f64>,
    a_in: Option<Matrix>,
    b_in: Vec<f64>,
}

impl QpProblem {
    /// Symmetry tolerance for the Hessian check, relative to its magnitude.
    const SYM_TOL: f64 = 1e-8;

    /// Creates an unconstrained QP from the Hessian `h` and linear term `g`.
    ///
    /// # Errors
    ///
    /// Returns [`OptimError::DimensionMismatch`] if `h` is not square with
    /// side `g.len()`, [`OptimError::AsymmetricHessian`] if `h` is not
    /// symmetric, and [`OptimError::NonFiniteData`] on NaN/∞ entries.
    pub fn new(h: Matrix, g: Vec<f64>) -> Result<Self, OptimError> {
        if !h.is_square() || h.rows() != g.len() {
            return Err(OptimError::DimensionMismatch { what: "H vs g" });
        }
        if !h.is_symmetric(Self::SYM_TOL * h.norm_max().max(1.0)) {
            return Err(OptimError::AsymmetricHessian);
        }
        if h.as_slice().iter().any(|v| !v.is_finite()) || g.iter().any(|v| !v.is_finite()) {
            return Err(OptimError::NonFiniteData);
        }
        Ok(Self {
            h,
            g,
            a_eq: None,
            b_eq: Vec::new(),
            a_in: None,
            b_in: Vec::new(),
        })
    }

    /// Adds the equality constraints `a_eq · z = b_eq`.
    ///
    /// # Errors
    ///
    /// Returns [`OptimError::DimensionMismatch`] if shapes are inconsistent
    /// and [`OptimError::NonFiniteData`] on NaN/∞ entries.
    pub fn with_equalities(mut self, a_eq: Matrix, b_eq: Vec<f64>) -> Result<Self, OptimError> {
        if a_eq.cols() != self.num_vars() || a_eq.rows() != b_eq.len() {
            return Err(OptimError::DimensionMismatch {
                what: "A_eq vs b_eq",
            });
        }
        if a_eq.as_slice().iter().any(|v| !v.is_finite()) || b_eq.iter().any(|v| !v.is_finite()) {
            return Err(OptimError::NonFiniteData);
        }
        self.a_eq = Some(a_eq);
        self.b_eq = b_eq;
        Ok(self)
    }

    /// Adds the inequality constraints `a_in · z ≤ b_in`.
    ///
    /// # Errors
    ///
    /// Returns [`OptimError::DimensionMismatch`] if shapes are inconsistent
    /// and [`OptimError::NonFiniteData`] on NaN/∞ entries.
    pub fn with_inequalities(mut self, a_in: Matrix, b_in: Vec<f64>) -> Result<Self, OptimError> {
        if a_in.cols() != self.num_vars() || a_in.rows() != b_in.len() {
            return Err(OptimError::DimensionMismatch {
                what: "A_in vs b_in",
            });
        }
        if a_in.as_slice().iter().any(|v| !v.is_finite()) || b_in.iter().any(|v| !v.is_finite()) {
            return Err(OptimError::NonFiniteData);
        }
        self.a_in = Some(a_in);
        self.b_in = b_in;
        Ok(self)
    }

    /// Number of decision variables.
    #[inline]
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.g.len()
    }

    /// Number of equality constraints.
    #[inline]
    #[must_use]
    pub fn num_eq(&self) -> usize {
        self.b_eq.len()
    }

    /// Number of inequality constraints.
    #[inline]
    #[must_use]
    pub fn num_ineq(&self) -> usize {
        self.b_in.len()
    }

    /// Evaluates the objective `½ zᵀHz + gᵀz`.
    ///
    /// # Panics
    ///
    /// Panics if `z.len() != num_vars()`.
    #[must_use]
    pub fn objective(&self, z: &[f64]) -> f64 {
        let hz = self.h.matvec(z).expect("dimension checked at construction");
        0.5 * vecops::dot(z, &hz) + vecops::dot(&self.g, z)
    }

    /// Borrows the problem as a [`QpView`] (no data is copied).
    #[must_use]
    pub fn as_view(&self) -> QpView<'_> {
        QpView {
            h: &self.h,
            g: &self.g,
            a_eq: self.a_eq.as_ref(),
            b_eq: &self.b_eq,
            a_in: self.a_in.as_ref(),
            b_in: &self.b_in,
        }
    }
}

/// A borrowed view of a convex QP — the same problem shape as
/// [`QpProblem`], but holding references instead of owned data.
///
/// This is the allocation-free entry point for hot loops that re-solve a
/// QP with data they already own: the SQP solver builds one of these per
/// major iteration instead of cloning its Hessian approximation and the
/// constraint Jacobians into a fresh [`QpProblem`].
///
/// # Examples
///
/// ```
/// use ev_optim::{QpSolver, QpView};
/// use ev_linalg::Matrix;
///
/// # fn main() -> Result<(), ev_optim::OptimError> {
/// // min (z-3)² s.t. z ≤ 1, without giving up ownership of the data.
/// let h = Matrix::from_diag(&[2.0]);
/// let g = [-6.0];
/// let a = Matrix::from_rows(&[&[1.0]]).unwrap();
/// let b = [1.0];
/// let view = QpView::new(&h, &g)?.with_inequalities(&a, &b)?;
/// let sol = QpSolver::default().solve_view(&view)?;
/// assert!((sol.z[0] - 1.0).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct QpView<'a> {
    h: &'a Matrix,
    g: &'a [f64],
    a_eq: Option<&'a Matrix>,
    b_eq: &'a [f64],
    a_in: Option<&'a Matrix>,
    b_in: &'a [f64],
}

impl<'a> QpView<'a> {
    /// Creates an unconstrained view from the Hessian `h` and linear
    /// term `g`, validating like [`QpProblem::new`].
    ///
    /// # Errors
    ///
    /// Returns [`OptimError::DimensionMismatch`] if `h` is not square with
    /// side `g.len()`, [`OptimError::AsymmetricHessian`] if `h` is not
    /// symmetric, and [`OptimError::NonFiniteData`] on NaN/∞ entries.
    pub fn new(h: &'a Matrix, g: &'a [f64]) -> Result<Self, OptimError> {
        if !h.is_square() || h.rows() != g.len() {
            return Err(OptimError::DimensionMismatch { what: "H vs g" });
        }
        if !h.is_symmetric(QpProblem::SYM_TOL * h.norm_max().max(1.0)) {
            return Err(OptimError::AsymmetricHessian);
        }
        if h.as_slice().iter().any(|v| !v.is_finite()) || g.iter().any(|v| !v.is_finite()) {
            return Err(OptimError::NonFiniteData);
        }
        Ok(Self {
            h,
            g,
            a_eq: None,
            b_eq: &[],
            a_in: None,
            b_in: &[],
        })
    }

    /// Adds the equality constraints `a_eq · z = b_eq`.
    ///
    /// # Errors
    ///
    /// Returns [`OptimError::DimensionMismatch`] if shapes are inconsistent
    /// and [`OptimError::NonFiniteData`] on NaN/∞ entries.
    pub fn with_equalities(
        mut self,
        a_eq: &'a Matrix,
        b_eq: &'a [f64],
    ) -> Result<Self, OptimError> {
        if a_eq.cols() != self.num_vars() || a_eq.rows() != b_eq.len() {
            return Err(OptimError::DimensionMismatch {
                what: "A_eq vs b_eq",
            });
        }
        if a_eq.as_slice().iter().any(|v| !v.is_finite()) || b_eq.iter().any(|v| !v.is_finite()) {
            return Err(OptimError::NonFiniteData);
        }
        self.a_eq = Some(a_eq);
        self.b_eq = b_eq;
        Ok(self)
    }

    /// Adds the inequality constraints `a_in · z ≤ b_in`.
    ///
    /// # Errors
    ///
    /// Returns [`OptimError::DimensionMismatch`] if shapes are inconsistent
    /// and [`OptimError::NonFiniteData`] on NaN/∞ entries.
    pub fn with_inequalities(
        mut self,
        a_in: &'a Matrix,
        b_in: &'a [f64],
    ) -> Result<Self, OptimError> {
        if a_in.cols() != self.num_vars() || a_in.rows() != b_in.len() {
            return Err(OptimError::DimensionMismatch {
                what: "A_in vs b_in",
            });
        }
        if a_in.as_slice().iter().any(|v| !v.is_finite()) || b_in.iter().any(|v| !v.is_finite()) {
            return Err(OptimError::NonFiniteData);
        }
        self.a_in = Some(a_in);
        self.b_in = b_in;
        Ok(self)
    }

    /// Number of decision variables.
    #[inline]
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.g.len()
    }

    /// Number of equality constraints.
    #[inline]
    #[must_use]
    pub fn num_eq(&self) -> usize {
        self.b_eq.len()
    }

    /// Number of inequality constraints.
    #[inline]
    #[must_use]
    pub fn num_ineq(&self) -> usize {
        self.b_in.len()
    }

    /// Evaluates the objective `½ zᵀHz + gᵀz`.
    ///
    /// # Panics
    ///
    /// Panics if `z.len() != num_vars()`.
    #[must_use]
    pub fn objective(&self, z: &[f64]) -> f64 {
        let hz = self.h.matvec(z).expect("dimension checked at construction");
        0.5 * vecops::dot(z, &hz) + vecops::dot(self.g, z)
    }
}

/// Solution of a QP: the minimizer and its Lagrange multipliers.
#[derive(Debug, Clone)]
pub struct QpSolution {
    /// The primal minimizer.
    pub z: Vec<f64>,
    /// Multipliers of the equality constraints.
    pub y_eq: Vec<f64>,
    /// Multipliers of the inequality constraints (non-negative).
    pub lambda_in: Vec<f64>,
    /// Objective value at `z`.
    pub objective: f64,
    /// Interior-point iterations used.
    pub iterations: usize,
}

/// Options for the interior-point QP solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QpSolverOptions {
    /// Convergence tolerance on the complementarity measure and residuals.
    pub tolerance: f64,
    /// Maximum interior-point iterations.
    pub max_iterations: usize,
    /// Levenberg regularization added to the Hessian diagonal.
    pub regularization: f64,
}

impl Default for QpSolverOptions {
    fn default() -> Self {
        Self {
            tolerance: 1e-8,
            max_iterations: 100,
            regularization: 1e-10,
        }
    }
}

/// Infeasible-start primal-dual interior-point solver for convex QPs.
///
/// Implements the Mehrotra predictor–corrector scheme with a shared LU
/// factorization of the reduced KKT system per iteration. Designed as the
/// subproblem engine of [`crate::SqpSolver`] but fully usable on its own.
///
/// # Examples
///
/// ```
/// use ev_optim::{QpProblem, QpSolver};
/// use ev_linalg::Matrix;
///
/// # fn main() -> Result<(), ev_optim::OptimError> {
/// // Projection of (2, 0) onto the unit box [−1, 1]².
/// let h = Matrix::from_diag(&[2.0, 2.0]);
/// let g = vec![-4.0, 0.0];
/// let a = Matrix::from_rows(&[
///     &[1.0, 0.0], &[-1.0, 0.0], &[0.0, 1.0], &[0.0, -1.0],
/// ]).unwrap();
/// let p = QpProblem::new(h, g)?.with_inequalities(a, vec![1.0; 4])?;
/// let sol = QpSolver::default().solve(&p)?;
/// assert!((sol.z[0] - 1.0).abs() < 1e-6);
/// assert!(sol.z[1].abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct QpSolver {
    options: QpSolverOptions,
}

impl QpSolver {
    /// Creates a solver with the given options.
    #[must_use]
    pub fn new(options: QpSolverOptions) -> Self {
        Self { options }
    }

    /// Borrows the solver options.
    #[must_use]
    pub fn options(&self) -> &QpSolverOptions {
        &self.options
    }

    /// Solves the QP starting from the origin.
    ///
    /// # Errors
    ///
    /// Returns [`OptimError::QpMaxIterations`] when the KKT residuals do
    /// not meet tolerance within the iteration budget (typically an
    /// infeasible or unbounded problem) and propagates factorization
    /// failures as [`OptimError::Linalg`].
    pub fn solve(&self, problem: &QpProblem) -> Result<QpSolution, OptimError> {
        let z0 = vec![0.0; problem.num_vars()];
        self.solve_from(problem, &z0)
    }

    /// Solves the QP from a warm-start primal point `z0`.
    ///
    /// # Errors
    ///
    /// Same as [`QpSolver::solve`]; additionally returns
    /// [`OptimError::DimensionMismatch`] if `z0.len() != num_vars()`.
    pub fn solve_from(&self, problem: &QpProblem, z0: &[f64]) -> Result<QpSolution, OptimError> {
        self.solve_view_from(&problem.as_view(), z0)
    }

    /// Solves a borrowed-view QP starting from the origin (the
    /// allocation-free entry point used by the SQP hot loop).
    ///
    /// # Errors
    ///
    /// Same as [`QpSolver::solve`].
    pub fn solve_view(&self, view: &QpView<'_>) -> Result<QpSolution, OptimError> {
        let z0 = vec![0.0; view.num_vars()];
        self.solve_view_from(view, z0.as_slice())
    }

    /// Solves a borrowed-view QP from a warm-start primal point `z0`.
    ///
    /// # Errors
    ///
    /// Same as [`QpSolver::solve_from`].
    pub fn solve_view_from(
        &self,
        problem: &QpView<'_>,
        z0: &[f64],
    ) -> Result<QpSolution, OptimError> {
        let n = problem.num_vars();
        if z0.len() != n {
            return Err(OptimError::DimensionMismatch { what: "z0 vs H" });
        }
        let me = problem.num_eq();
        let mi = problem.num_ineq();

        // No inequalities: the KKT conditions are a single linear system.
        if mi == 0 {
            return self.solve_equality_only(problem, me);
        }

        let a_in = problem.a_in.expect("mi > 0 implies A_in");
        let mut z = z0.to_vec();
        let mut y = vec![0.0; me];
        // Strictly positive slack/dual initialization.
        let cz = a_in.matvec(&z)?;
        let mut s: Vec<f64> = problem
            .b_in
            .iter()
            .zip(&cz)
            .map(|(b, c)| (b - c).max(1.0))
            .collect();
        let mut lam = vec![1.0; mi];

        let data_scale = 1.0
            + problem.h.norm_max()
            + vecops::norm_inf(problem.g)
            + problem.a_eq.map_or(0.0, Matrix::norm_max)
            + a_in.norm_max();

        let tol = self.options.tolerance;
        for iter in 0..self.options.max_iterations {
            // Residuals.
            let hz = problem.h.matvec(&z)?;
            let mut rd = vecops::add(&hz, problem.g);
            if let Some(a_eq) = problem.a_eq {
                let aty = a_eq.matvec_transposed(&y)?;
                for (r, v) in rd.iter_mut().zip(&aty) {
                    *r += v;
                }
            }
            let ctl = a_in.matvec_transposed(&lam)?;
            for (r, v) in rd.iter_mut().zip(&ctl) {
                *r += v;
            }
            let rp: Vec<f64> = match problem.a_eq {
                Some(a_eq) => vecops::sub(&a_eq.matvec(&z)?, problem.b_eq),
                None => Vec::new(),
            };
            let cz = a_in.matvec(&z)?;
            let rc: Vec<f64> = (0..mi).map(|i| cz[i] + s[i] - problem.b_in[i]).collect();
            let mu = vecops::dot(&s, &lam) / mi as f64;

            let converged = mu <= tol * data_scale
                && vecops::norm_inf(&rd) <= tol * data_scale
                && vecops::norm_inf(&rp) <= tol * data_scale
                && vecops::norm_inf(&rc) <= tol * data_scale;
            if converged {
                return Ok(QpSolution {
                    objective: problem.objective(&z),
                    z,
                    y_eq: y,
                    lambda_in: lam,
                    iterations: iter,
                });
            }

            // Reduced KKT matrix: [H + CᵀWC  A_eqᵀ; A_eq  −δI], W = Λ/S.
            let dim = n + me;
            let mut kkt = Matrix::zeros(dim, dim);
            for r in 0..n {
                for c in 0..n {
                    kkt.set(r, c, problem.h.get(r, c));
                }
            }
            for i in 0..mi {
                let w = lam[i] / s[i];
                let row = a_in.row(i);
                for r in 0..n {
                    let ar = row[r];
                    if ar == 0.0 {
                        continue;
                    }
                    for c in 0..n {
                        kkt.add_at(r, c, w * ar * row[c]);
                    }
                }
            }
            for r in 0..n {
                kkt.add_at(r, r, self.options.regularization.max(1e-12));
            }
            if let Some(a_eq) = problem.a_eq {
                for r in 0..me {
                    for c in 0..n {
                        kkt.set(n + r, c, a_eq.get(r, c));
                        kkt.set(c, n + r, a_eq.get(r, c));
                    }
                    kkt.set(n + r, n + r, -1e-12);
                }
            }
            let lu = Lu::factor(&kkt)?;

            // Affine (predictor) direction: target σ = 0.
            let (dz_aff, _dy_aff, ds_aff, dlam_aff) = self.kkt_solve(
                &lu,
                problem,
                a_in,
                &rd,
                &rp,
                &rc,
                &s,
                &lam,
                &(0..mi).map(|i| s[i] * lam[i]).collect::<Vec<f64>>(),
            )?;
            let alpha_aff = step_length(&s, &ds_aff, &lam, &dlam_aff);
            let mu_aff = {
                let mut acc = 0.0;
                for i in 0..mi {
                    acc += (s[i] + alpha_aff * ds_aff[i]) * (lam[i] + alpha_aff * dlam_aff[i]);
                }
                acc / mi as f64
            };
            let sigma = (mu_aff / mu).powi(3).clamp(0.0, 1.0);

            // Corrector direction with centering + Mehrotra correction.
            let r_slam: Vec<f64> = (0..mi)
                .map(|i| s[i] * lam[i] + ds_aff[i] * dlam_aff[i] - sigma * mu)
                .collect();
            let (dz, dy, ds, dlam) =
                self.kkt_solve(&lu, problem, a_in, &rd, &rp, &rc, &s, &lam, &r_slam)?;
            let _ = dz_aff;

            let alpha = 0.995 * step_length(&s, &ds, &lam, &dlam);
            let alpha = alpha.min(1.0);
            vecops::axpy(alpha, &dz, &mut z);
            vecops::axpy(alpha, &dy, &mut y);
            vecops::axpy(alpha, &ds, &mut s);
            vecops::axpy(alpha, &dlam, &mut lam);
        }

        // Re-evaluate residuals for the error report.
        let hz = problem.h.matvec(&z)?;
        let rd = vecops::add(&hz, problem.g);
        let rp: Vec<f64> = match problem.a_eq {
            Some(a_eq) => vecops::sub(&a_eq.matvec(&z)?, problem.b_eq),
            None => Vec::new(),
        };
        Err(OptimError::QpMaxIterations {
            mu: vecops::dot(&s, &lam) / mi as f64,
            primal_residual: vecops::norm_inf(&rp),
            dual_residual: vecops::norm_inf(&rd),
        })
    }

    /// Direct KKT solve when the problem has no inequality constraints.
    fn solve_equality_only(
        &self,
        problem: &QpView<'_>,
        me: usize,
    ) -> Result<QpSolution, OptimError> {
        let n = problem.num_vars();
        let dim = n + me;
        let mut kkt = Matrix::zeros(dim, dim);
        for r in 0..n {
            for c in 0..n {
                kkt.set(r, c, problem.h.get(r, c));
            }
            kkt.add_at(r, r, self.options.regularization.max(1e-12));
        }
        if let Some(a_eq) = problem.a_eq {
            for r in 0..me {
                for c in 0..n {
                    kkt.set(n + r, c, a_eq.get(r, c));
                    kkt.set(c, n + r, a_eq.get(r, c));
                }
            }
        }
        let mut rhs = vec![0.0; dim];
        for i in 0..n {
            rhs[i] = -problem.g[i];
        }
        rhs[n..(me + n)].copy_from_slice(&problem.b_eq[..me]);
        let sol = Lu::factor(&kkt)?.solve(&rhs)?;
        let z = sol[..n].to_vec();
        let y_eq = sol[n..].to_vec();
        Ok(QpSolution {
            objective: problem.objective(&z),
            z,
            y_eq,
            lambda_in: Vec::new(),
            iterations: 1,
        })
    }

    /// Solves one Newton system given the factored KKT matrix and the
    /// complementarity right-hand side `r_slam` (entries `sᵢλᵢ − target`).
    #[allow(clippy::too_many_arguments, clippy::type_complexity)]
    fn kkt_solve(
        &self,
        lu: &Lu,
        problem: &QpView<'_>,
        a_in: &Matrix,
        rd: &[f64],
        rp: &[f64],
        rc: &[f64],
        s: &[f64],
        lam: &[f64],
        r_slam: &[f64],
    ) -> Result<(Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>), OptimError> {
        let n = problem.num_vars();
        let me = problem.num_eq();
        let mi = s.len();

        // rhs1 = −rd + Σᵢ cᵢ · (r_slamᵢ − λᵢ·rcᵢ)/sᵢ
        let mut rhs = vec![0.0; n + me];
        for r in 0..n {
            rhs[r] = -rd[r];
        }
        for i in 0..mi {
            let coeff = (r_slam[i] - lam[i] * rc[i]) / s[i];
            let row = a_in.row(i);
            for r in 0..n {
                rhs[r] += row[r] * coeff;
            }
        }
        for r in 0..me {
            rhs[n + r] = -rp[r];
        }
        let sol = lu.solve(&rhs)?;
        let dz = sol[..n].to_vec();
        let dy = sol[n..].to_vec();

        let cdz = a_in.matvec(&dz)?;
        let mut ds = vec![0.0; mi];
        let mut dlam = vec![0.0; mi];
        for i in 0..mi {
            ds[i] = -rc[i] - cdz[i];
            dlam[i] = -(r_slam[i] + lam[i] * ds[i]) / s[i];
        }
        Ok((dz, dy, ds, dlam))
    }
}

/// Largest α ∈ (0, 1] keeping `s + α·ds > 0` and `λ + α·dλ > 0`.
fn step_length(s: &[f64], ds: &[f64], lam: &[f64], dlam: &[f64]) -> f64 {
    let mut alpha: f64 = 1.0;
    for i in 0..s.len() {
        if ds[i] < 0.0 {
            alpha = alpha.min(-s[i] / ds[i]);
        }
        if dlam[i] < 0.0 {
            alpha = alpha.min(-lam[i] / dlam[i]);
        }
    }
    alpha.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve(p: &QpProblem) -> QpSolution {
        QpSolver::default().solve(p).expect("qp should solve")
    }

    #[test]
    fn unconstrained_quadratic() {
        // min (z0-1)² + (z1+2)²
        let p = QpProblem::new(Matrix::from_diag(&[2.0, 2.0]), vec![-2.0, 4.0]).unwrap();
        let sol = solve(&p);
        assert!((sol.z[0] - 1.0).abs() < 1e-7);
        assert!((sol.z[1] + 2.0).abs() < 1e-7);
    }

    #[test]
    fn equality_constrained() {
        // min z0² + z1² s.t. z0 + z1 = 2 → (1, 1).
        let p = QpProblem::new(Matrix::from_diag(&[2.0, 2.0]), vec![0.0, 0.0])
            .unwrap()
            .with_equalities(Matrix::from_rows(&[&[1.0, 1.0]]).unwrap(), vec![2.0])
            .unwrap();
        let sol = solve(&p);
        assert!((sol.z[0] - 1.0).abs() < 1e-7);
        assert!((sol.z[1] - 1.0).abs() < 1e-7);
        // Multiplier: ∇f + Aᵀy = 0 → 2·1 + y = 0 → y = −2.
        assert!((sol.y_eq[0] + 2.0).abs() < 1e-6);
    }

    #[test]
    fn active_inequality() {
        // min (z-3)² s.t. z ≤ 1 → z = 1, λ = 4.
        let p = QpProblem::new(Matrix::from_diag(&[2.0]), vec![-6.0])
            .unwrap()
            .with_inequalities(Matrix::from_rows(&[&[1.0]]).unwrap(), vec![1.0])
            .unwrap();
        let sol = solve(&p);
        assert!((sol.z[0] - 1.0).abs() < 1e-6);
        assert!((sol.lambda_in[0] - 4.0).abs() < 1e-5);
    }

    #[test]
    fn inactive_inequality() {
        // min (z-3)² s.t. z ≤ 10 → unconstrained optimum 3, λ = 0.
        let p = QpProblem::new(Matrix::from_diag(&[2.0]), vec![-6.0])
            .unwrap()
            .with_inequalities(Matrix::from_rows(&[&[1.0]]).unwrap(), vec![10.0])
            .unwrap();
        let sol = solve(&p);
        assert!((sol.z[0] - 3.0).abs() < 1e-6);
        assert!(sol.lambda_in[0].abs() < 1e-5);
    }

    #[test]
    fn box_constrained_projection() {
        // Project (5, -5) onto [0,1]².
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[-1.0, 0.0], &[0.0, 1.0], &[0.0, -1.0]]).unwrap();
        let p = QpProblem::new(Matrix::from_diag(&[2.0, 2.0]), vec![-10.0, 10.0])
            .unwrap()
            .with_inequalities(a, vec![1.0, 0.0, 1.0, 0.0])
            .unwrap();
        let sol = solve(&p);
        assert!((sol.z[0] - 1.0).abs() < 1e-6);
        assert!(sol.z[1].abs() < 1e-6);
    }

    #[test]
    fn mixed_equality_inequality() {
        // min ½‖z‖² s.t. z0 + z1 + z2 = 3, z0 ≤ 0.5.
        // Without the bound → (1,1,1); with it, z0 = 0.5, z1 = z2 = 1.25.
        let p = QpProblem::new(Matrix::identity(3), vec![0.0; 3])
            .unwrap()
            .with_equalities(Matrix::from_rows(&[&[1.0, 1.0, 1.0]]).unwrap(), vec![3.0])
            .unwrap()
            .with_inequalities(Matrix::from_rows(&[&[1.0, 0.0, 0.0]]).unwrap(), vec![0.5])
            .unwrap();
        let sol = solve(&p);
        assert!((sol.z[0] - 0.5).abs() < 1e-6, "{:?}", sol.z);
        assert!((sol.z[1] - 1.25).abs() < 1e-6);
        assert!((sol.z[2] - 1.25).abs() < 1e-6);
    }

    #[test]
    fn semidefinite_hessian() {
        // H has a zero eigenvalue along z1; inequality pins z1.
        let h = Matrix::from_diag(&[2.0, 0.0]);
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[0.0, -1.0]]).unwrap();
        let p = QpProblem::new(h, vec![-2.0, 1.0])
            .unwrap()
            .with_inequalities(a, vec![5.0, 5.0])
            .unwrap();
        let sol = solve(&p);
        // z0 = 1 from the curvature; z1 driven to its lower bound −5 by g1 = 1.
        assert!((sol.z[0] - 1.0).abs() < 1e-5);
        assert!((sol.z[1] + 5.0).abs() < 1e-4);
    }

    #[test]
    fn kkt_conditions_hold() {
        let a_in = Matrix::from_rows(&[&[1.0, 1.0], &[-1.0, 2.0], &[2.0, -1.0]]).unwrap();
        let p = QpProblem::new(
            Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 2.0]]).unwrap(),
            vec![1.0, 1.0],
        )
        .unwrap()
        .with_inequalities(a_in.clone(), vec![2.0, 2.0, 3.0])
        .unwrap();
        let sol = solve(&p);
        // Stationarity: Hz + g + Cᵀλ ≈ 0.
        let hz = p.h.matvec(&sol.z).unwrap();
        let ctl = a_in.matvec_transposed(&sol.lambda_in).unwrap();
        for i in 0..2 {
            assert!((hz[i] + p.g[i] + ctl[i]).abs() < 1e-5);
        }
        // Primal feasibility and dual non-negativity.
        let cz = a_in.matvec(&sol.z).unwrap();
        for i in 0..3 {
            assert!(cz[i] <= p.b_in[i] + 1e-6);
            assert!(sol.lambda_in[i] >= -1e-9);
            // Complementary slackness.
            assert!(sol.lambda_in[i] * (p.b_in[i] - cz[i]) < 1e-4);
        }
    }

    #[test]
    fn infeasible_problem_errors() {
        // z ≤ 0 and −z ≤ −1 (z ≥ 1) cannot both hold.
        let a = Matrix::from_rows(&[&[1.0], &[-1.0]]).unwrap();
        let p = QpProblem::new(Matrix::from_diag(&[2.0]), vec![0.0])
            .unwrap()
            .with_inequalities(a, vec![0.0, -1.0])
            .unwrap();
        let err = QpSolver::default().solve(&p).unwrap_err();
        assert!(matches!(err, OptimError::QpMaxIterations { .. }), "{err:?}");
    }

    #[test]
    fn construction_errors() {
        assert!(matches!(
            QpProblem::new(Matrix::zeros(2, 3), vec![0.0; 3]),
            Err(OptimError::DimensionMismatch { .. })
        ));
        let asym = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0]]).unwrap();
        assert!(matches!(
            QpProblem::new(asym, vec![0.0; 2]),
            Err(OptimError::AsymmetricHessian)
        ));
        let nan = Matrix::from_diag(&[f64::NAN]);
        assert!(matches!(
            QpProblem::new(nan, vec![0.0]),
            Err(OptimError::NonFiniteData)
        ));
        let p = QpProblem::new(Matrix::identity(2), vec![0.0; 2]).unwrap();
        assert!(p.with_equalities(Matrix::zeros(1, 3), vec![0.0]).is_err());
    }

    #[test]
    fn warm_start_path() {
        let p = QpProblem::new(Matrix::from_diag(&[2.0]), vec![-6.0])
            .unwrap()
            .with_inequalities(Matrix::from_rows(&[&[1.0]]).unwrap(), vec![1.0])
            .unwrap();
        let sol = QpSolver::default().solve_from(&p, &[0.9]).unwrap();
        assert!((sol.z[0] - 1.0).abs() < 1e-6);
        assert!(QpSolver::default().solve_from(&p, &[0.0, 0.0]).is_err());
    }

    #[test]
    fn loose_tolerance_converges_in_fewer_iterations() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[-1.0, 0.0], &[0.0, 1.0], &[0.0, -1.0]]).unwrap();
        let p = QpProblem::new(Matrix::from_diag(&[2.0, 2.0]), vec![-10.0, 3.0])
            .unwrap()
            .with_inequalities(a, vec![1.0; 4])
            .unwrap();
        let tight = QpSolver::new(QpSolverOptions {
            tolerance: 1e-10,
            ..QpSolverOptions::default()
        })
        .solve(&p)
        .unwrap();
        let loose = QpSolver::new(QpSolverOptions {
            tolerance: 1e-4,
            ..QpSolverOptions::default()
        })
        .solve(&p)
        .unwrap();
        assert!(loose.iterations <= tight.iterations);
        // Both still land on the right active set.
        assert!((loose.z[0] - 1.0).abs() < 1e-2);
    }

    #[test]
    fn zero_hessian_lp_is_handled_by_regularization() {
        // A pure LP (H = 0) on a box: the regularized KKT system stays
        // factorable and the solution hits the right vertex.
        let h = Matrix::from_diag(&[0.0, 0.0]);
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[-1.0, 0.0], &[0.0, 1.0], &[0.0, -1.0]]).unwrap();
        let p = QpProblem::new(h, vec![1.0, -2.0])
            .unwrap()
            .with_inequalities(a, vec![1.0; 4])
            .unwrap();
        let sol = QpSolver::default().solve(&p).unwrap();
        // min z0 − 2 z1 over [−1,1]² → (−1, 1).
        assert!((sol.z[0] + 1.0).abs() < 1e-4, "{:?}", sol.z);
        assert!((sol.z[1] - 1.0).abs() < 1e-4);
    }

    #[test]
    fn larger_random_spd_problem() {
        // A 30-variable strongly convex QP with box constraints: verify
        // feasibility and stationarity rather than a closed form.
        let n = 30;
        let mut h = Matrix::identity(n);
        for i in 0..n {
            h.set(i, i, 1.0 + (i as f64) * 0.1);
        }
        let g: Vec<f64> = (0..n).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let mut rows = Vec::new();
        for i in 0..n {
            let mut up = vec![0.0; n];
            up[i] = 1.0;
            rows.push(up);
            let mut lo = vec![0.0; n];
            lo[i] = -1.0;
            rows.push(lo);
        }
        let row_refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        let a = Matrix::from_rows(&row_refs).unwrap();
        let b = vec![2.0; 2 * n];
        let p = QpProblem::new(h, g)
            .unwrap()
            .with_inequalities(a, b)
            .unwrap();
        let sol = solve(&p);
        for (i, &zi) in sol.z.iter().enumerate() {
            assert!((-2.0 - 1e-6..=2.0 + 1e-6).contains(&zi), "z[{i}] = {zi}");
        }
        assert!(sol.iterations < 50);
    }
}
