//! A minimal Prometheus scrape endpoint on `std::net` — no async
//! runtime, no HTTP crate, offline-friendly.
//!
//! [`ScrapeServer::bind`] spawns one accept-loop thread serving
//! `GET /metrics` from a [`Registry`] snapshot in the text exposition
//! format. The server answers one request per connection (it sends
//! `Connection: close`), which is exactly the scrape model Prometheus
//! uses and keeps the implementation to a single blocking loop.
//!
//! Shutdown is cooperative: [`ScrapeServer::shutdown`] sets a flag and
//! then *connects to the listener itself* to unblock `accept`, so no
//! platform-specific socket teardown is needed.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::export::to_prometheus;
use crate::registry::Registry;

/// How long a single request may take to arrive before the connection
/// is dropped (scrapes are tiny; this only guards against stuck peers).
const REQUEST_TIMEOUT: Duration = Duration::from_secs(5);

/// A running scrape endpoint. Dropping the handle shuts the server
/// down; [`shutdown`](Self::shutdown) does the same explicitly.
pub struct ScrapeServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_loop: Option<JoinHandle<()>>,
}

impl ScrapeServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts serving `GET /metrics` from `registry`.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure (port in use, permission, bad
    /// address).
    pub fn bind(addr: &str, registry: Registry) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let accept_loop = std::thread::Builder::new()
            .name("telemetry-scrape".to_string())
            .spawn(move || {
                for conn in listener.incoming() {
                    if accept_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    // Serve inline: scrapes are sub-millisecond and a
                    // scraper polls one endpoint at a time.
                    let _ = serve_one(stream, &registry);
                }
            })
            .expect("spawning the scrape accept loop");
        Ok(Self {
            addr,
            stop,
            accept_loop: Some(accept_loop),
        })
    }

    /// The actually-bound address (resolves ephemeral ports).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins it. Idempotent.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock `accept` by connecting to ourselves; if that fails the
        // loop still exits on the next (if any) connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_loop.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ScrapeServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Reads one HTTP/1.x request and answers it.
fn serve_one(stream: TcpStream, registry: &Registry) -> std::io::Result<()> {
    stream.set_read_timeout(Some(REQUEST_TIMEOUT))?;
    stream.set_write_timeout(Some(REQUEST_TIMEOUT))?;
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain the headers so well-behaved clients see a clean close.
    let mut header = String::new();
    while reader.read_line(&mut header)? > 2 {
        header.clear();
    }
    let mut stream = reader.into_inner();
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    match (method, path) {
        ("GET", "/metrics") => {
            let body = to_prometheus(&registry.snapshot());
            respond(
                &mut stream,
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                &body,
            )
        }
        ("GET", _) => respond(&mut stream, "404 Not Found", "text/plain", "not found\n"),
        _ => respond(
            &mut stream,
            "405 Method Not Allowed",
            "text/plain",
            "only GET is supported\n",
        ),
    }
}

fn respond(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())
}

/// Why a one-shot scrape failed — routable, so callers can distinguish
/// "the endpoint is gone" (connect) from "the endpoint is wedged"
/// (timeout) from "the endpoint is not a scrape server" (protocol).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScrapeError {
    /// The address did not resolve or the TCP connect failed/timed out.
    Connect(String),
    /// The server accepted the connection but a read or write timed
    /// out — the half-open-peer case that used to hang forever.
    Timeout(String),
    /// Some other io error mid-exchange.
    Io(String),
    /// The response was not parseable HTTP.
    Protocol(String),
    /// The server answered something other than `200 OK`.
    Status(String),
}

impl std::fmt::Display for ScrapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScrapeError::Connect(msg) => write!(f, "connect: {msg}"),
            ScrapeError::Timeout(msg) => write!(f, "timed out: {msg}"),
            ScrapeError::Io(msg) => write!(f, "io: {msg}"),
            ScrapeError::Protocol(msg) => write!(f, "malformed response: {msg}"),
            ScrapeError::Status(msg) => write!(f, "unexpected status: {msg}"),
        }
    }
}

impl std::error::Error for ScrapeError {}

impl From<ScrapeError> for String {
    fn from(e: ScrapeError) -> String {
        e.to_string()
    }
}

/// Classify an io error from an established stream: timeouts surface as
/// [`ScrapeError::Timeout`], everything else as [`ScrapeError::Io`].
fn classify_io(context: &str, e: std::io::Error) -> ScrapeError {
    match e.kind() {
        std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => {
            ScrapeError::Timeout(format!("{context}: {e}"))
        }
        _ => ScrapeError::Io(format!("{context}: {e}")),
    }
}

/// A one-shot scrape client for probes and tests: fetches
/// `http://{addr}/metrics` and returns the body. Uses a 5-second
/// connect/read/write timeout; see [`scrape_once_with_timeout`] to
/// choose one.
///
/// # Errors
///
/// A [`ScrapeError`] naming the failing stage.
pub fn scrape_once(addr: &str) -> Result<String, ScrapeError> {
    scrape_once_with_timeout(addr, REQUEST_TIMEOUT)
}

/// [`scrape_once`] with an explicit timeout applied to address
/// resolution's connect, each read, and each write — so a peer that
/// accepts the connection and then never writes (half-open server,
/// stalled process) fails with [`ScrapeError::Timeout`] after `timeout`
/// instead of hanging the caller forever.
///
/// # Errors
///
/// A [`ScrapeError`] naming the failing stage.
pub fn scrape_once_with_timeout(addr: &str, timeout: Duration) -> Result<String, ScrapeError> {
    use std::net::ToSocketAddrs;
    let sock_addr = addr
        .to_socket_addrs()
        .map_err(|e| ScrapeError::Connect(format!("{addr}: {e}")))?
        .next()
        .ok_or_else(|| ScrapeError::Connect(format!("{addr}: no addresses")))?;
    let mut stream =
        TcpStream::connect_timeout(&sock_addr, timeout).map_err(|e| match e.kind() {
            std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => {
                ScrapeError::Timeout(format!("connect {addr}: {e}"))
            }
            _ => ScrapeError::Connect(format!("{addr}: {e}")),
        })?;
    stream
        .set_read_timeout(Some(timeout))
        .and_then(|()| stream.set_write_timeout(Some(timeout)))
        .map_err(|e| ScrapeError::Io(format!("set timeouts: {e}")))?;
    stream
        .write_all(
            format!("GET /metrics HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n")
                .as_bytes(),
        )
        .map_err(|e| classify_io("send request", e))?;
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .map_err(|e| classify_io("read response", e))?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| ScrapeError::Protocol(format!("{raw:?}")))?;
    let status_line = head.lines().next().unwrap_or("");
    if !status_line.contains("200") {
        return Err(ScrapeError::Status(status_line.to_string()));
    }
    Ok(body.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HistogramSpec;

    fn server_with_metrics() -> (ScrapeServer, Registry) {
        let registry = Registry::enabled();
        registry.counter("scrape_test_total").add(3);
        registry
            .histogram("scrape_test_seconds", HistogramSpec::latency_seconds())
            .record(0.012);
        let server = ScrapeServer::bind("127.0.0.1:0", registry.clone()).expect("bind loopback");
        (server, registry)
    }

    #[test]
    fn serves_a_valid_exposition_on_get_metrics() {
        let (server, _registry) = server_with_metrics();
        let body = scrape_once(&server.addr().to_string()).expect("scrape succeeds");
        assert!(body.contains("scrape_test_total 3\n"), "{body}");
        assert!(body.contains("scrape_test_seconds_count 1\n"), "{body}");
        let samples = crate::export::validate_prometheus(&body).expect("valid exposition");
        assert!(samples > 0);
    }

    #[test]
    fn scrapes_observe_live_counter_updates() {
        let (server, registry) = server_with_metrics();
        let addr = server.addr().to_string();
        let before = scrape_once(&addr).unwrap();
        assert!(before.contains("scrape_test_total 3\n"));
        registry.counter("scrape_test_total").add(2);
        let after = scrape_once(&addr).unwrap();
        assert!(after.contains("scrape_test_total 5\n"), "{after}");
    }

    #[test]
    fn wrong_path_is_404_and_wrong_method_is_405() {
        let (server, _registry) = server_with_metrics();
        let addr = server.addr();
        let request = |line: &str| -> String {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream
                .write_all(format!("{line}\r\nHost: x\r\n\r\n").as_bytes())
                .unwrap();
            let mut raw = String::new();
            stream.read_to_string(&mut raw).unwrap();
            raw.lines().next().unwrap_or_default().to_string()
        };
        assert!(request("GET /nope HTTP/1.1").contains("404"));
        assert!(request("POST /metrics HTTP/1.1").contains("405"));
    }

    #[test]
    fn half_open_server_times_out_instead_of_hanging() {
        // A listener that accepts connections and then never writes a
        // byte — the pathological peer that used to hang scrape_once
        // (and with it `evsim top`) forever.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let wedged = std::thread::spawn(move || {
            // Hold every accepted connection open, reading nothing and
            // writing nothing, until the test ends.
            let mut held = Vec::new();
            while let Ok((stream, _)) = listener.accept() {
                held.push(stream);
                if !held.is_empty() {
                    std::thread::sleep(Duration::from_millis(500));
                    break;
                }
            }
            drop(held);
        });
        let t0 = std::time::Instant::now();
        let result = scrape_once_with_timeout(&addr.to_string(), Duration::from_millis(100));
        let elapsed = t0.elapsed();
        match result {
            Err(ScrapeError::Timeout(_)) => {}
            other => panic!("expected Timeout, got {other:?}"),
        }
        assert!(
            elapsed < Duration::from_secs(2),
            "scrape returned promptly, took {elapsed:?}"
        );
        let _ = wedged.join();
    }

    #[test]
    fn connect_to_unresolvable_or_dead_addr_is_a_connect_error() {
        match scrape_once_with_timeout("definitely-not-a-host-zz:1", Duration::from_millis(200)) {
            Err(ScrapeError::Connect(_)) => {}
            other => panic!("expected Connect, got {other:?}"),
        }
    }

    #[test]
    fn shutdown_is_idempotent_and_unbinds_the_port() {
        let (mut server, _registry) = server_with_metrics();
        let addr = server.addr().to_string();
        server.shutdown();
        server.shutdown();
        assert!(
            scrape_once(&addr).is_err(),
            "server must stop answering after shutdown"
        );
    }
}
