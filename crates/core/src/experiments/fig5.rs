//! Fig. 5 — cabin-temperature management of the three controllers.

use ev_drive::DriveCycle;

use crate::{ControllerKind, Simulation};

use super::{experiment_params, profile_at, COMPARISON_AMBIENT_C};

/// One controller's cabin-temperature trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Series {
    /// Which controller produced the trace.
    pub controller: ControllerKind,
    /// Sample times (s).
    pub t: Vec<f64>,
    /// Cabin temperature (°C).
    pub cabin: Vec<f64>,
    /// Min/max cabin temperature after the initial pull-in.
    pub settled_band: (f64, f64),
}

/// Duration of the figure's time axis (the paper plots 0–1000 s).
const WINDOW_S: usize = 1000;
/// Pull-in time excluded from the settled-band statistic.
const PULL_IN_S: usize = 300;

/// Runs the Fig. 5 comparison: the first 1000 s of the NEDC at the
/// comparison ambient, starting from a cabin pre-conditioned near the
/// target (the paper's traces start settled).
///
/// # Panics
///
/// Panics only if built-in simulations fail to construct (they do not).
#[must_use]
pub fn fig5() -> Vec<Fig5Series> {
    let mut params = experiment_params();
    // The paper's Fig. 5 shows the *settled* regulation behavior, so
    // start at the target rather than heat-soaked.
    params.initial_cabin = Some(params.target);
    let profile = profile_at(&DriveCycle::nedc(), COMPARISON_AMBIENT_C);
    let sim = Simulation::new(params.clone(), profile).expect("profile non-empty");
    ControllerKind::paper_lineup()
        .into_iter()
        .map(|kind| {
            let mut controller = kind.instantiate(&params).expect("instantiates");
            let result = sim.run(controller.as_mut()).expect("runs");
            let n = WINDOW_S.min(result.series.t.len());
            let t = result.series.t[..n].to_vec();
            let cabin = result.series.cabin[..n].to_vec();
            let settled = &cabin[PULL_IN_S.min(n - 1)..];
            let lo = settled.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = settled.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            Fig5Series {
                controller: kind,
                t,
                cabin,
                settled_band: (lo, hi),
            }
        })
        .collect()
}

/// Formats the Fig. 5 comparison: settled bands plus an ASCII chart of
/// the three traces (the paper's actual figure form).
#[must_use]
pub fn render_fig5(series: &[Fig5Series]) -> String {
    let mut out = String::from("Fig. 5 — cabin temperature management (NEDC, 35 °C ambient)\n");
    for s in series {
        out.push_str(&format!(
            "{:<28} settled band {:.2}–{:.2} °C (swing {:.2} K)\n",
            s.controller.label(),
            s.settled_band.0,
            s.settled_band.1,
            s.settled_band.1 - s.settled_band.0,
        ));
    }
    out.push_str("\ncabin temperature (°C) vs time (x spans 0–1000 s):\n");
    let charted: Vec<(&str, &[f64])> = series
        .iter()
        .map(|s| {
            let name = match s.controller {
                crate::ControllerKind::OnOff => "On/Off",
                crate::ControllerKind::Fuzzy => "Fuzzy",
                _ => "Ours (MPC)",
            };
            (name, s.cabin.as_slice())
        })
        .collect();
    out.push_str(&super::ascii_chart(&charted, 72, 14));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_controller_ordering_matches_paper() {
        let series = fig5();
        assert_eq!(series.len(), 3);
        let swing = |kind: ControllerKind| {
            let s = series
                .iter()
                .find(|s| s.controller == kind)
                .expect("present");
            s.settled_band.1 - s.settled_band.0
        };
        let onoff = swing(ControllerKind::OnOff);
        let fuzzy = swing(ControllerKind::Fuzzy);
        let mpc = swing(ControllerKind::Mpc);
        // Paper Fig. 5: On/Off fluctuates the most; fuzzy and MPC hold a
        // sub-kelvin band.
        assert!(onoff > 1.0, "on/off swing {onoff}");
        assert!(fuzzy < onoff, "fuzzy {fuzzy} vs onoff {onoff}");
        assert!(mpc < onoff, "mpc {mpc} vs onoff {onoff}");
        assert!(fuzzy < 1.0, "fuzzy band {fuzzy}");
        // Everyone stays inside the comfort zone.
        for s in &series {
            assert!(s.settled_band.0 > 21.0 && s.settled_band.1 < 27.0, "{s:?}");
        }
    }

    #[test]
    fn render_lists_all_controllers() {
        let series = fig5();
        let text = render_fig5(&series);
        assert!(text.contains("On/Off"));
        assert!(text.contains("Fuzzy"));
        assert!(text.contains("Lifetime"));
    }
}
