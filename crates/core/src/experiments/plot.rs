//! Minimal ASCII plotting for the `repro` binary: the paper's figures
//! are line charts, so the terminal output renders them as such.

/// Renders one or more series as an ASCII line chart.
///
/// All series share the x-axis (sample index) and the y-range is the
/// union of the series. Each series draws with its own glyph; later
/// series overwrite earlier ones where they collide.
///
/// # Panics
///
/// Panics if no series are given, any series is empty, lengths differ,
/// or `width`/`height` is zero.
///
/// # Examples
///
/// ```
/// use ev_core::experiments::ascii_chart;
///
/// let ramp: Vec<f64> = (0..50).map(f64::from).collect();
/// let chart = ascii_chart(&[("ramp", &ramp)], 40, 8);
/// assert!(chart.contains('*'));
/// assert!(chart.contains("ramp"));
/// ```
#[must_use]
pub fn ascii_chart(series: &[(&str, &[f64])], width: usize, height: usize) -> String {
    assert!(!series.is_empty(), "chart needs at least one series");
    assert!(width > 0 && height > 0, "chart dimensions must be positive");
    let n = series[0].1.len();
    assert!(n > 0, "chart series must be non-empty");
    assert!(
        series.iter().all(|(_, s)| s.len() == n),
        "chart series must share a length"
    );

    const GLYPHS: [char; 4] = ['*', 'o', '+', 'x'];
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for (_, s) in series {
        for &v in *s {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    if (hi - lo).abs() < 1e-12 {
        hi = lo + 1.0;
    }

    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, s)) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        #[allow(clippy::needless_range_loop)] // col addresses grid[row][col]
        for col in 0..width {
            // Down-sample: average the bucket covering this column.
            let start = col * n / width;
            let end = (((col + 1) * n / width).max(start + 1)).min(n);
            let avg: f64 = s[start..end].iter().sum::<f64>() / (end - start) as f64;
            let frac = (avg - lo) / (hi - lo);
            let row = ((1.0 - frac) * (height - 1) as f64).round() as usize;
            grid[row.min(height - 1)][col] = glyph;
        }
    }

    let mut out = String::new();
    for (r, row) in grid.iter().enumerate() {
        let label = if r == 0 {
            format!("{hi:>9.2} |")
        } else if r == height - 1 {
            format!("{lo:>9.2} |")
        } else {
            format!("{:>9} |", "")
        };
        out.push_str(&label);
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{:>9} +{}\n", "", "-".repeat(width)));
    // Legend.
    out.push_str(&format!("{:>11}", ""));
    for (si, (name, _)) in series.iter().enumerate() {
        out.push_str(&format!("{} {}   ", GLYPHS[si % GLYPHS.len()], name));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ramp_renders_monotonically() {
        let ramp: Vec<f64> = (0..100).map(f64::from).collect();
        let chart = ascii_chart(&[("ramp", &ramp)], 50, 10);
        let lines: Vec<&str> = chart.lines().collect();
        // The glyph column position in the top row must be to the right
        // of the one in the bottom data row.
        let top_pos = lines[0].find('*').expect("top row has a point");
        let bottom_pos = lines[9].find('*').expect("bottom row has a point");
        assert!(top_pos > bottom_pos);
        // Axis labels present.
        assert!(lines[0].contains("99"));
        assert!(lines[9].contains("0.00"));
    }

    #[test]
    fn two_series_use_distinct_glyphs() {
        let a = vec![0.0; 30];
        let b = vec![1.0; 30];
        let chart = ascii_chart(&[("low", &a), ("high", &b)], 30, 5);
        assert!(chart.contains('*'));
        assert!(chart.contains('o'));
        assert!(chart.contains("low"));
        assert!(chart.contains("high"));
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let flat = vec![5.0; 10];
        let chart = ascii_chart(&[("flat", &flat)], 20, 4);
        assert!(chart.contains('*'));
    }

    #[test]
    fn downsampling_covers_every_column() {
        let data: Vec<f64> = (0..1000).map(|k| f64::from(k % 7)).collect();
        let chart = ascii_chart(&[("d", &data)], 60, 8);
        // Every column must contain exactly one glyph across rows.
        let lines: Vec<&str> = chart.lines().collect();
        for col in 0..60 {
            let mut count = 0;
            for line in &lines[..8] {
                let cell = line.chars().nth(11 + col);
                if cell == Some('*') {
                    count += 1;
                }
            }
            assert_eq!(count, 1, "column {col}");
        }
    }

    #[test]
    #[should_panic(expected = "share a length")]
    fn rejects_mismatched_series() {
        let a = vec![0.0; 5];
        let b = vec![0.0; 6];
        let _ = ascii_chart(&[("a", &a), ("b", &b)], 10, 4);
    }
}
