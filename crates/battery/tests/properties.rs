//! Property-based tests for the battery model: SoC monotonicity, Peukert
//! inequalities, terminal-voltage consistency and SoH monotonicity.

use ev_battery::{Battery, BatteryParams, Bms, SocStats, SohModel, SohParams};
use ev_units::{Percent, Seconds, Watts};
use proptest::prelude::*;

fn leaf() -> BatteryParams {
    BatteryParams::leaf_24kwh()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn discharge_never_raises_soc(
        powers in proptest::collection::vec(0.0f64..60_000.0, 1..40),
    ) {
        let mut b = Battery::new(leaf());
        let mut prev = b.soc().value();
        for p in powers {
            let soc = b.step(Watts::new(p), Seconds::new(5.0)).value();
            prop_assert!(soc <= prev + 1e-12, "{prev} → {soc} at {p} W");
            prev = soc;
        }
    }

    #[test]
    fn charge_never_lowers_soc(
        powers in proptest::collection::vec(-40_000.0f64..0.0, 1..40),
    ) {
        let mut b = Battery::new(leaf());
        b.reset_soc(Percent::new(50.0));
        let mut prev = 50.0;
        for p in powers {
            let soc = b.step(Watts::new(p), Seconds::new(5.0)).value();
            prop_assert!(soc >= prev - 1e-12);
            prev = soc;
        }
    }

    #[test]
    fn peukert_effective_current_at_least_nominal_scaling(
        current in 0.1f64..300.0,
    ) {
        // For pc > 1: I_eff > I when I > In, I_eff < I when I < In.
        let b = Battery::new(leaf());
        let i_eff = b.effective_current(ev_units::Amperes::new(current)).value();
        let nominal = 22.0;
        if current > nominal {
            prop_assert!(i_eff > current);
        } else if current < nominal {
            prop_assert!(i_eff < current + 1e-12);
        }
    }

    #[test]
    fn terminal_power_is_reproduced(power in 100.0f64..60_000.0) {
        // (Voc − I·R)·I = P for deliverable powers.
        let b = Battery::new(leaf());
        let i = b.current_for_power(Watts::new(power)).value();
        let voc = b.open_circuit_voltage().value();
        let delivered = (voc - i * 0.10) * i;
        prop_assert!((delivered - power).abs() < 1e-6 * power.max(1.0));
    }

    #[test]
    fn higher_power_needs_superlinear_current(
        p1 in 1_000.0f64..30_000.0,
        factor in 1.1f64..3.0,
    ) {
        // Voltage sag: doubling power more than doubles current growth
        // relative to the ideal P/V line.
        let b = Battery::new(leaf());
        let i1 = b.current_for_power(Watts::new(p1)).value();
        let i2 = b.current_for_power(Watts::new(p1 * factor)).value();
        prop_assert!(i2 > i1 * factor - 1e-9, "sag must amplify current");
    }

    #[test]
    fn soc_stays_within_bms_window(
        powers in proptest::collection::vec(-80_000.0f64..120_000.0, 1..60),
    ) {
        let mut b = Battery::new(leaf());
        for p in powers {
            let soc = b.step(Watts::new(p), Seconds::new(10.0)).value();
            prop_assert!((10.0..=100.0).contains(&soc));
        }
    }

    #[test]
    fn soh_monotone_in_both_stats(
        avg in 20.0f64..95.0,
        dev in 0.0f64..15.0,
        davg in 0.1f64..5.0,
        ddev in 0.1f64..5.0,
    ) {
        let m = SohModel::default();
        let base = m.degradation(SocStats { avg, dev });
        let more_avg = m.degradation(SocStats { avg: avg + davg, dev });
        let more_dev = m.degradation(SocStats { avg, dev: dev + ddev });
        prop_assert!(more_avg > base);
        prop_assert!(more_dev > base);
    }

    #[test]
    fn soh_cycles_inverse_of_degradation(
        avg in 40.0f64..95.0,
        dev in 0.1f64..10.0,
    ) {
        let m = SohModel::default();
        let stats = SocStats { avg, dev };
        let d = m.degradation(stats);
        let c = m.cycles_to_eol(stats);
        prop_assert!((c * d - SohModel::EOL_FADE_PERCENT).abs() < 1e-9);
    }

    #[test]
    fn soc_stats_shift_invariance(
        trace in proptest::collection::vec(20.0f64..95.0, 2..50),
        shift in -5.0f64..5.0,
    ) {
        // Shifting a trace moves the average and keeps the deviation.
        let base = SocStats::from_trace(&trace);
        let shifted: Vec<f64> = trace.iter().map(|v| v + shift).collect();
        let s = SocStats::from_trace(&shifted);
        prop_assert!((s.avg - base.avg - shift).abs() < 1e-9);
        prop_assert!((s.dev - base.dev).abs() < 1e-9);
    }

    #[test]
    fn bms_trace_length_tracks_steps(
        n in 1usize..50,
    ) {
        let mut bms = Bms::new(leaf(), SohModel::default());
        for _ in 0..n {
            bms.apply_load(Watts::new(10_000.0), Seconds::new(1.0));
        }
        prop_assert_eq!(bms.trace().len(), n + 1);
        let stats = bms.cycle_stats();
        prop_assert!(stats.avg <= 95.0 && stats.avg >= 10.0);
    }

    #[test]
    fn validated_params_round_trip(
        pc in 1.0f64..1.4,
        r in 0.0f64..0.5,
    ) {
        let p = BatteryParams {
            peukert_constant: pc,
            internal_resistance: ev_units::Ohms::new(r),
            ..leaf()
        };
        let v = p.clone().validated();
        prop_assert_eq!(v, p);
    }
}

#[test]
fn zero_temperature_factor_freezes_aging() {
    let m = SohModel::new(SohParams {
        temperature_factor: 0.0,
        ..SohParams::default()
    });
    assert_eq!(
        m.degradation(SocStats {
            avg: 90.0,
            dev: 9.0
        }),
        0.0
    );
}
