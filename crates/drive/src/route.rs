//! Navigation-style route descriptions → drive profiles.
//!
//! The paper's drive profile comes from the navigation stack: "the route
//! information and the parameters of each route segment such as: road
//! slope, average vehicle speed, and average vehicle acceleration, are
//! known accurately before driving" (Section II-A). This module models
//! that input: a [`Route`] is a list of [`RouteSegment`]s (length, speed
//! limit, grade, traffic factor) which [`Route::to_profile`] compiles into
//! a kinematically consistent [`DriveProfile`] with trapezoidal speed
//! transitions between segments.

use ev_units::{Kilometers, MetersPerSecond, Seconds};
use serde::{Deserialize, Serialize};

use crate::{AmbientConditions, DriveProfile, DriveSample};

/// One segment of a navigated route.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RouteSegment {
    /// Segment length (m).
    pub length_m: f64,
    /// Free-flow speed limit on the segment.
    pub speed_limit: MetersPerSecond,
    /// Constant road grade over the segment (%; 100 % = 45°).
    pub grade_percent: f64,
    /// Traffic factor ∈ (0, 1]: the fraction of the speed limit actually
    /// achievable (from live traffic data, the paper's ref \[17\]).
    pub traffic_factor: f64,
}

impl RouteSegment {
    /// Creates a segment, validating the parameters.
    ///
    /// # Panics
    ///
    /// Panics if the length or speed limit is non-positive or the traffic
    /// factor is outside `(0, 1]`.
    #[must_use]
    pub fn new(
        length_m: f64,
        speed_limit: MetersPerSecond,
        grade_percent: f64,
        traffic_factor: f64,
    ) -> Self {
        assert!(length_m > 0.0, "segment length must be positive");
        assert!(speed_limit.value() > 0.0, "speed limit must be positive");
        assert!(
            traffic_factor > 0.0 && traffic_factor <= 1.0,
            "traffic factor must lie in (0, 1]"
        );
        Self {
            length_m,
            speed_limit,
            grade_percent,
            traffic_factor,
        }
    }

    /// The speed actually driven on this segment.
    #[must_use]
    pub fn effective_speed(&self) -> MetersPerSecond {
        self.speed_limit * self.traffic_factor
    }
}

/// A navigated route: an ordered list of segments plus the stops between
/// them (intersections, traffic lights).
///
/// # Examples
///
/// ```
/// use ev_drive::{Route, RouteSegment};
/// use ev_units::{Celsius, KilometersPerHour, Seconds};
///
/// let route = Route::new(vec![
///     RouteSegment::new(800.0, KilometersPerHour::new(50.0).to_meters_per_second(), 0.0, 0.9),
///     RouteSegment::new(5_000.0, KilometersPerHour::new(100.0).to_meters_per_second(), 2.0, 1.0),
/// ])
/// .with_stop_after(0, Seconds::new(20.0)); // a light between them
/// let profile = route.to_profile(
///     ev_drive::AmbientConditions::constant(Celsius::new(28.0)),
///     Seconds::new(1.0),
/// );
/// assert!(profile.distance().value() > 5.0); // km
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Route {
    segments: Vec<RouteSegment>,
    /// `stops[i]` = idle duration after segment `i` (s).
    stops: Vec<f64>,
    /// Comfortable acceleration used for transitions (m/s²).
    accel: f64,
    /// Comfortable deceleration used for transitions (m/s², positive).
    decel: f64,
}

impl Route {
    /// Creates a route from segments with no intermediate stops.
    ///
    /// # Panics
    ///
    /// Panics if `segments` is empty.
    #[must_use]
    pub fn new(segments: Vec<RouteSegment>) -> Self {
        assert!(!segments.is_empty(), "route needs at least one segment");
        let n = segments.len();
        Self {
            segments,
            stops: vec![0.0; n],
            accel: 1.2,
            decel: 1.5,
        }
    }

    /// Adds an idle stop of the given duration after segment `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range or the duration is negative.
    #[must_use]
    pub fn with_stop_after(mut self, index: usize, duration: Seconds) -> Self {
        assert!(index < self.segments.len(), "segment index out of range");
        assert!(
            duration.value() >= 0.0,
            "stop duration must be non-negative"
        );
        self.stops[index] = duration.value();
        self
    }

    /// Sets the comfort acceleration/deceleration used at transitions.
    ///
    /// # Panics
    ///
    /// Panics if either value is non-positive.
    #[must_use]
    pub fn with_comfort_limits(mut self, accel: f64, decel: f64) -> Self {
        assert!(
            accel > 0.0 && decel > 0.0,
            "comfort limits must be positive"
        );
        self.accel = accel;
        self.decel = decel;
        self
    }

    /// Borrows the segments.
    #[must_use]
    pub fn segments(&self) -> &[RouteSegment] {
        &self.segments
    }

    /// Total route length.
    #[must_use]
    pub fn length(&self) -> Kilometers {
        Kilometers::new(self.segments.iter().map(|s| s.length_m).sum::<f64>() / 1000.0)
    }

    /// Compiles the route into a sampled drive profile: trapezoidal speed
    /// transitions at the comfort limits, a full stop wherever a stop
    /// duration was set, and a final deceleration to rest.
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0`.
    #[must_use]
    pub fn to_profile(&self, ambient: AmbientConditions, dt: Seconds) -> DriveProfile {
        assert!(dt.value() > 0.0, "sample period must be positive");
        let h = dt.value();
        let mut speeds: Vec<f64> = vec![0.0];
        let mut grades: Vec<f64> = vec![self.segments[0].grade_percent];
        let mut v = 0.0f64;

        for (i, seg) in self.segments.iter().enumerate() {
            let target = seg.effective_speed().value();
            let grade = seg.grade_percent;
            let mut travelled = 0.0;
            // Decide where to start braking: if a stop follows (or this is
            // the last segment), reserve braking distance v²/(2·decel).
            let must_stop = self.stops[i] > 0.0 || i + 1 == self.segments.len();
            let next_target = if must_stop {
                0.0
            } else {
                self.segments[i + 1].effective_speed().value()
            };
            while travelled < seg.length_m {
                // Distance needed to reach the exit speed from here.
                let exit_gap = v - next_target;
                let brake_dist = if exit_gap > 0.0 {
                    exit_gap * (v + next_target) / (2.0 * self.decel)
                } else {
                    0.0
                };
                let remaining = seg.length_m - travelled;
                if remaining <= brake_dist + v * h {
                    // Brake toward the exit speed.
                    v = (v - self.decel * h).max(next_target);
                } else if v < target {
                    v = (v + self.accel * h).min(target);
                } else if v > target {
                    v = (v - self.decel * h).max(target);
                }
                travelled += v * h;
                speeds.push(v);
                grades.push(grade);
                if v <= 0.0 && remaining > 1.0 {
                    // Defensive: cannot make progress (should not happen).
                    break;
                }
            }
            if must_stop {
                while v > 0.0 {
                    v = (v - self.decel * h).max(0.0);
                    speeds.push(v);
                    grades.push(grade);
                }
                for _ in 0..(self.stops[i] / h).round() as usize {
                    speeds.push(0.0);
                    grades.push(grade);
                }
            }
        }

        let samples: Vec<DriveSample> = speeds
            .iter()
            .enumerate()
            .map(|(k, &vk)| {
                let t = k as f64 * h;
                let a = if k + 1 < speeds.len() {
                    (speeds[k + 1] - vk) / h
                } else {
                    0.0
                };
                DriveSample {
                    t: Seconds::new(t),
                    v: MetersPerSecond::new(vk),
                    a,
                    slope_percent: grades[k],
                    ambient: ambient.temperature_at(Seconds::new(t)),
                    solar: ambient.solar_at(Seconds::new(t)),
                }
            })
            .collect();
        DriveProfile::from_samples("route", dt, samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ev_units::{Celsius, KilometersPerHour};

    fn kmh(v: f64) -> MetersPerSecond {
        KilometersPerHour::new(v).to_meters_per_second()
    }

    fn two_segment_route() -> Route {
        Route::new(vec![
            RouteSegment::new(1_000.0, kmh(50.0), 0.0, 1.0),
            RouteSegment::new(4_000.0, kmh(100.0), 1.5, 0.9),
        ])
        .with_stop_after(0, Seconds::new(15.0))
    }

    #[test]
    fn profile_length_matches_route_length() {
        let route = two_segment_route();
        let p = route.to_profile(
            AmbientConditions::constant(Celsius::new(25.0)),
            Seconds::new(1.0),
        );
        let rel = (p.distance().value() - route.length().value()).abs() / route.length().value();
        assert!(rel < 0.05, "distance off by {:.1}%", rel * 100.0);
    }

    #[test]
    fn stops_produce_zero_speed_intervals() {
        let p = two_segment_route().to_profile(
            AmbientConditions::constant(Celsius::new(25.0)),
            Seconds::new(1.0),
        );
        // Find an interior zero-speed run of at least 15 samples.
        let speeds: Vec<f64> = p.iter().map(|s| s.v.value()).collect();
        let mut run = 0;
        let mut max_interior_run = 0;
        for &v in &speeds[1..speeds.len() - 1] {
            if v == 0.0 {
                run += 1;
                max_interior_run = max_interior_run.max(run);
            } else {
                run = 0;
            }
        }
        assert!(max_interior_run >= 14, "stop run {max_interior_run}");
    }

    #[test]
    fn speeds_respect_traffic_scaled_limits() {
        let p = two_segment_route().to_profile(
            AmbientConditions::constant(Celsius::new(25.0)),
            Seconds::new(1.0),
        );
        let vmax = p.iter().map(|s| s.v.value()).fold(0.0f64, f64::max);
        assert!(vmax <= kmh(90.0).value() + 1e-9, "vmax {vmax}"); // 100 · 0.9
    }

    #[test]
    fn accelerations_respect_comfort_limits() {
        let route = two_segment_route().with_comfort_limits(1.0, 1.3);
        let p = route.to_profile(
            AmbientConditions::constant(Celsius::new(25.0)),
            Seconds::new(1.0),
        );
        for s in p.iter() {
            assert!(s.a <= 1.0 + 1e-9, "a {}", s.a);
            assert!(s.a >= -1.3 - 1e-9, "a {}", s.a);
        }
    }

    #[test]
    fn grades_follow_segments() {
        let p = two_segment_route().to_profile(
            AmbientConditions::constant(Celsius::new(25.0)),
            Seconds::new(1.0),
        );
        assert_eq!(p.sample(1).slope_percent, 0.0);
        let last = p.sample(p.len() - 1);
        assert_eq!(last.slope_percent, 1.5);
    }

    #[test]
    fn ends_at_rest() {
        let p = two_segment_route().to_profile(
            AmbientConditions::constant(Celsius::new(25.0)),
            Seconds::new(1.0),
        );
        assert_eq!(p.sample(p.len() - 1).v.value(), 0.0);
    }

    #[test]
    fn route_length_sums_segments() {
        assert!((two_segment_route().length().value() - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "traffic factor")]
    fn rejects_bad_traffic_factor() {
        let _ = RouteSegment::new(100.0, kmh(50.0), 0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one segment")]
    fn rejects_empty_route() {
        let _ = Route::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "index out of range")]
    fn rejects_bad_stop_index() {
        let _ = two_segment_route().with_stop_after(7, Seconds::new(1.0));
    }
}
