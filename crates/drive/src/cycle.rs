//! Standard driving cycles as piecewise-linear speed traces.

use ev_units::{Kilometers, KilometersPerHour, MetersPerSecond, Seconds};
use serde::{Deserialize, Serialize};

/// A named driving cycle: vehicle speed versus time as a piecewise-linear
/// trace.
///
/// NEDC, ECE-15 and EUDC are *defined* by regulation as piecewise-linear
/// segments and are encoded here exactly (modulo gear-change plateaus).
/// US06, SC03 and UDDS are measured dynamometer traces in reality; the
/// constructors here synthesize piecewise-linear approximations that match
/// the published duration, distance, average and maximum speed of each
/// cycle (the controller only cares about the power-peak structure, which
/// the approximations preserve — see `DESIGN.md`).
///
/// # Examples
///
/// ```
/// use ev_drive::DriveCycle;
///
/// let udds = DriveCycle::udds();
/// let stats = udds.stats();
/// assert!((stats.duration.value() - 1369.0).abs() < 1.0);
/// assert!(stats.max_speed.to_kilometers_per_hour().value() < 92.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriveCycle {
    name: String,
    /// `(time s, speed m/s)` breakpoints, strictly increasing in time.
    points: Vec<(f64, f64)>,
}

/// Summary statistics of a [`DriveCycle`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CycleStats {
    /// Total cycle duration.
    pub duration: Seconds,
    /// Distance covered.
    pub distance: Kilometers,
    /// Time-averaged speed (idle included).
    pub avg_speed: MetersPerSecond,
    /// Peak speed.
    pub max_speed: MetersPerSecond,
    /// Largest acceleration between breakpoints (m/s²).
    pub max_accel: f64,
    /// Largest deceleration between breakpoints (m/s², negative).
    pub max_decel: f64,
}

/// One stop-to-stop speed hump used by the synthesized cycles:
/// `(idle s, peak km/h, accel s, cruise s, decel s)`.
type Hump = (f64, f64, f64, f64, f64);

impl DriveCycle {
    /// Creates a cycle from `(seconds, km/h)` breakpoints.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two breakpoints are given, times are not
    /// strictly increasing, or any speed is negative.
    #[must_use]
    pub fn from_breakpoints(name: &str, points_kmh: &[(f64, f64)]) -> Self {
        assert!(
            points_kmh.len() >= 2,
            "cycle needs at least two breakpoints"
        );
        let mut points = Vec::with_capacity(points_kmh.len());
        let mut prev_t = f64::NEG_INFINITY;
        for &(t, v_kmh) in points_kmh {
            assert!(t > prev_t, "cycle breakpoint times must strictly increase");
            assert!(v_kmh >= 0.0, "cycle speed must be non-negative");
            prev_t = t;
            points.push((t, v_kmh / 3.6));
        }
        Self {
            name: name.to_owned(),
            points,
        }
    }

    /// The ECE-15 urban cycle (195 s, ≈1 km), the urban building block of
    /// the NEDC. Encoded from the regulatory segment definition.
    #[must_use]
    pub fn ece15() -> Self {
        Self::from_breakpoints(
            "ECE-15",
            &[
                (0.0, 0.0),
                (11.0, 0.0),
                (15.0, 15.0),
                (23.0, 15.0),
                (28.0, 0.0),
                (49.0, 0.0),
                (61.0, 32.0),
                (85.0, 32.0),
                (96.0, 0.0),
                (117.0, 0.0),
                (143.0, 50.0),
                (155.0, 50.0),
                (163.0, 35.0),
                (176.0, 35.0),
                (188.0, 0.0),
                (195.0, 0.0),
            ],
        )
    }

    /// The Extra-Urban Driving Cycle (400 s, ≈6.9 km, 120 km/h peak).
    /// Encoded from the regulatory segment definition.
    #[must_use]
    pub fn eudc() -> Self {
        Self::from_breakpoints(
            "EUDC",
            &[
                (0.0, 0.0),
                (20.0, 0.0),
                (61.0, 70.0),
                (111.0, 70.0),
                (119.0, 50.0),
                (188.0, 50.0),
                (201.0, 70.0),
                (251.0, 70.0),
                (286.0, 100.0),
                (316.0, 100.0),
                (336.0, 120.0),
                (346.0, 120.0),
                (380.0, 0.0),
                (400.0, 0.0),
            ],
        )
    }

    /// The New European Driving Cycle: four ECE-15 repetitions followed by
    /// one EUDC (1180 s, ≈10.8 km).
    #[must_use]
    pub fn nedc() -> Self {
        let ece = Self::ece15();
        let mut cycle = ece.clone();
        for _ in 0..3 {
            cycle = cycle.concat(&ece);
        }
        let mut nedc = cycle.concat(&Self::eudc());
        nedc.name = "NEDC".to_owned();
        nedc
    }

    /// The ECE + EUDC combination used by the paper's Table I and its
    /// most-improved result in Fig. 7: one urban ECE-15 followed by the
    /// EUDC (595 s, ≈7.8 km).
    #[must_use]
    pub fn ece_eudc() -> Self {
        let mut c = Self::ece15().concat(&Self::eudc());
        c.name = "ECE_EUDC".to_owned();
        c
    }

    /// The US06 supplemental FTP cycle: aggressive, high-speed highway
    /// driving (596 s, ≈12.8 km, 129.2 km/h peak). Synthesized to the
    /// published duration / distance / speed envelope.
    #[must_use]
    pub fn us06() -> Self {
        Self::from_humps(
            "US06",
            &[
                (5.0, 112.0, 22.0, 30.0, 18.0),
                (8.0, 129.2, 25.0, 60.0, 20.0),
                (5.0, 95.0, 15.0, 20.0, 13.0),
                (8.0, 125.0, 22.0, 55.0, 18.0),
                (5.0, 80.0, 12.0, 15.0, 10.0),
                (8.0, 120.0, 20.0, 60.0, 18.0),
                (5.0, 100.0, 15.0, 35.0, 14.0),
            ],
            35.0,
        )
    }

    /// The SC03 air-conditioning SFTP cycle: urban driving with stops
    /// (596 s, ≈5.8 km, 88.2 km/h peak). Synthesized to the published
    /// envelope.
    #[must_use]
    pub fn sc03() -> Self {
        Self::from_humps(
            "SC03",
            &[
                (20.0, 45.0, 16.0, 25.0, 13.0),
                (15.0, 88.2, 30.0, 70.0, 25.0),
                (20.0, 40.0, 14.0, 20.0, 12.0),
                (15.0, 55.0, 18.0, 30.0, 15.0),
                (20.0, 35.0, 12.0, 18.0, 10.0),
                (15.0, 60.0, 20.0, 35.0, 16.0),
                (20.0, 48.0, 16.0, 22.0, 13.0),
            ],
            21.0,
        )
    }

    /// The EPA Urban Dynamometer Driving Schedule: city stop-and-go
    /// (1369 s, ≈12 km, 91 km/h peak). Synthesized to the published
    /// envelope with 15 stop-to-stop humps.
    #[must_use]
    pub fn udds() -> Self {
        Self::from_humps(
            "UDDS",
            &[
                (20.0, 40.0, 15.0, 30.0, 12.0),
                (15.0, 50.0, 18.0, 40.0, 15.0),
                (10.0, 91.0, 30.0, 60.0, 25.0),
                (15.0, 60.0, 20.0, 45.0, 18.0),
                (10.0, 45.0, 15.0, 25.0, 12.0),
                (20.0, 55.0, 18.0, 35.0, 15.0),
                (10.0, 70.0, 25.0, 50.0, 20.0),
                (15.0, 35.0, 12.0, 20.0, 10.0),
                (10.0, 50.0, 15.0, 30.0, 13.0),
                (15.0, 65.0, 22.0, 40.0, 18.0),
                (10.0, 40.0, 14.0, 22.0, 11.0),
                (15.0, 55.0, 18.0, 30.0, 14.0),
                (10.0, 48.0, 15.0, 25.0, 12.0),
                (12.0, 58.0, 19.0, 35.0, 15.0),
                (15.0, 30.0, 10.0, 20.0, 8.0),
            ],
            176.0,
        )
    }

    /// The WLTC Class 3b cycle (1800 s, ≈23.3 km, 131.3 km/h peak), the
    /// modern successor to the NEDC — not part of the paper's evaluation
    /// (it postdates the paper's toolchain) but useful for forward
    /// comparisons. Synthesized to the published envelope with its four
    /// phases: Low, Medium, High, Extra-High.
    #[must_use]
    pub fn wltc_class3() -> Self {
        Self::from_humps(
            "WLTC-3",
            &[
                // Low phase (589 s, ≈3.1 km, ≤56.5 km/h): urban stop-go.
                (12.0, 40.0, 15.0, 28.0, 12.0),
                (10.0, 56.5, 20.0, 35.0, 16.0),
                (14.0, 35.0, 12.0, 22.0, 10.0),
                (10.0, 48.0, 16.0, 30.0, 13.0),
                (12.0, 30.0, 10.0, 18.0, 9.0),
                (16.0, 52.0, 18.0, 40.0, 15.0),
                (24.0, 42.0, 14.0, 26.0, 12.0),
                // Medium phase (433 s, ≈4.8 km, ≤76.6 km/h).
                (37.0, 76.6, 26.0, 60.0, 20.0),
                (35.0, 60.0, 18.0, 45.0, 16.0),
                (12.0, 70.0, 22.0, 55.0, 18.0),
                (14.0, 55.0, 16.0, 60.0, 15.0),
                // High phase (455 s, ≈7.2 km, ≤97.4 km/h).
                (35.0, 97.4, 30.0, 80.0, 24.0),
                (8.0, 85.0, 24.0, 70.0, 20.0),
                (10.0, 92.0, 26.0, 75.0, 22.0),
                // Extra-high phase (323 s, ≈8.3 km, ≤131.3 km/h).
                (33.0, 131.3, 38.0, 70.0, 30.0),
                (6.0, 110.0, 26.0, 70.0, 24.0),
            ],
            121.0,
        )
    }

    /// All five cycles of the paper's evaluation, in the order of its
    /// figures: NEDC, US06, ECE_EUDC, SC03, UDDS.
    #[must_use]
    pub fn paper_evaluation_set() -> Vec<Self> {
        vec![
            Self::nedc(),
            Self::us06(),
            Self::ece_eudc(),
            Self::sc03(),
            Self::udds(),
        ]
    }

    /// Builds a cycle from stop-to-stop humps.
    fn from_humps(name: &str, humps: &[Hump], final_idle: f64) -> Self {
        let mut pts: Vec<(f64, f64)> = vec![(0.0, 0.0)];
        let mut t = 0.0;
        for &(idle, peak, accel, cruise, decel) in humps {
            t += idle;
            pts.push((t, 0.0));
            t += accel;
            pts.push((t, peak));
            t += cruise;
            pts.push((t, peak));
            t += decel;
            pts.push((t, 0.0));
        }
        t += final_idle;
        pts.push((t, 0.0));
        Self::from_breakpoints(name, &pts)
    }

    /// The cycle's name (e.g. `"NEDC"`).
    #[inline]
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Breakpoints as `(seconds, m/s)` pairs.
    #[inline]
    #[must_use]
    pub fn breakpoints(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Total duration of the cycle.
    #[must_use]
    pub fn duration(&self) -> Seconds {
        Seconds::new(self.points.last().expect("non-empty").0 - self.points[0].0)
    }

    /// Linearly interpolated speed at time `t` (clamped to the cycle span).
    #[must_use]
    pub fn speed_at(&self, t: Seconds) -> MetersPerSecond {
        let t = t.value();
        let pts = &self.points;
        if t <= pts[0].0 {
            return MetersPerSecond::new(pts[0].1);
        }
        if t >= pts[pts.len() - 1].0 {
            return MetersPerSecond::new(pts[pts.len() - 1].1);
        }
        // Binary search for the bracketing segment.
        let idx = pts.partition_point(|&(pt, _)| pt <= t);
        let (t0, v0) = pts[idx - 1];
        let (t1, v1) = pts[idx];
        let frac = (t - t0) / (t1 - t0);
        MetersPerSecond::new(v0 + frac * (v1 - v0))
    }

    /// Distance covered over the whole cycle (exact trapezoidal integral of
    /// the piecewise-linear trace).
    #[must_use]
    pub fn distance(&self) -> Kilometers {
        let mut meters = 0.0;
        for w in self.points.windows(2) {
            let (t0, v0) = w[0];
            let (t1, v1) = w[1];
            meters += 0.5 * (v0 + v1) * (t1 - t0);
        }
        Kilometers::new(meters / 1000.0)
    }

    /// Summary statistics.
    #[must_use]
    pub fn stats(&self) -> CycleStats {
        let duration = self.duration();
        let distance = self.distance();
        let avg_speed =
            MetersPerSecond::new(distance.to_meters().value() / duration.value().max(1e-9));
        let max_speed = self.points.iter().map(|&(_, v)| v).fold(0.0f64, f64::max);
        let mut max_accel = 0.0f64;
        let mut max_decel = 0.0f64;
        for w in self.points.windows(2) {
            let a = (w[1].1 - w[0].1) / (w[1].0 - w[0].0);
            max_accel = max_accel.max(a);
            max_decel = max_decel.min(a);
        }
        CycleStats {
            duration,
            distance,
            avg_speed,
            max_speed: MetersPerSecond::new(max_speed),
            max_accel,
            max_decel,
        }
    }

    /// Average speed over the cycle (idle included).
    #[must_use]
    pub fn avg_speed(&self) -> KilometersPerHour {
        self.stats().avg_speed.to_kilometers_per_hour()
    }

    /// Concatenates another cycle after this one, shifting its times.
    #[must_use]
    pub fn concat(&self, other: &Self) -> Self {
        let offset = self.points.last().expect("non-empty").0;
        let mut points = self.points.clone();
        for &(t, v) in &other.points {
            let shifted = t + offset;
            // Skip a duplicate junction breakpoint at identical speed.
            if let Some(&(lt, lv)) = points.last() {
                if (shifted - lt).abs() < 1e-9 {
                    assert!(
                        (v - lv).abs() < 1e-9,
                        "cannot concatenate cycles with a speed discontinuity"
                    );
                    continue;
                }
            }
            points.push((shifted, v));
        }
        Self {
            name: format!("{}+{}", self.name, other.name),
            points,
        }
    }

    /// Returns this cycle repeated `n` times.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn repeat(&self, n: usize) -> Self {
        assert!(n > 0, "repeat count must be positive");
        let mut out = self.clone();
        for _ in 1..n {
            out = out.concat(self);
        }
        out.name = format!("{}x{n}", self.name);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Published reference envelopes: (name, duration s, distance km,
    /// max km/h). Distance tolerance ±5 % for the synthesized cycles.
    const REFERENCE: &[(&str, f64, f64, f64)] = &[
        ("ECE-15", 195.0, 1.013, 50.0),
        ("EUDC", 400.0, 6.955, 120.0),
        ("NEDC", 1180.0, 10.93, 120.0),
        ("ECE_EUDC", 595.0, 7.97, 120.0),
        ("US06", 596.0, 12.89, 129.2),
        ("SC03", 596.0, 5.76, 88.2),
        ("UDDS", 1369.0, 11.99, 91.0),
    ];

    fn by_name(name: &str) -> DriveCycle {
        match name {
            "ECE-15" => DriveCycle::ece15(),
            "EUDC" => DriveCycle::eudc(),
            "NEDC" => DriveCycle::nedc(),
            "ECE_EUDC" => DriveCycle::ece_eudc(),
            "US06" => DriveCycle::us06(),
            "SC03" => DriveCycle::sc03(),
            "UDDS" => DriveCycle::udds(),
            _ => unreachable!(),
        }
    }

    #[test]
    fn cycles_match_published_envelopes() {
        for &(name, dur, dist, vmax) in REFERENCE {
            let c = by_name(name);
            let s = c.stats();
            assert!(
                (s.duration.value() - dur).abs() < 1.0,
                "{name}: duration {} vs {dur}",
                s.duration.value()
            );
            let rel = (s.distance.value() - dist).abs() / dist;
            assert!(
                rel < 0.05,
                "{name}: distance {} vs {dist} ({:.1}% off)",
                s.distance.value(),
                rel * 100.0
            );
            let mv = s.max_speed.to_kilometers_per_hour().value();
            assert!((mv - vmax).abs() < 0.5, "{name}: max speed {mv} vs {vmax}");
        }
    }

    #[test]
    fn accelerations_are_physically_plausible() {
        for &(name, ..) in REFERENCE {
            let s = by_name(name).stats();
            assert!(
                s.max_accel > 0.0 && s.max_accel < 4.0,
                "{name} accel {}",
                s.max_accel
            );
            assert!(
                s.max_decel < 0.0 && s.max_decel > -5.0,
                "{name} decel {}",
                s.max_decel
            );
        }
    }

    #[test]
    fn us06_is_the_most_aggressive() {
        let us06 = DriveCycle::us06().stats();
        let udds = DriveCycle::udds().stats();
        let sc03 = DriveCycle::sc03().stats();
        assert!(us06.avg_speed.value() > 2.0 * udds.avg_speed.value());
        assert!(us06.max_speed.value() > sc03.max_speed.value());
    }

    #[test]
    fn speed_interpolation() {
        let c = DriveCycle::from_breakpoints("t", &[(0.0, 0.0), (10.0, 36.0), (20.0, 36.0)]);
        assert_eq!(c.speed_at(Seconds::new(5.0)).value(), 5.0); // 18 km/h
        assert_eq!(c.speed_at(Seconds::new(15.0)).value(), 10.0);
        // Clamped outside the span.
        assert_eq!(c.speed_at(Seconds::new(-1.0)).value(), 0.0);
        assert_eq!(c.speed_at(Seconds::new(99.0)).value(), 10.0);
    }

    #[test]
    fn nedc_is_four_ece_plus_eudc() {
        let nedc = DriveCycle::nedc();
        assert_eq!(nedc.name(), "NEDC");
        let d4 = 4.0 * DriveCycle::ece15().distance().value();
        let de = DriveCycle::eudc().distance().value();
        assert!((nedc.distance().value() - d4 - de).abs() < 1e-9);
        // Speed at 195 s into the second ECE repetition matches the first.
        let v1 = nedc.speed_at(Seconds::new(100.0)).value();
        let v2 = nedc.speed_at(Seconds::new(295.0)).value();
        assert!((v1 - v2).abs() < 1e-9);
    }

    #[test]
    fn repeat_scales_duration_and_distance() {
        let c = DriveCycle::ece15().repeat(3);
        assert!((c.duration().value() - 585.0).abs() < 1e-9);
        assert!((c.distance().value() - 3.0 * DriveCycle::ece15().distance().value()).abs() < 1e-9);
    }

    #[test]
    fn wltc_matches_published_envelope() {
        let c = DriveCycle::wltc_class3();
        let s = c.stats();
        assert!(
            (s.duration.value() - 1800.0).abs() < 20.0,
            "duration {}",
            s.duration.value()
        );
        let rel = (s.distance.value() - 23.27).abs() / 23.27;
        assert!(
            rel < 0.08,
            "distance {} ({:.1}% off)",
            s.distance.value(),
            rel * 100.0
        );
        assert!((s.max_speed.to_kilometers_per_hour().value() - 131.3).abs() < 0.5);
        // WLTC is faster than NEDC on average (the reason it replaced it).
        assert!(s.avg_speed.value() > DriveCycle::nedc().stats().avg_speed.value());
    }

    #[test]
    fn paper_set_has_five_cycles_in_order() {
        let set = DriveCycle::paper_evaluation_set();
        let names: Vec<&str> = set.iter().map(DriveCycle::name).collect();
        assert_eq!(names, vec!["NEDC", "US06", "ECE_EUDC", "SC03", "UDDS"]);
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn rejects_non_monotone_times() {
        let _ = DriveCycle::from_breakpoints("bad", &[(0.0, 0.0), (0.0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_speed() {
        let _ = DriveCycle::from_breakpoints("bad", &[(0.0, 0.0), (1.0, -3.0)]);
    }

    #[test]
    fn serde_round_trip() {
        let c = DriveCycle::ece15();
        let json = serde_json::to_string(&c).unwrap();
        let back: DriveCycle = serde_json::from_str(&json).unwrap();
        assert_eq!(c.name(), back.name());
        for (a, b) in c.breakpoints().iter().zip(back.breakpoints()) {
            assert!((a.0 - b.0).abs() < 1e-12 && (a.1 - b.1).abs() < 1e-12);
        }
    }
}
