//! Property-based tests for the power train: monotonicity, envelope and
//! regeneration invariants over random operating points.

use ev_powertrain::{EfficiencyMap, IceParams, IceVehicle, PowerTrain, RoadLoad, VehicleParams};
use ev_units::{MetersPerSecond, Watts};
use proptest::prelude::*;

fn train() -> PowerTrain {
    PowerTrain::new(VehicleParams::nissan_leaf())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn power_is_monotone_in_speed_at_cruise(
        v in 2.0f64..30.0,
        dv in 0.5f64..5.0,
    ) {
        let t = train();
        let p1 = t.power(MetersPerSecond::new(v), 0.0, 0.0).value();
        let p2 = t.power(MetersPerSecond::new(v + dv), 0.0, 0.0).value();
        prop_assert!(p2 > p1, "cruise power must grow with speed: {p1} vs {p2}");
    }

    #[test]
    fn power_is_monotone_in_grade(
        v in 2.0f64..30.0,
        g in 0.0f64..8.0,
        dg in 0.5f64..4.0,
    ) {
        let t = train();
        let p1 = t.power(MetersPerSecond::new(v), 0.0, g).value();
        let p2 = t.power(MetersPerSecond::new(v), 0.0, g + dg).value();
        prop_assert!(p2 >= p1);
    }

    #[test]
    fn regen_never_exceeds_cap_or_positive(
        v in 2.0f64..35.0,
        a in -4.0f64..-0.2,
        g in -8.0f64..0.0,
    ) {
        let p = train().power(MetersPerSecond::new(v), a, g).value();
        prop_assert!(p >= -30_000.0 - 1e-9, "regen cap: {p}");
    }

    #[test]
    fn electrical_power_at_least_mechanical_when_motoring(
        v in 1.0f64..30.0,
        a in 0.0f64..2.0,
        g in 0.0f64..5.0,
    ) {
        // η ≤ 1 ⇒ electrical ≥ mechanical (within the motor envelope).
        let t = train();
        let load = t.road_load(MetersPerSecond::new(v), a, g);
        let mech = load.tractive().value() * v;
        if mech > 0.0 {
            let elec = t.power(MetersPerSecond::new(v), a, g).value();
            // The envelope may clamp mech; electrical of the *clamped*
            // mech still exceeds clamped mech, so only assert when the
            // demand is clearly inside the envelope.
            let f_cap = 280.0 * 7.94 / 0.3156;
            let p_cap = 80_000.0;
            if load.tractive().value() < 0.9 * f_cap && mech < 0.9 * p_cap {
                prop_assert!(elec >= mech - 1e-9, "elec {elec} < mech {mech}");
            }
        }
    }

    #[test]
    fn road_load_decomposition_is_consistent(
        v in 0.0f64..35.0,
        a in -3.0f64..3.0,
        g in -8.0f64..8.0,
    ) {
        let params = VehicleParams::nissan_leaf();
        let load = RoadLoad::at(&params, MetersPerSecond::new(v), a, g);
        let sum = load.aero.value() + load.grade.value() + load.rolling.value();
        prop_assert!((load.road().value() - sum).abs() < 1e-9);
        prop_assert!(
            (load.tractive().value() - sum - load.inertial.value()).abs() < 1e-9
        );
        // Signs: aero and rolling resist forward motion.
        if v > 0.0 {
            prop_assert!(load.aero.value() >= 0.0);
            prop_assert!(load.rolling.value() >= 0.0);
        }
    }

    #[test]
    fn grade_force_is_odd_in_slope(
        v in 1.0f64..20.0,
        g in 0.1f64..10.0,
    ) {
        let params = VehicleParams::nissan_leaf();
        let up = RoadLoad::at(&params, MetersPerSecond::new(v), 0.0, g);
        let down = RoadLoad::at(&params, MetersPerSecond::new(v), 0.0, -g);
        prop_assert!((up.grade.value() + down.grade.value()).abs() < 1e-9);
    }

    #[test]
    fn efficiency_lookup_stays_in_unit_interval(
        w in -100.0f64..3000.0,
        tau in -500.0f64..500.0,
    ) {
        let eta = EfficiencyMap::leaf_like().efficiency(w, tau);
        prop_assert!(eta > 0.0 && eta <= 1.0, "eta {eta}");
    }

    #[test]
    fn ice_fuel_power_covers_mechanical_demand(
        v in 3.0f64..30.0,
        a in 0.0f64..1.5,
    ) {
        // Fuel power must exceed mechanical power by at least the peak
        // efficiency factor.
        let ice = IceVehicle::new(IceParams::corolla_like());
        let fuel = ice.propulsion_fuel_power(MetersPerSecond::new(v), a, 0.0).value();
        let chassis = IceParams::corolla_like().vehicle;
        let mech = RoadLoad::at(&chassis, MetersPerSecond::new(v), a, 0.0)
            .tractive()
            .value()
            * v;
        if mech > 0.0 {
            prop_assert!(fuel >= mech / 0.32, "fuel {fuel} vs mech {mech}");
        }
    }

    #[test]
    fn ice_heating_cheaper_than_cooling_when_waste_heat_suffices(
        v in 5.0f64..30.0,
        load in 500.0f64..5_000.0,
    ) {
        // Only where the engine's waste heat covers the cabin load is
        // heating nearly free; beyond it a PTC shortfall kicks in (and can
        // legitimately cost more than the compressor).
        let ice = IceVehicle::new(IceParams::corolla_like());
        let available = ice.waste_heat(MetersPerSecond::new(v), 0.0, 0.0).value();
        prop_assume!(load <= available);
        let heat = ice.hvac_fuel_power(MetersPerSecond::new(v), Watts::new(load), true);
        let cool = ice.hvac_fuel_power(MetersPerSecond::new(v), Watts::new(load), false);
        prop_assert!(heat.value() <= cool.value() + 1e-9,
            "covered heating must be no dearer: {} vs {}",
            heat.value(), cool.value());
    }

    #[test]
    fn consumption_per_100km_has_a_sweet_spot_shape(
        v_low in 6.0f64..9.0,
        v_high in 27.0f64..33.0,
    ) {
        // Consumption per distance is high at crawling speeds (fixed
        // losses dominate) — not asserted here because our model has no
        // idle draw — but must rise steeply at highway speeds vs mid
        // speeds (aero ∝ v²).
        let t = train();
        let mid = t.cruise_consumption_kwh_per_100km(MetersPerSecond::new(15.0));
        let high = t.cruise_consumption_kwh_per_100km(MetersPerSecond::new(v_high));
        let low = t.cruise_consumption_kwh_per_100km(MetersPerSecond::new(v_low));
        prop_assert!(high > mid, "aero must dominate: {high} vs {mid}");
        prop_assert!(low > 0.0);
    }
}
