//! The metric registry and point-in-time snapshots of its contents.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::metrics::{
    Counter, Exemplar, Gauge, GaugeCore, Histogram, HistogramCore, HistogramSpec,
};

/// Label pairs as passed at mint sites: `&[("shard", "3")]`.
pub type LabelSet<'a> = &'a [(&'a str, &'a str)];

/// Canonical series identity: metric name plus its label pairs sorted
/// by key (later duplicates of a key win, so scoped base labels can be
/// overridden at the mint site). Two mint calls with the same canonical
/// key share storage.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct SeriesKey {
    name: String,
    labels: Vec<(String, String)>,
}

/// Merges base labels and call-site labels into a canonical sorted
/// vector; for duplicate keys the *last* occurrence wins (call sites
/// override a scope's base labels).
fn canonical_labels(base: &[(String, String)], extra: LabelSet<'_>) -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = Vec::with_capacity(base.len() + extra.len());
    let mut put = |k: &str, v: &str| match out.iter_mut().find(|(ek, _)| ek == k) {
        Some((_, ev)) => *ev = v.to_string(),
        None => out.push((k.to_string(), v.to_string())),
    };
    for (k, v) in base {
        put(k, v);
    }
    for (k, v) in extra {
        put(k, v);
    }
    out.sort();
    out
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: Mutex<BTreeMap<SeriesKey, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<SeriesKey, Arc<GaugeCore>>>,
    histograms: Mutex<BTreeMap<SeriesKey, Arc<HistogramCore>>>,
}

/// A named collection of counters, gauges and histograms.
///
/// `Registry` is a cheap cloneable handle; all clones share the same
/// metric store, so a registry can be minted once and handed to a
/// controller, an observer and an exporter. A registry created with
/// [`Registry::disabled`] (also the `Default`) owns no store at all:
/// every handle it mints is inert and records nothing.
///
/// Every metric can carry **labels** (dimensions): the `*_with` mint
/// methods key the series by `(name, sorted labels)`, and
/// [`Registry::scoped`] derives a handle whose base labels are stamped
/// onto everything minted through it — how the fleet engine turns the
/// MPC's fixed metric names into per-shard series without the solver
/// knowing about shards. The unlabeled methods are the `*_with` methods
/// with an empty label set, unchanged from before labels existed.
///
/// Registration takes a lock; recording on the returned handles is
/// lock-free. Registering the same key twice returns a handle to the
/// same underlying metric (for histograms, the first spec wins).
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Option<Arc<RegistryInner>>,
    base_labels: Vec<(String, String)>,
}

impl Registry {
    /// A live registry that stores every metric registered on it.
    pub fn enabled() -> Self {
        Registry {
            inner: Some(Arc::new(RegistryInner::default())),
            base_labels: Vec::new(),
        }
    }

    /// A no-op registry: all handles minted from it discard updates.
    pub fn disabled() -> Self {
        Registry {
            inner: None,
            base_labels: Vec::new(),
        }
    }

    /// Construct enabled or disabled from a flag.
    pub fn with_enabled(enabled: bool) -> Self {
        if enabled {
            Registry::enabled()
        } else {
            Registry::disabled()
        }
    }

    /// Whether metrics minted from this registry are recorded anywhere.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A handle onto the same store that stamps `labels` onto every
    /// metric minted through it (on top of this handle's own base
    /// labels; mint-site labels override on key collision). Scoping a
    /// disabled registry stays disabled — and free.
    #[must_use]
    pub fn scoped(&self, labels: LabelSet<'_>) -> Registry {
        if self.inner.is_none() {
            return Registry::disabled();
        }
        Registry {
            inner: self.inner.clone(),
            base_labels: canonical_labels(&self.base_labels, labels),
        }
    }

    /// The base labels this handle stamps onto minted metrics.
    #[must_use]
    pub fn base_labels(&self) -> &[(String, String)] {
        &self.base_labels
    }

    /// Get or create the counter named `name` (no extra labels).
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_with(name, &[])
    }

    /// Get or create the counter `name{labels}`.
    pub fn counter_with(&self, name: &str, labels: LabelSet<'_>) -> Counter {
        match &self.inner {
            Some(inner) => {
                let key = SeriesKey {
                    name: name.to_string(),
                    labels: canonical_labels(&self.base_labels, labels),
                };
                let mut map = inner.counters.lock().expect("counter registry poisoned");
                let cell = map
                    .entry(key)
                    .or_insert_with(|| Arc::new(AtomicU64::new(0)));
                Counter(Some(cell.clone()))
            }
            None => Counter::disabled(),
        }
    }

    /// Get or create the gauge named `name` (no extra labels).
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_with(name, &[])
    }

    /// Get or create the gauge `name{labels}`.
    pub fn gauge_with(&self, name: &str, labels: LabelSet<'_>) -> Gauge {
        match &self.inner {
            Some(inner) => {
                let key = SeriesKey {
                    name: name.to_string(),
                    labels: canonical_labels(&self.base_labels, labels),
                };
                let mut map = inner.gauges.lock().expect("gauge registry poisoned");
                let cell = map.entry(key).or_insert_with(|| Arc::new(GaugeCore::new()));
                Gauge(Some(cell.clone()))
            }
            None => Gauge::disabled(),
        }
    }

    /// Get or create the histogram named `name` with bucket layout
    /// `spec` (no extra labels).
    pub fn histogram(&self, name: &str, spec: HistogramSpec) -> Histogram {
        self.histogram_with(name, spec, &[])
    }

    /// Get or create the histogram `name{labels}` with bucket layout
    /// `spec` (for an existing series the first spec wins).
    pub fn histogram_with(
        &self,
        name: &str,
        spec: HistogramSpec,
        labels: LabelSet<'_>,
    ) -> Histogram {
        match &self.inner {
            Some(inner) => {
                let key = SeriesKey {
                    name: name.to_string(),
                    labels: canonical_labels(&self.base_labels, labels),
                };
                let mut map = inner
                    .histograms
                    .lock()
                    .expect("histogram registry poisoned");
                let core = map
                    .entry(key)
                    .or_insert_with(|| Arc::new(HistogramCore::new(spec)));
                Histogram(Some(core.clone()))
            }
            None => Histogram::disabled(),
        }
    }

    /// A consistent point-in-time copy of every registered metric,
    /// sorted by (name, labels). Empty for a disabled registry.
    pub fn snapshot(&self) -> Snapshot {
        let Some(inner) = &self.inner else {
            return Snapshot::default();
        };
        let counters = inner
            .counters
            .lock()
            .expect("counter registry poisoned")
            .iter()
            .map(|(key, cell)| CounterSnapshot {
                name: key.name.clone(),
                labels: key.labels.clone(),
                value: cell.load(Ordering::Relaxed),
            })
            .collect();
        let gauges = inner
            .gauges
            .lock()
            .expect("gauge registry poisoned")
            .iter()
            .map(|(key, core)| GaugeSnapshot {
                name: key.name.clone(),
                labels: key.labels.clone(),
                value: f64::from_bits(core.bits.load(Ordering::Relaxed)),
            })
            .collect();
        let histograms = inner
            .histograms
            .lock()
            .expect("histogram registry poisoned")
            .iter()
            .map(|(key, core)| HistogramSnapshot {
                name: key.name.clone(),
                labels: key.labels.clone(),
                bounds: core.bounds.clone(),
                counts: core
                    .counts
                    .iter()
                    .map(|c| c.load(Ordering::Relaxed))
                    .collect(),
                count: core.count.load(Ordering::Relaxed),
                sum: f64::from_bits(core.sum_bits.load(Ordering::Relaxed)),
                min: f64::from_bits(core.min_bits.load(Ordering::Relaxed)),
                max: f64::from_bits(core.max_bits.load(Ordering::Relaxed)),
                exemplars: core.exemplars.iter().map(|slot| slot.load()).collect(),
            })
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// `true` when `labels` matches `query` exactly (both canonical-sorted;
/// the query is a mint-site `&[(&str, &str)]`).
fn labels_match(labels: &[(String, String)], query: LabelSet<'_>) -> bool {
    labels.len() == query.len()
        && labels
            .iter()
            .zip(canonical_labels(&[], query))
            .all(|((ak, av), (bk, bv))| *ak == bk && *av == bv)
}

/// Frozen value of one counter series.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Metric name.
    pub name: String,
    /// Label pairs, sorted by key (empty for an unlabeled series).
    pub labels: Vec<(String, String)>,
    /// Counter value at snapshot time.
    pub value: u64,
}

/// Frozen value of one gauge series.
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeSnapshot {
    /// Metric name.
    pub name: String,
    /// Label pairs, sorted by key (empty for an unlabeled series).
    pub labels: Vec<(String, String)>,
    /// Gauge level at snapshot time.
    pub value: f64,
}

/// Frozen state of one histogram series.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Label pairs, sorted by key (empty for an unlabeled series).
    pub labels: Vec<(String, String)>,
    /// Finite bucket upper bounds, increasing.
    pub bounds: Vec<f64>,
    /// Per-bucket sample counts; `bounds.len() + 1` entries, the last
    /// being the overflow bucket.
    pub counts: Vec<u64>,
    /// Total number of samples.
    pub count: u64,
    /// Exact sum of all samples.
    pub sum: f64,
    /// Exact minimum sample (`+inf` if empty).
    pub min: f64,
    /// Exact maximum sample (`-inf` if empty).
    pub max: f64,
    /// Per-bucket exemplars (`counts.len()` entries, `None` where no
    /// traced observation ever landed). See
    /// [`crate::Histogram::record_with_exemplar`].
    pub exemplars: Vec<Option<Exemplar>>,
}

impl HistogramSnapshot {
    /// Arithmetic mean of the samples (NaN if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimate the `q`-quantile (`0.0..=1.0`) from the bucket counts.
    ///
    /// The estimate is the upper bound of the bucket containing the
    /// target rank, clamped to the exact observed `[min, max]` range —
    /// so `quantile(0.0) == min` and `quantile(1.0) == max` are exact
    /// and everything in between carries one bucket-width of error.
    /// Returns NaN — explicitly, before any bucket walk — for an empty
    /// histogram or a NaN `q`, so downstream renderers always hit their
    /// NaN spelling path (`-` in reports, `NaN` in Prometheus) instead
    /// of a bucket-walk artifact.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 || q.is_nan() {
            return f64::NAN;
        }
        let q = q.clamp(0.0, 1.0);
        if q == 0.0 {
            return self.min;
        }
        if q == 1.0 {
            return self.max;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= rank {
                let estimate = if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    self.max
                };
                return estimate.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Folds `other`'s samples into this snapshot (used to aggregate
    /// labeled shards of one metric). Requires identical bucket bounds.
    fn merge(&mut self, other: &HistogramSnapshot) {
        debug_assert_eq!(self.bounds, other.bounds, "merging unlike histograms");
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        // Exemplars are point samples, not additive: keep ours, adopt
        // the other shard's where we have none.
        for (a, b) in self.exemplars.iter_mut().zip(other.exemplars.iter()) {
            if a.is_none() {
                *a = *b;
            }
        }
    }
}

/// A point-in-time copy of a whole [`Registry`], ready for export.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// All counter series, sorted by (name, labels).
    pub counters: Vec<CounterSnapshot>,
    /// All gauge series, sorted by (name, labels).
    pub gauges: Vec<GaugeSnapshot>,
    /// All histogram series, sorted by (name, labels).
    pub histograms: Vec<HistogramSnapshot>,
}

impl Snapshot {
    /// Value of the **unlabeled** counter series named `name`, if
    /// registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counter_labeled(name, &[])
    }

    /// Value of the counter series `name{labels}`, if registered.
    pub fn counter_labeled(&self, name: &str, labels: LabelSet<'_>) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name && labels_match(&c.labels, labels))
            .map(|c| c.value)
    }

    /// Sum of every counter series named `name` across all label sets
    /// (`None` when no series exists at all).
    pub fn counter_sum(&self, name: &str) -> Option<u64> {
        let mut found = false;
        let mut total = 0u64;
        for c in self.counters.iter().filter(|c| c.name == name) {
            found = true;
            total += c.value;
        }
        found.then_some(total)
    }

    /// Level of the **unlabeled** gauge series named `name`, if
    /// registered.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauge_labeled(name, &[])
    }

    /// Level of the gauge series `name{labels}`, if registered.
    pub fn gauge_labeled(&self, name: &str, labels: LabelSet<'_>) -> Option<f64> {
        self.gauges
            .iter()
            .find(|g| g.name == name && labels_match(&g.labels, labels))
            .map(|g| g.value)
    }

    /// The **unlabeled** histogram series named `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histogram_labeled(name, &[])
    }

    /// The histogram series `name{labels}`, if registered.
    pub fn histogram_labeled(
        &self,
        name: &str,
        labels: LabelSet<'_>,
    ) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|h| h.name == name && labels_match(&h.labels, labels))
    }

    /// Every histogram series named `name` merged across label sets
    /// into one label-free aggregate — how fleet-wide quantiles are
    /// computed once a metric is sharded. `None` when no series exists;
    /// series whose bucket layout differs from the first are skipped
    /// (the registry's first-spec-wins rule makes that unreachable for
    /// same-named series it minted).
    pub fn histogram_merged(&self, name: &str) -> Option<HistogramSnapshot> {
        let mut iter = self.histograms.iter().filter(|h| h.name == name);
        let mut merged = iter.next()?.clone();
        merged.labels.clear();
        for h in iter {
            if h.bounds == merged.bounds {
                merged.merge(h);
            }
        }
        Some(merged)
    }

    /// Whether the snapshot holds no metrics at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_snapshot_is_empty() {
        let reg = Registry::disabled();
        reg.counter("a").inc();
        reg.gauge("g").set(4.0);
        reg.histogram("b", HistogramSpec::counts()).record(1.0);
        reg.scoped(&[("shard", "0")]).counter("c").inc();
        assert!(reg.snapshot().is_empty());
        assert!(!reg.is_enabled());
        assert!(!reg.scoped(&[("shard", "0")]).is_enabled());
    }

    #[test]
    fn same_name_shares_storage() {
        let reg = Registry::enabled();
        let a = reg.counter("hits");
        let b = reg.counter("hits");
        a.inc();
        b.inc();
        assert_eq!(reg.snapshot().counter("hits"), Some(2));
    }

    #[test]
    fn labeled_series_are_distinct_and_label_order_is_canonical() {
        let reg = Registry::enabled();
        reg.counter_with("req", &[("shard", "0"), ("cmd", "step")])
            .add(3);
        // Same series, differently-ordered mint labels.
        reg.counter_with("req", &[("cmd", "step"), ("shard", "0")])
            .add(2);
        reg.counter_with("req", &[("shard", "1"), ("cmd", "step")])
            .inc();
        reg.counter("req").add(10);
        let snap = reg.snapshot();
        assert_eq!(
            snap.counter_labeled("req", &[("cmd", "step"), ("shard", "0")]),
            Some(5)
        );
        assert_eq!(
            snap.counter_labeled("req", &[("shard", "1"), ("cmd", "step")]),
            Some(1)
        );
        assert_eq!(snap.counter("req"), Some(10), "unlabeled is its own series");
        assert_eq!(snap.counter_sum("req"), Some(16));
        assert_eq!(snap.counter_sum("absent"), None);
    }

    #[test]
    fn scoped_registry_stamps_base_labels_and_mint_site_overrides() {
        let reg = Registry::enabled();
        let shard = reg.scoped(&[("shard", "3")]);
        shard.counter("steps").add(7);
        shard.counter_with("steps", &[("cmd", "open")]).add(2);
        // A mint-site label overrides the scope's base label.
        shard.counter_with("steps", &[("shard", "9")]).add(1);
        let nested = shard.scoped(&[("cmd", "close")]);
        nested.counter("steps").add(4);
        let snap = reg.snapshot();
        assert_eq!(snap.counter_labeled("steps", &[("shard", "3")]), Some(7));
        assert_eq!(
            snap.counter_labeled("steps", &[("shard", "3"), ("cmd", "open")]),
            Some(2)
        );
        assert_eq!(snap.counter_labeled("steps", &[("shard", "9")]), Some(1));
        assert_eq!(
            snap.counter_labeled("steps", &[("cmd", "close"), ("shard", "3")]),
            Some(4)
        );
        assert_eq!(snap.counter("steps"), None);
    }

    #[test]
    fn gauges_snapshot_by_label() {
        let reg = Registry::enabled();
        reg.gauge("depth").set(2.0);
        reg.gauge_with("depth", &[("shard", "1")]).set(5.0);
        reg.gauge_with("depth", &[("shard", "1")]).sub(1.5);
        let snap = reg.snapshot();
        assert_eq!(snap.gauge("depth"), Some(2.0));
        assert_eq!(snap.gauge_labeled("depth", &[("shard", "1")]), Some(3.5));
        assert_eq!(snap.gauge_labeled("depth", &[("shard", "2")]), None);
    }

    #[test]
    fn clones_share_the_store() {
        let reg = Registry::enabled();
        let other = reg.clone();
        other.counter("x").add(5);
        assert_eq!(reg.snapshot().counter("x"), Some(5));
    }

    #[test]
    fn quantile_estimates_are_bracketed_by_extrema() {
        let reg = Registry::enabled();
        let h = reg.histogram("v", HistogramSpec::new(1.0, 2.0, 10));
        for v in [0.5, 1.0, 3.0, 7.0, 20.0, 900.0, 2500.0] {
            h.record(v);
        }
        let snap = reg.snapshot();
        let hist = snap.histogram("v").unwrap();
        assert_eq!(hist.quantile(0.0), 0.5);
        assert_eq!(hist.quantile(1.0), 2500.0);
        let p50 = hist.quantile(0.5);
        assert!((0.5..=2500.0).contains(&p50));
        // rank 4 of 7 -> sample 7.0 lives in bucket (4, 8]; bound is 8
        // but the estimate must stay inside the observed range.
        assert!((4.0..=8.0).contains(&p50), "p50 = {p50}");
        assert!((hist.mean() - (0.5 + 1.0 + 3.0 + 7.0 + 20.0 + 900.0 + 2500.0) / 7.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_quantile_is_nan_for_every_q() {
        let reg = Registry::enabled();
        let h = reg.histogram("v", HistogramSpec::counts());
        let _ = h;
        let snap = reg.snapshot();
        let hist = snap.histogram("v").unwrap();
        // The empty case must short-circuit to NaN before the bucket
        // walk: no q — not even the exact 0.0/1.0 extrema paths, which
        // would otherwise leak the sentinel ±inf extrema — may produce
        // anything else.
        for q in [0.0, 0.25, 0.5, 0.99, 1.0, -3.0, 7.0, f64::NAN] {
            assert!(hist.quantile(q).is_nan(), "quantile({q}) on empty");
        }
        assert!(hist.mean().is_nan());
    }

    #[test]
    fn nan_q_is_nan_even_on_populated_histograms() {
        let reg = Registry::enabled();
        let h = reg.histogram("v", HistogramSpec::counts());
        h.record(2.0);
        h.record(5.0);
        let snap = reg.snapshot();
        assert!(snap.histogram("v").unwrap().quantile(f64::NAN).is_nan());
        // ...while out-of-range finite q still clamps.
        assert_eq!(snap.histogram("v").unwrap().quantile(-1.0), 2.0);
        assert_eq!(snap.histogram("v").unwrap().quantile(2.0), 5.0);
    }

    #[test]
    fn histogram_merged_aggregates_across_labels() {
        let reg = Registry::enabled();
        let spec = HistogramSpec::new(1.0, 10.0, 3);
        reg.histogram_with("lat", spec, &[("shard", "0")])
            .record(0.5);
        reg.histogram_with("lat", spec, &[("shard", "0")])
            .record(5.0);
        reg.histogram_with("lat", spec, &[("shard", "1")])
            .record(50.0);
        let snap = reg.snapshot();
        let merged = snap.histogram_merged("lat").expect("series exist");
        assert!(merged.labels.is_empty());
        assert_eq!(merged.count, 3);
        assert_eq!(merged.min, 0.5);
        assert_eq!(merged.max, 50.0);
        assert!((merged.sum - 55.5).abs() < 1e-12);
        assert_eq!(merged.quantile(1.0), 50.0);
        assert!(snap.histogram_merged("absent").is_none());
    }
}
