//! Table I — HVAC power consumption and SoH degradation for different
//! ambient temperatures.

use ev_drive::DriveCycle;

use crate::ControllerKind;

use super::format_table;
use super::sweep::{evaluation_sweep_at, find};

/// One ambient-temperature row of Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Ambient temperature (°C).
    pub ambient_c: f64,
    /// On/Off average HVAC power (kW).
    pub onoff_kw: f64,
    /// Fuzzy average HVAC power (kW).
    pub fuzzy_kw: f64,
    /// MPC average HVAC power (kW).
    pub mpc_kw: f64,
    /// ΔSoH improvement of the MPC vs On/Off (%).
    pub soh_improvement_vs_onoff_pct: f64,
    /// ΔSoH improvement of the MPC vs fuzzy (%).
    pub soh_improvement_vs_fuzzy_pct: f64,
}

/// The paper's Table I ambient sweep (°C).
pub const TABLE1_AMBIENTS: [f64; 6] = [43.0, 35.0, 32.0, 21.0, 10.0, 0.0];

/// Runs Table I: the ECE_EUDC profile at each ambient temperature,
/// comparing average HVAC power and ΔSoH across the three controllers.
///
/// # Panics
///
/// Panics only if built-in simulations fail to construct (they do not).
#[must_use]
pub fn table1() -> Vec<Table1Row> {
    TABLE1_AMBIENTS
        .iter()
        .map(|&ambient_c| table1_row(ambient_c))
        .collect()
}

/// Runs a single ambient-temperature row of Table I.
///
/// # Panics
///
/// Panics only if built-in simulations fail to construct (they do not).
#[must_use]
pub fn table1_row(ambient_c: f64) -> Table1Row {
    let cells = evaluation_sweep_at(ambient_c, &[DriveCycle::ece_eudc()]);
    let metric = |kind: ControllerKind| {
        let m = find(&cells, "ECE_EUDC", kind)
            .expect("sweep contains every cell")
            .result
            .metrics();
        (m.avg_hvac_power.value(), m.delta_soh_milli_percent)
    };
    let (onoff_kw, onoff_soh) = metric(ControllerKind::OnOff);
    let (fuzzy_kw, fuzzy_soh) = metric(ControllerKind::Fuzzy);
    let (mpc_kw, mpc_soh) = metric(ControllerKind::Mpc);
    Table1Row {
        ambient_c,
        onoff_kw,
        fuzzy_kw,
        mpc_kw,
        soh_improvement_vs_onoff_pct: 100.0 * (onoff_soh - mpc_soh) / onoff_soh,
        soh_improvement_vs_fuzzy_pct: 100.0 * (fuzzy_soh - mpc_soh) / fuzzy_soh,
    }
}

/// Formats Table I as a text table.
#[must_use]
pub fn render_table1(rows: &[Table1Row]) -> String {
    let header: Vec<String> = [
        "Ambient (°C)",
        "On/Off kW",
        "Fuzzy kW",
        "Ours kW",
        "SoH impr vs On/Off (%)",
        "SoH impr vs Fuzzy (%)",
    ]
    .iter()
    .map(|s| (*s).to_owned())
    .collect();
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.0}", r.ambient_c),
                format!("{:.2}", r.onoff_kw),
                format!("{:.2}", r.fuzzy_kw),
                format!("{:.2}", r.mpc_kw),
                format!("{:.2}", r.soh_improvement_vs_onoff_pct),
                format!("{:.2}", r.soh_improvement_vs_fuzzy_pct),
            ]
        })
        .collect();
    format!(
        "Table I — HVAC power and SoH improvement vs ambient temperature (ECE_EUDC)\n{}",
        format_table(&header, &body)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_hot_row_shape() {
        // One hot row (43 °C): heavy HVAC load, clear improvement.
        let r = table1_row(43.0);
        assert!(r.onoff_kw > r.mpc_kw, "{r:?}");
        assert!(r.onoff_kw > 2.0, "hot HVAC load should be kWs: {r:?}");
        assert!(r.soh_improvement_vs_onoff_pct > 0.0, "{r:?}");
    }

    #[test]
    fn table1_mild_row_has_lowest_power() {
        // At 21 °C the HVAC barely works (paper: 0.9/0.58/0.29 kW).
        let mild = table1_row(21.0);
        let hot = table1_row(43.0);
        assert!(mild.onoff_kw < hot.onoff_kw);
        assert!(mild.mpc_kw < 1.5, "mild MPC power {}", mild.mpc_kw);
    }

    #[test]
    fn render_has_all_columns() {
        let rows = vec![Table1Row {
            ambient_c: 0.0,
            onoff_kw: 6.0,
            fuzzy_kw: 5.0,
            mpc_kw: 2.8,
            soh_improvement_vs_onoff_pct: 31.8,
            soh_improvement_vs_fuzzy_pct: 36.5,
        }];
        let text = render_table1(&rows);
        assert!(text.contains("Ambient"));
        assert!(text.contains("31.80"));
        assert!(text.contains("36.50"));
    }
}
