//! Integration tests for the paper's headline claims: the orderings and
//! relative improvements its evaluation section reports must emerge from
//! our reproduction (absolute magnitudes are calibration-dependent and
//! recorded in EXPERIMENTS.md instead).

use ev_testkit::InvariantObserver;
use evclimate::core::experiments::{
    evaluation_sweep_at, evaluation_sweep_observed, experiment_params, find, table1_row,
};
use evclimate::core::ControllerKind;
use evclimate::prelude::*;

/// Runs the three-controller comparison on one cycle at one ambient,
/// with the `ev-testkit` physics invariants checked at every step of
/// every cell.
fn lineup(ambient_c: f64, cycle: &DriveCycle) -> (Metrics, Metrics, Metrics) {
    let params = experiment_params();
    let cells = evaluation_sweep_observed(ambient_c, std::slice::from_ref(cycle), |_, _| {
        InvariantObserver::for_params(&params)
    });
    for (cell, observer) in &cells {
        assert!(
            observer.report().is_clean(),
            "{} × {:?}: {}",
            cell.profile,
            cell.controller,
            observer.report()
        );
    }
    let cells: Vec<_> = cells.into_iter().map(|(cell, _)| cell).collect();
    let get = |kind| {
        *find(&cells, cycle.name(), kind)
            .expect("cell present")
            .result
            .metrics()
    };
    (
        get(ControllerKind::OnOff),
        get(ControllerKind::Fuzzy),
        get(ControllerKind::Mpc),
    )
}

#[test]
fn mpc_beats_onoff_on_soh_for_urban_and_mixed_cycles() {
    for cycle in [DriveCycle::ece15(), DriveCycle::ece_eudc()] {
        let (onoff, _fuzzy, mpc) = lineup(35.0, &cycle);
        assert!(
            mpc.delta_soh_milli_percent < onoff.delta_soh_milli_percent,
            "{}: mpc {} vs onoff {}",
            cycle.name(),
            mpc.delta_soh_milli_percent,
            onoff.delta_soh_milli_percent
        );
    }
}

#[test]
fn hvac_power_ordering_matches_fig8() {
    // Paper Fig. 8: ours ≤ fuzzy ≤ On/Off on every profile.
    let (onoff, fuzzy, mpc) = lineup(35.0, &DriveCycle::ece_eudc());
    let (po, pf, pm) = (
        onoff.avg_hvac_power.value(),
        fuzzy.avg_hvac_power.value(),
        mpc.avg_hvac_power.value(),
    );
    assert!(pf < po, "fuzzy {pf} vs onoff {po}");
    assert!(pm <= pf, "mpc {pm} vs fuzzy {pf}");
}

#[test]
fn improvement_grows_with_hvac_load() {
    // Paper Table I: "in the conditions when the HVAC power consumption
    // is more considerable, our methodology demonstrates more
    // improvement". Compare a mild ambient against a cold extreme.
    let mild = table1_row(21.0);
    let cold = table1_row(0.0);
    assert!(
        cold.soh_improvement_vs_onoff_pct > mild.soh_improvement_vs_onoff_pct,
        "cold {} vs mild {}",
        cold.soh_improvement_vs_onoff_pct,
        mild.soh_improvement_vs_onoff_pct
    );
    assert!(
        cold.onoff_kw > mild.onoff_kw,
        "cold HVAC load must be higher"
    );
}

#[test]
fn all_controllers_maintain_comfort_when_preconditioned() {
    for kind in ControllerKind::paper_lineup() {
        let cells = evaluation_sweep_at(35.0, &[DriveCycle::ece15()]);
        let cell = find(&cells, "ECE-15", kind).expect("cell present");
        let m = cell.result.metrics();
        // Small transient excursions are tolerated; sustained violation
        // is not (< 5 % of samples and < 1 K depth).
        let frac = m.comfort_violations as f64 / cell.result.series.t.len() as f64;
        assert!(
            frac < 0.05,
            "{kind:?}: {frac:.3} of samples violated comfort"
        );
        assert!(
            m.max_comfort_excursion < 1.0,
            "{kind:?}: excursion {}",
            m.max_comfort_excursion
        );
    }
}

#[test]
fn soc_deviation_is_what_the_mpc_flattens() {
    // The mechanism behind the paper's Fig. 7: the MPC's ΔSoH win comes
    // from a flatter SoC trajectory (smaller SoC_dev at comparable or
    // lower SoC_avg drop), not from sacrificing comfort.
    let (onoff, _fuzzy, mpc) = lineup(35.0, &DriveCycle::ece_eudc());
    assert!(
        mpc.soc_stats.dev <= onoff.soc_stats.dev,
        "mpc dev {} vs onoff dev {}",
        mpc.soc_stats.dev,
        onoff.soc_stats.dev
    );
    assert!(
        mpc.mean_temp_error < 3.0,
        "comfort kept: {}",
        mpc.mean_temp_error
    );
}

#[test]
fn energy_savings_translate_into_range() {
    // Paper Section I: HVAC can cut driving range substantially; the
    // lifetime-aware controller claws range back.
    let (onoff, _fuzzy, mpc) = lineup(43.0, &DriveCycle::ece_eudc());
    let usable = KilowattHours::new(21.0);
    let r_onoff = {
        let cells = evaluation_sweep_at(43.0, &[DriveCycle::ece_eudc()]);
        find(&cells, "ECE_EUDC", ControllerKind::OnOff)
            .expect("cell")
            .result
            .range_estimate(usable)
            .value()
    };
    let _ = onoff;
    let r_mpc = {
        let cells = evaluation_sweep_at(43.0, &[DriveCycle::ece_eudc()]);
        find(&cells, "ECE_EUDC", ControllerKind::Mpc)
            .expect("cell")
            .result
            .range_estimate(usable)
            .value()
    };
    let _ = mpc;
    assert!(
        r_mpc > r_onoff,
        "range with MPC {r_mpc:.1} km must exceed On/Off {r_onoff:.1} km"
    );
}
