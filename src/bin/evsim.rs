//! `evsim` — command-line driver for the evclimate simulator.
//!
//! ```text
//! evsim cycles
//!     List the built-in drive cycles and their statistics.
//!
//! evsim simulate --cycle <name> --controller <onoff|fuzzy|pid|mpc>
//!                [--ambient <°C>] [--target <°C>] [--precondition]
//!                [--json <path>] [--telemetry <path.jsonl>]
//!                [--flight-recorder <path.jsonl>] [--max-sqp-iterations <n>]
//!     Run one closed-loop simulation and print the metrics; optionally
//!     dump the full result (time series included) as JSON, the
//!     telemetry snapshot (solver + plant metrics) as JSONL, and/or the
//!     MPC flight recording (decision records + realized steps) as
//!     JSONL. `--max-sqp-iterations` caps the SQP solver (useful for
//!     forcing `max_iterations` outcomes when exercising the recorder).
//!
//! evsim compare --cycle <name> [--ambient <°C>] [--precondition]
//!     Run the paper's three-controller comparison on one cycle.
//!
//! evsim validate-telemetry <path.jsonl>
//!     Check a telemetry JSONL dump against the metric-line schema.
//!
//! evsim explain <dump.jsonl>
//!     Validate a flight-recorder dump and render it as a constraint-
//!     activation timeline plus a per-decision attribution table.
//!
//! evsim loadgen [--sessions <n>] [--steps <n>] [--chunk <n>] [--seed <n>]
//!               [--shards <n>] [--queue-capacity <n>]
//!               [--controller <onoff|fuzzy|pid|mpc>]
//!     Drive a deterministic synthetic fleet through the session engine
//!     and print the throughput/latency report (same seed → same
//!     deterministic fields and fleet digest).
//!
//! evsim serve [--addr <host:port>] [--for-seconds <n>]
//!             [--burst-sessions <n>] [--burst-steps <n>] [--seed <n>]
//!     Expose the fleet telemetry registry as a Prometheus text scrape
//!     endpoint on plain TCP. With `--burst-sessions` a loadgen burst
//!     populates the registry first; `--for-seconds 0` exits as soon as
//!     the burst is done (the endpoint stays up during it).
//!
//! evsim scrape --addr <host:port> [--require-histogram <name>]
//!              [--require-counter <name>]
//!     One-shot scrape probe: fetch /metrics, validate the exposition
//!     strictly (no `null`/`inf` tokens) and optionally require a
//!     populated histogram/counter. Exits non-zero on any violation.
//!
//! evsim top --addr <host:port> [--interval <secs>] [--once]
//!     Polling terminal dashboard over the scrape endpoint: per-shard
//!     live sessions, queue depth, step counts, park/shed totals, step
//!     latency p50/p99 and the MPC solve-outcome mix, refreshed in
//!     place. `--once` prints a single snapshot and exits (non-zero if
//!     no per-shard series are populated), which is what CI asserts on.
//!
//! evsim trace [--out <path.json>] [--sample <modulus>]
//!             [--capacity <events>] [loadgen flags]
//!     Run a loadgen burst with the trace ring enabled and write the
//!     captured (shard, session, command, MPC solve) spans as Chrome
//!     trace JSON — loadable in Perfetto / chrome://tracing. `--sample`
//!     keeps every Nth session; `--capacity` bounds the ring (oldest
//!     events are overwritten past it).
//!
//! evsim record [--out <seg.evts>] [--interval <secs>]
//!              (--addr <host:port> [--for-seconds <n>] |
//!               [loadgen flags] [--max-sqp-iterations <n>]
//!               [--trace-out <path.json>] [--sample <modulus>]
//!               [--capacity <events>])
//!     Record fleet health history into a crash-safe tsdb segment.
//!     With `--addr`, polls an existing scrape endpoint; otherwise runs
//!     a loadgen burst in-process and samples its registry while it
//!     runs (`--trace-out` additionally captures the Chrome trace that
//!     histogram exemplars resolve against; `--max-sqp-iterations` is
//!     the fault-injection hook the SLO CI job breaches on).
//!
//! evsim query --segment <seg.evts> [--metric <name>] [--labels k=v,..]
//!             [--window-s <n>] [--quantile <q> | --rate]
//!             [--exemplars [--trace <path.json>]]
//!     Query a recorded segment: list its series, compute a windowed
//!     rate or bucket-delta quantile over the trailing window, or list
//!     histogram exemplars — resolving each trace-span id against a
//!     Chrome-trace export so a p99 exemplar points at the exact solve.
//!
//! evsim slo [--rules <path.toml>] [--once]
//!           (--segment <seg.evts> |
//!            --addr <host:port> [--interval <secs>] [--for-seconds <n>])
//!     Evaluate SLO rules (windowed rates, bucket-delta quantiles,
//!     multi-window burn rates) over a recorded segment or a live
//!     endpoint, printing alert transitions and a final per-rule
//!     verdict. Exits non-zero if any alert ever fired — the CI
//!     contract: a healthy soak passes, a fault-injected one fails.
//! ```

use std::process::ExitCode;

use evclimate::control::CONSTRAINT_ROW_LABELS;
use evclimate::core::fleet::{
    render_loadgen_report, run_loadgen, run_loadgen_on, run_loadgen_traced, LoadgenConfig,
};
use evclimate::core::{
    ControllerKind, ControllerSetup, EvParams, FlightRecorderObserver, Simulation,
    SimulationResult, TelemetryObserver,
};
use evclimate::drive::{AmbientConditions, DriveCycle, DriveProfile};
use evclimate::telemetry::export::PromSample;
use evclimate::telemetry::slo::{self, SloEngine};
use evclimate::telemetry::tsdb::{self, quantile_from_cumulative, Tsdb};
use evclimate::telemetry::{
    export, scrape_once, FlightRecorder, Registry, ScrapeServer, TraceRing,
};
use evclimate::units::{Celsius, Seconds};

fn usage() -> &'static str {
    "usage:\n  evsim cycles\n  evsim simulate --cycle <name> --controller <onoff|fuzzy|pid|mpc> \
     [--ambient <°C>] [--target <°C>] [--precondition] [--json <path>] \
     [--telemetry <path.jsonl>] [--flight-recorder <path.jsonl>] \
     [--max-sqp-iterations <n>]\n  \
     evsim compare --cycle <name> [--ambient <°C>] [--precondition]\n  \
     evsim validate-telemetry <path.jsonl>\n  \
     evsim explain <dump.jsonl>\n  \
     evsim loadgen [--sessions <n>] [--steps <n>] [--chunk <n>] [--seed <n>] \
     [--shards <n>] [--queue-capacity <n>] [--controller <name>]\n  \
     evsim serve [--addr <host:port>] [--for-seconds <n>] \
     [--burst-sessions <n>] [--burst-steps <n>] [--seed <n>]\n  \
     evsim scrape --addr <host:port> [--require-histogram <name>] \
     [--require-counter <name>]\n  \
     evsim top --addr <host:port> [--interval <secs>] [--once]\n  \
     evsim trace [--out <path.json>] [--sample <modulus>] \
     [--capacity <events>] [loadgen flags]\n  \
     evsim record [--out <seg.evts>] [--interval <secs>] \
     (--addr <host:port> [--for-seconds <n>] | [loadgen flags] \
     [--max-sqp-iterations <n>] [--trace-out <path.json>])\n  \
     evsim query --segment <seg.evts> [--metric <name>] [--labels k=v,..] \
     [--window-s <n>] [--quantile <q> | --rate] [--exemplars [--trace <path.json>]]\n  \
     evsim slo [--rules <path.toml>] [--once] (--segment <seg.evts> | \
     --addr <host:port> [--interval <secs>] [--for-seconds <n>])"
}

/// Looks up a built-in cycle by (case-insensitive) name.
fn cycle_by_name(name: &str) -> Option<DriveCycle> {
    match name.to_ascii_lowercase().as_str() {
        "nedc" => Some(DriveCycle::nedc()),
        "ece15" | "ece-15" => Some(DriveCycle::ece15()),
        "eudc" => Some(DriveCycle::eudc()),
        "ece_eudc" | "ece-eudc" => Some(DriveCycle::ece_eudc()),
        "us06" => Some(DriveCycle::us06()),
        "sc03" => Some(DriveCycle::sc03()),
        "udds" => Some(DriveCycle::udds()),
        "wltc" | "wltc3" | "wltc-3" => Some(DriveCycle::wltc_class3()),
        _ => None,
    }
}

fn controller_by_name(name: &str) -> Option<ControllerKind> {
    match name.to_ascii_lowercase().as_str() {
        "onoff" | "on-off" => Some(ControllerKind::OnOff),
        "fuzzy" => Some(ControllerKind::Fuzzy),
        "pid" => Some(ControllerKind::Pid),
        "mpc" | "lifetime" => Some(ControllerKind::Mpc),
        _ => None,
    }
}

/// Minimal flag parser: `--key value` pairs plus boolean `--flags`.
struct Args {
    pairs: Vec<(String, String)>,
    flags: Vec<String>,
}

impl Args {
    fn parse(argv: &[String]) -> Result<Self, String> {
        let mut pairs = Vec::new();
        let mut flags = Vec::new();
        let mut it = argv.iter().peekable();
        while let Some(a) = it.next() {
            let Some(key) = a.strip_prefix("--") else {
                return Err(format!("unexpected argument '{a}'"));
            };
            match it.peek() {
                Some(v) if !v.starts_with("--") => {
                    pairs.push((key.to_owned(), (*v).clone()));
                    it.next();
                }
                _ => flags.push(key.to_owned()),
            }
        }
        Ok(Self { pairs, flags })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    fn get_f64(&self, key: &str, default: f64) -> Result<f64, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} expects a number, got '{v}'")),
        }
    }

    fn get_usize(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} expects a non-negative integer, got '{v}'")),
        }
    }

    fn get_u64(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} expects a non-negative integer, got '{v}'")),
        }
    }
}

fn build_sim(args: &Args) -> Result<(EvParams, Simulation), String> {
    let cycle_name = args.get("cycle").ok_or("missing --cycle")?;
    let cycle = cycle_by_name(cycle_name)
        .ok_or_else(|| format!("unknown cycle '{cycle_name}' (try: evsim cycles)"))?;
    let ambient = args.get_f64("ambient", 35.0)?;
    let target = args.get_f64("target", 24.0)?;
    let mut params = EvParams::nissan_leaf_like();
    params.target = Celsius::new(target);
    if args.flag("precondition") {
        params.initial_cabin = Some(params.target);
    }
    let profile = DriveProfile::from_cycle(
        &cycle,
        AmbientConditions::constant(Celsius::new(ambient)),
        Seconds::new(1.0),
    );
    let sim = Simulation::new(params.clone(), profile).map_err(|e| e.to_string())?;
    Ok((params, sim))
}

fn print_metrics(result: &SimulationResult) {
    let m = result.metrics();
    println!("profile:        {}", result.profile);
    println!("controller:     {}", result.controller);
    println!("distance:       {:.2} km", m.distance.value());
    println!(
        "energy:         {:.3} kWh ({:.2} kWh/100km)",
        m.energy.value(),
        m.kwh_per_100km
    );
    println!("avg HVAC power: {:.3} kW", m.avg_hvac_power.value());
    println!("final SoC:      {:.2} %", m.final_soc);
    println!(
        "SoC avg/dev:    {:.2} / {:.3} %",
        m.soc_stats.avg, m.soc_stats.dev
    );
    println!(
        "ΔSoH:           {:.3} m% per cycle ({:.0} cycles to 80 %)",
        m.delta_soh_milli_percent, m.cycles_to_eol
    );
    println!(
        "comfort:        {} violations, worst {:.2} K, mean |ΔT| {:.2} K",
        m.comfort_violations, m.max_comfort_excursion, m.mean_temp_error
    );
}

fn cmd_cycles() {
    println!(
        "{:<10} {:>9} {:>10} {:>10} {:>10}",
        "cycle", "time s", "dist km", "avg km/h", "max km/h"
    );
    let mut cycles = DriveCycle::paper_evaluation_set();
    cycles.push(DriveCycle::wltc_class3());
    for c in cycles {
        let s = c.stats();
        println!(
            "{:<10} {:>9.0} {:>10.2} {:>10.1} {:>10.1}",
            c.name(),
            s.duration.value(),
            s.distance.value(),
            s.avg_speed.to_kilometers_per_hour().value(),
            s.max_speed.to_kilometers_per_hour().value(),
        );
    }
}

fn cmd_simulate(args: &Args) -> Result<(), String> {
    let controller_name = args.get("controller").ok_or("missing --controller")?;
    let kind = controller_by_name(controller_name)
        .ok_or_else(|| format!("unknown controller '{controller_name}'"))?;
    let (params, sim) = build_sim(args)?;
    let telemetry_path = args.get("telemetry");
    let recorder_path = args.get("flight-recorder");
    let max_sqp_iterations = match args.get("max-sqp-iterations") {
        None => None,
        Some(v) => Some(
            v.parse::<usize>()
                .map_err(|_| format!("--max-sqp-iterations expects a count, got '{v}'"))?,
        ),
    };
    let registry = Registry::with_enabled(telemetry_path.is_some());
    // With a dump path configured, solver failures (max-iter, structural
    // errors) auto-dump the window at the moment of failure; a healthy
    // run writes its final window once at the end.
    let recorder = match recorder_path {
        Some(path) => {
            FlightRecorder::enabled(FlightRecorder::DEFAULT_CAPACITY).with_auto_dump(path)
        }
        None => FlightRecorder::disabled(),
    };
    let setup = ControllerSetup {
        telemetry: registry.clone(),
        recorder: recorder.clone(),
        max_sqp_iterations,
        ..ControllerSetup::default()
    };
    let mut controller = kind
        .instantiate_configured(&params, &setup)
        .map_err(|e| e.to_string())?;
    let mut observer = (
        TelemetryObserver::new(&registry),
        FlightRecorderObserver::new(&recorder),
    );
    let result = sim
        .run_observed(controller.as_mut(), &mut observer)
        .map_err(|e| e.to_string())?;
    print_metrics(&result);
    if let Some(path) = args.get("json") {
        let json = serde_json::to_string_pretty(&result).map_err(|e| e.to_string())?;
        export::write_text(std::path::Path::new(path), &json).map_err(|e| e.to_string())?;
        println!("full result written to {path}");
    }
    if let Some(path) = telemetry_path {
        let snapshot = registry.snapshot();
        export::write_text(std::path::Path::new(path), &export::to_jsonl(&snapshot))
            .map_err(|e| e.to_string())?;
        println!("\n{}", export::render_report(&snapshot));
        println!("telemetry written to {path}");
    }
    if let Some(path) = recorder_path {
        if let Some(err) = recorder.last_dump_error() {
            eprintln!("warning: last flight-recorder auto-dump failed: {err}");
        }
        // A fired auto-dump preserved the window around the failing
        // solve; writing the end-of-run window to the same path would
        // overwrite that post-mortem (and for an early failure the ring
        // may have evicted it by now).
        if recorder.auto_dumps() > 0 {
            println!(
                "flight recording at {path} preserves the last solver failure \
                 ({} auto-dump(s); end-of-run dump skipped)",
                recorder.auto_dumps()
            );
        } else {
            recorder
                .dump_to(std::path::Path::new(path), "end of simulation")
                .map_err(|e| e.to_string())?;
            println!(
                "flight recording written to {path} ({} records, {} dropped)",
                recorder.len(),
                recorder.dropped()
            );
        }
    }
    Ok(())
}

/// One parsed JSONL metric line, kept as the raw value tree so the
/// schema check can inspect it field by field (the vendored `Value`
/// deliberately has no blanket `Deserialize`).
struct RawLine(serde::Value);

impl serde::Deserialize for RawLine {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        Ok(Self(v.clone()))
    }
}

/// Validates one telemetry JSONL line against the exporter's schema.
fn validate_metric_line(line: &str) -> Result<&'static str, String> {
    let RawLine(v) = serde_json::from_str(line).map_err(|e| e.to_string())?;
    let kind = v
        .field("type")
        .and_then(serde::Value::as_str)
        .map_err(|e| e.to_string())?;
    let name = v
        .field("name")
        .and_then(serde::Value::as_str)
        .map_err(|e| e.to_string())?;
    if name.is_empty() {
        return Err("empty metric name".to_owned());
    }
    // A `labels` object is optional (unlabeled series omit it); when
    // present every value must be a string and every key non-empty.
    if let Ok(labels) = v.field("labels") {
        let serde::Value::Map(pairs) = labels else {
            return Err(format!("{name}: labels is not an object"));
        };
        for (key, value) in pairs {
            if key.is_empty() {
                return Err(format!("{name}: empty label name"));
            }
            if !matches!(value, serde::Value::Str(_)) {
                return Err(format!("{name}: label '{key}' value is not a string"));
            }
        }
    }
    let num = |key: &str| -> Result<f64, String> {
        v.field(key)
            .and_then(serde::Value::as_num)
            .map_err(|e| format!("{name}: {e}"))
    };
    match kind {
        "counter" => {
            let value = num("value")?;
            if value < 0.0 || value.fract() != 0.0 {
                return Err(format!("{name}: counter value {value} is not a natural"));
            }
            Ok("counter")
        }
        "gauge" => {
            // Gauges take any float; non-finite values serialize as JSON
            // `null` (JSON has no NaN/Inf literal).
            match v.field("value").map_err(|e| format!("{name}: {e}"))? {
                serde::Value::Null => {}
                other => {
                    other.as_num().map_err(|e| format!("{name}: {e}"))?;
                }
            }
            Ok("gauge")
        }
        "histogram" => {
            let count = num("count")?;
            let overflow = num("overflow")?;
            num("sum")?;
            // min/max are null (not numbers) exactly when the histogram
            // is empty.
            for key in ["min", "max"] {
                let is_null =
                    matches!(v.field(key).map_err(|e| e.to_string())?, serde::Value::Null);
                if is_null != (count == 0.0) {
                    return Err(format!("{name}: {key} null-ness disagrees with count"));
                }
            }
            let serde::Value::Seq(buckets) = v.field("buckets").map_err(|e| e.to_string())? else {
                return Err(format!("{name}: buckets is not an array"));
            };
            let mut in_buckets = 0.0;
            let mut prev_le = f64::NEG_INFINITY;
            for b in buckets {
                let le = b
                    .field("le")
                    .and_then(serde::Value::as_num)
                    .map_err(|e| format!("{name}: {e}"))?;
                if le <= prev_le {
                    return Err(format!("{name}: bucket bounds not increasing at {le}"));
                }
                prev_le = le;
                in_buckets += b
                    .field("count")
                    .and_then(serde::Value::as_num)
                    .map_err(|e| format!("{name}: {e}"))?;
            }
            if in_buckets + overflow != count {
                return Err(format!(
                    "{name}: bucket counts {in_buckets} + overflow {overflow} != count {count}"
                ));
            }
            Ok("histogram")
        }
        other => Err(format!("{name}: unknown metric type '{other}'")),
    }
}

fn cmd_validate_telemetry(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut counters = 0usize;
    let mut gauges = 0usize;
    let mut histograms = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match validate_metric_line(line).map_err(|e| format!("{path}:{}: {e}", i + 1))? {
            "counter" => counters += 1,
            "gauge" => gauges += 1,
            _ => histograms += 1,
        }
    }
    if counters + gauges + histograms == 0 {
        return Err(format!("{path}: no metric lines"));
    }
    println!("{path}: OK ({counters} counters, {gauges} gauges, {histograms} histograms)");
    Ok(())
}

/// A map-field number, as a `String`-error result (the explain renderer
/// threads line numbers into these).
fn num_field(v: &serde::Value, key: &str) -> Result<f64, String> {
    v.field(key)
        .and_then(serde::Value::as_num)
        .map_err(|e| e.to_string())
}

fn str_field<'a>(v: &'a serde::Value, key: &str) -> Result<&'a str, String> {
    v.field(key)
        .and_then(serde::Value::as_str)
        .map_err(|e| e.to_string())
}

/// Like [`num_field`], but JSON `null` maps to NaN: error-outcome
/// decisions have no iterate, so their objective and constraint
/// violation serialize as `null` (non-finite floats have no JSON form).
fn nullable_num_field(v: &serde::Value, key: &str) -> Result<f64, String> {
    match v.field(key).map_err(|e| e.to_string())? {
        serde::Value::Null => Ok(f64::NAN),
        other => other.as_num().map_err(|e| e.to_string()),
    }
}

/// The attribution split of one explained decision (paper Eq. 13–16 /
/// Eq. 21 terms, as exported by the flight recorder).
struct ExplainedAttribution {
    soc_total: f64,
    soc_motor: f64,
    soc_hvac: f64,
    motor_wh: f64,
    hvac_wh: f64,
    cost_hvac: f64,
    cost_soc: f64,
    cost_comfort: f64,
}

/// One schema-checked decision record from a flight-recorder dump.
struct ExplainedDecision {
    step: u64,
    t_s: f64,
    outcome: String,
    iterations: u64,
    warm_start: String,
    constraint_rows: usize,
    active_masks: Vec<u32>,
    attribution: Option<ExplainedAttribution>,
}

fn parse_decision(v: &serde::Value) -> Result<ExplainedDecision, String> {
    let outcome = str_field(v, "outcome")?.to_owned();
    const OUTCOMES: [&str; 4] = [
        "converged",
        "max_iterations",
        "line_search_stalled",
        "error",
    ];
    if !OUTCOMES.contains(&outcome.as_str()) {
        return Err(format!("unknown solve outcome '{outcome}'"));
    }
    let warm = v.field("warm_start").map_err(|e| e.to_string())?;
    let warm_start = match str_field(warm, "kind")? {
        "cold" => "cold".to_owned(),
        "shifted" => format!("shifted+{}", num_field(warm, "blocks")? as u64),
        other => return Err(format!("unknown warm-start kind '{other}'")),
    };
    nullable_num_field(v, "objective")?;
    nullable_num_field(v, "constraint_violation")?;
    num_field(v, "soc_pct")?;
    num_field(v, "cabin_c")?;
    let constraint_rows = num_field(v, "constraint_rows")? as usize;
    let serde::Value::Seq(masks) = v.field("active_masks").map_err(|e| e.to_string())? else {
        return Err("active_masks is not an array".to_owned());
    };
    let mut active_masks = Vec::with_capacity(masks.len());
    for m in masks {
        let mask = m.as_num().map_err(|e| e.to_string())? as u32;
        if constraint_rows < 32 && mask >> constraint_rows != 0 {
            return Err(format!(
                "active mask {mask:#b} sets bits beyond the {constraint_rows} constraint rows"
            ));
        }
        active_masks.push(mask);
    }
    let serde::Value::Seq(plan) = v.field("plan").map_err(|e| e.to_string())? else {
        return Err("plan is not an array".to_owned());
    };
    for p in plan {
        for key in ["hvac_power_w", "cabin_c", "soc_pct"] {
            num_field(p, key)?;
        }
    }
    // The plan and the per-step activation masks cover the same horizon
    // (both empty when the solve errored before producing an iterate).
    if plan.len() != active_masks.len() {
        return Err(format!(
            "plan covers {} steps but active_masks {}",
            plan.len(),
            active_masks.len()
        ));
    }
    let attribution = match v.field("attribution").map_err(|e| e.to_string())? {
        serde::Value::Null => None,
        a => Some(ExplainedAttribution {
            soc_total: num_field(a, "soc_drop_total_pct")?,
            soc_motor: num_field(a, "soc_drop_motor_pct")?,
            soc_hvac: num_field(a, "soc_drop_hvac_pct")?,
            motor_wh: num_field(a, "motor_energy_wh")?,
            hvac_wh: num_field(a, "hvac_energy_wh")?,
            cost_hvac: num_field(a, "cost_hvac_power")?,
            cost_soc: num_field(a, "cost_soc_deviation")?,
            cost_comfort: num_field(a, "cost_comfort")?,
        }),
    };
    Ok(ExplainedDecision {
        step: num_field(v, "step")? as u64,
        t_s: num_field(v, "t_s")?,
        outcome,
        iterations: num_field(v, "iterations")? as u64,
        warm_start,
        constraint_rows,
        active_masks,
        attribution,
    })
}

/// `"C5x3 C8x1"`: how often each constraint row was active across the
/// decision's horizon, labeled with the paper's constraint numbers.
fn render_active_set(d: &ExplainedDecision) -> String {
    let mut counts = vec![0usize; d.constraint_rows];
    for mask in &d.active_masks {
        for (row, count) in counts.iter_mut().enumerate() {
            if mask & (1 << row) != 0 {
                *count += 1;
            }
        }
    }
    let parts: Vec<String> = counts
        .iter()
        .enumerate()
        .filter(|(_, c)| **c > 0)
        .map(|(row, c)| {
            let label = CONSTRAINT_ROW_LABELS
                .get(row)
                .map_or_else(|| format!("row{row}"), |l| (*l).to_owned());
            format!("{label}x{c}")
        })
        .collect();
    if parts.is_empty() {
        "-".to_owned()
    } else {
        parts.join(" ")
    }
}

/// Validates a flight-recorder dump and renders the constraint-activation
/// timeline and the per-decision attribution table.
fn render_explain(text: &str) -> Result<String, String> {
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let (_, first) = lines.next().ok_or("empty dump")?;
    let RawLine(meta) = serde_json::from_str(first).map_err(|e| format!("line 1: {e}"))?;
    if str_field(&meta, "kind").map_err(|e| format!("line 1: {e}"))? != "meta" {
        return Err("line 1: first line is not the meta header".to_owned());
    }
    let version = num_field(&meta, "version")?;
    if version != 1.0 {
        return Err(format!("unsupported dump version {version}"));
    }
    let declared = num_field(&meta, "records")? as usize;
    let dropped = num_field(&meta, "dropped")? as u64;
    let reason = str_field(&meta, "reason")?.to_owned();
    let mut decisions: Vec<ExplainedDecision> = Vec::new();
    let mut steps = 0usize;
    let mut notes: Vec<(String, String)> = Vec::new();
    for (i, line) in lines {
        let at = |e: String| format!("line {}: {e}", i + 1);
        let RawLine(v) = serde_json::from_str(line).map_err(|e| at(e.to_string()))?;
        match str_field(&v, "kind").map_err(&at)? {
            "decision" => decisions.push(parse_decision(&v).map_err(&at)?),
            "step" => {
                for key in [
                    "step",
                    "t_s",
                    "motor_power_w",
                    "hvac_power_w",
                    "battery_power_w",
                    "soc_pct",
                    "cabin_c",
                    "ambient_c",
                ] {
                    num_field(&v, key).map_err(&at)?;
                }
                steps += 1;
            }
            "note" => notes.push((
                str_field(&v, "label").map_err(&at)?.to_owned(),
                str_field(&v, "detail").map_err(&at)?.to_owned(),
            )),
            other => return Err(at(format!("unknown record kind '{other}'"))),
        }
    }
    let body = decisions.len() + steps + notes.len();
    if body != declared {
        return Err(format!(
            "meta header declares {declared} records, dump carries {body}"
        ));
    }
    let mut out = format!(
        "Flight recording: {body} records ({} decisions, {steps} plant steps, \
         {} notes), {dropped} dropped\nreason: {reason}\n",
        decisions.len(),
        notes.len()
    );
    for (label, detail) in &notes {
        out.push_str(&format!("note [{label}]: {detail}\n"));
    }
    out.push_str("\nConstraint-activation timeline\n");
    out.push_str(&format!(
        "{:>6} {:>8}  {:<19} {:>5}  {:<10}  active constraints\n",
        "step", "t [s]", "outcome", "iters", "warm-start"
    ));
    for d in &decisions {
        out.push_str(&format!(
            "{:>6} {:>8.1}  {:<19} {:>5}  {:<10}  {}\n",
            d.step,
            d.t_s,
            d.outcome,
            d.iterations,
            d.warm_start,
            render_active_set(d)
        ));
    }
    out.push_str("\nAttribution (per decision, over the prediction horizon)\n");
    out.push_str(&format!(
        "{:>6} {:>10} {:>10} {:>10} {:>10} {:>10} {:>9} {:>9} {:>9}\n",
        "step", "ΔSoC %", "motor %", "HVAC %", "motor Wh", "HVAC Wh", "J_hvac", "J_soc", "J_comf"
    ));
    for d in &decisions {
        match &d.attribution {
            Some(a) => out.push_str(&format!(
                "{:>6} {:>10.4} {:>10.4} {:>10.4} {:>10.2} {:>10.2} {:>9.3} {:>9.3} {:>9.3}\n",
                d.step,
                a.soc_total,
                a.soc_motor,
                a.soc_hvac,
                a.motor_wh,
                a.hvac_wh,
                a.cost_hvac,
                a.cost_soc,
                a.cost_comfort
            )),
            None => out.push_str(&format!(
                "{:>6} {:>10} {:>10} {:>10} {:>10} {:>10} {:>9} {:>9} {:>9}\n",
                d.step, "-", "-", "-", "-", "-", "-", "-", "-"
            )),
        }
    }
    Ok(out)
}

fn cmd_explain(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let rendered = render_explain(&text).map_err(|e| format!("{path}: {e}"))?;
    print!("{rendered}");
    Ok(())
}

fn cmd_compare(args: &Args) -> Result<(), String> {
    let (params, sim) = build_sim(args)?;
    println!(
        "{:<28} {:>9} {:>12} {:>10} {:>11}",
        "controller", "HVAC kW", "ΔSoH (m%)", "SoC dev", "kWh/100km"
    );
    for kind in ControllerKind::paper_lineup() {
        let mut controller = kind.instantiate(&params).map_err(|e| e.to_string())?;
        let result = sim.run(controller.as_mut()).map_err(|e| e.to_string())?;
        let m = result.metrics();
        println!(
            "{:<28} {:>9.3} {:>12.3} {:>10.3} {:>11.2}",
            kind.label(),
            m.avg_hvac_power.value(),
            m.delta_soh_milli_percent,
            m.soc_stats.dev,
            m.kwh_per_100km,
        );
    }
    Ok(())
}

/// Build a [`LoadgenConfig`] from the shared synthetic-fleet flags.
///
/// `sessions_key`/`steps_key` differ between `loadgen` (primary flags)
/// and `serve` (burst flags), so the caller names them.
fn loadgen_config(
    args: &Args,
    sessions_key: &str,
    steps_key: &str,
) -> Result<LoadgenConfig, String> {
    let defaults = LoadgenConfig::default();
    let controller = match args.get("controller") {
        None => defaults.controller,
        Some(name) => controller_by_name(name)
            .ok_or_else(|| format!("unknown controller '{name}' (onoff|fuzzy|pid|mpc)"))?,
    };
    let max_sqp_iterations = match args.get("max-sqp-iterations") {
        None => None,
        Some(v) => Some(
            v.parse::<usize>()
                .map_err(|_| format!("--max-sqp-iterations expects a count, got '{v}'"))?,
        ),
    };
    Ok(LoadgenConfig {
        sessions: args.get_usize(sessions_key, defaults.sessions)?,
        steps_per_session: args.get_usize(steps_key, defaults.steps_per_session)?,
        chunk: args.get_usize("chunk", defaults.chunk)?,
        seed: args.get_u64("seed", defaults.seed)?,
        shards: args.get_usize("shards", defaults.shards)?,
        queue_capacity: args.get_usize("queue-capacity", defaults.queue_capacity)?,
        controller,
        max_sqp_iterations,
    })
}

fn cmd_loadgen(args: &Args) -> Result<(), String> {
    let config = loadgen_config(args, "sessions", "steps")?;
    if config.sessions == 0 {
        return Err("--sessions must be at least 1".into());
    }
    let report = run_loadgen(&config);
    print!("{}", render_loadgen_report(&report));
    Ok(())
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    let addr = args.get("addr").unwrap_or("127.0.0.1:0");
    let hold_seconds = args.get_f64("for-seconds", 0.0)?;
    let burst_sessions = args.get_usize("burst-sessions", 0)?;

    let registry = Registry::enabled();
    let mut server =
        ScrapeServer::bind(addr, registry.clone()).map_err(|e| format!("bind {addr}: {e}"))?;
    // CI and scripts parse this line to learn the bound port; keep the
    // format stable and flush before any long-running burst.
    println!("serving metrics at http://{}/metrics", server.addr());
    println!("ready");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    if burst_sessions > 0 {
        let mut config = loadgen_config(args, "burst-sessions", "burst-steps")?;
        config.steps_per_session = args.get_usize("burst-steps", 60)?;
        let report = run_loadgen_on(&config, &registry);
        print!("{}", render_loadgen_report(&report));
        let _ = std::io::stdout().flush();
    }

    if hold_seconds > 0.0 {
        std::thread::sleep(std::time::Duration::from_secs_f64(hold_seconds));
    }
    server.shutdown();
    Ok(())
}

/// Summed value of the samples named `sample` in a Prometheus
/// exposition — a line's name is its first token (before whitespace or
/// a `{` label block), matched exactly. Fleet metrics are per-shard
/// labeled series, so the fleet-wide view of a counter or histogram
/// count is the sum across label sets; `None` when no series matches.
fn sample_value(text: &str, sample: &str) -> Option<f64> {
    let mut sum = 0.0;
    let mut found = false;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let name_end = line.find(['{', ' ']).unwrap_or(line.len());
        if &line[..name_end] != sample {
            continue;
        }
        let value = line.rsplit(' ').next()?;
        if let Ok(v) = value.parse::<f64>() {
            sum += v;
            found = true;
        }
    }
    found.then_some(sum)
}

/// One-shot scrape probe: fetch, validate strictly, and enforce the
/// optional `--require-*` population checks. Returns the report text.
fn probe_scrape(
    addr: &str,
    require_histogram: Option<&str>,
    require_counter: Option<&str>,
) -> Result<String, String> {
    let text = scrape_once(addr)?;
    let samples = export::validate_prometheus(&text)
        .map_err(|e| format!("invalid Prometheus exposition from {addr}: {e}"))?;
    let mut report = format!("scrape ok: {samples} samples from http://{addr}/metrics\n");
    if let Some(name) = require_histogram {
        let count_sample = format!("{name}_count");
        let count = sample_value(&text, &count_sample)
            .ok_or_else(|| format!("histogram '{name}' missing from scrape"))?;
        if count <= 0.0 {
            return Err(format!("histogram '{name}' is present but empty (count 0)"));
        }
        report.push_str(&format!("histogram {name}: count {count}\n"));
    }
    if let Some(name) = require_counter {
        let value = sample_value(&text, name)
            .ok_or_else(|| format!("counter '{name}' missing from scrape"))?;
        if value <= 0.0 {
            return Err(format!("counter '{name}' is present but zero"));
        }
        report.push_str(&format!("counter {name}: {value}\n"));
    }
    Ok(report)
}

fn cmd_scrape(args: &Args) -> Result<(), String> {
    let addr = args.get("addr").ok_or("missing --addr <host:port>")?;
    let report = probe_scrape(
        addr,
        args.get("require-histogram"),
        args.get("require-counter"),
    )?;
    print!("{report}");
    Ok(())
}

/// Summed value of every sample named `name`, optionally restricted to
/// one `shard` label value; `None` when no series matches.
fn series_sum(samples: &[PromSample], name: &str, shard: Option<&str>) -> Option<f64> {
    let mut sum = 0.0;
    let mut found = false;
    for s in samples.iter().filter(|s| s.name == name) {
        if let Some(want) = shard {
            if s.label("shard") != Some(want) {
                continue;
            }
        }
        sum += s.value;
        found = true;
    }
    found.then_some(sum)
}

/// Parse a `le` label value, `+Inf` included (NaN for garbage).
fn parse_le(v: &str) -> f64 {
    if v == "+Inf" {
        f64::INFINITY
    } else {
        v.parse().unwrap_or(f64::NAN)
    }
}

/// Cumulative `(le, count)` pairs of the `fleet_cmd_seconds` step-latency
/// histogram, sorted by bound (`+Inf` last); summed across shards when
/// `shard` is `None` (all shards share the spec, so identical bounds
/// line up).
fn step_buckets(samples: &[PromSample], shard: Option<&str>) -> Vec<(f64, f64)> {
    let mut acc: Vec<(f64, f64)> = Vec::new();
    for s in samples
        .iter()
        .filter(|s| s.name == "fleet_cmd_seconds_bucket" && s.label("cmd") == Some("step"))
    {
        if let Some(want) = shard {
            if s.label("shard") != Some(want) {
                continue;
            }
        }
        let le = s.label("le").map_or(f64::NAN, parse_le);
        if le.is_nan() {
            continue;
        }
        match acc
            .iter_mut()
            .find(|(bound, _)| *bound == le || (bound.is_infinite() && le.is_infinite()))
        {
            Some((_, count)) => *count += s.value,
            None => acc.push((le, s.value)),
        }
    }
    acc.sort_by(|a, b| a.0.total_cmp(&b.0));
    acc
}

/// Subtract a previous poll's cumulative buckets from the current ones,
/// clamping at zero — the same bucket-delta construction the SLO
/// engine's windowed quantiles use, so `evsim top` and the alerts read
/// the same number.
fn bucket_delta(cur: &[(f64, f64)], prev: &[(f64, f64)]) -> Vec<(f64, f64)> {
    cur.iter()
        .map(|&(le, c)| {
            let p = prev
                .iter()
                .find(|(ple, _)| *ple == le || (ple.is_infinite() && le.is_infinite()))
                .map_or(0.0, |&(_, pc)| pc);
            (le, (c - p).max(0.0))
        })
        .collect()
}

/// `0.42` seconds → `"420.00"` (ms); `-` / `inf` for NaN / +Inf.
fn fmt_ms(seconds: f64) -> String {
    if seconds.is_nan() {
        "-".to_owned()
    } else if seconds.is_infinite() {
        "inf".to_owned()
    } else {
        format!("{:.2}", seconds * 1e3)
    }
}

/// The MPC solve-outcome mix as `conv/maxit/stall/err`, or `-` when the
/// fleet runs a solver-less controller (no outcome counters minted).
fn outcome_mix(samples: &[PromSample], shard: Option<&str>) -> String {
    let outcomes = [
        "mpc_solve_converged_total",
        "mpc_solve_max_iterations_total",
        "mpc_solve_stalled_total",
        "mpc_solve_errors_total",
    ];
    let values: Vec<Option<f64>> = outcomes
        .iter()
        .map(|name| series_sum(samples, name, shard))
        .collect();
    if values.iter().all(Option::is_none) {
        return "-".to_owned();
    }
    values
        .iter()
        .map(|v| format!("{:.0}", v.unwrap_or(0.0)))
        .collect::<Vec<_>>()
        .join("/")
}

/// Render one dashboard frame from a parsed scrape. With `prev` (the
/// previous poll), latency quantiles are **windowed**: bucket deltas
/// between the polls, so p50/p99 describe the last interval instead of
/// the whole process lifetime. Without it (first frame, `--once`) they
/// are cumulative. Errors when no per-shard labeled series are present
/// — the `--once` CI probe treats that as "the fleet engine never
/// ran", not an empty table.
fn render_top(
    addr: &str,
    samples: &[PromSample],
    prev: Option<&[PromSample]>,
) -> Result<String, String> {
    let mut shards: Vec<u64> = samples
        .iter()
        .filter_map(|s| s.label("shard"))
        .filter_map(|v| v.parse().ok())
        .collect();
    shards.sort_unstable();
    shards.dedup();
    if shards.is_empty() {
        return Err(format!(
            "no per-shard series in scrape from {addr} (has the fleet engine run?)"
        ));
    }
    let mut out = format!(
        "evsim top — http://{addr}/metrics ({} samples, {} shards, {} latency)\n",
        samples.len(),
        shards.len(),
        if prev.is_some() {
            "windowed"
        } else {
            "cumulative"
        }
    );
    out.push_str(&format!(
        "{:>5} {:>6} {:>6} {:>10} {:>8} {:>7} {:>9} {:>9}  {}\n",
        "shard",
        "live",
        "queue",
        "steps",
        "parked",
        "shed",
        "p50 ms",
        "p99 ms",
        "conv/maxit/stall/err"
    ));
    let mut row = |label: &str, shard: Option<&str>| {
        let count = |name: &str| {
            series_sum(samples, name, shard).map_or_else(|| "-".to_owned(), |v| format!("{v:.0}"))
        };
        let mut buckets = step_buckets(samples, shard);
        if let Some(prev) = prev {
            buckets = bucket_delta(&buckets, &step_buckets(prev, shard));
        }
        out.push_str(&format!(
            "{:>5} {:>6} {:>6} {:>10} {:>8} {:>7} {:>9} {:>9}  {}\n",
            label,
            count("fleet_live_sessions"),
            count("fleet_queue_depth"),
            count("fleet_steps_total"),
            count("fleet_commands_parked_total"),
            count("fleet_commands_shed_total"),
            fmt_ms(quantile_from_cumulative(&buckets, 0.50)),
            fmt_ms(quantile_from_cumulative(&buckets, 0.99)),
            outcome_mix(samples, shard),
        ));
    };
    for shard in &shards {
        let shard = shard.to_string();
        row(&shard, Some(&shard));
    }
    if shards.len() > 1 {
        row("all", None);
    }
    Ok(out)
}

fn cmd_top(args: &Args) -> Result<(), String> {
    let addr = args.get("addr").ok_or("missing --addr <host:port>")?;
    let interval = args.get_f64("interval", 2.0)?;
    if interval <= 0.0 {
        return Err("--interval must be positive".into());
    }
    let once = args.flag("once");
    use std::io::Write as _;
    // The previous poll's samples: present from the second frame on,
    // which flips the latency columns from cumulative to windowed.
    let mut prev: Option<Vec<PromSample>> = None;
    loop {
        let text = scrape_once(addr)?;
        let parsed = export::parse_prometheus(&text)
            .map_err(|e| format!("invalid exposition from {addr}: {e}"));
        let frame = parsed
            .as_ref()
            .map_err(Clone::clone)
            .and_then(|samples| render_top(addr, samples, prev.as_deref()));
        if once {
            print!("{}", frame?);
            return Ok(());
        }
        match frame {
            // ANSI clear + home, so the table refreshes in place.
            Ok(view) => print!("\x1b[2J\x1b[H{view}"),
            Err(msg) => print!("\x1b[2J\x1b[H{msg}\nretrying every {interval} s\n"),
        }
        prev = parsed.ok();
        let _ = std::io::stdout().flush();
        std::thread::sleep(std::time::Duration::from_secs_f64(interval));
    }
}

fn cmd_trace(args: &Args) -> Result<(), String> {
    let out_path = args.get("out").unwrap_or("trace.json");
    let capacity = args.get_usize("capacity", 65_536)?;
    let sample = args.get_u64("sample", 1)?;
    if sample == 0 {
        return Err("--sample must be at least 1".into());
    }
    let config = loadgen_config(args, "sessions", "steps")?;
    if config.sessions == 0 {
        return Err("--sessions must be at least 1".into());
    }
    let registry = Registry::enabled();
    let trace = TraceRing::sampled(capacity, sample);
    let report = run_loadgen_traced(&config, &registry, &trace);
    print!("{}", render_loadgen_report(&report));
    export::write_text(std::path::Path::new(out_path), &trace.to_chrome_json())
        .map_err(|e| format!("{out_path}: {e}"))?;
    println!(
        "chrome trace written to {out_path} ({} events, {} overwritten); \
         open in Perfetto or chrome://tracing",
        trace.events().len(),
        trace.dropped()
    );
    Ok(())
}

/// Wall-clock milliseconds since the Unix epoch — the frame timestamps
/// tsdb segments carry.
fn now_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_millis() as u64)
}

/// `name{k="v",...}` for display (no escaping — labels here come from
/// mint sites, not parsed input).
fn fmt_series(name: &str, labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return name.to_owned();
    }
    let pairs: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
    format!("{name}{{{}}}", pairs.join(","))
}

/// Parse a `k=v,k2=v2` label-filter flag into owned pairs.
fn parse_label_filter(raw: Option<&str>) -> Result<Vec<(String, String)>, String> {
    let Some(raw) = raw else {
        return Ok(Vec::new());
    };
    raw.split(',')
        .filter(|p| !p.trim().is_empty())
        .map(|pair| {
            let (k, v) = pair
                .split_once('=')
                .ok_or_else(|| format!("--labels pair '{pair}' is not k=v"))?;
            Ok((k.trim().to_owned(), v.trim().to_owned()))
        })
        .collect()
}

fn cmd_record(args: &Args) -> Result<(), String> {
    let out_path = args.get("out").unwrap_or("fleet.evts");
    let mut writer = tsdb::SegmentWriter::create(std::path::Path::new(out_path))
        .map_err(|e| format!("{out_path}: {e}"))?;
    if let Some(addr) = args.get("addr") {
        // Poll an existing scrape endpoint.
        let interval = args.get_f64("interval", 1.0)?;
        if interval <= 0.0 {
            return Err("--interval must be positive".into());
        }
        let for_seconds = args.get_f64("for-seconds", 10.0)?;
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs_f64(for_seconds);
        loop {
            let text = scrape_once(addr)?;
            let samples = export::parse_prometheus(&text)
                .map_err(|e| format!("invalid exposition from {addr}: {e}"))?;
            writer
                .append(now_ms(), &samples)
                .map_err(|e| format!("{out_path}: {e}"))?;
            if std::time::Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(std::time::Duration::from_secs_f64(interval));
        }
    } else {
        // Run a loadgen burst in-process and sample its registry live.
        let interval = args.get_f64("interval", 0.05)?;
        if interval <= 0.0 {
            return Err("--interval must be positive".into());
        }
        let config = loadgen_config(args, "sessions", "steps")?;
        if config.sessions == 0 {
            return Err("--sessions must be at least 1".into());
        }
        let sample = args.get_u64("sample", 1)?;
        if sample == 0 {
            return Err("--sample must be at least 1".into());
        }
        let trace_out = args.get("trace-out");
        let registry = Registry::enabled();
        let trace = match trace_out {
            Some(_) => TraceRing::sampled(args.get_usize("capacity", 65_536)?, sample),
            None => TraceRing::disabled(),
        };
        let worker = {
            let (config, registry, trace) = (config.clone(), registry.clone(), trace.clone());
            std::thread::spawn(move || run_loadgen_traced(&config, &registry, &trace))
        };
        while !worker.is_finished() {
            writer
                .append(now_ms(), &export::snapshot_samples(&registry.snapshot()))
                .map_err(|e| format!("{out_path}: {e}"))?;
            std::thread::sleep(std::time::Duration::from_secs_f64(interval));
        }
        let report = worker.join().map_err(|_| "loadgen thread panicked")?;
        // One final frame so the segment always carries the shutdown
        // totals and the complete histograms.
        writer
            .append(now_ms(), &export::snapshot_samples(&registry.snapshot()))
            .map_err(|e| format!("{out_path}: {e}"))?;
        print!("{}", render_loadgen_report(&report));
        if let Some(path) = trace_out {
            export::write_text(std::path::Path::new(path), &trace.to_chrome_json())
                .map_err(|e| format!("{path}: {e}"))?;
            println!(
                "chrome trace written to {path} ({} events, {} overwritten)",
                trace.events().len(),
                trace.dropped()
            );
        }
    }
    println!("recorded {} frames to {out_path}", writer.frames());
    Ok(())
}

/// Span-id → (name, ts, dur) index over a Chrome-trace JSON export, for
/// resolving histogram exemplars back to the spans that produced them.
fn trace_span_index(
    path: &str,
) -> Result<std::collections::HashMap<u64, (String, f64, f64)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let RawLine(value) =
        serde_json::from_str(&text).map_err(|e| format!("{path}: invalid JSON: {e}"))?;
    let serde::Value::Seq(events) = value
        .field("traceEvents")
        .map_err(|_| format!("{path}: no traceEvents array (not a Chrome trace?)"))?
    else {
        return Err(format!("{path}: traceEvents is not an array"));
    };
    let mut index = std::collections::HashMap::new();
    for e in events {
        let Ok(id) = e
            .field("args")
            .and_then(|a| a.field("span_id"))
            .and_then(serde::Value::as_str)
        else {
            continue;
        };
        let Ok(id) = id.parse::<u64>() else { continue };
        let name = e
            .field("name")
            .and_then(serde::Value::as_str)
            .unwrap_or("?")
            .to_owned();
        let ts = e.field("ts").and_then(serde::Value::as_num).unwrap_or(0.0);
        let dur = e.field("dur").and_then(serde::Value::as_num).unwrap_or(0.0);
        index.insert(id, (name, ts, dur));
    }
    Ok(index)
}

fn cmd_query(args: &Args) -> Result<(), String> {
    let seg_path = args.get("segment").ok_or("missing --segment <seg.evts>")?;
    let segment = tsdb::read_segment(std::path::Path::new(seg_path))?;
    if segment.frames.is_empty() {
        return Err(format!("{seg_path}: segment holds no complete frames"));
    }
    if segment.truncated {
        eprintln!("note: {seg_path} has a torn tail; decoded the intact prefix");
    }
    let mut db = Tsdb::new();
    db.ingest_segment(&segment);
    let t1 = segment.frames.last().map_or(0, |f| f.t_ms);

    if args.flag("exemplars") || args.get("trace").is_some() {
        let index = match args.get("trace") {
            Some(path) => Some(trace_span_index(path)?),
            None => None,
        };
        let mut shown = 0usize;
        let mut resolved = 0usize;
        for s in db.series() {
            let Some(ex) = &s.exemplar else { continue };
            shown += 1;
            let mut line = format!(
                "{} value={} span_id={}",
                fmt_series(&s.name, &s.labels),
                ex.value,
                ex.span_id
            );
            if let Some(index) = &index {
                match index.get(&ex.span_id) {
                    Some((name, ts, dur)) => {
                        resolved += 1;
                        line.push_str(&format!(" -> span {name} @{ts:.0}us dur={dur:.0}us"));
                    }
                    None => line.push_str(" -> UNRESOLVED (span evicted from the ring?)"),
                }
            }
            println!("{line}");
        }
        println!("{shown} exemplars");
        if let Some(index) = &index {
            println!("{resolved} resolved against {} trace spans", index.len());
            if shown > 0 && resolved == 0 {
                return Err("no exemplar resolved against the trace".into());
            }
        }
        return Ok(());
    }

    match args.get("metric") {
        None => {
            println!(
                "{seg_path}: {} series, {} frames, {:.1} s span{}",
                segment.series.len(),
                segment.frames.len(),
                (t1.saturating_sub(segment.frames[0].t_ms)) as f64 / 1e3,
                if segment.truncated {
                    " (truncated)"
                } else {
                    ""
                }
            );
            for s in db.series() {
                let latest = s.latest().map_or(f64::NAN, |p| p.v);
                println!(
                    "{:<60} {:>5} pts latest {latest}",
                    fmt_series(&s.name, &s.labels),
                    s.raw_len(),
                );
            }
        }
        Some(metric) => {
            let labels = parse_label_filter(args.get("labels"))?;
            let label_refs: Vec<(&str, &str)> = labels
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect();
            let window_s = args.get_u64("window-s", 60)?;
            let t0 = t1.saturating_sub(window_s.saturating_mul(1000));
            if let Some(q_raw) = args.get("quantile") {
                let q: f64 = q_raw
                    .parse()
                    .map_err(|_| format!("--quantile expects a number, got '{q_raw}'"))?;
                let v = db
                    .windowed_quantile(metric, &label_refs, t0, t1, q)
                    .ok_or_else(|| format!("no {metric}_bucket series match"))?;
                println!("{metric} p{:.0} over {window_s}s: {v}", q * 100.0);
            } else if args.flag("rate") {
                let v = db
                    .rate_sum(metric, &label_refs, t0, t1)
                    .ok_or_else(|| format!("no {metric} series match"))?;
                println!("{metric} rate over {window_s}s: {v:.3}/s");
            } else {
                let matches = db.find(metric, &label_refs);
                if matches.is_empty() {
                    return Err(format!("no series named {metric} match the label filter"));
                }
                for idx in matches {
                    let s = &db.series()[idx];
                    let latest = s.latest().map_or(f64::NAN, |p| p.v);
                    println!("{} {latest}", fmt_series(&s.name, &s.labels));
                }
            }
        }
    }
    Ok(())
}

/// The built-in rule set `evsim slo` evaluates when no `--rules` file is
/// given: a step-latency quantile ceiling, a queue-depth guard, and the
/// solve-iteration error budget the CI fault-injection job breaches.
const DEFAULT_SLO_RULES: &str = r#"
# Windowed p99 of fleet step handling must stay under 250 ms.
[[slo]]
name = "step-p99-latency"
kind = "quantile"
metric = "fleet_cmd_seconds"
labels = "cmd=step"
q = 0.99
window_s = 10
op = "gt"
threshold = 0.25

# Shard command queues must not stay saturated.
[[slo]]
name = "queue-depth"
kind = "gauge"
metric = "fleet_queue_depth"
op = "gt"
threshold = 1000
for_s = 2

# Error budget: at most 25% of MPC solves may hit the iteration cap.
# Burn must exceed 1x over BOTH windows to page (multi-window rule).
[[slo]]
name = "solve-iteration-budget"
kind = "burn_rate"
bad_metric = "mpc_solve_max_iterations_total"
total_metric = "mpc_solves_total"
objective = 0.25
fast_window_s = 2
slow_window_s = 8
threshold = 1.0
"#;

/// One rendered status line per rule.
fn render_slo_status(statuses: &[slo::RuleStatus]) -> String {
    let mut out = String::new();
    for s in statuses {
        let value = s
            .value
            .map_or_else(|| "no data".to_owned(), |v| format!("{v:.4}"));
        out.push_str(&format!(
            "{:>8}  {:<24} value {value} (breach when {} {})\n",
            s.state.to_string(),
            s.name,
            s.op,
            s.threshold
        ));
    }
    out
}

fn cmd_slo(args: &Args) -> Result<(), String> {
    let rules_text = match args.get("rules") {
        Some(path) => std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?,
        None => DEFAULT_SLO_RULES.to_owned(),
    };
    let rules = slo::parse_config(&rules_text)?;
    if rules.is_empty() {
        return Err("rule set is empty".into());
    }
    let mut engine = SloEngine::new(rules);
    let mut last: Vec<slo::RuleStatus> = Vec::new();
    // Print one line per state transition, so a replayed soak reads as
    // an alert timeline.
    let observe = |t_ms: u64, statuses: Vec<slo::RuleStatus>, last: &mut Vec<slo::RuleStatus>| {
        for s in &statuses {
            let changed = last
                .iter()
                .find(|p| p.name == s.name)
                .is_none_or(|p| p.state != s.state);
            if changed {
                let value = s
                    .value
                    .map_or_else(|| "no data".to_owned(), |v| format!("{v:.4}"));
                println!("[{t_ms}] {}: {} (value {value})", s.name, s.state);
            }
        }
        *last = statuses;
    };

    if let Some(seg_path) = args.get("segment") {
        let segment = tsdb::read_segment(std::path::Path::new(seg_path))?;
        if segment.frames.is_empty() {
            return Err(format!("{seg_path}: segment holds no complete frames"));
        }
        if segment.truncated {
            eprintln!("note: {seg_path} has a torn tail; replaying the intact prefix");
        }
        let mut db = Tsdb::new();
        for i in 0..segment.frames.len() {
            let t = segment.frames[i].t_ms;
            db.ingest(t, &segment.frame_samples(i));
            let statuses = engine.evaluate(&db, t);
            observe(t, statuses, &mut last);
        }
        println!(
            "--- {} frames replayed from {seg_path} ---",
            segment.frames.len()
        );
    } else if let Some(addr) = args.get("addr") {
        let interval = args.get_f64("interval", 1.0)?;
        if interval <= 0.0 {
            return Err("--interval must be positive".into());
        }
        let for_seconds = args.get_f64("for-seconds", 10.0)?;
        let once = args.flag("once");
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs_f64(for_seconds);
        let mut db = Tsdb::new();
        loop {
            let text = scrape_once(addr)?;
            let samples = export::parse_prometheus(&text)
                .map_err(|e| format!("invalid exposition from {addr}: {e}"))?;
            let t = now_ms();
            db.ingest(t, &samples);
            let statuses = engine.evaluate(&db, t);
            observe(t, statuses, &mut last);
            if once && std::time::Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(std::time::Duration::from_secs_f64(interval));
        }
    } else {
        return Err("need --segment <seg.evts> or --addr <host:port>".into());
    }

    print!("{}", render_slo_status(&last));
    if engine.ever_fired() {
        return Err("SLO breach: at least one alert fired during the run".into());
    }
    println!("all SLOs held");
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = argv.first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let rest = Args::parse(&argv[1..]);
    let outcome = match (command.as_str(), rest) {
        ("cycles", _) => {
            cmd_cycles();
            Ok(())
        }
        ("simulate", Ok(args)) => cmd_simulate(&args),
        ("compare", Ok(args)) => cmd_compare(&args),
        ("loadgen", Ok(args)) => cmd_loadgen(&args),
        ("serve", Ok(args)) => cmd_serve(&args),
        ("scrape", Ok(args)) => cmd_scrape(&args),
        ("top", Ok(args)) => cmd_top(&args),
        ("trace", Ok(args)) => cmd_trace(&args),
        ("record", Ok(args)) => cmd_record(&args),
        ("query", Ok(args)) => cmd_query(&args),
        ("slo", Ok(args)) => cmd_slo(&args),
        ("validate-telemetry", _) => match argv.get(1) {
            Some(path) => cmd_validate_telemetry(path),
            None => Err(format!("missing <path.jsonl>\n{}", usage())),
        },
        ("explain", _) => match argv.get(1) {
            Some(path) => cmd_explain(path),
            None => Err(format!("missing <dump.jsonl>\n{}", usage())),
        },
        (_, Err(e)) => Err(e),
        (other, _) => Err(format!("unknown command '{other}'\n{}", usage())),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(argv: &[&str]) -> Args {
        let owned: Vec<String> = argv.iter().map(|s| (*s).to_owned()).collect();
        Args::parse(&owned).expect("parses")
    }

    #[test]
    fn parses_pairs_and_flags() {
        let args = parse(&["--cycle", "nedc", "--precondition", "--ambient", "0"]);
        assert_eq!(args.get("cycle"), Some("nedc"));
        assert!(args.flag("precondition"));
        assert_eq!(args.get_f64("ambient", 35.0).unwrap(), 0.0);
        assert_eq!(args.get_f64("target", 24.0).unwrap(), 24.0); // default
    }

    #[test]
    fn rejects_positional_arguments() {
        let owned = vec!["nedc".to_owned()];
        assert!(Args::parse(&owned).is_err());
    }

    #[test]
    fn rejects_non_numeric_values() {
        let args = parse(&["--ambient", "hot"]);
        assert!(args.get_f64("ambient", 35.0).is_err());
    }

    #[test]
    fn cycle_lookup_accepts_aliases() {
        assert!(cycle_by_name("NEDC").is_some());
        assert!(cycle_by_name("ece-eudc").is_some());
        assert!(cycle_by_name("wltc3").is_some());
        assert!(cycle_by_name("imaginary").is_none());
    }

    #[test]
    fn validates_exported_jsonl() {
        let registry = Registry::enabled();
        registry.counter("solves_total").add(7);
        registry.gauge("queue_depth").set(3.5);
        registry
            .counter_with("fleet_steps_total", &[("shard", "0")])
            .add(12);
        registry
            .histogram_with(
                "fleet_cmd_seconds",
                evclimate::telemetry::HistogramSpec::latency_seconds(),
                &[("cmd", "step"), ("shard", "0")],
            )
            .record(2e-3);
        registry
            .histogram(
                "step_seconds",
                evclimate::telemetry::HistogramSpec::latency_seconds(),
            )
            .record(1e-3);
        let jsonl = export::to_jsonl(&registry.snapshot());
        assert!(jsonl.contains("\"labels\""), "{jsonl}");
        for line in jsonl.lines() {
            validate_metric_line(line).expect("exported line is schema-valid");
        }
    }

    #[test]
    fn rejects_malformed_metric_lines() {
        // Fractional counter value.
        assert!(validate_metric_line(r#"{"type":"counter","name":"x","value":1.5}"#).is_err());
        // Gauges are a first-class type: any float, null when non-finite.
        assert_eq!(
            validate_metric_line(r#"{"type":"gauge","name":"x","value":1.5}"#),
            Ok("gauge")
        );
        assert_eq!(
            validate_metric_line(r#"{"type":"gauge","name":"x","value":null}"#),
            Ok("gauge")
        );
        // Unknown type tag.
        assert!(validate_metric_line(r#"{"type":"summary","name":"x","value":1}"#).is_err());
        // Labels must be an object of string values.
        assert_eq!(
            validate_metric_line(
                r#"{"type":"counter","name":"x","labels":{"shard":"0"},"value":1}"#
            ),
            Ok("counter")
        );
        assert!(validate_metric_line(
            r#"{"type":"counter","name":"x","labels":["shard"],"value":1}"#
        )
        .is_err());
        assert!(validate_metric_line(
            r#"{"type":"counter","name":"x","labels":{"shard":0},"value":1}"#
        )
        .is_err());
        // Histogram whose bucket counts do not add up.
        assert!(validate_metric_line(
            r#"{"type":"histogram","name":"h","count":3,"sum":1.0,"min":0.1,"max":0.9,"buckets":[{"le":1.0,"count":1}],"overflow":0}"#
        )
        .is_err());
        // Not JSON at all.
        assert!(validate_metric_line("plain text").is_err());
    }

    fn synthetic_dump() -> String {
        use evclimate::telemetry::{
            Attribution, DecisionRecord, PlannedStep, SolveOutcome, StepSummary, WarmStart,
        };
        let recorder = FlightRecorder::enabled(16);
        let planned = PlannedStep {
            ts_c: 14.0,
            tc_c: 12.0,
            recirculation: 0.7,
            flow_kg_s: 0.1,
            hvac_power_w: 1_800.0,
            cabin_c: 24.8,
            soc_pct: 89.9,
        };
        recorder.record_decision(DecisionRecord {
            step: 0,
            t_s: 0.0,
            outcome: SolveOutcome::Converged,
            iterations: 4,
            objective: 1.25,
            constraint_violation: 0.0,
            warm_start: WarmStart::Cold,
            soc_pct: 90.0,
            cabin_c: 25.0,
            motor_preview_w: vec![8_000.0, 8_000.0],
            plan: vec![planned, planned],
            constraint_rows: 13,
            // Bit 4 is row "C5" in CONSTRAINT_ROW_LABELS.
            active_masks: vec![1 << 4, 0],
            attribution: Some(Attribution {
                soc_drop_total_pct: 0.010,
                soc_drop_motor_pct: 0.008,
                soc_drop_hvac_pct: 0.002,
                motor_energy_wh: 7.0,
                hvac_energy_wh: 3.0,
                ..Attribution::default()
            }),
        });
        recorder.record_step(StepSummary {
            step: 0,
            t_s: 0.0,
            motor_power_w: 8_000.0,
            hvac_power_w: 1_750.0,
            battery_power_w: 10_050.0,
            soc_pct: 89.99,
            cabin_c: 24.9,
            ambient_c: 35.0,
        });
        recorder.note("harness", "synthetic dump");
        recorder.to_jsonl("unit test")
    }

    #[test]
    fn explains_a_flight_recorder_dump() {
        let rendered = render_explain(&synthetic_dump()).expect("dump is schema-valid");
        assert!(rendered.contains("1 decisions, 1 plant steps, 1 notes"));
        assert!(rendered.contains("reason: unit test"));
        assert!(rendered.contains("Constraint-activation timeline"));
        assert!(rendered.contains("C5x1"), "{rendered}");
        assert!(rendered.contains("converged"));
        assert!(rendered.contains("cold"));
        assert!(rendered.contains("Attribution"));
        assert!(rendered.contains("0.0080"));
        assert!(rendered.contains("note [harness]: synthetic dump"));
    }

    #[test]
    fn explains_a_dump_with_an_error_decision() {
        use evclimate::telemetry::{DecisionRecord, SolveOutcome, WarmStart};
        // Mirror of the record `MpcController::capture_decision` emits on
        // `SolveOutcome::Error`: NaN objective/violation (serialized as
        // JSON null), no plan, no active set, no attribution — exactly
        // what the auto-dump path writes for a failed solve.
        let recorder = FlightRecorder::enabled(16);
        recorder.record_decision(DecisionRecord {
            step: 7,
            t_s: 7.0,
            outcome: SolveOutcome::Error,
            iterations: 0,
            objective: f64::NAN,
            constraint_violation: f64::NAN,
            warm_start: WarmStart::Cold,
            soc_pct: 88.0,
            cabin_c: 27.5,
            motor_preview_w: vec![6_000.0, 6_000.0],
            plan: Vec::new(),
            constraint_rows: 13,
            active_masks: Vec::new(),
            attribution: None,
        });
        let dump = recorder.to_jsonl("mpc solve error at step 7 (t = 7.0 s)");
        assert!(dump.contains("\"objective\":null"), "{dump}");
        let rendered = render_explain(&dump).expect("error decisions are schema-valid");
        assert!(rendered.contains("error"), "{rendered}");
        assert!(rendered.contains("cold"));
        // No attribution: the table row is dashed out, not dropped.
        assert!(rendered
            .lines()
            .any(|l| l.contains('7') && l.contains(" -")));
    }

    #[test]
    fn explain_rejects_malformed_dumps() {
        // Empty file.
        assert!(render_explain("").is_err());
        // Body without a meta header.
        let headerless = synthetic_dump()
            .lines()
            .skip(1)
            .collect::<Vec<_>>()
            .join("\n");
        assert!(render_explain(&headerless).is_err());
        // Wrong version.
        assert!(render_explain(
            "{\"kind\":\"meta\",\"version\":2,\"capacity\":8,\"records\":0,\"dropped\":0,\"reason\":\"x\"}\n"
        )
        .is_err());
        // Record-count mismatch between header and body.
        let mut truncated: Vec<String> = synthetic_dump().lines().map(str::to_owned).collect();
        truncated.pop();
        assert!(render_explain(&truncated.join("\n")).is_err());
        // Active-set bits beyond the declared constraint rows.
        let corrupt =
            synthetic_dump().replace("\"active_masks\":[16,0]", "\"active_masks\":[16384,0]");
        assert!(render_explain(&corrupt).is_err());
    }

    #[test]
    fn controller_lookup_accepts_aliases() {
        assert!(matches!(
            controller_by_name("MPC"),
            Some(ControllerKind::Mpc)
        ));
        assert!(matches!(
            controller_by_name("on-off"),
            Some(ControllerKind::OnOff)
        ));
        assert!(controller_by_name("thermostat").is_none());
    }

    #[test]
    fn loadgen_config_reads_flags_and_keeps_defaults() {
        let args = parse(&[
            "--sessions",
            "7",
            "--steps",
            "11",
            "--seed",
            "99",
            "--controller",
            "onoff",
        ]);
        let config = loadgen_config(&args, "sessions", "steps").expect("parses");
        let defaults = LoadgenConfig::default();
        assert_eq!(config.sessions, 7);
        assert_eq!(config.steps_per_session, 11);
        assert_eq!(config.seed, 99);
        assert!(matches!(config.controller, ControllerKind::OnOff));
        assert_eq!(config.chunk, defaults.chunk);
        assert_eq!(config.queue_capacity, defaults.queue_capacity);

        let bad = parse(&["--controller", "thermostat"]);
        assert!(loadgen_config(&bad, "sessions", "steps").is_err());
    }

    #[test]
    fn sample_value_matches_names_exactly_and_sums_labeled_series() {
        let text = "# TYPE fleet_steps_total counter\n\
                    fleet_steps_total 42\n\
                    mpc_control_step_seconds_bucket{le=\"+Inf\"} 5\n\
                    mpc_control_step_seconds_count 5\n";
        assert_eq!(sample_value(text, "fleet_steps_total"), Some(42.0));
        assert_eq!(
            sample_value(text, "mpc_control_step_seconds_count"),
            Some(5.0)
        );
        // Prefix of a longer name must not match.
        assert_eq!(sample_value(text, "fleet_steps"), None);
        assert_eq!(sample_value(text, "missing_metric"), None);
        // Per-shard labeled series sum to the fleet-wide value.
        let labeled = "fleet_steps_total{shard=\"0\"} 40\n\
                       fleet_steps_total{shard=\"1\"} 2\n";
        assert_eq!(sample_value(labeled, "fleet_steps_total"), Some(42.0));
    }

    #[test]
    fn bucket_quantile_walks_cumulative_counts() {
        let buckets = [
            (0.001, 10.0),
            (0.01, 90.0),
            (0.1, 99.0),
            (f64::INFINITY, 100.0),
        ];
        assert_eq!(quantile_from_cumulative(&buckets, 0.05), 0.001);
        assert_eq!(quantile_from_cumulative(&buckets, 0.50), 0.01);
        assert_eq!(quantile_from_cumulative(&buckets, 0.99), 0.1);
        // A +Inf landing reports the largest finite bound.
        assert_eq!(quantile_from_cumulative(&buckets, 1.0), 0.1);
        assert!(quantile_from_cumulative(&[], 0.5).is_nan());
        assert_eq!(fmt_ms(0.01), "10.00");
        assert_eq!(fmt_ms(f64::NAN), "-");
        assert_eq!(fmt_ms(f64::INFINITY), "inf");
    }

    #[test]
    fn bucket_delta_subtracts_cumulative_polls() {
        let prev = [(0.001, 10.0), (0.01, 90.0), (f64::INFINITY, 100.0)];
        let cur = [(0.001, 12.0), (0.01, 95.0), (f64::INFINITY, 110.0)];
        assert_eq!(
            bucket_delta(&cur, &prev),
            vec![(0.001, 2.0), (0.01, 5.0), (f64::INFINITY, 10.0)]
        );
        // A counter reset (current below previous) clamps to zero
        // instead of going negative.
        let reset = [(0.001, 1.0), (0.01, 2.0), (f64::INFINITY, 3.0)];
        assert!(bucket_delta(&reset, &prev).iter().all(|&(_, c)| c == 0.0));
        // No previous poll means the full cumulative counts pass through.
        assert_eq!(bucket_delta(&cur, &[]), cur.to_vec());
    }

    #[test]
    fn top_renders_per_shard_rows_from_a_live_fleet_scrape() {
        let registry = Registry::enabled();
        let config = LoadgenConfig {
            sessions: 4,
            steps_per_session: 24,
            seed: 11,
            shards: 2,
            ..LoadgenConfig::default()
        };
        let _ = run_loadgen_on(&config, &registry);
        let text = export::to_prometheus(&registry.snapshot());
        let samples = export::parse_prometheus(&text).expect("scrape parses");
        let view = render_top("127.0.0.1:0", &samples, None).expect("per-shard series present");
        assert!(view.contains("2 shards"), "{view}");
        assert!(
            view.contains("cumulative"),
            "first frame is cumulative: {view}"
        );
        for shard in ["0", "1"] {
            let row = view
                .lines()
                .find(|l| l.trim_start().starts_with(shard))
                .unwrap_or_else(|| panic!("no row for shard {shard}: {view}"));
            // Steps ran, queue drained, latency quantiles are numeric.
            assert!(!row.contains(" - "), "unpopulated cell in {row:?}");
        }
        // Totals row sums the shards and carries the solve-outcome mix.
        let all = view
            .lines()
            .find(|l| l.trim_start().starts_with("all"))
            .expect("totals row");
        assert!(all.contains("96"), "{all}");
        assert!(!all.ends_with('-'), "{all}");
    }

    #[test]
    fn top_rejects_scrapes_without_per_shard_series() {
        let registry = Registry::enabled();
        registry.counter("solves_total").inc();
        let text = export::to_prometheus(&registry.snapshot());
        let samples = export::parse_prometheus(&text).expect("parses");
        let err = render_top("127.0.0.1:0", &samples, None).expect_err("no shard labels");
        assert!(err.contains("per-shard"), "{err}");
    }

    #[test]
    fn serve_scrape_round_trip_validates_and_finds_populated_metrics() {
        let registry = Registry::enabled();
        let mut server =
            ScrapeServer::bind("127.0.0.1:0", registry.clone()).expect("binds loopback");
        let addr = server.addr().to_string();

        // Empty registry still scrapes cleanly but fails the probes.
        let err = probe_scrape(&addr, None, Some("fleet_steps_total"))
            .expect_err("counter missing before burst");
        assert!(err.contains("fleet_steps_total"), "{err}");

        // A small burst through the shared registry populates both the
        // fleet counters and the MPC solve-latency histogram.
        let config = LoadgenConfig {
            sessions: 4,
            steps_per_session: 30,
            seed: 7,
            shards: 2,
            ..LoadgenConfig::default()
        };
        let report = run_loadgen_on(&config, &registry);
        assert_eq!(report.total_steps, 4 * 30);

        let ok = probe_scrape(
            &addr,
            Some("mpc_control_step_seconds"),
            Some("fleet_steps_total"),
        )
        .expect("probe passes after burst");
        assert!(ok.contains("scrape ok"), "{ok}");
        assert!(ok.contains("counter fleet_steps_total: 120"), "{ok}");

        server.shutdown();
    }
}
