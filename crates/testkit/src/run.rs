//! Convenience runners that wire observers into a simulation.

use ev_core::{ControllerKind, EvParams, SimulationResult, StepObserver, TraceRecorder};
use ev_drive::DriveProfile;

use crate::invariants::{InvariantObserver, InvariantReport};

/// Runs one (profile × controller) cell and returns the result together
/// with the full step-level trace.
///
/// # Panics
///
/// Panics if the profile is empty or the controller cannot be
/// instantiated for `params` (cannot happen for the built-in cycles and
/// parameter sets).
#[must_use]
pub fn run_traced(
    params: &EvParams,
    profile: DriveProfile,
    kind: ControllerKind,
) -> (SimulationResult, TraceRecorder) {
    let sim = ev_core::Simulation::new(params.clone(), profile).expect("profile non-empty");
    let mut controller = kind.instantiate(params).expect("controller instantiates");
    let mut recorder = TraceRecorder::new();
    let result = sim
        .run_observed(controller.as_mut(), &mut recorder)
        .expect("simulation runs");
    (result, recorder)
}

/// Runs one cell with both a trace recorder and an invariant observer
/// attached, returning the result, the trace and the invariant report.
/// The harness behind the golden-trace suite.
///
/// # Panics
///
/// Panics as [`run_traced`] does.
#[must_use]
pub fn run_checked(
    params: &EvParams,
    profile: DriveProfile,
    kind: ControllerKind,
) -> (SimulationResult, TraceRecorder, InvariantReport) {
    let sim = ev_core::Simulation::new(params.clone(), profile).expect("profile non-empty");
    let mut controller = kind.instantiate(params).expect("controller instantiates");
    let mut observers = (TraceRecorder::new(), InvariantObserver::for_params(params));
    let result = sim
        .run_observed(controller.as_mut(), &mut observers)
        .expect("simulation runs");
    let (recorder, invariants) = observers;
    (result, recorder, invariants.into_report())
}

/// Drives an arbitrary observer over one cell; returns result + observer.
///
/// # Panics
///
/// Panics as [`run_traced`] does.
#[must_use]
pub fn run_with<O: StepObserver>(
    params: &EvParams,
    profile: DriveProfile,
    kind: ControllerKind,
    mut observer: O,
) -> (SimulationResult, O) {
    let sim = ev_core::Simulation::new(params.clone(), profile).expect("profile non-empty");
    let mut controller = kind.instantiate(params).expect("controller instantiates");
    let result = sim
        .run_observed(controller.as_mut(), &mut observer)
        .expect("simulation runs");
    (result, observer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ev_core::experiments::profile_at;
    use ev_drive::DriveCycle;

    #[test]
    fn run_checked_is_clean_on_the_builtin_cell() {
        let params = EvParams::nissan_leaf_like();
        let profile = profile_at(&DriveCycle::ece15(), 35.0);
        let (result, trace, report) = run_checked(&params, profile, ControllerKind::OnOff);
        assert_eq!(trace.records().len(), result.series.t.len());
        report.assert_clean();
    }
}
