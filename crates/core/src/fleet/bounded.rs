//! A bounded MPMC queue with explicit backpressure semantics.
//!
//! The fleet engine's shards each consume from one of these. Producers
//! choose their backpressure policy per call: [`BoundedQueue::push`]
//! *parks* (blocks until a slot frees up), [`BoundedQueue::try_push`]
//! *sheds* (returns the rejected item immediately). Capacity is a hard
//! invariant — the queue never holds more than `capacity` items, so a
//! burst of producers cannot grow memory without bound.
//!
//! Built on `Mutex<VecDeque>` plus two condition variables (one for
//! "not full", one for "not empty"); no unsafe, no spinning.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why [`BoundedQueue::try_push`] rejected an item. Carries the item
/// back so the producer can retry, park or drop it deliberately.
#[derive(Debug)]
pub enum TryPushError<T> {
    /// The queue was at capacity; shedding is the caller's decision.
    Full(T),
    /// The queue was closed; no further items will ever be accepted.
    Closed(T),
}

impl<T> TryPushError<T> {
    /// Recovers the rejected item.
    pub fn into_inner(self) -> T {
        match self {
            TryPushError::Full(item) | TryPushError::Closed(item) => item,
        }
    }
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A blocking bounded MPMC queue. See the module docs for the
/// backpressure contract.
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    capacity: usize,
    not_full: Condvar,
    not_empty: Condvar,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — a zero-capacity queue would make
    /// every `push` deadlock against its own condition.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        Self {
            state: Mutex::new(QueueState {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            capacity,
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }

    /// The hard capacity bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of queued items (racy, for diagnostics only).
    ///
    /// # Panics
    ///
    /// Panics if the internal lock is poisoned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock poisoned").items.len()
    }

    /// Whether the queue is currently empty (racy, diagnostics only).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues `item`, **parking** (blocking) while the queue is full.
    /// On success reports whether the caller had to park — `Ok(true)`
    /// means the queue was full and this push waited for a slot, the
    /// signal the fleet engine's backpressure counters are built on.
    /// Returns the item back as `Err` if the queue is closed.
    ///
    /// # Errors
    ///
    /// Returns `Err(item)` when the queue has been [`close`](Self::close)d.
    ///
    /// # Panics
    ///
    /// Panics if the internal lock is poisoned.
    pub fn push(&self, item: T) -> Result<bool, T> {
        let mut state = self.state.lock().expect("queue lock poisoned");
        let mut parked = false;
        while state.items.len() >= self.capacity && !state.closed {
            parked = true;
            state = self.not_full.wait(state).expect("queue lock poisoned");
        }
        if state.closed {
            return Err(item);
        }
        state.items.push_back(item);
        drop(state);
        self.not_empty.notify_one();
        Ok(parked)
    }

    /// Enqueues `item` only if a slot is free right now, **shedding**
    /// otherwise. Never blocks.
    ///
    /// # Errors
    ///
    /// [`TryPushError::Full`] when at capacity, [`TryPushError::Closed`]
    /// after [`close`](Self::close); both return the item.
    ///
    /// # Panics
    ///
    /// Panics if the internal lock is poisoned.
    pub fn try_push(&self, item: T) -> Result<(), TryPushError<T>> {
        let mut state = self.state.lock().expect("queue lock poisoned");
        if state.closed {
            return Err(TryPushError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(TryPushError::Full(item));
        }
        state.items.push_back(item);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues the oldest item, blocking while the queue is empty.
    /// Returns `None` once the queue is closed **and** drained — the
    /// consumer's termination signal.
    ///
    /// # Panics
    ///
    /// Panics if the internal lock is poisoned.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue lock poisoned");
        loop {
            if let Some(item) = state.items.pop_front() {
                drop(state);
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).expect("queue lock poisoned");
        }
    }

    /// Closes the queue: subsequent pushes fail, parked producers wake
    /// with an error, and consumers drain the remaining items before
    /// [`pop`](Self::pop) returns `None`.
    ///
    /// # Panics
    ///
    /// Panics if the internal lock is poisoned.
    pub fn close(&self) {
        let mut state = self.state.lock().expect("queue lock poisoned");
        state.closed = true;
        drop(state);
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn fifo_order_within_one_producer() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        for i in 0..5 {
            assert_eq!(q.pop(), Some(i));
        }
    }

    #[test]
    fn try_push_sheds_at_capacity_and_len_never_exceeds_it() {
        let q = BoundedQueue::new(3);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert!(q.try_push(3).is_ok());
        match q.try_push(4) {
            Err(TryPushError::Full(item)) => assert_eq!(item, 4),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn push_parks_until_consumer_frees_a_slot_and_reports_it() {
        let q = Arc::new(BoundedQueue::new(1));
        assert_eq!(q.push(0u32), Ok(false), "free slot: no parking");
        let producer = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.push(1).unwrap())
        };
        // The producer is parked on the full queue; popping releases it.
        assert_eq!(q.pop(), Some(0));
        assert!(producer.join().unwrap(), "full queue: push reports parking");
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn close_wakes_parked_producer_with_error() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(0u32).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.push(7))
        };
        // Give the producer a chance to park, then close underneath it.
        thread::yield_now();
        q.close();
        assert_eq!(producer.join().unwrap(), Err(7));
    }

    #[test]
    fn consumers_drain_then_observe_close() {
        let q = BoundedQueue::new(4);
        q.push('a').unwrap();
        q.push('b').unwrap();
        q.close();
        assert_eq!(q.pop(), Some('a'));
        assert_eq!(q.pop(), Some('b'));
        assert_eq!(q.pop(), None);
        assert!(matches!(q.try_push('c'), Err(TryPushError::Closed('c'))));
    }

    #[test]
    fn mpmc_round_trip_preserves_every_item() {
        let q = Arc::new(BoundedQueue::new(4));
        let total: usize = 4 * 250;
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    for i in 0..250usize {
                        q.push(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<usize> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all.len(), total);
        all.dedup();
        assert_eq!(all.len(), total, "items were duplicated or lost");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_is_rejected() {
        let _ = BoundedQueue::<u8>::new(0);
    }
}
