//! The physical plant: power train + HVAC + battery behind the BMS.

use ev_battery::{Bms, PackThermal, SohModel};
use ev_drive::DriveSample;
use ev_hvac::{Hvac, HvacInput, HvacPower, HvacState};
use ev_powertrain::PowerTrain;
use ev_units::{Celsius, Percent, Seconds, Watts};

use crate::EvParams;

/// What one plant step produced: the power breakdown and the new states.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlantStep {
    /// Electric-motor power (negative = regeneration).
    pub motor_power: Watts,
    /// HVAC component powers.
    pub hvac_power: HvacPower,
    /// Accessory power.
    pub accessory_power: Watts,
    /// Total power metered into the battery (after BMS clamping).
    pub battery_power: Watts,
    /// Cabin temperature after the step.
    pub cabin: Celsius,
    /// Battery-pack temperature after the step.
    pub pack_temp: Celsius,
    /// State of charge after the step.
    pub soc: Percent,
}

/// The simulated electric vehicle: the "physical plant" of the paper's
/// co-simulation (modeled in AMESim there, in pure Rust here).
///
/// Owns the power train, the HVAC and the battery-with-BMS, and advances
/// them one sample period at a time under a controller-chosen HVAC input
/// and a drive-profile operating point.
///
/// # Examples
///
/// ```
/// use ev_core::{ElectricVehicle, EvParams};
/// use ev_drive::DriveSample;
/// use ev_hvac::HvacInput;
/// use ev_units::{Celsius, MetersPerSecond, Seconds, Watts};
///
/// let params = EvParams::nissan_leaf_like();
/// let mut ev = ElectricVehicle::new(&params, Celsius::new(30.0));
/// let sample = DriveSample {
///     t: Seconds::ZERO,
///     v: MetersPerSecond::new(15.0),
///     a: 0.5,
///     slope_percent: 0.0,
///     ambient: Celsius::new(35.0),
///     solar: Watts::new(400.0),
/// };
/// let input = HvacInput::idle(&params.hvac, Celsius::new(30.0));
/// let step = ev.step(&input, &sample, Seconds::new(1.0));
/// assert!(step.motor_power.value() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct ElectricVehicle {
    power_train: PowerTrain,
    hvac: Hvac,
    bms: Bms,
    pack: PackThermal,
    accessory_power: Watts,
    cabin: HvacState,
}

impl ElectricVehicle {
    /// Creates the plant with the given initial cabin temperature. The
    /// battery pack starts soaked to the same temperature; override with
    /// [`ElectricVehicle::with_pack_temperature`].
    ///
    /// # Panics
    ///
    /// Panics if `params.soh` or `params.battery` fail validation;
    /// [`crate::Simulation::new`] pre-validates and returns a routable
    /// error instead.
    #[must_use]
    pub fn new(params: &EvParams, initial_cabin: Celsius) -> Self {
        Self {
            power_train: PowerTrain::new(params.vehicle.clone()),
            hvac: params.hvac_model(),
            bms: Bms::new(
                params.battery.clone().validated(),
                SohModel::new(params.soh),
            ),
            pack: PackThermal::new(params.pack_thermal, initial_cabin),
            accessory_power: params.accessory_power,
            cabin: HvacState::new(initial_cabin),
        }
    }

    /// Overrides the initial battery-pack temperature (a parked vehicle
    /// soaks to ambient even when the cabin is preconditioned).
    #[must_use]
    pub fn with_pack_temperature(mut self, initial: Celsius) -> Self {
        self.pack = PackThermal::new(*self.pack.params(), initial);
        self
    }

    /// The current cabin temperature.
    #[must_use]
    pub fn cabin(&self) -> Celsius {
        self.cabin.tz
    }

    /// The current cabin state (for controllers).
    #[must_use]
    pub fn cabin_state(&self) -> HvacState {
        self.cabin
    }

    /// Borrows the BMS (SoC, trace, cycle statistics).
    #[must_use]
    pub fn bms(&self) -> &Bms {
        &self.bms
    }

    /// The current battery-pack temperature.
    #[must_use]
    pub fn pack_temperature(&self) -> Celsius {
        self.pack.temperature()
    }

    /// Borrows the power train (for precomputing motor power).
    #[must_use]
    pub fn power_train(&self) -> &PowerTrain {
        &self.power_train
    }

    /// Borrows the HVAC model.
    #[must_use]
    pub fn hvac(&self) -> &Hvac {
        &self.hvac
    }

    /// The constant accessory power.
    #[must_use]
    pub fn accessory_power(&self) -> Watts {
        self.accessory_power
    }

    /// Advances the whole plant one sample period: motor power from the
    /// drive sample, HVAC thermal step under `input`, total power metered
    /// into the battery by the BMS.
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0`.
    pub fn step(&mut self, input: &HvacInput, sample: &DriveSample, dt: Seconds) -> PlantStep {
        let motor_power = self
            .power_train
            .power(sample.v, sample.a, sample.slope_percent);
        let (next_cabin, hvac_power) =
            self.hvac
                .step(self.cabin, input, sample.ambient, sample.solar, dt);
        self.cabin = next_cabin;
        let total = motor_power + hvac_power.total() + self.accessory_power;
        let battery_power = self.bms.apply_load(total, dt);
        // The pack heats with I²R losses of the metered current and cools
        // toward ambient.
        let current = self.bms.battery().current_for_power(battery_power);
        let pack_temp = self.pack.step(current, sample.ambient, dt);
        PlantStep {
            motor_power,
            hvac_power,
            accessory_power: self.accessory_power,
            battery_power,
            cabin: self.cabin.tz,
            pack_temp,
            soc: self.bms.soc(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ev_units::MetersPerSecond;

    fn sample(v: f64, a: f64, to: f64) -> DriveSample {
        DriveSample {
            t: Seconds::ZERO,
            v: MetersPerSecond::new(v),
            a,
            slope_percent: 0.0,
            ambient: Celsius::new(to),
            solar: Watts::new(400.0),
        }
    }

    #[test]
    fn step_discharges_battery() {
        let params = EvParams::nissan_leaf_like();
        let mut ev = ElectricVehicle::new(&params, Celsius::new(30.0));
        let input = HvacInput::idle(&params.hvac, Celsius::new(30.0));
        let soc0 = ev.bms().soc().value();
        for _ in 0..60 {
            ev.step(&input, &sample(20.0, 0.0, 35.0), Seconds::new(1.0));
        }
        assert!(ev.bms().soc().value() < soc0);
    }

    #[test]
    fn regen_during_braking_reduces_drain() {
        let params = EvParams::nissan_leaf_like();
        let input = HvacInput::idle(&params.hvac, Celsius::new(24.0));
        let mut cruising = ElectricVehicle::new(&params, Celsius::new(24.0));
        let mut braking = ElectricVehicle::new(&params, Celsius::new(24.0));
        for _ in 0..60 {
            cruising.step(&input, &sample(20.0, 0.0, 24.0), Seconds::new(1.0));
            braking.step(&input, &sample(20.0, -2.0, 24.0), Seconds::new(1.0));
        }
        assert!(braking.bms().soc().value() > cruising.bms().soc().value());
    }

    #[test]
    fn accessories_always_drain() {
        let params = EvParams::nissan_leaf_like();
        let mut ev = ElectricVehicle::new(&params, Celsius::new(24.0));
        let input = HvacInput::idle(&params.hvac, Celsius::new(24.0));
        let step = ev.step(&input, &sample(0.0, 0.0, 24.0), Seconds::new(1.0));
        assert_eq!(step.motor_power.value(), 0.0);
        assert!(step.battery_power.value() >= 300.0);
    }

    #[test]
    fn cabin_follows_hvac_input() {
        let params = EvParams::nissan_leaf_like();
        let mut ev = ElectricVehicle::new(&params, Celsius::new(35.0));
        let cold = HvacInput {
            ts: Celsius::new(10.0),
            tc: Celsius::new(10.0),
            dr: 0.5,
            mz: params.hvac.max_flow,
        };
        for _ in 0..120 {
            ev.step(&cold, &sample(15.0, 0.0, 35.0), Seconds::new(1.0));
        }
        assert!(ev.cabin().value() < 32.0, "cabin {}", ev.cabin());
    }
}
