//! Golden-trace snapshot harness.
//!
//! A [`GoldenTrace`] is a downsampled, serialized view of one simulated
//! (cycle × controller) cell, checked into `tests/golden/`. The
//! integration suite re-runs the cell and compares against the snapshot
//! with per-channel tolerances; any behavioral drift in the plant, the
//! controllers or the numerics shows up as a diff naming the **first
//! diverging step**. Re-baseline intentionally with:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test --test golden_traces
//! ```

use std::fmt::Write as _;
use std::path::Path;

use ev_core::StepRecord;
use serde::{Deserialize, Serialize};

/// Environment variable that switches verification into regeneration.
pub const UPDATE_ENV: &str = "UPDATE_GOLDEN";

/// Target number of retained samples per golden trace; the stride is
/// chosen so a trace never stores more than about this many steps.
pub const TARGET_SAMPLES: usize = 64;

/// One retained sample of a golden trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GoldenStep {
    /// Original step index in the full trace.
    pub step: usize,
    /// Time (s).
    pub t: f64,
    /// State of charge (%).
    pub soc: f64,
    /// Cabin temperature (°C).
    pub cabin_temp: f64,
    /// Battery-pack temperature (°C).
    pub pack_temp: f64,
    /// BMS-metered battery power (W).
    pub battery_power: f64,
    /// Total HVAC power (W).
    pub hvac_power: f64,
    /// Controller mode (`"heating"`, `"cooling"`, `"vent"`, `"idle"`).
    pub mode: String,
}

/// Per-channel absolute tolerances for golden comparison. The defaults
/// absorb last-bit float noise while still catching any real change in
/// model behavior.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GoldenTolerance {
    /// SoC tolerance (%).
    pub soc: f64,
    /// Temperature tolerance (K), applied to cabin and pack.
    pub temp: f64,
    /// Power tolerance (W), applied to battery and HVAC power.
    pub power: f64,
}

impl Default for GoldenTolerance {
    fn default() -> Self {
        Self {
            soc: 1e-6,
            temp: 1e-6,
            power: 1e-3,
        }
    }
}

/// A downsampled snapshot of one simulated cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GoldenTrace {
    /// Drive-profile name (e.g. `"ECE-15"`).
    pub profile: String,
    /// Controller name (e.g. `"battery-lifetime-aware-mpc"`).
    pub controller: String,
    /// Sample period of the underlying simulation (s).
    pub dt: f64,
    /// Steps in the *full* trace this snapshot was taken from.
    pub full_len: usize,
    /// Downsampling stride (every `stride`-th step is retained, plus the
    /// final step).
    pub stride: usize,
    /// The retained samples.
    pub steps: Vec<GoldenStep>,
}

impl GoldenTrace {
    /// Downsamples a recorded trace into a snapshot. Retains every
    /// `stride`-th step (stride chosen for ≈[`TARGET_SAMPLES`] samples)
    /// plus the final step, so both transient and end state are pinned.
    ///
    /// # Panics
    ///
    /// Panics if `records` is empty.
    #[must_use]
    pub fn from_records(profile: &str, controller: &str, dt: f64, records: &[StepRecord]) -> Self {
        assert!(!records.is_empty(), "cannot snapshot an empty trace");
        let n = records.len();
        let stride = n.div_ceil(TARGET_SAMPLES).max(1);
        let mut steps: Vec<GoldenStep> = records.iter().step_by(stride).map(Self::sample).collect();
        let last_kept = (n - 1) / stride * stride;
        if last_kept != n - 1 {
            steps.push(Self::sample(&records[n - 1]));
        }
        Self {
            profile: profile.to_owned(),
            controller: controller.to_owned(),
            dt,
            full_len: n,
            stride,
            steps,
        }
    }

    fn sample(r: &StepRecord) -> GoldenStep {
        GoldenStep {
            step: r.step,
            t: r.t,
            soc: r.soc,
            cabin_temp: r.cabin_temp,
            pack_temp: r.pack_temp,
            battery_power: r.battery_power,
            hvac_power: r.hvac_power(),
            mode: r.mode.to_string(),
        }
    }

    /// Compares `actual` against this golden baseline. Returns `Ok(())`
    /// when every retained sample agrees within `tol`; otherwise returns
    /// a report naming the **first** diverging step and channel.
    ///
    /// # Errors
    ///
    /// Returns a human-readable diff on the first divergence.
    pub fn compare(&self, actual: &GoldenTrace, tol: GoldenTolerance) -> Result<(), String> {
        if self.profile != actual.profile || self.controller != actual.controller {
            return Err(format!(
                "golden cell mismatch: baseline is {} × {}, actual is {} × {}",
                self.profile, self.controller, actual.profile, actual.controller
            ));
        }
        if self.full_len != actual.full_len || self.stride != actual.stride {
            return Err(format!(
                "golden shape mismatch ({} × {}): baseline {} steps / stride {}, \
                 actual {} steps / stride {} — the simulated trace length changed",
                self.profile,
                self.controller,
                self.full_len,
                self.stride,
                actual.full_len,
                actual.stride
            ));
        }
        for (want, got) in self.steps.iter().zip(&actual.steps) {
            let channels: [(&str, f64, f64, f64); 5] = [
                ("soc", want.soc, got.soc, tol.soc),
                ("cabin_temp", want.cabin_temp, got.cabin_temp, tol.temp),
                ("pack_temp", want.pack_temp, got.pack_temp, tol.temp),
                (
                    "battery_power",
                    want.battery_power,
                    got.battery_power,
                    tol.power,
                ),
                ("hvac_power", want.hvac_power, got.hvac_power, tol.power),
            ];
            for (channel, expected, observed, eps) in channels {
                if (expected - observed).abs() > eps {
                    return Err(first_divergence(
                        self, want, channel, expected, observed, eps,
                    ));
                }
            }
            if want.mode != got.mode {
                return Err(format!(
                    "golden trace {} × {} diverges first at step {} (t = {} s): \
                     mode expected \"{}\", got \"{}\"",
                    self.profile, self.controller, want.step, want.t, want.mode, got.mode
                ));
            }
        }
        Ok(())
    }
}

fn first_divergence(
    golden: &GoldenTrace,
    step: &GoldenStep,
    channel: &str,
    expected: f64,
    observed: f64,
    eps: f64,
) -> String {
    let mut msg = String::new();
    let _ = write!(
        msg,
        "golden trace {} × {} diverges first at step {} (t = {} s): \
         {channel} expected {expected}, got {observed} (|Δ| = {:e} > tol {eps:e})",
        golden.profile,
        golden.controller,
        step.step,
        step.t,
        (expected - observed).abs(),
    );
    msg
}

/// Verifies `actual` against the baseline stored at `path`, or rewrites
/// the baseline when the [`UPDATE_ENV`] environment variable is set to a
/// non-empty value other than `"0"`.
///
/// # Errors
///
/// Returns the first-divergence diff when the trace drifted, or an
/// instructive message when the baseline is missing/unreadable.
pub fn verify_or_update(path: &Path, actual: &GoldenTrace) -> Result<(), String> {
    if update_requested() {
        let json = serde_json::to_string_pretty(actual)
            .map_err(|e| format!("cannot serialize golden trace: {e:?}"))?;
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        }
        return std::fs::write(path, json + "\n")
            .map_err(|e| format!("cannot write golden baseline {}: {e}", path.display()));
    }
    let text = std::fs::read_to_string(path).map_err(|e| {
        format!(
            "missing golden baseline {} ({e}); generate it with \
             `{UPDATE_ENV}=1 cargo test --test golden_traces`",
            path.display()
        )
    })?;
    let golden: GoldenTrace = serde_json::from_str(&text)
        .map_err(|e| format!("corrupt golden baseline {}: {e:?}", path.display()))?;
    golden.compare(actual, GoldenTolerance::default())
}

fn update_requested() -> bool {
    std::env::var(UPDATE_ENV).is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Verifies a plain-text artifact (a rendered report, a table) against
/// the baseline stored at `path`, or rewrites the baseline under
/// [`UPDATE_ENV`]. Text snapshots are compared line by line after
/// trimming trailing whitespace; a mismatch names the first differing
/// line.
///
/// # Errors
///
/// Returns the first-difference diff when the text drifted, or an
/// instructive message when the baseline is missing.
pub fn verify_or_update_text(path: &Path, actual: &str) -> Result<(), String> {
    if update_requested() {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        }
        let mut text = actual.trim_end().to_owned();
        text.push('\n');
        return std::fs::write(path, text)
            .map_err(|e| format!("cannot write golden baseline {}: {e}", path.display()));
    }
    let baseline = std::fs::read_to_string(path).map_err(|e| {
        format!(
            "missing golden baseline {} ({e}); generate it with `{UPDATE_ENV}=1 cargo test`",
            path.display()
        )
    })?;
    let want: Vec<&str> = baseline.trim_end().lines().map(str::trim_end).collect();
    let got: Vec<&str> = actual.trim_end().lines().map(str::trim_end).collect();
    for (i, (w, g)) in want.iter().zip(&got).enumerate() {
        if w != g {
            return Err(format!(
                "golden text {} diverges first at line {}:\n  expected: {w}\n  actual:   {g}",
                path.display(),
                i + 1
            ));
        }
    }
    if want.len() != got.len() {
        return Err(format!(
            "golden text {} length changed: baseline {} lines, actual {}",
            path.display(),
            want.len(),
            got.len()
        ));
    }
    Ok(())
}

/// Canonical snapshot filename for a (profile × controller) cell:
/// lowercase alphanumerics with runs of punctuation collapsed to `_`,
/// e.g. `("ECE-15", "on-off")` → `"ece_15_on_off.json"`.
#[must_use]
pub fn golden_filename(profile: &str, controller: &str) -> String {
    let mut name = String::new();
    for part in [profile, controller] {
        if !name.is_empty() {
            name.push('_');
        }
        let mut last_sep = true;
        for ch in part.chars() {
            if ch.is_ascii_alphanumeric() {
                name.push(ch.to_ascii_lowercase());
                last_sep = false;
            } else if !last_sep {
                name.push('_');
                last_sep = true;
            }
        }
        while name.ends_with('_') {
            name.pop();
        }
    }
    name + ".json"
}

#[cfg(test)]
mod tests {
    use super::*;
    use ev_core::ControllerMode;

    fn record(k: usize) -> StepRecord {
        StepRecord {
            step: k,
            t: k as f64,
            dt: 1.0,
            motor_power: 8_000.0,
            heating_power: 0.0,
            cooling_power: 2_000.0,
            fan_power: 100.0,
            accessory_power: 300.0,
            battery_power: 10_400.0,
            soc: 95.0 - 0.001 * k as f64,
            cabin_temp: 25.0,
            pack_temp: 32.0,
            ambient: 35.0,
            solar: 400.0,
            supply_temp: 12.0,
            coil_temp: 12.0,
            recirculation: 0.8,
            flow: 0.15,
            mode: ControllerMode::Cooling,
        }
    }

    fn trace(n: usize) -> Vec<StepRecord> {
        (0..n).map(record).collect()
    }

    #[test]
    fn downsampling_keeps_first_and_last_step() {
        let g = GoldenTrace::from_records("ECE-15", "on-off", 1.0, &trace(195));
        assert_eq!(g.full_len, 195);
        assert!(g.steps.len() <= TARGET_SAMPLES + 1);
        assert_eq!(g.steps.first().unwrap().step, 0);
        assert_eq!(g.steps.last().unwrap().step, 194);
    }

    #[test]
    fn short_trace_is_kept_whole() {
        let g = GoldenTrace::from_records("X", "y", 1.0, &trace(10));
        assert_eq!(g.stride, 1);
        assert_eq!(g.steps.len(), 10);
    }

    #[test]
    fn identical_traces_compare_clean() {
        let g = GoldenTrace::from_records("ECE-15", "fuzzy", 1.0, &trace(100));
        g.compare(&g.clone(), GoldenTolerance::default()).unwrap();
    }

    #[test]
    fn first_divergence_is_named() {
        let g = GoldenTrace::from_records("ECE-15", "fuzzy", 1.0, &trace(100));
        let mut records = trace(100);
        records[8].soc += 0.5; // step 8 is retained at stride 2
        records[50].cabin_temp += 3.0;
        let other = GoldenTrace::from_records("ECE-15", "fuzzy", 1.0, &records);
        let err = g.compare(&other, GoldenTolerance::default()).unwrap_err();
        assert!(err.contains("step 8"), "{err}");
        assert!(err.contains("soc"), "{err}");
        // Only the FIRST divergence is reported.
        assert!(!err.contains("cabin_temp"), "{err}");
    }

    #[test]
    fn mode_changes_are_divergences() {
        let g = GoldenTrace::from_records("ECE-15", "fuzzy", 1.0, &trace(10));
        let mut records = trace(10);
        records[4].mode = ControllerMode::Idle;
        let other = GoldenTrace::from_records("ECE-15", "fuzzy", 1.0, &records);
        let err = g.compare(&other, GoldenTolerance::default()).unwrap_err();
        assert!(err.contains("mode"), "{err}");
        assert!(err.contains("step 4"), "{err}");
    }

    #[test]
    fn length_change_is_reported_as_shape_mismatch() {
        let g = GoldenTrace::from_records("ECE-15", "fuzzy", 1.0, &trace(100));
        let other = GoldenTrace::from_records("ECE-15", "fuzzy", 1.0, &trace(90));
        let err = g.compare(&other, GoldenTolerance::default()).unwrap_err();
        assert!(err.contains("trace length changed"), "{err}");
    }

    #[test]
    fn filenames_are_sanitized() {
        assert_eq!(golden_filename("ECE-15", "on-off"), "ece_15_on_off.json");
        assert_eq!(golden_filename("ECE_EUDC", "fuzzy"), "ece_eudc_fuzzy.json");
        assert_eq!(
            golden_filename("ECE_EUDC", "battery-lifetime-aware-mpc"),
            "ece_eudc_battery_lifetime_aware_mpc.json"
        );
    }

    #[test]
    fn golden_trace_round_trips_through_json() {
        let g = GoldenTrace::from_records("ECE-15", "on-off", 1.0, &trace(30));
        let json = serde_json::to_string_pretty(&g).unwrap();
        let back: GoldenTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn missing_baseline_error_is_instructive() {
        let g = GoldenTrace::from_records("ECE-15", "on-off", 1.0, &trace(5));
        let err = verify_or_update(Path::new("/nonexistent/dir/x.json"), &g).unwrap_err();
        assert!(err.contains(UPDATE_ENV), "{err}");
    }

    #[test]
    fn text_golden_names_first_differing_line() {
        let dir = std::env::temp_dir().join("ev_testkit_text_golden");
        let path = dir.join("report.txt");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(&path, "a\nb\nc\n").unwrap();
        verify_or_update_text(&path, "a\nb\nc").unwrap();
        // Trailing whitespace is insignificant.
        verify_or_update_text(&path, "a  \nb\nc\n\n").unwrap();
        let err = verify_or_update_text(&path, "a\nX\nc").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let err = verify_or_update_text(&path, "a\nb\nc\nd").unwrap_err();
        assert!(err.contains("length changed"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_text_baseline_error_is_instructive() {
        let err = verify_or_update_text(Path::new("/nonexistent/dir/report.txt"), "x").unwrap_err();
        assert!(err.contains(UPDATE_ENV), "{err}");
    }
}
