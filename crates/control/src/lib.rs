//! Automotive climate controllers: the paper's two state-of-the-art
//! baselines and its battery lifetime-aware MPC.
//!
//! All controllers implement [`ClimateController`]: at each control
//! instant they observe a [`ControlContext`] (measured cabin temperature,
//! ambient conditions, BMS feedback and — for the MPC — a preview of the
//! drive ahead) and command an [`ev_hvac::HvacInput`].
//!
//! | Controller | Strategy | Paper role |
//! |---|---|---|
//! | [`OnOffController`] | bang-bang thermostat at full capacity | baseline \[8, 9\] |
//! | [`PidController`] | classical PID on temperature error | building block |
//! | [`FuzzyController`] | Mamdani fuzzy logic on (error, error rate) | baseline \[10\] |
//! | [`MpcController`] | receding-horizon SQP over the drive preview | the contribution |
//!
//! # Examples
//!
//! ```
//! use ev_control::{ClimateController, ControlContext, OnOffController};
//! use ev_hvac::{CabinParams, Hvac, HvacLimits, HvacParams, HvacState};
//! use ev_units::{Celsius, Percent, Seconds, Watts};
//!
//! let hvac = Hvac::new(CabinParams::default(), HvacParams::default());
//! let mut controller =
//!     OnOffController::new(hvac, HvacLimits::default(), Celsius::new(24.0), 1.5);
//! let ctx = ControlContext {
//!     state: HvacState::new(Celsius::new(27.5)),
//!     ambient: Celsius::new(35.0),
//!     solar: Watts::new(400.0),
//!     soc: Percent::new(88.0),
//!     soc_avg: 90.0,
//!     dt: Seconds::new(1.0),
//!     elapsed: Seconds::ZERO,
//!     preview: &[],
//! };
//! let input = controller.control(&ctx);
//! assert!(input.mz.value() > 0.2); // full-capacity cooling
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod context;
mod diagnostics;
pub mod fuzzy;
mod mpc;
mod onoff;
mod pid;

pub use context::{ControlContext, PreviewSample};
pub use diagnostics::MpcDiagnostics;
pub use fuzzy::FuzzyController;
pub use mpc::{
    MpcBatteryModel, MpcBuilder, MpcConfigError, MpcController, MpcWeights, CONSTRAINT_ROW_LABELS,
};
pub use onoff::OnOffController;
pub use pid::PidController;

use ev_hvac::{Hvac, HvacInput, HvacLimits};
use ev_units::{Celsius, KgPerSecond};

/// A climate controller: maps the observed context to HVAC inputs once
/// per control period.
///
/// Implementations are stateful (`&mut self`): thermostats track their
/// switch state, PID its integral, the MPC its warm start.
pub trait ClimateController {
    /// A short, stable identifier (used in experiment tables).
    fn name(&self) -> &'static str;

    /// Computes the HVAC input for the current step.
    fn control(&mut self, ctx: &ControlContext<'_>) -> HvacInput;

    /// Cumulative solver diagnostics, for controllers backed by an
    /// optimizer. The default (rule-based controllers) is `None`.
    fn solver_diagnostics(&self) -> Option<MpcDiagnostics> {
        None
    }

    /// Clears all per-drive state so the controller can be handed to a
    /// *new vehicle session* without re-instantiation: thermostat switch
    /// state, PID integral/derivative memory, and — critically — the
    /// MPC's warm start and interior-point multiplier cache, which
    /// anchor the solver to the previous vehicle's trajectory and must
    /// never leak across vehicle ids. Cumulative observability
    /// (diagnostics counters, telemetry) survives the reset: a session
    /// slot is reused, the metrics stream is not.
    ///
    /// After `reset_session` the controller must behave bitwise
    /// identically to a freshly instantiated one. The default is a no-op,
    /// correct only for stateless controllers.
    fn reset_session(&mut self) {}
}

/// Maps a signed actuation duty (−1 = full heating, +1 = full cooling)
/// onto a feasible [`HvacInput`], shared by the PID and fuzzy
/// controllers.
///
/// The duty scales the fan flow between its limits and drives the active
/// coil up to the span its power cap allows at that flow.
///
/// # Examples
///
/// ```
/// use ev_control::{duty_to_input, ControlContext};
/// use ev_hvac::{CabinParams, Hvac, HvacLimits, HvacParams, HvacState};
/// use ev_units::{Celsius, Percent, Seconds, Watts};
///
/// let hvac = Hvac::new(CabinParams::default(), HvacParams::default());
/// let ctx = ControlContext {
///     state: HvacState::new(Celsius::new(26.0)),
///     ambient: Celsius::new(35.0),
///     solar: Watts::new(400.0),
///     soc: Percent::new(90.0),
///     soc_avg: 92.0,
///     dt: Seconds::new(1.0),
///     elapsed: Seconds::ZERO,
///     preview: &[],
/// };
/// let cooling = duty_to_input(&hvac, &HvacLimits::default(), &ctx, 0.8);
/// assert!(cooling.tc < ctx.state.tz);
/// ```
#[must_use]
pub fn duty_to_input(
    hvac: &Hvac,
    limits: &HvacLimits,
    ctx: &ControlContext<'_>,
    duty: f64,
) -> HvacInput {
    let p = hvac.params();
    let duty = duty.clamp(-1.0, 1.0);
    let magnitude = duty.abs();
    if magnitude < 0.02 {
        return limits.clamp_input(
            hvac,
            HvacInput::idle(p, ctx.state.tz),
            ctx.state,
            ctx.ambient,
        );
    }
    let cp = hvac.cabin().air_heat_capacity.value();
    let mz = KgPerSecond::new(
        p.min_flow.value() + magnitude * (p.max_flow.value() - p.min_flow.value()),
    );
    // Modern automatic climate control recirculates aggressively while
    // conditioning; use the system limit.
    let dr = p.max_recirculation;
    let probe = HvacInput {
        ts: ctx.state.tz,
        tc: ctx.state.tz,
        dr,
        mz,
    };
    let tm = hvac.mixed_air(&probe, ctx.state.tz, ctx.ambient);
    // Full duty commands a fixed coil span (DT_FULL_SPAN kelvins), but
    // never beyond what the coil power cap allows at this flow — without
    // the fixed scale, tiny duties at low flow would command full-depth
    // coils (the cap permits a huge ΔT when ṁz is small).
    const DT_FULL_SPAN: f64 = 25.0;
    let input = if duty > 0.0 {
        // Cooling: drive the coil below the mix.
        let span_cap = p.max_cooling_power.value() * p.cooler_efficiency / (cp * mz.value());
        let tc = Celsius::new(tm.value() - magnitude * DT_FULL_SPAN.min(span_cap));
        HvacInput { ts: tc, tc, dr, mz }
    } else {
        // Heating from a passive coil at the mix temperature.
        let span_cap = p.max_heating_power.value() * p.heater_efficiency / (cp * mz.value());
        let ts = Celsius::new(tm.value() + magnitude * DT_FULL_SPAN.min(span_cap));
        HvacInput { ts, tc: tm, dr, mz }
    };
    limits.clamp_input(hvac, input, ctx.state, ctx.ambient)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ev_hvac::{CabinParams, HvacParams, HvacState};
    use ev_units::{Percent, Seconds, Watts};

    fn ctx_at(tz: f64, to: f64) -> ControlContext<'static> {
        ControlContext {
            state: HvacState::new(Celsius::new(tz)),
            ambient: Celsius::new(to),
            solar: Watts::new(400.0),
            soc: Percent::new(90.0),
            soc_avg: 92.0,
            dt: Seconds::new(1.0),
            elapsed: Seconds::ZERO,
            preview: &[],
        }
    }

    fn hvac() -> Hvac {
        Hvac::new(CabinParams::default(), HvacParams::default())
    }

    #[test]
    fn zero_duty_is_idle() {
        let input = duty_to_input(&hvac(), &HvacLimits::default(), &ctx_at(24.0, 30.0), 0.0);
        assert_eq!(input.mz.value(), 0.02);
    }

    #[test]
    fn full_cooling_duty_respects_power_cap() {
        let h = hvac();
        let ctx = ctx_at(27.0, 43.0);
        let input = duty_to_input(&h, &HvacLimits::default(), &ctx, 1.0);
        let power = h.power(&input, ctx.state, ctx.ambient);
        assert!(power.cooling.value() <= 6000.0 + 1.0, "{power:?}");
        assert!(
            power.cooling.value() > 4000.0,
            "should be near cap: {power:?}"
        );
    }

    #[test]
    fn full_heating_duty_respects_power_cap() {
        let h = hvac();
        let ctx = ctx_at(18.0, -10.0);
        let input = duty_to_input(&h, &HvacLimits::default(), &ctx, -1.0);
        let power = h.power(&input, ctx.state, ctx.ambient);
        assert!(power.heating.value() <= 6000.0 + 1.0, "{power:?}");
        assert!(power.heating.value() > 4000.0, "{power:?}");
    }

    #[test]
    fn duty_scales_flow_monotonically() {
        let h = hvac();
        let l = HvacLimits::default();
        let ctx = ctx_at(27.0, 35.0);
        let lo = duty_to_input(&h, &l, &ctx, 0.3);
        let hi = duty_to_input(&h, &l, &ctx, 0.9);
        assert!(hi.mz.value() > lo.mz.value());
    }

    #[test]
    fn duty_is_clamped() {
        let h = hvac();
        let l = HvacLimits::default();
        let ctx = ctx_at(27.0, 35.0);
        let over = duty_to_input(&h, &l, &ctx, 5.0);
        let full = duty_to_input(&h, &l, &ctx, 1.0);
        assert_eq!(over, full);
    }
}
