//! Property: the streaming aggregates of [`StatsObserver`] agree exactly
//! with recomputing the same statistics from the full
//! [`TraceRecorder`] trace, on randomized synthetic routes and any
//! controller of the paper lineup. Both observers ride the same
//! simulation, so a disagreement can only come from the streaming fold
//! itself (a missed step, a wrong channel, drift in the mode classifier).

use ev_core::{
    ChannelStats, ControllerKind, ControllerMode, EvParams, ModeCounts, StatsObserver, StepRecord,
    TraceRecorder,
};
use ev_drive::synthetic::RouteConfig;
use ev_testkit::run_with;
use ev_units::{Celsius, Watts};
use proptest::prelude::*;

/// Recomputes every `StatsObserver` aggregate from a recorded trace.
fn recompute(records: &[StepRecord]) -> StatsObserver {
    let mut stats = StatsObserver::new();
    let fold = |chan: &mut ChannelStats, x: f64| chan.push(x);
    let mut modes = ModeCounts::default();
    for r in records {
        fold(&mut stats.hvac_power, r.hvac_power());
        fold(&mut stats.battery_power, r.battery_power);
        fold(&mut stats.soc, r.soc);
        fold(&mut stats.cabin_temp, r.cabin_temp);
        fold(&mut stats.pack_temp, r.pack_temp);
        match r.mode {
            ControllerMode::Heating => modes.heating += 1,
            ControllerMode::Cooling => modes.cooling += 1,
            ControllerMode::Vent => modes.vent += 1,
            ControllerMode::Idle => modes.idle += 1,
        }
    }
    stats.modes = modes;
    stats
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn streaming_stats_match_trace_recomputation(
        seed in 0u64..10_000,
        urban_minutes in 1.0f64..4.0,
        hilliness in 0.0f64..6.0,
        ambient in 20.0f64..42.0,
        controller_idx in 0usize..3,
    ) {
        let config = RouteConfig::new(seed)
            .urban_minutes(urban_minutes)
            .highway_minutes(0.0)
            .hilliness(hilliness)
            .ambient(Celsius::new(ambient))
            .solar(Watts::new(400.0));
        let profile = config.generate();
        let params = EvParams::nissan_leaf_like();
        let kind = ControllerKind::paper_lineup()[controller_idx];
        let (result, (stats, trace)) = run_with(
            &params,
            profile,
            kind,
            (StatsObserver::new(), TraceRecorder::new()),
        );
        prop_assert_eq!(stats.steps(), trace.records().len());
        prop_assert_eq!(stats.steps(), result.series.t.len());
        // Exact equality, not tolerance: both paths fold the same f64
        // stream in the same order.
        let recomputed = recompute(trace.records());
        prop_assert_eq!(&stats, &recomputed);
        prop_assert_eq!(stats.modes.total(), stats.steps());
    }
}
