//! EV power-train model and ICE reference vehicle.
//!
//! Implements the paper's Section II-B: the tractive force the electric
//! motor must produce to overcome the road load
//!
//! ```text
//! F_rd = F_gr + F_aero + F_roll            (Eq. 1)
//! F_aero = ½ ρ Cx A (v + v_wind)²          (Eq. 2)
//! F_gr = m g sin(atan(α/100))              (Eq. 3)
//! F_roll = m g (c0 + c1 v²)                (Eq. 4)
//! F_tr = F_rd + m a                        (Eq. 5)
//! P_e = F_tr v / η_m                       (Eq. 6)
//! ```
//!
//! with a speed×torque [`EfficiencyMap`] for `η_m` covering both motor and
//! generator (regenerative braking) quadrants. Parameters default to the
//! Nissan Leaf, the vehicle the paper calibrates against (its ref \[12\]).
//!
//! The crate also provides [`IceVehicle`], an internal-combustion reference
//! with engine waste-heat cabin heating, needed to reproduce the paper's
//! motivational Fig. 1 (EV vs ICE consumption split across ambient
//! temperatures).
//!
//! # Examples
//!
//! ```
//! use ev_powertrain::{PowerTrain, VehicleParams};
//! use ev_units::MetersPerSecond;
//!
//! let pt = PowerTrain::new(VehicleParams::nissan_leaf());
//! // Cruising at 100 km/h on a flat road draws roughly 10–25 kW.
//! let p = pt.power(MetersPerSecond::new(27.8), 0.0, 0.0);
//! assert!(p.to_kilowatts().value() > 8.0 && p.to_kilowatts().value() < 25.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod efficiency;
mod forces;
mod ice;
mod params;
mod train;

pub use efficiency::EfficiencyMap;
pub use forces::RoadLoad;
pub use ice::{IceParams, IceVehicle};
pub use params::{VehicleParams, VehicleParamsBuilder};
pub use train::PowerTrain;

/// Standard gravitational acceleration (m/s²).
pub const GRAVITY: f64 = 9.80665;
