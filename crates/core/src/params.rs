//! The integrated EV parameter set and controller factory.

use ev_battery::{BatteryParams, PackThermalParams, SohParams};
use ev_control::{
    ClimateController, FuzzyController, MpcBatteryModel, MpcConfigError, MpcController, MpcWeights,
    OnOffController, PidController,
};
use ev_hvac::{CabinParams, Hvac, HvacLimits, HvacParams};
use ev_powertrain::VehicleParams;
use ev_telemetry::{FlightRecorder, Registry, TraceRing};
use ev_units::{Celsius, Seconds, Watts};
use serde::{Deserialize, Serialize};

/// Every parameter of the simulated EV in one place: chassis, cabin,
/// HVAC machine, battery, SoH model, accessories and the comfort
/// specification shared by all controllers (the paper keeps ambient,
/// comfort zone and target identical across methodologies for fairness).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvParams {
    /// Chassis and power-train parameters.
    pub vehicle: VehicleParams,
    /// Cabin thermal parameters.
    pub cabin: CabinParams,
    /// HVAC machine limits and efficiencies.
    pub hvac: HvacParams,
    /// Battery pack parameters.
    pub battery: BatteryParams,
    /// SoH degradation model parameters.
    pub soh: SohParams,
    /// Battery-pack thermal model parameters.
    #[serde(default)]
    pub pack_thermal: PackThermalParams,
    /// Constant accessory power (entertainment, lights, pumps).
    pub accessory_power: Watts,
    /// Cabin temperature target shared by all controllers.
    pub target: Celsius,
    /// Comfort-zone half width around the target (K).
    pub comfort_half_width: f64,
    /// Initial cabin temperature; `None` = soaked to ambient.
    pub initial_cabin: Option<Celsius>,
}

impl EvParams {
    /// A Nissan-Leaf-like EV: the vehicle the paper calibrates against,
    /// with the paper's experimental comfort setup (24 °C target ± 3 K).
    #[must_use]
    pub fn nissan_leaf_like() -> Self {
        Self {
            vehicle: VehicleParams::nissan_leaf(),
            cabin: CabinParams::default(),
            hvac: HvacParams::default(),
            battery: BatteryParams::leaf_24kwh(),
            soh: SohParams::default(),
            pack_thermal: PackThermalParams::default(),
            accessory_power: Watts::new(300.0),
            target: Celsius::new(24.0),
            comfort_half_width: 3.0,
            initial_cabin: None,
        }
    }

    /// The HVAC model instance for these parameters.
    #[must_use]
    pub fn hvac_model(&self) -> Hvac {
        Hvac::new(self.cabin, self.hvac)
    }

    /// The comfort limits shared by all controllers.
    #[must_use]
    pub fn limits(&self) -> HvacLimits {
        HvacLimits::comfort_band(self.target, self.comfort_half_width)
    }

    /// The battery model the MPC predicts with, derived from the plant
    /// battery parameters.
    #[must_use]
    pub fn mpc_battery_model(&self) -> MpcBatteryModel {
        MpcBatteryModel {
            voltage: self.battery.ocv.voltage(self.battery.initial_soc),
            capacity: self.battery.nominal_capacity,
            nominal_current: self.battery.nominal_current,
            peukert: self.battery.peukert_constant,
        }
    }
}

impl Default for EvParams {
    fn default() -> Self {
        Self::nissan_leaf_like()
    }
}

/// The controllers compared in the paper's evaluation, as a factory enum
/// so experiments can sweep over them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ControllerKind {
    /// Switching On/Off baseline (paper refs \[8, 9\]).
    OnOff,
    /// Fuzzy-based baseline (paper ref \[10\]).
    Fuzzy,
    /// Plain PID (building block; not part of the paper's comparison).
    Pid,
    /// The battery lifetime-aware MPC (the paper's contribution).
    Mpc,
}

impl ControllerKind {
    /// The three methodologies of the paper's comparison, in its order:
    /// On/Off, fuzzy-based, battery lifetime-aware.
    #[must_use]
    pub fn paper_lineup() -> [Self; 3] {
        [Self::OnOff, Self::Fuzzy, Self::Mpc]
    }

    /// Display label matching the paper's legends.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::OnOff => "On/Off [8, 9]",
            Self::Fuzzy => "Fuzzy-based [10]",
            Self::Pid => "PID",
            Self::Mpc => "Our Battery Lifetime-aware",
        }
    }

    /// Instantiates the controller for the given EV.
    ///
    /// # Errors
    ///
    /// Returns an [`MpcConfigError`] if the MPC configuration is invalid
    /// (cannot happen for the built-in defaults).
    pub fn instantiate(
        self,
        params: &EvParams,
    ) -> Result<Box<dyn ClimateController>, MpcConfigError> {
        self.instantiate_instrumented(params, &Registry::disabled())
    }

    /// Instantiates the controller with solver telemetry bound to
    /// `telemetry`. Rule-based controllers have no solver and ignore the
    /// registry; the MPC records solve/QP timings, SQP iteration counts
    /// and warm-start counters into it. With a disabled registry this is
    /// exactly [`ControllerKind::instantiate`].
    ///
    /// # Errors
    ///
    /// Returns an [`MpcConfigError`] if the MPC configuration is invalid
    /// (cannot happen for the built-in defaults).
    pub fn instantiate_instrumented(
        self,
        params: &EvParams,
        telemetry: &Registry,
    ) -> Result<Box<dyn ClimateController>, MpcConfigError> {
        self.instantiate_configured(
            params,
            &ControllerSetup {
                telemetry: telemetry.clone(),
                ..ControllerSetup::default()
            },
        )
    }

    /// Instantiates the controller with the full observability wiring: a
    /// telemetry registry, a flight recorder (the MPC records one
    /// decision per solve into it) and an optional SQP iteration cap
    /// override. The default setup is fully inert, making this exactly
    /// [`ControllerKind::instantiate`].
    ///
    /// # Errors
    ///
    /// Returns an [`MpcConfigError`] if the MPC configuration is invalid
    /// (for the built-in defaults only possible through a zero
    /// `max_sqp_iterations` override).
    pub fn instantiate_configured(
        self,
        params: &EvParams,
        setup: &ControllerSetup,
    ) -> Result<Box<dyn ClimateController>, MpcConfigError> {
        let hvac = params.hvac_model();
        let limits = params.limits();
        Ok(match self {
            Self::OnOff => Box::new(OnOffController::new(hvac, limits, params.target, 1.5)),
            Self::Fuzzy => Box::new(FuzzyController::new(hvac, limits, params.target)),
            Self::Pid => Box::new(PidController::new(hvac, limits, params.target)),
            Self::Mpc => {
                let mut builder = MpcController::builder(hvac, limits)
                    .target(params.target)
                    .horizon(8)
                    .prediction_dt(Seconds::new(4.0))
                    .recompute_every(4)
                    .weights(MpcWeights::default())
                    .battery(params.mpc_battery_model())
                    .accessory_power(params.accessory_power)
                    .telemetry(&setup.telemetry)
                    .flight_recorder(&setup.recorder)
                    .trace(&setup.trace);
                if let Some(cap) = setup.max_sqp_iterations {
                    builder = builder.max_sqp_iterations(cap);
                }
                Box::new(builder.build()?)
            }
        })
    }
}

/// Observability wiring for [`ControllerKind::instantiate_configured`]:
/// which telemetry registry and flight recorder the controller should
/// record into, and an optional SQP iteration-cap override (used by the
/// flight-recorder smoke harness to force a `MaxIterations` outcome).
/// The `Default` is fully inert — disabled registry, disabled recorder,
/// built-in iteration cap.
#[derive(Debug, Clone, Default)]
pub struct ControllerSetup {
    /// Registry for solver/plant metrics (disabled by default).
    pub telemetry: Registry,
    /// Flight recorder for per-solve decision records (disabled by
    /// default).
    pub recorder: FlightRecorder,
    /// Trace ring for begin/end event spans (disabled by default). The
    /// fleet engine scopes it per (shard, session) before handing it to
    /// the controller, so MPC solve spans land on the right track.
    pub trace: TraceRing,
    /// Overrides the MPC's SQP major-iteration cap when `Some`.
    pub max_sqp_iterations: Option<usize>,
}

impl core::fmt::Display for ControllerKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_consistent() {
        let p = EvParams::nissan_leaf_like();
        assert_eq!(p.target, Celsius::new(24.0));
        let limits = p.limits();
        assert_eq!(limits.comfort_min, Celsius::new(21.0));
        assert_eq!(limits.comfort_max, Celsius::new(27.0));
        assert_eq!(EvParams::default(), p);
    }

    #[test]
    fn mpc_battery_model_derivation() {
        let p = EvParams::nissan_leaf_like();
        let m = p.mpc_battery_model();
        assert_eq!(m.peukert, 1.10);
        assert!((m.capacity.value() - 66.667).abs() < 0.1);
        // Voltage taken at the initial SoC (95 %), between 394 and 403 V.
        assert!(m.voltage.value() > 394.0 && m.voltage.value() < 403.0);
    }

    #[test]
    fn all_controllers_instantiate() {
        let p = EvParams::nissan_leaf_like();
        for kind in [
            ControllerKind::OnOff,
            ControllerKind::Fuzzy,
            ControllerKind::Pid,
            ControllerKind::Mpc,
        ] {
            let c = kind.instantiate(&p).expect("instantiates");
            assert!(!c.name().is_empty());
        }
    }

    #[test]
    fn paper_lineup_order() {
        let lineup = ControllerKind::paper_lineup();
        assert_eq!(lineup[0], ControllerKind::OnOff);
        assert_eq!(lineup[2], ControllerKind::Mpc);
        assert!(lineup[0].label().contains("On/Off"));
        assert!(lineup[2].to_string().contains("Lifetime"));
    }
}
