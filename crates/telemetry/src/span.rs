//! Monotonic timing spans that report into a histogram.

use std::time::Instant;

use crate::metrics::Histogram;

/// An RAII timing guard.
///
/// Created by [`Histogram::start_span`]; records elapsed wall-clock
/// seconds (monotonic, via [`Instant`]) into its histogram when finished
/// or dropped. When the histogram is disabled the span never reads the
/// clock, so an un-instrumented hot path pays only an `Option` branch.
#[derive(Debug)]
pub struct Span {
    start: Option<Instant>,
    hist: Histogram,
    recorded: bool,
}

impl Span {
    pub(crate) fn new(hist: Histogram) -> Self {
        let start = if hist.is_enabled() {
            Some(Instant::now())
        } else {
            None
        };
        Span {
            start,
            hist,
            recorded: false,
        }
    }

    /// Stop the span now and return the elapsed seconds that were
    /// recorded (0.0 when the histogram is disabled).
    pub fn finish(mut self) -> f64 {
        self.record(0)
    }

    /// Stop the span now, recording the elapsed seconds with `span_id`
    /// as the exemplar of the bucket the sample lands in (see
    /// [`Histogram::record_with_exemplar`]). Pass the id returned by
    /// [`crate::TraceSpan::finish_id`] to tie a latency observation to
    /// the exact trace span that produced it; 0 records plainly.
    pub fn finish_with_exemplar(mut self, span_id: u64) -> f64 {
        self.record(span_id)
    }

    fn record(&mut self, span_id: u64) -> f64 {
        if self.recorded {
            return 0.0;
        }
        self.recorded = true;
        match self.start {
            Some(t0) => {
                let secs = t0.elapsed().as_secs_f64();
                self.hist.record_with_exemplar(secs, span_id);
                secs
            }
            None => 0.0,
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.record(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HistogramSpec, Registry};

    #[test]
    fn span_records_once() {
        let reg = Registry::enabled();
        let h = reg.histogram("t", HistogramSpec::latency_seconds());
        let span = h.start_span();
        let secs = span.finish();
        assert!(secs >= 0.0);
        let snap = reg.snapshot();
        assert_eq!(snap.histogram("t").unwrap().count, 1);
    }

    #[test]
    fn span_records_on_drop() {
        let reg = Registry::enabled();
        let h = reg.histogram("t", HistogramSpec::latency_seconds());
        {
            let _span = h.start_span();
        }
        assert_eq!(reg.snapshot().histogram("t").unwrap().count, 1);
    }

    #[test]
    fn finish_with_exemplar_stamps_the_landing_bucket() {
        let reg = Registry::enabled();
        let h = reg.histogram("t", HistogramSpec::latency_seconds());
        let span = h.start_span();
        let secs = span.finish_with_exemplar(99);
        assert!(secs >= 0.0);
        let snap = reg.snapshot();
        let hist = snap.histogram("t").unwrap();
        assert_eq!(hist.count, 1);
        let ex = hist
            .exemplars
            .iter()
            .flatten()
            .next()
            .expect("one exemplar recorded");
        assert_eq!(ex.span_id, 99);
        assert_eq!(ex.value, secs);
    }

    #[test]
    fn disabled_span_reads_no_clock() {
        let h = Histogram::disabled();
        let span = h.start_span();
        assert_eq!(span.finish(), 0.0);
    }

    #[test]
    fn nested_spans_order_elapsed_times() {
        let reg = Registry::enabled();
        let outer = reg.histogram("outer", HistogramSpec::latency_seconds());
        let inner = reg.histogram("inner", HistogramSpec::latency_seconds());
        let outer_secs;
        let inner_secs;
        {
            let outer_span = outer.start_span();
            {
                let inner_span = inner.start_span();
                inner_secs = inner_span.finish();
            }
            outer_secs = outer_span.finish();
        }
        assert!(outer_secs >= inner_secs);
        let snap = reg.snapshot();
        assert_eq!(snap.histogram("outer").unwrap().count, 1);
        assert_eq!(snap.histogram("inner").unwrap().count, 1);
        assert!(snap.histogram("outer").unwrap().sum >= snap.histogram("inner").unwrap().sum);
    }
}
