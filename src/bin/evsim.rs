//! `evsim` — command-line driver for the evclimate simulator.
//!
//! ```text
//! evsim cycles
//!     List the built-in drive cycles and their statistics.
//!
//! evsim simulate --cycle <name> --controller <onoff|fuzzy|pid|mpc>
//!                [--ambient <°C>] [--target <°C>] [--precondition]
//!                [--json <path>] [--telemetry <path.jsonl>]
//!     Run one closed-loop simulation and print the metrics; optionally
//!     dump the full result (time series included) as JSON and/or the
//!     telemetry snapshot (solver + plant metrics) as JSONL.
//!
//! evsim compare --cycle <name> [--ambient <°C>] [--precondition]
//!     Run the paper's three-controller comparison on one cycle.
//!
//! evsim validate-telemetry <path.jsonl>
//!     Check a telemetry JSONL dump against the metric-line schema.
//! ```

use std::process::ExitCode;

use evclimate::core::{ControllerKind, EvParams, Simulation, SimulationResult, TelemetryObserver};
use evclimate::drive::{AmbientConditions, DriveCycle, DriveProfile};
use evclimate::telemetry::{export, Registry};
use evclimate::units::{Celsius, Seconds};

fn usage() -> &'static str {
    "usage:\n  evsim cycles\n  evsim simulate --cycle <name> --controller <onoff|fuzzy|pid|mpc> \
     [--ambient <°C>] [--target <°C>] [--precondition] [--json <path>] \
     [--telemetry <path.jsonl>]\n  \
     evsim compare --cycle <name> [--ambient <°C>] [--precondition]\n  \
     evsim validate-telemetry <path.jsonl>"
}

/// Looks up a built-in cycle by (case-insensitive) name.
fn cycle_by_name(name: &str) -> Option<DriveCycle> {
    match name.to_ascii_lowercase().as_str() {
        "nedc" => Some(DriveCycle::nedc()),
        "ece15" | "ece-15" => Some(DriveCycle::ece15()),
        "eudc" => Some(DriveCycle::eudc()),
        "ece_eudc" | "ece-eudc" => Some(DriveCycle::ece_eudc()),
        "us06" => Some(DriveCycle::us06()),
        "sc03" => Some(DriveCycle::sc03()),
        "udds" => Some(DriveCycle::udds()),
        "wltc" | "wltc3" | "wltc-3" => Some(DriveCycle::wltc_class3()),
        _ => None,
    }
}

fn controller_by_name(name: &str) -> Option<ControllerKind> {
    match name.to_ascii_lowercase().as_str() {
        "onoff" | "on-off" => Some(ControllerKind::OnOff),
        "fuzzy" => Some(ControllerKind::Fuzzy),
        "pid" => Some(ControllerKind::Pid),
        "mpc" | "lifetime" => Some(ControllerKind::Mpc),
        _ => None,
    }
}

/// Minimal flag parser: `--key value` pairs plus boolean `--flags`.
struct Args {
    pairs: Vec<(String, String)>,
    flags: Vec<String>,
}

impl Args {
    fn parse(argv: &[String]) -> Result<Self, String> {
        let mut pairs = Vec::new();
        let mut flags = Vec::new();
        let mut it = argv.iter().peekable();
        while let Some(a) = it.next() {
            let Some(key) = a.strip_prefix("--") else {
                return Err(format!("unexpected argument '{a}'"));
            };
            match it.peek() {
                Some(v) if !v.starts_with("--") => {
                    pairs.push((key.to_owned(), (*v).clone()));
                    it.next();
                }
                _ => flags.push(key.to_owned()),
            }
        }
        Ok(Self { pairs, flags })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    fn get_f64(&self, key: &str, default: f64) -> Result<f64, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} expects a number, got '{v}'")),
        }
    }
}

fn build_sim(args: &Args) -> Result<(EvParams, Simulation), String> {
    let cycle_name = args.get("cycle").ok_or("missing --cycle")?;
    let cycle = cycle_by_name(cycle_name)
        .ok_or_else(|| format!("unknown cycle '{cycle_name}' (try: evsim cycles)"))?;
    let ambient = args.get_f64("ambient", 35.0)?;
    let target = args.get_f64("target", 24.0)?;
    let mut params = EvParams::nissan_leaf_like();
    params.target = Celsius::new(target);
    if args.flag("precondition") {
        params.initial_cabin = Some(params.target);
    }
    let profile = DriveProfile::from_cycle(
        &cycle,
        AmbientConditions::constant(Celsius::new(ambient)),
        Seconds::new(1.0),
    );
    let sim = Simulation::new(params.clone(), profile).map_err(|e| e.to_string())?;
    Ok((params, sim))
}

fn print_metrics(result: &SimulationResult) {
    let m = result.metrics();
    println!("profile:        {}", result.profile);
    println!("controller:     {}", result.controller);
    println!("distance:       {:.2} km", m.distance.value());
    println!(
        "energy:         {:.3} kWh ({:.2} kWh/100km)",
        m.energy.value(),
        m.kwh_per_100km
    );
    println!("avg HVAC power: {:.3} kW", m.avg_hvac_power.value());
    println!("final SoC:      {:.2} %", m.final_soc);
    println!(
        "SoC avg/dev:    {:.2} / {:.3} %",
        m.soc_stats.avg, m.soc_stats.dev
    );
    println!(
        "ΔSoH:           {:.3} m% per cycle ({:.0} cycles to 80 %)",
        m.delta_soh_milli_percent, m.cycles_to_eol
    );
    println!(
        "comfort:        {} violations, worst {:.2} K, mean |ΔT| {:.2} K",
        m.comfort_violations, m.max_comfort_excursion, m.mean_temp_error
    );
}

fn cmd_cycles() {
    println!(
        "{:<10} {:>9} {:>10} {:>10} {:>10}",
        "cycle", "time s", "dist km", "avg km/h", "max km/h"
    );
    let mut cycles = DriveCycle::paper_evaluation_set();
    cycles.push(DriveCycle::wltc_class3());
    for c in cycles {
        let s = c.stats();
        println!(
            "{:<10} {:>9.0} {:>10.2} {:>10.1} {:>10.1}",
            c.name(),
            s.duration.value(),
            s.distance.value(),
            s.avg_speed.to_kilometers_per_hour().value(),
            s.max_speed.to_kilometers_per_hour().value(),
        );
    }
}

fn cmd_simulate(args: &Args) -> Result<(), String> {
    let controller_name = args.get("controller").ok_or("missing --controller")?;
    let kind = controller_by_name(controller_name)
        .ok_or_else(|| format!("unknown controller '{controller_name}'"))?;
    let (params, sim) = build_sim(args)?;
    let telemetry_path = args.get("telemetry");
    let registry = Registry::with_enabled(telemetry_path.is_some());
    let mut controller = kind
        .instantiate_instrumented(&params, &registry)
        .map_err(|e| e.to_string())?;
    let mut observer = TelemetryObserver::new(&registry);
    let result = sim
        .run_observed(controller.as_mut(), &mut observer)
        .map_err(|e| e.to_string())?;
    print_metrics(&result);
    if let Some(path) = args.get("json") {
        let json = serde_json::to_string_pretty(&result).map_err(|e| e.to_string())?;
        std::fs::write(path, json).map_err(|e| e.to_string())?;
        println!("full result written to {path}");
    }
    if let Some(path) = telemetry_path {
        let snapshot = registry.snapshot();
        std::fs::write(path, export::to_jsonl(&snapshot)).map_err(|e| e.to_string())?;
        println!("\n{}", export::render_report(&snapshot));
        println!("telemetry written to {path}");
    }
    Ok(())
}

/// One parsed JSONL metric line, kept as the raw value tree so the
/// schema check can inspect it field by field (the vendored `Value`
/// deliberately has no blanket `Deserialize`).
struct RawLine(serde::Value);

impl serde::Deserialize for RawLine {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        Ok(Self(v.clone()))
    }
}

/// Validates one telemetry JSONL line against the exporter's schema.
fn validate_metric_line(line: &str) -> Result<&'static str, String> {
    let RawLine(v) = serde_json::from_str(line).map_err(|e| e.to_string())?;
    let kind = v
        .field("type")
        .and_then(serde::Value::as_str)
        .map_err(|e| e.to_string())?;
    let name = v
        .field("name")
        .and_then(serde::Value::as_str)
        .map_err(|e| e.to_string())?;
    if name.is_empty() {
        return Err("empty metric name".to_owned());
    }
    let num = |key: &str| -> Result<f64, String> {
        v.field(key)
            .and_then(serde::Value::as_num)
            .map_err(|e| format!("{name}: {e}"))
    };
    match kind {
        "counter" => {
            let value = num("value")?;
            if value < 0.0 || value.fract() != 0.0 {
                return Err(format!("{name}: counter value {value} is not a natural"));
            }
            Ok("counter")
        }
        "histogram" => {
            let count = num("count")?;
            let overflow = num("overflow")?;
            num("sum")?;
            // min/max are null (not numbers) exactly when the histogram
            // is empty.
            for key in ["min", "max"] {
                let is_null =
                    matches!(v.field(key).map_err(|e| e.to_string())?, serde::Value::Null);
                if is_null != (count == 0.0) {
                    return Err(format!("{name}: {key} null-ness disagrees with count"));
                }
            }
            let serde::Value::Seq(buckets) = v.field("buckets").map_err(|e| e.to_string())? else {
                return Err(format!("{name}: buckets is not an array"));
            };
            let mut in_buckets = 0.0;
            let mut prev_le = f64::NEG_INFINITY;
            for b in buckets {
                let le = b
                    .field("le")
                    .and_then(serde::Value::as_num)
                    .map_err(|e| format!("{name}: {e}"))?;
                if le <= prev_le {
                    return Err(format!("{name}: bucket bounds not increasing at {le}"));
                }
                prev_le = le;
                in_buckets += b
                    .field("count")
                    .and_then(serde::Value::as_num)
                    .map_err(|e| format!("{name}: {e}"))?;
            }
            if in_buckets + overflow != count {
                return Err(format!(
                    "{name}: bucket counts {in_buckets} + overflow {overflow} != count {count}"
                ));
            }
            Ok("histogram")
        }
        other => Err(format!("{name}: unknown metric type '{other}'")),
    }
}

fn cmd_validate_telemetry(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut counters = 0usize;
    let mut histograms = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match validate_metric_line(line).map_err(|e| format!("{path}:{}: {e}", i + 1))? {
            "counter" => counters += 1,
            _ => histograms += 1,
        }
    }
    if counters + histograms == 0 {
        return Err(format!("{path}: no metric lines"));
    }
    println!("{path}: OK ({counters} counters, {histograms} histograms)");
    Ok(())
}

fn cmd_compare(args: &Args) -> Result<(), String> {
    let (params, sim) = build_sim(args)?;
    println!(
        "{:<28} {:>9} {:>12} {:>10} {:>11}",
        "controller", "HVAC kW", "ΔSoH (m%)", "SoC dev", "kWh/100km"
    );
    for kind in ControllerKind::paper_lineup() {
        let mut controller = kind.instantiate(&params).map_err(|e| e.to_string())?;
        let result = sim.run(controller.as_mut()).map_err(|e| e.to_string())?;
        let m = result.metrics();
        println!(
            "{:<28} {:>9.3} {:>12.3} {:>10.3} {:>11.2}",
            kind.label(),
            m.avg_hvac_power.value(),
            m.delta_soh_milli_percent,
            m.soc_stats.dev,
            m.kwh_per_100km,
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = argv.first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let rest = Args::parse(&argv[1..]);
    let outcome = match (command.as_str(), rest) {
        ("cycles", _) => {
            cmd_cycles();
            Ok(())
        }
        ("simulate", Ok(args)) => cmd_simulate(&args),
        ("compare", Ok(args)) => cmd_compare(&args),
        ("validate-telemetry", _) => match argv.get(1) {
            Some(path) => cmd_validate_telemetry(path),
            None => Err(format!("missing <path.jsonl>\n{}", usage())),
        },
        (_, Err(e)) => Err(e),
        (other, _) => Err(format!("unknown command '{other}'\n{}", usage())),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(argv: &[&str]) -> Args {
        let owned: Vec<String> = argv.iter().map(|s| (*s).to_owned()).collect();
        Args::parse(&owned).expect("parses")
    }

    #[test]
    fn parses_pairs_and_flags() {
        let args = parse(&["--cycle", "nedc", "--precondition", "--ambient", "0"]);
        assert_eq!(args.get("cycle"), Some("nedc"));
        assert!(args.flag("precondition"));
        assert_eq!(args.get_f64("ambient", 35.0).unwrap(), 0.0);
        assert_eq!(args.get_f64("target", 24.0).unwrap(), 24.0); // default
    }

    #[test]
    fn rejects_positional_arguments() {
        let owned = vec!["nedc".to_owned()];
        assert!(Args::parse(&owned).is_err());
    }

    #[test]
    fn rejects_non_numeric_values() {
        let args = parse(&["--ambient", "hot"]);
        assert!(args.get_f64("ambient", 35.0).is_err());
    }

    #[test]
    fn cycle_lookup_accepts_aliases() {
        assert!(cycle_by_name("NEDC").is_some());
        assert!(cycle_by_name("ece-eudc").is_some());
        assert!(cycle_by_name("wltc3").is_some());
        assert!(cycle_by_name("imaginary").is_none());
    }

    #[test]
    fn validates_exported_jsonl() {
        let registry = Registry::enabled();
        registry.counter("solves_total").add(7);
        registry
            .histogram(
                "step_seconds",
                evclimate::telemetry::HistogramSpec::latency_seconds(),
            )
            .record(1e-3);
        let jsonl = export::to_jsonl(&registry.snapshot());
        for line in jsonl.lines() {
            validate_metric_line(line).expect("exported line is schema-valid");
        }
    }

    #[test]
    fn rejects_malformed_metric_lines() {
        // Fractional counter value.
        assert!(validate_metric_line(r#"{"type":"counter","name":"x","value":1.5}"#).is_err());
        // Unknown type tag.
        assert!(validate_metric_line(r#"{"type":"gauge","name":"x","value":1}"#).is_err());
        // Histogram whose bucket counts do not add up.
        assert!(validate_metric_line(
            r#"{"type":"histogram","name":"h","count":3,"sum":1.0,"min":0.1,"max":0.9,"buckets":[{"le":1.0,"count":1}],"overflow":0}"#
        )
        .is_err());
        // Not JSON at all.
        assert!(validate_metric_line("plain text").is_err());
    }

    #[test]
    fn controller_lookup_accepts_aliases() {
        assert!(matches!(
            controller_by_name("MPC"),
            Some(ControllerKind::Mpc)
        ));
        assert!(matches!(
            controller_by_name("on-off"),
            Some(ControllerKind::OnOff)
        ));
        assert!(controller_by_name("thermostat").is_none());
    }
}
