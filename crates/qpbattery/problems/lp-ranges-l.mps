* LP with a ranged L row and an objective constant from the RHS:
* min 2x + 3y - 10 s.t. 1 <= x + y <= 3, x, y >= 0.
* Optimum (1, 0), f* = -8.
NAME LPRANGESL
ROWS
 N OBJ
 L SUM
COLUMNS
 X OBJ 2.0 SUM 1.0
 Y OBJ 3.0 SUM 1.0
RHS
 RHS SUM 3.0 OBJ 10.0
RANGES
 RNG SUM 2.0
ENDATA
