//! Symmetric banded matrices and their LDLᵀ factorization.
//!
//! The reduced KKT matrix of a horizon-structured MPC quadratic program
//! couples each stage only to its neighbours, so under a stage-interleaved
//! variable ordering it is symmetric with a small fixed bandwidth `w`.
//! [`BandedCholesky`] factors such a matrix as `L·D·Lᵀ` (unit-lower `L`,
//! diagonal `D`) in `O(n·w²)` time and solves in `O(n·w)` — linear in the
//! horizon length, versus cubic for a dense factorization.
//!
//! The factorization is performed without pivoting and therefore accepts
//! *quasidefinite* matrices (positive diagonal on the Hessian block,
//! negative on the regularized equality block), which is exactly the KKT
//! form produced by the interior-point QP solver.

use crate::{LinalgError, Matrix};

/// A symmetric matrix stored by its lower band.
///
/// Entry `(i, j)` with `i ≥ j` and `i − j ≤ w` lives at
/// `data[i·(w+1) + (i−j)]`; everything further from the diagonal is
/// structurally zero. The upper triangle is implied by symmetry. The
/// row-major band layout keeps each row's in-band entries contiguous,
/// which is what the factorization's inner loops traverse.
///
/// # Examples
///
/// ```
/// use ev_linalg::BandedMatrix;
///
/// let mut a = BandedMatrix::zeros(3, 1);
/// a.set(0, 0, 2.0);
/// a.set(1, 0, -1.0); // also sets (0, 1) by symmetry
/// a.set(1, 1, 2.0);
/// a.set(2, 2, 2.0);
/// assert_eq!(a.get(0, 1), -1.0);
/// assert_eq!(a.get(0, 2), 0.0); // outside the band
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BandedMatrix {
    n: usize,
    /// Number of sub-diagonals stored (bandwidth).
    w: usize,
    /// Row-major band storage: `data[i·(w+1) + d] = A[i][i−d]`.
    data: Vec<f64>,
}

impl BandedMatrix {
    /// Creates an `n × n` zero matrix with bandwidth `w` (clamped to
    /// `n − 1`).
    #[must_use]
    pub fn zeros(n: usize, w: usize) -> Self {
        let mut m = Self::default();
        m.reset(n, w);
        m
    }

    /// Resizes to `n × n` with bandwidth `w` and zeroes all entries,
    /// reusing the existing allocation when large enough.
    pub fn reset(&mut self, n: usize, w: usize) {
        self.n = n;
        self.w = w.min(n.saturating_sub(1));
        self.data.clear();
        self.data.resize((self.w + 1) * n, 0.0);
    }

    /// Dimension of the matrix.
    #[inline]
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of stored sub-diagonals.
    #[inline]
    #[must_use]
    pub fn bandwidth(&self) -> usize {
        self.w
    }

    /// Entry `(i, j)`; zero outside the band, symmetric across it.
    #[inline]
    #[must_use]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let (r, c) = if i >= j { (i, j) } else { (j, i) };
        let d = r - c;
        if d > self.w {
            0.0
        } else {
            self.data[r * (self.w + 1) + d]
        }
    }

    /// Sets entry `(i, j)` (and `(j, i)` by symmetry).
    ///
    /// # Panics
    ///
    /// Panics if `(i, j)` lies outside the band.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        let (r, c) = if i >= j { (i, j) } else { (j, i) };
        let d = r - c;
        assert!(d <= self.w, "entry ({i}, {j}) outside bandwidth {}", self.w);
        self.data[r * (self.w + 1) + d] = v;
    }

    /// Adds `v` to entry `(i, j)` (and `(j, i)` by symmetry).
    ///
    /// # Panics
    ///
    /// Panics if `(i, j)` lies outside the band.
    #[inline]
    pub fn add_at(&mut self, i: usize, j: usize, v: f64) {
        let (r, c) = if i >= j { (i, j) } else { (j, i) };
        let d = r - c;
        assert!(d <= self.w, "entry ({i}, {j}) outside bandwidth {}", self.w);
        self.data[r * (self.w + 1) + d] += v;
    }

    /// Densifies into a full symmetric [`Matrix`].
    #[must_use]
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.n, self.n);
        for i in 0..self.n {
            for d in 0..=self.w.min(i) {
                let v = self.data[i * (self.w + 1) + d];
                m.set(i, i - d, v);
                m.set(i - d, i, v);
            }
        }
        m
    }

    /// Extracts the lower band of a dense symmetric matrix.
    ///
    /// Entries outside the band are ignored; the caller asserts they are
    /// structurally zero (checked in debug builds).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for rectangular input.
    pub fn from_dense(a: &Matrix, w: usize) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut b = Self::zeros(n, w);
        for j in 0..n {
            for i in j..n {
                let v = a.get(i, j);
                if i - j <= b.w {
                    b.data[i * (b.w + 1) + (i - j)] = v;
                } else {
                    debug_assert!(
                        v == 0.0,
                        "entry ({i}, {j}) = {v} outside declared bandwidth {w}"
                    );
                }
            }
        }
        Ok(b)
    }
}

/// LDLᵀ factorization of a symmetric [`BandedMatrix`].
///
/// Despite the name (kept parallel to the dense [`Cholesky`]
/// [`crate::Cholesky`]), this is a root-free LDLᵀ: pivots may be negative,
/// so the quasidefinite KKT matrices of an interior-point method factor
/// without pivoting. Only a pivot that is numerically zero is rejected.
///
/// The struct is a reusable workspace: [`BandedCholesky::factor`] resizes
/// internal buffers once and refactoring a same-shaped matrix is
/// allocation-free.
///
/// # Examples
///
/// ```
/// use ev_linalg::{BandedCholesky, BandedMatrix};
///
/// let mut a = BandedMatrix::zeros(3, 1);
/// for i in 0..3 {
///     a.set(i, i, 2.0);
/// }
/// a.set(1, 0, -1.0);
/// a.set(2, 1, -1.0);
///
/// let mut f = BandedCholesky::new();
/// f.factor(&a).unwrap();
/// let mut x = [1.0, 0.0, 1.0];
/// f.solve_in_place(&mut x).unwrap();
/// // Residual check: A·x = b.
/// assert!((2.0 * x[0] - x[1] - 1.0).abs() < 1e-12);
/// assert!((-x[0] + 2.0 * x[1] - x[2]).abs() < 1e-12);
/// assert!((-x[1] + 2.0 * x[2] - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BandedCholesky {
    n: usize,
    w: usize,
    /// Factored storage, same layout as [`BandedMatrix`]: diagonal `d = 0`
    /// holds `D`, sub-diagonals hold the strict lower part of unit `L`.
    data: Vec<f64>,
}

impl BandedCholesky {
    /// Pivot threshold (relative to the diagonal scale) below which the
    /// matrix is declared singular.
    const SINGULAR_TOL: f64 = 1e-13;

    /// Creates an empty workspace; call [`BandedCholesky::factor`] before
    /// solving.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Dimension of the factored matrix (zero before the first factor).
    #[inline]
    #[must_use]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Bandwidth of the factored matrix.
    #[inline]
    #[must_use]
    pub fn bandwidth(&self) -> usize {
        self.w
    }

    /// Factors `a = L·D·Lᵀ` in `O(n·w²)`, reusing internal storage.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] for a zero-dimensional matrix and
    /// [`LinalgError::Singular`] if a pivot falls below a tolerance scaled
    /// by its own row's magnitude (the factorization does not pivot, so a
    /// zero pivot cannot be repaired here).
    pub fn factor(&mut self, a: &BandedMatrix) -> Result<(), LinalgError> {
        let (n, w) = (a.n, a.w);
        if n == 0 {
            return Err(LinalgError::Empty);
        }
        self.n = n;
        self.w = w;
        self.data.clear();
        self.data.extend_from_slice(&a.data);

        // Pivot tolerance is relative to each row's own magnitude, not the
        // global diagonal maximum: interior-point KKT matrices routinely
        // carry barrier-inflated diagonals of 1e8 next to equality rows
        // whose legitimate (quasi-definite) Schur-complement pivots are
        // 1e-5, and a global scale would misread the latter as singular.
        let stride = w + 1;
        let mut row_scale = vec![0.0f64; n];
        for i in 0..n {
            for d in 0..=w.min(i) {
                let v = a.data[i * stride + d].abs();
                if v > row_scale[i] {
                    row_scale[i] = v;
                }
                let c = i - d;
                if v > row_scale[c] {
                    row_scale[c] = v;
                }
            }
        }

        // Scratch column: v[dd] = L[j][j−dd] · d_{j−dd}, so the row-update
        // inner loops below are plain dot products over contiguous slices.
        let mut v = vec![0.0f64; stride];
        for j in 0..n {
            let lo = j.saturating_sub(w);
            let m = j - lo;
            let base_j = j * stride;
            for dd in 1..=m {
                v[dd] = self.data[base_j + dd] * self.data[(j - dd) * stride];
            }
            // Pivot: d_j = a_jj − Σ_k L[j][k]² · d_k.
            let mut dj = self.data[base_j];
            for (l, t) in self.data[base_j + 1..=base_j + m].iter().zip(&v[1..=m]) {
                dj -= l * t;
            }
            if !dj.is_finite() || dj.abs() <= Self::SINGULAR_TOL * row_scale[j] {
                return Err(LinalgError::Singular);
            }
            self.data[base_j] = dj;
            // Column j of L: rows j+1 ..= j+w. With di = i − j, row i's
            // in-band predecessors shared with row j sit at band offsets
            // di+1 .. di+mlen, lining up with v[1 .. mlen].
            let hi = (j + w).min(n - 1);
            for i in (j + 1)..=hi {
                let di = i - j;
                let mlen = j - i.saturating_sub(w);
                let base = i * stride + di;
                let mut s = self.data[base];
                for (l, t) in self.data[base + 1..=base + mlen].iter().zip(&v[1..=mlen]) {
                    s -= l * t;
                }
                self.data[base] = s / dj;
            }
        }
        Ok(())
    }

    /// Solves `A·x = b` in place in `O(n·w)`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != dim()`
    /// and [`LinalgError::Empty`] if nothing has been factored yet.
    pub fn solve_in_place(&self, b: &mut [f64]) -> Result<(), LinalgError> {
        let (n, w) = (self.n, self.w);
        if n == 0 {
            return Err(LinalgError::Empty);
        }
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: (n, 1),
                actual: (b.len(), 1),
            });
        }
        // Forward: L·y = b (unit lower). Row r's band entries L[r][c] sit
        // contiguously at offsets r−c = 1..=r−lo.
        let stride = w + 1;
        for r in 1..n {
            let lo = r.saturating_sub(w);
            let base = r * stride;
            let mut sum = b[r];
            for c in lo..r {
                sum -= self.data[base + (r - c)] * b[c];
            }
            b[r] = sum;
        }
        // Diagonal: D·z = y.
        for r in 0..n {
            b[r] /= self.data[r * stride];
        }
        // Backward: Lᵀ·x = z.
        for r in (0..n).rev() {
            let hi = (r + w).min(n - 1);
            let mut sum = b[r];
            for c in (r + 1)..=hi {
                sum -= self.data[c * stride + (c - r)] * b[c];
            }
            b[r] = sum;
        }
        Ok(())
    }

    /// Convenience allocating variant of
    /// [`BandedCholesky::solve_in_place`].
    ///
    /// # Errors
    ///
    /// Same as [`BandedCholesky::solve_in_place`].
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let mut x = b.to_vec();
        self.solve_in_place(&mut x)?;
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Lu;

    fn tridiag(n: usize, off: f64, diag: f64) -> BandedMatrix {
        let mut a = BandedMatrix::zeros(n, 1);
        for i in 0..n {
            a.set(i, i, diag);
            if i + 1 < n {
                a.set(i + 1, i, off);
            }
        }
        a
    }

    #[test]
    fn storage_and_symmetry() {
        let a = tridiag(4, -1.0, 2.0);
        assert_eq!(a.get(1, 2), -1.0);
        assert_eq!(a.get(2, 1), -1.0);
        assert_eq!(a.get(0, 3), 0.0);
        let d = a.to_dense();
        assert!(d.is_symmetric(0.0));
        let back = BandedMatrix::from_dense(&d, 1).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    #[should_panic(expected = "outside bandwidth")]
    fn set_outside_band_panics() {
        let mut a = tridiag(4, -1.0, 2.0);
        a.set(0, 3, 1.0);
    }

    #[test]
    fn factor_solves_spd_tridiagonal() {
        let a = tridiag(6, -1.0, 2.0);
        let mut f = BandedCholesky::new();
        f.factor(&a).unwrap();
        let b: Vec<f64> = (0..6).map(|i| 1.0 + i as f64).collect();
        let x = f.solve(&b).unwrap();
        let r = a.to_dense().matvec(&x).unwrap();
        for (ri, bi) in r.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-12);
        }
    }

    #[test]
    fn matches_dense_lu_on_wider_band() {
        let n = 12;
        let mut a = BandedMatrix::zeros(n, 3);
        for i in 0..n {
            a.set(i, i, 6.0 + (i % 3) as f64);
            for d in 1..=3usize.min(n - 1 - i) {
                a.set(i + d, i, 1.0 / (d as f64 + 1.0));
            }
        }
        let mut f = BandedCholesky::new();
        f.factor(&a).unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
        let x = f.solve(&b).unwrap();
        let reference = Lu::factor(&a.to_dense()).unwrap().solve(&b).unwrap();
        for (xi, ri) in x.iter().zip(&reference) {
            assert!((xi - ri).abs() < 1e-12);
        }
    }

    #[test]
    fn accepts_quasidefinite() {
        // KKT-style matrix: positive block, coupled negative block.
        let mut a = BandedMatrix::zeros(4, 1);
        a.set(0, 0, 4.0);
        a.set(1, 0, 1.0);
        a.set(1, 1, 3.0);
        a.set(2, 1, 1.0);
        a.set(2, 2, -2.0);
        a.set(3, 2, 0.5);
        a.set(3, 3, -1.0);
        let mut f = BandedCholesky::new();
        f.factor(&a).unwrap();
        let b = [1.0, -1.0, 2.0, 0.5];
        let x = f.solve(&b).unwrap();
        let reference = Lu::factor(&a.to_dense()).unwrap().solve(&b).unwrap();
        for (xi, ri) in x.iter().zip(&reference) {
            assert!((xi - ri).abs() < 1e-12);
        }
    }

    #[test]
    fn rejects_singular_and_empty() {
        let mut f = BandedCholesky::new();
        assert_eq!(
            f.factor(&BandedMatrix::zeros(0, 0)).unwrap_err(),
            LinalgError::Empty
        );
        let zero = BandedMatrix::zeros(3, 1);
        assert_eq!(f.factor(&zero).unwrap_err(), LinalgError::Singular);
        let mut b = [0.0; 3];
        assert!(BandedCholesky::new().solve_in_place(&mut b).is_err());
    }

    /// Late-barrier KKT systems mix `1e8` barrier-inflated diagonals with
    /// `1e-5` equality Schur pivots in the same matrix. The singularity
    /// threshold is relative to each row's own magnitude: against a
    /// *global* scale the tiny-but-healthy pivots would fall at
    /// `SINGULAR_TOL * 1e8 = 1e-5` and be rejected as singular.
    #[test]
    fn per_row_pivot_tolerance_on_mixed_barrier_schur_scales() {
        let n = 6;
        let mut a = BandedMatrix::zeros(n, 1);
        for i in 0..n {
            // Even rows: barrier-inflated. Odd rows: Schur-complement
            // equality pivots (negative, quasi-definite style).
            a.set(i, i, if i % 2 == 0 { 1e8 } else { -1e-5 });
            if i + 1 < n {
                a.set(i + 1, i, 1e-8);
            }
        }
        // Dense LU measures pivots against the global matrix scale (1e8)
        // and rejects this very matrix — the per-row tolerance is what
        // keeps the banded path usable late in the barrier schedule.
        assert_eq!(
            Lu::factor(&a.to_dense()).unwrap_err(),
            LinalgError::Singular
        );
        let mut f = BandedCholesky::new();
        f.factor(&a)
            .expect("1e-5 pivots in 1e-8-scale rows are healthy, not singular");
        let b: Vec<f64> = (0..n)
            .map(|i| if i % 2 == 0 { 1e3 } else { 1e-6 })
            .collect();
        let x = f.solve(&b).unwrap();
        // Certify via the row-scaled residual (each row's equation holds
        // relative to its own magnitude), and against the near-diagonal
        // closed form x_i ~= b_i / a_ii (coupling is O(1e-8)).
        let xmax = x.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        for i in 0..n {
            let mut r = -b[i];
            let scale = (0..n).map(|j| a.get(i, j).abs()).fold(b[i].abs(), f64::max);
            for (j, xj) in x.iter().enumerate() {
                r += a.get(i, j) * xj;
            }
            assert!(
                r.abs() <= 1e-12 * scale * (1.0 + xmax),
                "row {i}: residual {r:e} vs scale {scale:e}"
            );
            let diag_est = b[i] / a.get(i, i);
            assert!(
                (x[i] - diag_est).abs() <= 1e-6 * (1.0 + diag_est.abs()),
                "row {i}: {:e} far from diagonal estimate {diag_est:e}",
                x[i]
            );
        }

        // A pivot that is tiny *relative to its own row* must still be
        // rejected: zero the diagonal of a row whose scale is 1e-8, so
        // elimination leaves |pivot| ~ 1e-24 < tol * 1e-8.
        a.set(3, 3, 0.0);
        assert_eq!(f.factor(&a).unwrap_err(), LinalgError::Singular);
    }

    #[test]
    fn refactor_reuses_allocation() {
        let a = tridiag(8, -1.0, 2.0);
        let mut f = BandedCholesky::new();
        f.factor(&a).unwrap();
        let cap = f.data.capacity();
        f.factor(&tridiag(8, -0.5, 3.0)).unwrap();
        assert_eq!(f.data.capacity(), cap);
        let mut wrong = [0.0; 5];
        assert!(f.solve_in_place(&mut wrong).is_err());
    }
}
