//! Constrained optimization for model predictive control.
//!
//! The DAC 2015 climate-control paper solves its MPC step with Sequential
//! Quadratic Programming (its Section III, citing Kelman & Borrelli). This
//! crate provides that machinery from scratch:
//!
//! * [`QpSolver`] — a dense convex quadratic program solver
//!   (minimize ½ zᵀHz + gᵀz subject to linear equalities and inequalities)
//!   implemented as an infeasible-start primal-dual interior-point method.
//!   No Phase-I is needed, which makes it robust as the inner engine of an
//!   SQP loop.
//! * [`SqpSolver`] — sequential quadratic programming for smooth nonlinear
//!   programs expressed through the [`NlpProblem`] trait, with damped-BFGS
//!   Hessian approximation, an L1 merit line search, and elastic-mode
//!   recovery when a subproblem is infeasible.
//! * [`finite_diff`] — central-difference gradients and Jacobians used as
//!   the default derivatives for problems that do not provide analytic
//!   ones.
//!
//! # Examples
//!
//! Minimize `(z₀−1)² + (z₁−2)²` subject to `z₀ + z₁ = 2` and `z₀ ≤ 0.25`:
//!
//! ```
//! use ev_optim::{QpProblem, QpSolver};
//! use ev_linalg::Matrix;
//!
//! # fn main() -> Result<(), ev_optim::OptimError> {
//! let h = Matrix::from_diag(&[2.0, 2.0]);
//! let g = vec![-2.0, -4.0];
//! let problem = QpProblem::new(h, g)?
//!     .with_equalities(Matrix::from_rows(&[&[1.0, 1.0]]).unwrap(), vec![2.0])?
//!     .with_inequalities(Matrix::from_rows(&[&[1.0, 0.0]]).unwrap(), vec![0.25])?;
//! let sol = QpSolver::default().solve(&problem)?;
//! assert!((sol.z[0] - 0.25).abs() < 1e-5);
//! assert!((sol.z[1] - 1.75).abs() < 1e-5);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Indexed loops over multiple parallel arrays are clearer than iterator
// chains in the dense numeric kernels below.
#![allow(clippy::needless_range_loop)]

mod error;
pub mod finite_diff;
mod nlp;
mod observer;
mod qp;
mod sqp;
mod verify;

pub use error::OptimError;
pub use nlp::NlpProblem;
pub use observer::{
    NoopSqpObserver, QpSubproblemStatus, SqpIterationRecord, SqpObserver, SqpTraceObserver,
};
pub use qp::{
    QpKktBackend, QpProblem, QpSolution, QpSolver, QpSolverOptions, QpStructure, QpView,
    QpWarmStart,
};
pub use sqp::{SqpOptions, SqpResult, SqpSolver, SqpStatus};
pub use verify::{kkt_report, verify_kkt, KktReport};
