* Hock-Schittkowski 35 (Beale): min 9 - 8x1 - 6x2 - 4x3
*   + 2x1^2 + 2x2^2 + x3^2 + 2x1x2 + 2x1x3
* s.t. x1 + x2 + 2x3 <= 3, x >= 0.
* Optimum x = (4/3, 7/9, 4/9), f* = 1/9.
NAME HS35
ROWS
 N OBJ
 L C1
COLUMNS
 X1 OBJ -8.0 C1 1.0
 X2 OBJ -6.0 C1 1.0
 X3 OBJ -4.0 C1 2.0
RHS
 RHS C1 3.0 OBJ -9.0
QUADOBJ
 X1 X1 4.0
 X1 X2 2.0
 X1 X3 2.0
 X2 X2 4.0
 X3 X3 2.0
ENDATA
