//! Fuzzy-logic climate control: a Mamdani inference engine and the
//! fuzzy baseline controller built on it (the paper's ref \[10\]).

mod controller;
mod engine;

pub use controller::FuzzyController;
pub use engine::{FuzzyEngine, MembershipFunction, Rule, Term};
