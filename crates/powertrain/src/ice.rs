//! Internal-combustion reference vehicle for the Fig. 1 comparison.

use ev_units::{MetersPerSecond, Watts};
use serde::{Deserialize, Serialize};

use crate::{RoadLoad, VehicleParams};

/// Parameters of the ICE reference vehicle (Toyota-Corolla-like, the
/// paper's Fig. 1 comparator).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IceParams {
    /// Chassis/road-load parameters (shared model with the EV).
    pub vehicle: VehicleParams,
    /// Peak brake thermal efficiency of the engine.
    pub engine_peak_efficiency: f64,
    /// Fraction of fuel waste heat recoverable for cabin heating.
    pub usable_waste_heat_fraction: f64,
    /// Coefficient of performance of the belt-driven A/C compressor.
    pub ac_cop: f64,
    /// Engine idle fuel power (W) — fuel burned at zero output.
    pub idle_fuel_power: Watts,
}

impl IceParams {
    /// A Corolla-like compact sedan: 1.8 L engine, ~32 % peak efficiency.
    #[must_use]
    pub fn corolla_like() -> Self {
        let vehicle = VehicleParams::builder()
            .mass_kg(1390.0)
            .drag_coefficient(0.29)
            .frontal_area_m2(2.18)
            .build();
        Self {
            vehicle,
            engine_peak_efficiency: 0.32,
            usable_waste_heat_fraction: 0.30,
            ac_cop: 2.2,
            idle_fuel_power: Watts::new(4000.0),
        }
    }
}

impl Default for IceParams {
    fn default() -> Self {
        Self::corolla_like()
    }
}

/// An internal-combustion vehicle model for the paper's motivational
/// case study (Fig. 1).
///
/// Two properties matter for that figure:
///
/// 1. fuel power (engine) is roughly independent of ambient temperature,
/// 2. cabin *heating* is nearly free — engine waste heat dwarfs the cabin
///    load, so only fan power is spent — while *cooling* burns fuel
///    through the belt-driven compressor.
///
/// # Examples
///
/// ```
/// use ev_powertrain::{IceParams, IceVehicle};
/// use ev_units::{MetersPerSecond, Watts};
///
/// let ice = IceVehicle::new(IceParams::corolla_like());
/// let heat_cost = ice.hvac_fuel_power(MetersPerSecond::new(16.7), Watts::new(4000.0), true);
/// let cool_cost = ice.hvac_fuel_power(MetersPerSecond::new(16.7), Watts::new(4000.0), false);
/// assert!(heat_cost.value() < cool_cost.value() / 4.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct IceVehicle {
    params: IceParams,
}

impl IceVehicle {
    /// Fan electrical power charged to HVAC in both modes (alternator
    /// load converted to fuel).
    const FAN_POWER_W: f64 = 250.0;
    /// Alternator efficiency for converting fuel to electrical power.
    const ALTERNATOR_EFF: f64 = 0.55;

    /// Creates the vehicle from parameters.
    #[must_use]
    pub fn new(params: IceParams) -> Self {
        Self { params }
    }

    /// Borrows the parameters.
    #[must_use]
    pub fn params(&self) -> &IceParams {
        &self.params
    }

    /// Fuel power consumed by propulsion at a steady operating point.
    /// Includes idle fuel burn; braking consumes idle fuel only.
    #[must_use]
    pub fn propulsion_fuel_power(&self, v: MetersPerSecond, a: f64, slope_percent: f64) -> Watts {
        let load = RoadLoad::at(&self.params.vehicle, v, a, slope_percent);
        let mech = (load.tractive().value() * v.value()).max(0.0);
        // Part-load penalty: efficiency falls off at small loads.
        let frac = (mech / 40_000.0).clamp(0.0, 1.0);
        let eta = self.params.engine_peak_efficiency * (0.55 + 0.45 * frac);
        Watts::new(self.params.idle_fuel_power.value() + if mech > 0.0 { mech / eta } else { 0.0 })
    }

    /// Engine waste heat available for cabin heating at an operating
    /// point.
    #[must_use]
    pub fn waste_heat(&self, v: MetersPerSecond, a: f64, slope_percent: f64) -> Watts {
        let fuel = self.propulsion_fuel_power(v, a, slope_percent).value();
        Watts::new(
            fuel * (1.0 - self.params.engine_peak_efficiency)
                * self.params.usable_waste_heat_fraction,
        )
    }

    /// Fuel power attributable to the HVAC for a given cabin thermal load.
    ///
    /// In heating mode the load is served from waste heat when available
    /// (only the fan costs fuel); any shortfall is served by an electric
    /// PTC heater through the alternator. In cooling mode the compressor
    /// load divides by the COP and the engine efficiency.
    #[must_use]
    pub fn hvac_fuel_power(&self, v: MetersPerSecond, cabin_load: Watts, heating: bool) -> Watts {
        let fan_fuel =
            Self::FAN_POWER_W / Self::ALTERNATOR_EFF / self.params.engine_peak_efficiency;
        if heating {
            let available = self.waste_heat(v, 0.0, 0.0).value();
            let shortfall = (cabin_load.value() - available).max(0.0);
            let ptc_fuel = shortfall / Self::ALTERNATOR_EFF / self.params.engine_peak_efficiency;
            Watts::new(fan_fuel + ptc_fuel)
        } else {
            let compressor_mech = cabin_load.value() / self.params.ac_cop;
            Watts::new(fan_fuel + compressor_mech / self.params.engine_peak_efficiency)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ice() -> IceVehicle {
        IceVehicle::new(IceParams::corolla_like())
    }

    #[test]
    fn idle_burns_fuel() {
        let p = ice().propulsion_fuel_power(MetersPerSecond::ZERO, 0.0, 0.0);
        assert_eq!(p.value(), 4000.0);
    }

    #[test]
    fn cruise_fuel_power_is_realistic() {
        // 100 km/h cruise: a compact sedan burns ~5–7 L/h ≈ 45–65 kW fuel.
        let p = ice().propulsion_fuel_power(MetersPerSecond::new(27.78), 0.0, 0.0);
        let kw = p.value() / 1000.0;
        assert!(kw > 25.0 && kw < 80.0, "fuel power {kw} kW");
    }

    #[test]
    fn waste_heat_dwarfs_cabin_heating_load_at_cruise() {
        let wh = ice().waste_heat(MetersPerSecond::new(16.7), 0.0, 0.0);
        assert!(wh.value() > 4000.0, "waste heat {wh}");
    }

    #[test]
    fn heating_is_nearly_free_cooling_is_not() {
        let v = MetersPerSecond::new(16.7);
        let load = Watts::new(4000.0);
        let heat = ice().hvac_fuel_power(v, load, true);
        let cool = ice().hvac_fuel_power(v, load, false);
        // Heating ≈ fan only (≈1.4 kW fuel); cooling adds compressor fuel.
        assert!(heat.value() < 2000.0, "heating {heat}");
        assert!(cool.value() > 6000.0, "cooling {cool}");
    }

    #[test]
    fn extreme_heating_shortfall_uses_ptc() {
        // At idle the waste heat is small; a huge load must cost fuel.
        let big = ice().hvac_fuel_power(MetersPerSecond::ZERO, Watts::new(12_000.0), true);
        let small = ice().hvac_fuel_power(MetersPerSecond::ZERO, Watts::new(100.0), true);
        assert!(big.value() > small.value() * 2.0);
    }

    #[test]
    fn braking_only_costs_idle_fuel() {
        let p = ice().propulsion_fuel_power(MetersPerSecond::new(20.0), -3.0, 0.0);
        assert_eq!(p.value(), 4000.0);
    }
}
